#!/usr/bin/env bash
# lint.sh — build amdahl-lint and run the repo's invariant analyzers
# over the whole module (see DESIGN.md "Enforced invariants" and
# internal/analyzers for the rule set).
#
# Usage: scripts/lint.sh [packages...]
#   packages default to ./... .
#
#        scripts/lint.sh -selfcheck [packages...]
#   Gate-of-the-gate: before the real run, seed a known violation in a
#   scratch package and require the suite to reject it, so a silently
#   broken analyzer build cannot pass as "no findings".
#
# Exit status 1 on any diagnostic (after //lint:allow suppression),
# matching `go vet`. The same binary also drives
# `go vet -vettool=$(pwd)/amdahl-lint ./...` if you prefer vet's caching.
set -euo pipefail

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/amdahl-lint" ./cmd/amdahl-lint

if [ "${1:-}" = "-selfcheck" ]; then
    shift
    seed="$bin/seed"
    mkdir -p "$seed"
    cat >"$seed/seed.go" <<'EOF'
package seed

import "os"

func violate() error { return os.WriteFile("x", nil, 0o644) }
EOF
    cat >"$seed/go.mod" <<'EOF'
module seed

go 1.24
EOF
    echo "lint.sh: self-check — seeded violation must be caught…" >&2
    if (cd "$seed" && "$bin/amdahl-lint" ./...) >/dev/null 2>&1; then
        echo "lint.sh: SELF-CHECK FAILED: analyzers missed a seeded violation" >&2
        exit 2
    fi
    echo "lint.sh: self-check ok" >&2
fi

# No exec: the EXIT trap must still clean up the scratch dir.
"$bin/amdahl-lint" "${@:-./...}"
