#!/usr/bin/env bash
# lint.sh — build amdahl-lint and run the repo's invariant analyzers
# over the whole module (see DESIGN.md "Enforced invariants" and
# internal/analyzers for the rule set).
#
# Usage: scripts/lint.sh [packages...]
#   packages default to ./... .
#
#        scripts/lint.sh -selfcheck [packages...]
#   Gate-of-the-gate: before the real run, seed known violations in a
#   scratch module — one per analyzer added since the suite grew — and
#   require the suite to reject every one, so a silently broken analyzer
#   build cannot pass as "no findings". The seeds include a
#   cross-package seedflow violation (the SeedParam fact is earned in
#   seed/lib and the bad caller lives in seed/app), proven in source
#   mode and again through `go vet -vettool`, so fact propagation
#   through .vetx stamp files is exercised end to end.
#
# Exit status 1 on any diagnostic (after //lint:allow suppression),
# matching `go vet`. The same binary also drives
# `go vet -vettool=$(pwd)/amdahl-lint ./...` if you prefer vet's caching.
set -euo pipefail

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/amdahl-lint" ./cmd/amdahl-lint

if [ "${1:-}" = "-selfcheck" ]; then
    shift
    seed="$bin/seed"
    mkdir -p "$seed/lib" "$seed/app" "$seed/internal/rng"
    cat >"$seed/go.mod" <<'EOF'
module seed

go 1.24
EOF
    cat >"$seed/internal/rng/rng.go" <<'EOF'
package rng

type Rand struct{ s uint64 }

func New(seed uint64) *Rand { return &Rand{s: seed} }
EOF
    cat >"$seed/lib/lib.go" <<'EOF'
package lib

import (
	"os"
	"time"

	"seed/internal/rng"
)

// one seeded violation per analyzer the self-check gates on:

func atomicwriteSeed() error { return os.WriteFile("x", nil, 0o644) }

func mapiterSeed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func walltimeSeed() int64 { return time.Now().UnixNano() }

func errclassSeed(code int) bool { return code == 503 }

// NewStream earns a SeedParam fact; the violating caller is in seed/app,
// one compilation unit downstream.
func NewStream(s uint64) *rng.Rand { return rng.New(s) }
EOF
    cat >"$seed/app/app.go" <<'EOF'
package app

import (
	"os"

	"seed/lib"
)

func FromPid() interface{} { return lib.NewStream(uint64(os.Getpid())) }
EOF
    echo "lint.sh: self-check — seeded violations must be caught…" >&2
    if out="$(cd "$seed" && "$bin/amdahl-lint" ./... 2>&1)"; then
        echo "lint.sh: SELF-CHECK FAILED: analyzers missed every seeded violation" >&2
        exit 2
    fi
    for a in atomicwrite mapiter walltime errclass seedflow; do
        if ! grep -q "\[$a\]" <<<"$out"; then
            echo "lint.sh: SELF-CHECK FAILED: analyzer $a missed its seeded violation" >&2
            echo "$out" >&2
            exit 2
        fi
    done
    if ! grep -q "app.go.*\[seedflow\]" <<<"$out"; then
        echo "lint.sh: SELF-CHECK FAILED: cross-package seedflow violation not caught in source mode" >&2
        echo "$out" >&2
        exit 2
    fi
    echo "lint.sh: self-check — same seeds through go vet -vettool…" >&2
    if vetout="$(cd "$seed" && go vet -vettool="$bin/amdahl-lint" ./... 2>&1)"; then
        echo "lint.sh: SELF-CHECK FAILED: go vet -vettool missed every seeded violation" >&2
        exit 2
    fi
    if ! grep -q "app.go.*\[seedflow\]" <<<"$vetout"; then
        echo "lint.sh: SELF-CHECK FAILED: cross-package seedflow violation not caught under go vet -vettool (vetx fact propagation broken)" >&2
        echo "$vetout" >&2
        exit 2
    fi
    echo "lint.sh: self-check ok" >&2
fi

# No exec: the EXIT trap must still clean up the scratch dir.
"$bin/amdahl-lint" "${@:-./...}"
