#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and record it as BENCH_<N>.json
# in the repository root, so the perf trajectory of the project is tracked
# PR over PR.
#
# Usage: scripts/bench.sh [N] [extra go test args...]
#   N defaults to one past the highest existing BENCH_<N>.json.
#
# The JSON records the environment (go version, CPU, GOMAXPROCS), the raw
# `go test -bench` output, and a parsed {name: {ns_per_op, bytes_per_op,
# allocs_per_op}} map taking the minimum ns/op over -count 3 runs.
set -euo pipefail

cd "$(dirname "$0")/.."

n="${1:-}"
if [ -z "$n" ]; then
    n=1
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        i="${f#BENCH_}"
        i="${i%.json}"
        case "$i" in
        *[!0-9]*) continue ;;
        esac
        if [ "$i" -ge "$n" ]; then n=$((i + 1)); fi
    done
else
    shift
fi

out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (count=3)…" >&2
go test -bench . -benchmem -count 3 -run XXX "$@" . | tee "$raw" >&2

go_version="$(go version)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

awk -v go_version="$go_version" -v date_utc="$date_utc" '
function esc(s) { gsub(/"/, "\\\"", s); return s }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!(name in best) || ns + 0 < best[name]) {
        best[name] = ns + 0
        b[name] = bytes
        a[name] = allocs
        if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
    }
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", esc(date_utc)
    printf "  \"go\": \"%s\",\n", esc(go_version)
    printf "  \"cpu\": \"%s\",\n", esc(cpu)
    printf "  \"count\": 3,\n"
    printf "  \"metric\": \"min ns/op over runs\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= k; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", esc(name), best[name]
        if (b[name] != "") printf ", \"bytes_per_op\": %s", b[name]
        if (a[name] != "") printf ", \"allocs_per_op\": %s", a[name]
        printf "}%s\n", (i < k ? "," : "")
    }
    printf "  }\n}\n"
}' "$raw" >"$out"

echo "wrote $out" >&2
