#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and record it as BENCH_<N>.json
# in the repository root, so the perf trajectory of the project is tracked
# PR over PR.
#
# Usage: scripts/bench.sh [N] [extra go test args...]
#   N defaults to one past the highest existing BENCH_<N>.json.
#
#        scripts/bench.sh -compare BENCH_<N>.json [extra go test args...]
#   Regression gate: re-runs the frozen-kernel benchmarks (count=5, min
#   ns/op — the min absorbs frequency-scaling dips on shared hosts) and
#   exits 1 if any of them regressed by more than 15% against the named
#   baseline. Nothing is written.
#
# The JSON records the environment (go version, CPU, GOMAXPROCS), the raw
# `go test -bench` output, and a parsed {name: {ns_per_op, bytes_per_op,
# allocs_per_op}} map taking the minimum ns/op over -count 3 runs.
set -euo pipefail

cd "$(dirname "$0")/.."

# The frozen-kernel hot paths gated by -compare: the per-call costs every
# optimizer and simulator loop is built on. Macro benchmarks (figures,
# campaigns) are recorded but not gated — they move with design changes;
# these must only ever go down. BenchmarkFleetLoadGen is the one gated
# end-to-end path: warm per-request latency through the fleet router
# (its qps/p50/p99 extras are recorded alongside, not gated).
frozen_benchmarks="BenchmarkExactPatternTime BenchmarkFreeze BenchmarkFrozenOverhead BenchmarkFrozenOverheadLog BenchmarkFirstOrderSolve BenchmarkMultilevelOptimize BenchmarkMultilevelCampaign BenchmarkHeteroOptimize BenchmarkHeteroSweep BenchmarkFleetLoadGen"
regression_pct=15

# parse_min_ns <raw-file>: emit "name ns" lines, min ns/op per benchmark.
parse_min_ns() {
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""
        for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i - 1)
        if (ns == "") next
        if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
    }
    END { for (name in best) print name, best[name] }' "$1"
}

if [ "${1:-}" = "-compare" ]; then
    baseline="${2:-}"
    if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
        echo "bench.sh -compare: baseline file required (e.g. BENCH_4.json)" >&2
        exit 2
    fi
    shift 2
    regex="^($(echo "$frozen_benchmarks" | tr ' ' '|'))$"
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    echo "running frozen-kernel benchmarks (count=5) for comparison against $baseline…" >&2
    go test -bench "$regex" -count 5 -run XXX "$@" . | tee "$raw" >&2

    expected=$(echo "$frozen_benchmarks" | wc -w)
    parse_min_ns "$raw" | {
        status=0
        compared=0
        while read -r name ns; do
            base_ns="$(awk -v n="\"$name\"" '
                index($0, n ": {") {
                    s = $0
                    sub(/.*"ns_per_op": */, "", s)
                    sub(/[,}].*/, "", s)
                    print s
                }' "$baseline")"
            if [ -z "$base_ns" ]; then
                echo "  $name: not in baseline, skipped" >&2
                continue
            fi
            over="$(awk -v new="$ns" -v old="$base_ns" -v pct="$regression_pct" \
                'BEGIN { print (new > old * (1 + pct / 100)) ? 1 : 0 }')"
            delta="$(awk -v new="$ns" -v old="$base_ns" \
                'BEGIN { printf "%+.1f%%", (new / old - 1) * 100 }')"
            compared=$((compared + 1))
            if [ "$over" = 1 ]; then
                echo "  REGRESSION $name: $ns ns/op vs baseline $base_ns ($delta > +${regression_pct}%)" >&2
                status=1
            else
                echo "  ok $name: $ns ns/op vs baseline $base_ns ($delta)" >&2
            fi
        done
        # A gate that compared nothing (renamed benchmark, stale baseline
        # keys) must fail, not pass vacuously.
        if [ "$compared" -lt "$expected" ]; then
            echo "  ERROR: only $compared of $expected frozen-kernel benchmarks were compared" >&2
            status=1
        fi
        exit $status
    }
    exit $?
fi

n="${1:-}"
if [ -z "$n" ]; then
    n=1
    for f in BENCH_*.json; do
        [ -e "$f" ] || continue
        i="${f#BENCH_}"
        i="${i%.json}"
        case "$i" in
        *[!0-9]*) continue ;;
        esac
        if [ "$i" -ge "$n" ]; then n=$((i + 1)); fi
    done
else
    shift
fi

out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (count=3)…" >&2
go test -bench . -benchmem -count 3 -run XXX "$@" . | tee "$raw" >&2

go_version="$(go version)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

awk -v go_version="$go_version" -v date_utc="$date_utc" '
function esc(s) { gsub(/"/, "\\\"", s); return s }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; qps = ""; p50 = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "B/op") bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "qps") qps = $(i - 1)
        if ($(i) == "p50-ns") p50 = $(i - 1)
        if ($(i) == "p99-ns") p99 = $(i - 1)
    }
    if (ns == "") next
    if (!(name in best) || ns + 0 < best[name]) {
        best[name] = ns + 0
        b[name] = bytes
        a[name] = allocs
        q[name] = qps
        l50[name] = p50
        l99[name] = p99
        if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
    }
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", esc(date_utc)
    printf "  \"go\": \"%s\",\n", esc(go_version)
    printf "  \"cpu\": \"%s\",\n", esc(cpu)
    printf "  \"count\": 3,\n"
    printf "  \"metric\": \"min ns/op over runs\",\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= k; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", esc(name), best[name]
        if (b[name] != "") printf ", \"bytes_per_op\": %s", b[name]
        if (a[name] != "") printf ", \"allocs_per_op\": %s", a[name]
        if (q[name] != "") printf ", \"qps\": %s", q[name]
        if (l50[name] != "") printf ", \"p50_ns\": %s", l50[name]
        if (l99[name] != "") printf ", \"p99_ns\": %s", l99[name]
        printf "}%s\n", (i < k ? "," : "")
    }
    printf "  }\n}\n"
}' "$raw" >"$out"

echo "wrote $out" >&2
