// Package amdahlyd reproduces "When Amdahl Meets Young/Daly" (Cavelan,
// Li, Robert, Sun — IEEE Cluster 2016): the optimal processor allocation
// and checkpointing period for a parallel job whose speedup obeys
// Amdahl's law, on a platform subject to both fail-stop and silent
// errors, protected by verified checkpoints (the VC protocol).
//
// The library lives under internal/:
//
//   - internal/core — exact expected pattern time (Proposition 1),
//     Theorems 1–3, case analysis and validity bounds;
//   - internal/optimize — the numerical (T, P) optimizer;
//   - internal/sim — pattern-level and machine-level Monte-Carlo
//     simulators of the VC protocol;
//   - internal/experiments — drivers regenerating Figs. 2–7;
//   - internal/baselines — Young, Daly, fail-stop-only and
//     iterative-relaxation comparators;
//   - internal/multilevel — the two-level pattern extension (future
//     work in the paper's Section V), end-to-end: joint (T, K, P)
//     optimizer, warm-start sweep solver and parallel campaigns;
//   - internal/hetero — heterogeneous platform topologies: per-group
//     compilation of a platform.Topology and the joint work-split
//     optimizer with its own warm-start sweep solver;
//   - internal/service — the long-running evaluation service behind
//     cmd/amdahl-serve;
//   - internal/campaign — the crash-safe, resumable grid orchestrator
//     behind "amdahl-exp campaign";
//   - substrates: speedup, costmodel, platform, failures, rng, stats,
//     xmath, report.
//
// # Evaluator architecture: Model vs Frozen
//
// internal/core deliberately exposes the paper's formulas twice. Model is
// the specification: every method takes (t, p) and derives the platform
// rates, resilience costs and exponentials from first principles on each
// call — use it for one-off evaluations, validation and readable code.
// core.Frozen is the compiled kernel: Model.Freeze(p) hoists everything
// that is invariant for a fixed processor count (λf_P, λs_P, C_P, R_P,
// V_P, D, 1/λf + D, e^{λf·C}, e^{λf·R}, H(P), the Theorem 1 constants and
// the λf→0 branch decision) so that PatternTime/Overhead cost two expm1
// calls and a handful of multiplies, allocation-free. The two paths are
// bit-exact by construction — Model methods are thin wrappers over a
// one-shot Freeze, and property tests pin the equivalence — so use Frozen
// in any loop that holds P fixed (the period minimizer probes one P
// thousands of times; the Monte-Carlo runner prices one (T, P) over
// hundreds of runs) and Model everywhere else.
//
// # Failure distributions beyond the exponential
//
// The paper's model is memoryless end to end; real platform logs are
// not (Weibull shape < 1 is the standard fit). failures.Distribution
// generalizes the inter-arrival law — Exponential, Weibull, LogNormal,
// Gamma, each calibrated to the platform MTBF so rates stay comparable
// — with raw draws in internal/rng. The law threads through the trace
// generator (failures.GenerateTraceDist), the machine-level simulator
// (sim.NewMachineDist, per-processor renewal clocks that pause across
// downtime), and experiments.RobustnessStudy ("amdahl-exp robustness"),
// which prices the exponential-optimal pattern under the true law
// against a re-tuned period. Exponential fast paths stay bit-identical
// for fixed seeds, pinned by golden tests. See DESIGN.md.
//
// # Batch sweeps: SweepSolver, not per-cell solves
//
// Sweep-shaped work — many optimizations along an ordered axis over
// which the optimum varies smoothly — should go through
// optimize.SweepSolver / optimize.BatchOptimalPattern (or the service's
// POST /v1/sweep, which adds per-cell caching and single-flight),
// never through per-cell OptimalPattern calls: the solver warm-starts
// each cell from its neighbour's optimum (narrow bracket + Brent
// polish, cold fallback on class changes or bracket escapes) at ~an
// order of magnitude below the per-cell cost, with property tests
// pinning warm-vs-cold agreement. The experiment drivers (Figs. 2, 4–7,
// baselines, robustness) already route through it; amdahl-exp
// -warm=false restores the per-cell scans. See DESIGN.md, "Warm-start
// sweep solver".
//
// # Two-level resilience end-to-end
//
// internal/multilevel promotes the Section V two-level protocol (cheap
// in-memory checkpoints under the disk level) to a first-class
// workload: multilevel.OptimalPattern searches the joint (T, K, P) box
// — the paper's central how-many-processors question asked of the
// two-level protocol — with a closed-form inner (T, K) solve per
// compiled evaluator; multilevel.SweepSolver warm-starts
// (T*, K*, P*) chains along smooth axes exactly like
// optimize.SweepSolver; Simulator.SimulateContext prices patterns on
// the shared chunked-dispatch runner (sim.ForEachRun) with per-run
// streams and fail-fast cancellation. New two-level work goes through
// multilevel.SweepSolver (or POST /v1/multilevel/*), never per-cell
// FirstOrder calls in a loop. The study driver is
// experiments.MultilevelStudy ("amdahl-exp multilevel"); the service
// endpoints are /v1/multilevel/optimize, /v1/multilevel/simulate and
// the "multilevel" axis switch on /v1/sweep, cached under the
// versioned ml1| key namespace. See DESIGN.md, "Multilevel
// end-to-end".
//
// # Heterogeneous platform topologies
//
// The paper's platform is P interchangeable processors with one failure
// law and one checkpoint cost. platform.Topology generalizes it to
// named groups — per-group error rate, speed, size and checkpoint/
// verification costs, plus one inter-group comm coefficient — and
// hetero.CompileTopology lowers a topology to a core.HeteroModel whose
// groups are ordinary Models (comm enters as an AmdahlComm speedup
// profile, versioned under the hg1| cache-key namespace). A one-group
// zero-comm topology compiles bit-identically to the classical Model.
// hetero.OptimalPattern answers the joint question: which groups to
// activate, how to split the work (harmonic in the per-group effective
// overheads), and each group's own (T, P) — warm-started along smooth
// axes by hetero.SweepSolver over per-(group, active-count) chains.
// Group-shaped platform work goes through platform.Topology +
// hetero.SweepSolver, not ad-hoc per-group loops. The study driver is
// experiments.HeterogeneousStudy ("amdahl-exp hetero"); the service
// endpoints are /v1/hetero/optimize, /v1/hetero/simulate and the
// "hetero" switch on /v1/sweep; the campaign preset is "hetero" (comm
// axis). sim.SimulateHetero prices a joint plan on the shared chunked
// runner, scoring each run by its makespan overhead max_g x_g·H_g. See
// DESIGN.md, "Heterogeneous topologies".
//
// # Service layer
//
// internal/service + cmd/amdahl-serve turn the analyses into a planning
// API: JSON endpoints for evaluate (exact overhead/pattern time at a
// given (T, P)), optimize ((T*, P*) via internal/optimize), simulate
// (seeded Monte-Carlo campaigns, machine-level and -dist laws included)
// and sweep (a whole axis solved as one warm-start chain, streamed as
// NDJSON, one cache entry per cell).
// The engine caches compiled Frozen evaluators, optimizer results and
// campaign results in sharded LRUs under canonical model keys
// (core.Model.CacheKey: exact hex float encoding, structural profile
// keys), deduplicates concurrent identical requests (single-flight, one
// solve per key), bounds heavy jobs on a scheduler, and threads request
// contexts into sim.SimulateContext so a client hang-up aborts its
// campaign. Responses are bit-identical to the equivalent CLI invocation
// for fixed seeds; campaigns replay from cache bit-exactly because they
// are pure functions of their seeded configuration. Cancellation is also
// available library-side: sim.SimulateContext and the ...Context
// experiment drivers (Fig2Context et al.) abort between runs and fail
// fast on the first error. See DESIGN.md, "Service layer".
//
// # Enforced invariants: amdahl-lint
//
// The conventions the architecture depends on — hot loops on
// core.Frozen, NaN-proof float validation (!(x > 0), never x <= 0),
// artifact writes through internal/atomicio, randomness through
// internal/rng, cache keys in exact hex, sorted iteration wherever map
// contents become output, wall-clock readings confined to the
// latency/backoff packages, rng seeds derived only from canonical
// material, 5xx classification centralized in service/fleet — are
// enforced mechanically by cmd/amdahl-lint, a multichecker over the
// nine analyzers in internal/analyzers (frozenloop, nanguard,
// atomicwrite, rawrand, keyfmt, mapiter, walltime, seedflow,
// errclass). The last two are interprocedural: they attach
// gob-serialized facts to objects, carried between packages in
// dependency order and between `go vet` compilation units in .vetx
// stamp files. CI runs the suite via scripts/lint.sh; it also speaks
// the `go vet -vettool` protocol and emits -json NDJSON or
// -format=github annotations. Justified exceptions are annotated in
// place with `//lint:allow <analyzer> <reason>`. New cross-cutting
// invariants ship with an analyzer, not a comment. See DESIGN.md,
// "Enforced invariants".
//
// Executables: cmd/amdahl-opt (optimal patterns), cmd/amdahl-sim
// (Monte-Carlo pricing of one pattern), cmd/amdahl-exp (regenerate the
// paper's figures plus the profile, baseline and robustness extension
// studies), cmd/amdahl-trace (generate, verify and replay failure
// traces, exponential or not), and cmd/amdahl-serve (the HTTP planning
// service). Runnable examples live in examples/.
//
// The benchmarks in this package regenerate each of the paper's figures
// (BenchmarkFig2 … BenchmarkFig7) at a reduced Monte-Carlo budget and
// measure the hot paths (exact formula, optimizers, simulators).
package amdahlyd
