package baselines

import (
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
)

// The baseline entry points take raw floats from callers (CLI flags,
// service requests); every one of them must reject NaN and infinities
// rather than let them poison the period formulas (nanguard's bug
// class — the original `c <= 0 || mtbf <= 0` forms passed NaN).
func TestPeriodsRejectNonFiniteInputs(t *testing.T) {
	cases := []struct {
		name    string
		c, mtbf float64
	}{
		{"NaN C", math.NaN(), 3600},
		{"-Inf C", math.Inf(-1), 3600},
		{"zero C", 0, 3600},
		{"NaN MTBF", 300, math.NaN()},
		{"-Inf MTBF", 300, math.Inf(-1)},
		{"zero MTBF", 300, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := YoungPeriod(tc.c, tc.mtbf); !math.IsNaN(got) {
				t.Errorf("YoungPeriod(%g, %g) = %g, want NaN", tc.c, tc.mtbf, got)
			}
			if got := DalyPeriod(tc.c, tc.mtbf); !math.IsNaN(got) {
				t.Errorf("DalyPeriod(%g, %g) = %g, want NaN", tc.c, tc.mtbf, got)
			}
		})
	}
}

func TestPlansRejectNonFiniteProcessorCount(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	for _, p := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0} {
		if _, err := PlanYoung(m, p); err == nil {
			t.Errorf("PlanYoung(P=%g) accepted", p)
		}
		if _, err := PlanDaly(m, p); err == nil {
			t.Errorf("PlanDaly(P=%g) accepted", p)
		}
	}
}

func TestIterativeRelaxationRejectsNonFiniteModel(t *testing.T) {
	good := heraModel(t, costmodel.Scenario1, 0.1)
	mutations := []func(m *core.Model){
		func(m *core.Model) { m.LambdaInd = math.NaN() },
		func(m *core.Model) { m.LambdaInd = math.Inf(1) },
		func(m *core.Model) { m.FailStopFrac = math.NaN() },
		func(m *core.Model) { m.SilentFrac = math.NaN() },
	}
	for i, mutate := range mutations {
		m := good
		mutate(&m)
		if _, _, err := IterativeRelaxation(m, 1e-9, 100); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	// A NaN tolerance must fall back to the default instead of disabling
	// the convergence test forever.
	if _, _, err := IterativeRelaxation(good, math.NaN(), 100); err != nil {
		t.Errorf("NaN tolerance should fall back to default, got %v", err)
	}
}
