package baselines

import (
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

func heraModel(t *testing.T, sc costmodel.Scenario, alpha float64) core.Model {
	t.Helper()
	res, err := sc.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	var profile speedup.Profile = speedup.Amdahl{Alpha: alpha}
	if alpha == 0 {
		profile = speedup.PerfectlyParallel{}
	}
	return core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      profile,
	}
}

func TestYoungPeriodFormula(t *testing.T) {
	// sqrt(2·300·3600) classic textbook case.
	got := YoungPeriod(300, 3600)
	want := math.Sqrt(2 * 300 * 3600)
	if !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("Young = %g, want %g", got, want)
	}
	if !math.IsNaN(YoungPeriod(0, 100)) || !math.IsNaN(YoungPeriod(100, 0)) {
		t.Error("degenerate inputs should be NaN")
	}
}

// Theorem 1 degenerates to Young's formula when silent errors vanish and
// verification is free: T* = sqrt(C/(λf/2)) = sqrt(2·C·μ).
func TestTheorem1ReducesToYoung(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 1, 0
	m.Res.Verification = costmodel.Verification{}
	p := 512.0
	lf, _ := m.Rates(p)
	young := YoungPeriod(m.Res.Checkpoint.At(p), 1/lf)
	theorem1 := m.OptimalPeriodFixedP(p)
	if !xmath.EqualWithin(young, theorem1, 1e-12, 0) {
		t.Errorf("Young %g != Theorem 1 %g in the fail-stop-only limit", young, theorem1)
	}
}

func TestDalyPeriod(t *testing.T) {
	// For C ≪ μ, Daly ≈ Young − C + small corrections.
	c, mu := 300.0, 1e6
	daly := DalyPeriod(c, mu)
	young := YoungPeriod(c, mu)
	if daly >= young {
		t.Errorf("Daly %g should sit below Young %g (the −C term dominates)", daly, young)
	}
	if math.Abs(daly-(young-c))/young > 0.01 {
		t.Errorf("Daly %g far from Young−C = %g", daly, young-c)
	}
	// Saturation branch: C >= 2μ.
	if got := DalyPeriod(500, 100); got != 100 {
		t.Errorf("saturated Daly = %g, want μ", got)
	}
	if !math.IsNaN(DalyPeriod(-1, 100)) {
		t.Error("negative C should be NaN")
	}
}

func TestDalyBeatsYoungNearSaturation(t *testing.T) {
	// When C is a sizeable fraction of μ, Daly's higher-order period
	// yields a strictly better overhead than Young under a pure
	// fail-stop model.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 1, 0
	m.LambdaInd = 2e-6 // heavy failure pressure: μ_P ≈ 977 s vs C = 300 s
	p := 512.0
	lf, _ := m.Rates(p)
	cv := m.Res.CombinedVC(p)
	hYoung := m.Overhead(YoungPeriod(cv, 1/lf), p)
	hDaly := m.Overhead(DalyPeriod(cv, 1/lf), p)
	if hDaly >= hYoung {
		t.Errorf("Daly overhead %g should beat Young %g near saturation", hDaly, hYoung)
	}
}

func TestIgnoreSilentPreservesFailStopRate(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	ig := IgnoreSilent(m)
	lfBefore, _ := m.Rates(512)
	lfAfter, lsAfter := ig.Rates(512)
	if !xmath.EqualWithin(lfBefore, lfAfter, 1e-12, 0) {
		t.Errorf("fail-stop rate changed: %g → %g", lfBefore, lfAfter)
	}
	if lsAfter != 0 {
		t.Errorf("silent rate should be zero, got %g", lsAfter)
	}
	if err := ig.Validate(); err != nil {
		t.Errorf("IgnoreSilent produced invalid model: %v", err)
	}
}

func TestAllFailStopPreservesTotalRate(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	af := AllFailStop(m)
	lfB, lsB := m.Rates(512)
	lfA, lsA := af.Rates(512)
	if !xmath.EqualWithin(lfA, lfB+lsB, 1e-12, 0) || lsA != 0 {
		t.Errorf("AllFailStop rates wrong: %g, %g", lfA, lsA)
	}
	if err := af.Validate(); err != nil {
		t.Errorf("AllFailStop produced invalid model: %v", err)
	}
}

func TestPlanYoungUnderestimatesTrueCost(t *testing.T) {
	// A Young plan derived from fail-stop errors alone must look cheaper
	// to the fail-stop-only model than it truly is under both sources.
	m := heraModel(t, costmodel.Scenario1, 0.1)
	plan, err := PlanYoung(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AssumedOverhead >= plan.TrueOverhead {
		t.Errorf("assumed %g should undercut true %g", plan.AssumedOverhead, plan.TrueOverhead)
	}
	// And the full-model optimal period must beat the Young plan.
	tStar, hStar, err := optimize.OptimalPeriod(m, 512, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hStar > plan.TrueOverhead {
		t.Errorf("VC-optimal overhead %g (T=%g) worse than Young plan %g (T=%g)",
			hStar, tStar, plan.TrueOverhead, plan.T)
	}
}

func TestPlanYoungOverchecksForSilentErrors(t *testing.T) {
	// Ignoring silent errors means checkpointing too rarely: the Young
	// period must exceed the full-model optimum.
	m := heraModel(t, costmodel.Scenario1, 0.1)
	plan, err := PlanYoung(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	full := m.OptimalPeriodFixedP(512)
	if plan.T <= full {
		t.Errorf("Young period %g should exceed full-model period %g", plan.T, full)
	}
}

func TestPlanDaly(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	planY, err := PlanYoung(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	planD, err := PlanDaly(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if planD.T >= planY.T {
		t.Errorf("Daly period %g should be below Young %g", planD.T, planY.T)
	}
}

func TestPlanErrorsWithoutFailStop(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.FailStopFrac, m.SilentFrac = 0, 1
	if _, err := PlanYoung(m, 512); err == nil {
		t.Error("Young with zero fail-stop rate accepted")
	}
}

func TestIterativeRelaxationConstantCostOneStep(t *testing.T) {
	// With a truly constant cost the frozen-cost map is exact: the
	// procedure must land on Theorem 3 immediately and agree with it.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	sol, iters, err := IterativeRelaxation(m, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := m.FirstOrder()
	if err != nil {
		t.Fatal(err)
	}
	if xmath.RelDiff(sol.P, fo.P) > 1e-6 {
		t.Errorf("relaxation P = %g, Theorem 3 P = %g (iters=%d)", sol.P, fo.P, iters)
	}
	if sol.Method != "iterative-relaxation" {
		t.Errorf("method = %q", sol.Method)
	}
}

func TestIterativeRelaxationLinearCostBias(t *testing.T) {
	// With linearly growing cost the relaxation converges to an
	// allocation √2 larger on the α-term than Theorem 2 — close enough
	// to be a credible baseline, far enough to measure.
	m := heraModel(t, costmodel.Scenario1, 0.1)
	sol, _, err := IterativeRelaxation(m, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := m.FirstOrder()
	if err != nil {
		t.Fatal(err)
	}
	ratio := sol.P / fo.P
	if math.Abs(ratio-math.Sqrt2) > 0.1 {
		t.Errorf("relaxation/theorem2 allocation ratio = %g, expected ≈√2", ratio)
	}
	// The overhead penalty of the bias is small (flat optimum).
	num, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if (sol.Overhead-num.Overhead)/num.Overhead > 0.02 {
		t.Errorf("relaxation overhead %g too far above optimal %g", sol.Overhead, num.Overhead)
	}
}

func TestIterativeRelaxationPerfectlyParallel(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0)
	sol, _, err := IterativeRelaxation(m, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Stationarity of 1/P + 2 sqrt(d·fs·λ·P): P = (d·fs·λ)^(-1/3).
	fs := m.FailStopFrac/2 + m.SilentFrac
	want := math.Cbrt(1 / (315.4 * fs * m.LambdaInd))
	if xmath.RelDiff(sol.P, want) > 1e-6 {
		t.Errorf("perfectly parallel relaxation P = %g, want %g", sol.P, want)
	}
}

func TestIterativeRelaxationRejectsBadInput(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.LambdaInd = 0
	if _, _, err := IterativeRelaxation(m, 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	m2 := heraModel(t, costmodel.Scenario1, 0.1)
	m2.Profile = speedup.Gustafson{Alpha: 0.1}
	if _, _, err := IterativeRelaxation(m2, 0, 0); err == nil {
		t.Error("unsupported profile accepted")
	}
	m3 := heraModel(t, costmodel.Scenario1, 0.1)
	m3.FailStopFrac = 2
	if _, _, err := IterativeRelaxation(m3, 0, 0); err == nil {
		t.Error("invalid model accepted")
	}
}
