// Package baselines implements the comparator algorithms the paper builds
// on or cites as closest related work:
//
//   - Young's first-order optimal checkpointing period [20] and Daly's
//     higher-order refinement [9], both for fail-stop errors only;
//   - fail-stop-only model variants in the spirit of Zheng et al. [22]
//     (reliability-aware speedup with coordinated checkpoint/restart,
//     no silent errors), used to quantify what ignoring silent errors
//     costs under the paper's full model;
//   - an iterative relaxation procedure in the spirit of Jin et al. [14]:
//     freeze the resilience cost at the current processor count, solve
//     the resulting closed form, repeat until the allocation stabilizes.
//
// The exact internals of [22] and [14] are not public artifacts; both are
// reconstructed from their problem statements (fail-stop-only, coordinated
// C/R, Amdahl or perfectly parallel jobs) so the comparisons in the
// experiments exercise genuinely different algorithms, not renamed copies.
package baselines

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/speedup"
)

// YoungPeriod returns Young's classic first-order optimal checkpointing
// period sqrt(2·C·μ) for checkpoint cost c and platform MTBF mtbf [20].
// With no silent errors and a free verification, Theorem 1 degenerates to
// exactly this formula (a property the tests verify).
func YoungPeriod(c, mtbf float64) float64 {
	if !(c > 0) || !(mtbf > 0) {
		return math.NaN()
	}
	return math.Sqrt(2 * c * mtbf)
}

// DalyPeriod returns Daly's higher-order estimate of the optimum
// checkpoint interval [9]:
//
//	T = sqrt(2Cμ)·(1 + (1/3)·sqrt(C/(2μ)) + (1/9)·(C/(2μ))) − C    if C < 2μ
//	T = μ                                                          otherwise
func DalyPeriod(c, mtbf float64) float64 {
	if !(c > 0) || !(mtbf > 0) {
		return math.NaN()
	}
	if c >= 2*mtbf {
		return mtbf
	}
	x := c / (2 * mtbf)
	return math.Sqrt(2*c*mtbf)*(1+math.Sqrt(x)/3+x/9) - c
}

// IgnoreSilent returns a copy of the model in which silent errors are
// dropped entirely (the fail-stop rate is preserved). Running the VC
// protocol tuned with this model against the full error environment
// quantifies the cost of ignoring silent errors, the gap the paper's
// protocol closes.
func IgnoreSilent(m core.Model) core.Model {
	m.LambdaInd *= m.FailStopFrac
	m.FailStopFrac, m.SilentFrac = 1, 0
	return m
}

// AllFailStop returns a copy of the model in which every error is treated
// as fail-stop at the same total rate, the modelling choice of fail-stop-
// only analyses such as [22] when confronted with mixed error logs.
func AllFailStop(m core.Model) core.Model {
	m.FailStopFrac, m.SilentFrac = 1, 0
	return m
}

// YoungDalyPlan is a baseline pattern choice: the processor count is taken
// as given (or from the paper's optimum) and the period from Young's or
// Daly's fail-stop-only formula using C_P + V_P as the "checkpoint cost".
type YoungDalyPlan struct {
	// T is the chosen period.
	T float64
	// TrueOverhead is the expected overhead of that period evaluated
	// under the FULL model (both error sources), i.e. what the plan
	// actually costs on the real platform.
	TrueOverhead float64
	// AssumedOverhead is the overhead the fail-stop-only analysis
	// believes it achieves.
	AssumedOverhead float64
}

// PlanYoung evaluates Young's period at processor count p: the period is
// computed from the fail-stop rate only, then priced under the full model.
func PlanYoung(m core.Model, p float64) (YoungDalyPlan, error) {
	return plan(m, p, YoungPeriod)
}

// PlanDaly is PlanYoung with Daly's higher-order period.
func PlanDaly(m core.Model, p float64) (YoungDalyPlan, error) {
	return plan(m, p, DalyPeriod)
}

func plan(m core.Model, p float64, period func(c, mtbf float64) float64) (YoungDalyPlan, error) {
	if err := m.Validate(); err != nil {
		return YoungDalyPlan{}, err
	}
	if !(p >= 1) || math.IsInf(p, 0) {
		return YoungDalyPlan{}, fmt.Errorf("baselines: invalid processor count P=%g", p)
	}
	lf, _ := m.Rates(p)
	if !(lf > 0) {
		return YoungDalyPlan{}, errors.New("baselines: fail-stop rate is zero; Young/Daly undefined")
	}
	cv := m.Res.CombinedVC(p)
	t := period(cv, 1/lf)
	if math.IsNaN(t) || t <= 0 {
		return YoungDalyPlan{}, fmt.Errorf("baselines: degenerate period %g", t)
	}
	ignore := IgnoreSilent(m)
	return YoungDalyPlan{
		T:               t,
		TrueOverhead:    m.Overhead(t, p),
		AssumedOverhead: ignore.Overhead(t, p),
	}, nil
}

// IterativeRelaxation computes a processor allocation in the spirit of
// Jin et al. [14]: at each step the resilience cost C_P+V_P is frozen at
// the current allocation, the closed-form optimum for a constant cost is
// solved (Theorem 3 for Amdahl profiles, the case-4 stationarity condition
// for perfectly parallel jobs), and the procedure repeats until the
// allocation moves by less than tol (relative). It returns the solution,
// the iteration count, and an error if the procedure does not converge.
//
// For genuinely constant costs it converges in one step to Theorem 3; for
// linearly growing costs it converges to an allocation within a constant
// factor (√2 on the α-term) of Theorem 2 — a bias the experiments surface.
func IterativeRelaxation(m core.Model, tol float64, maxIter int) (core.Solution, int, error) {
	if err := m.Validate(); err != nil {
		return core.Solution{}, 0, err
	}
	if !(tol > 0) {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	fs := m.FailStopFrac/2 + m.SilentFrac
	lam := m.LambdaInd
	if !(lam > 0) || !(fs > 0) {
		return core.Solution{}, 0, errors.New("baselines: relaxation needs positive error rates")
	}

	alpha := -1.0
	switch pr := m.Profile.(type) {
	case speedup.Amdahl:
		alpha = pr.Alpha
	case speedup.PerfectlyParallel:
		alpha = 0
	default:
		return core.Solution{}, 0, fmt.Errorf(
			"baselines: relaxation supports Amdahl or perfectly parallel profiles, have %s",
			m.Profile.Name())
	}

	p := 1.0
	for iter := 1; iter <= maxIter; iter++ {
		d := m.Res.CombinedVC(p)
		if !(d > 0) {
			return core.Solution{}, iter, errors.New("baselines: non-positive frozen cost")
		}
		var next float64
		if alpha > 0 {
			// Theorem 3 closed form with the frozen constant d.
			next = math.Cbrt(1/(d*fs*lam)) * math.Pow((1-alpha)/alpha, 2.0/3)
		} else {
			// Perfectly parallel: minimize 1/P + 2·sqrt(d·fs·λ·P).
			next = math.Cbrt(1 / (d * fs * lam))
		}
		if next < 1 {
			next = 1
		}
		if math.Abs(next-p) <= tol*p {
			t := math.Sqrt(m.Res.CombinedVC(next) / (fs * lam * next))
			return core.Solution{
				T: t, P: next,
				//lint:allow frozenloop executed once, at convergence — the loop exits on this return
				Overhead: m.Overhead(t, next),
				Method:   "iterative-relaxation",
				Class:    m.Res.Classify().Class,
			}, iter, nil
		}
		// Damped update stabilizes the linear-cost case, where the raw
		// map P → d(P) → P' oscillates.
		p = math.Sqrt(p * next)
	}
	return core.Solution{}, maxIter, errors.New("baselines: iterative relaxation did not converge")
}
