package stats

import (
	"math"
	"sort"

	"amdahlyd/internal/xmath"
)

// KSResult reports the outcome of a one-sample Kolmogorov–Smirnov test.
type KSResult struct {
	Statistic float64 // D_n, the sup-norm distance between EDF and CDF
	PValue    float64 // asymptotic p-value with Stephens' correction
	N         int
}

// Reject reports whether the null hypothesis is rejected at level alpha.
func (k KSResult) Reject(alpha float64) bool { return k.PValue < alpha }

// KSTest runs a one-sample KS test of xs against the continuous CDF.
// The input is not modified.
func KSTest(xs []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(xs)
	if n == 0 {
		return KSResult{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		dPlus := float64(i+1)/float64(n) - f
		dMinus := f - float64(i)/float64(n)
		if dPlus > d {
			d = dPlus
		}
		if dMinus > d {
			d = dMinus
		}
	}
	p := 1 - xmath.KolmogorovCDF(d, n)
	return KSResult{Statistic: d, PValue: p, N: n}, nil
}

// KSTestExponential tests xs against an exponential distribution with the
// given rate. This is the oracle the failure-injection tests use to verify
// that simulated inter-arrival times match the model of Section II.
func KSTestExponential(xs []float64, rate float64) (KSResult, error) {
	return KSTest(xs, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return -math.Expm1(-rate * x)
	})
}

// KSTestUniform01 tests xs against the uniform distribution on [0, 1].
func KSTestUniform01(xs []float64) (KSResult, error) {
	return KSTest(xs, func(x float64) float64 { return xmath.Clamp(x, 0, 1) })
}

// Histogram is a fixed-width binning of observations on [Lo, Hi); values
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64
	Over   int64
	total  int64
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || !(hi > lo) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard FP edge at x == Hi−ulp
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations added, including out-of-range.
func (h *Histogram) Total() int64 { return h.total }

// Density returns the normalized density of bin i (counts / total / width).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / float64(h.total) / width
}

// Mode returns the index of the fullest bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}
