package stats

import (
	"math"
	"testing"
	"testing/quick"

	"amdahlyd/internal/rng"
	"amdahlyd/internal/xmath"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != int64(len(xs)) {
		t.Errorf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if !xmath.EqualWithin(w.Variance(), 32.0/7, 1e-12, 0) {
		t.Errorf("variance = %g, want %g", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	// Fewer than two observations define no spread: every spread statistic
	// must be NaN (not zero — a zero would read as an exact estimate) so
	// report.Fmt renders it as "-".
	var w Welford
	if !math.IsNaN(w.Variance()) || !math.IsNaN(w.StdErr()) {
		t.Errorf("empty accumulator spread = (%g, %g), want NaN", w.Variance(), w.StdErr())
	}
	if !math.IsNaN(w.CI(0.95)) {
		t.Errorf("CI of 0 samples = %g, want NaN", w.CI(0.95))
	}
	w.Add(3)
	if w.Mean() != 3 {
		t.Errorf("single observation mean = %g, want 3", w.Mean())
	}
	if !math.IsNaN(w.Variance()) || !math.IsNaN(w.StdDev()) || !math.IsNaN(w.StdErr()) {
		t.Error("single observation should have NaN spread")
	}
	if !math.IsNaN(w.CI(0.95)) {
		t.Errorf("CI of 1 sample = %g, want NaN", w.CI(0.95))
	}
	s := w.Summarize()
	if s.N != 1 || s.Mean != 3 || !math.IsNaN(s.StdDev) || !math.IsNaN(s.StdErr) || !math.IsNaN(s.CI95) {
		t.Errorf("single observation summary = %+v, want NaN spread fields", s)
	}
	w.Add(5)
	if w.Variance() != 2 {
		t.Errorf("variance = %g, want 2", w.Variance())
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(seed uint64, nA, nB uint8) bool {
		r := rng.New(seed)
		a, b, all := Welford{}, Welford{}, Welford{}
		for i := 0; i < int(nA%50); i++ {
			x := r.Normal()*10 + 3
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nB%50); i++ {
			x := r.Normal()*2 - 7
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		// Below two observations the variance is NaN on both sides.
		varOK := a.N() < 2 && math.IsNaN(a.Variance()) && math.IsNaN(all.Variance()) ||
			xmath.EqualWithin(a.Variance(), all.Variance(), 1e-9, 1e-12)
		return xmath.EqualWithin(a.Mean(), all.Mean(), 1e-9, 1e-12) &&
			varOK &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(b) // empty ← nonempty
	if a.Mean() != 2 || a.N() != 2 {
		t.Error("merge into empty failed")
	}
	var c Welford
	a.Merge(c) // nonempty ← empty
	if a.Mean() != 2 || a.N() != 2 {
		t.Error("merge of empty changed state")
	}
}

func TestCICoverage(t *testing.T) {
	// 95% CI computed from normal samples should cover the true mean
	// roughly 95% of the time.
	r := rng.New(123)
	covered := 0
	const trials, perTrial = 400, 40
	for i := 0; i < trials; i++ {
		var w Welford
		for j := 0; j < perTrial; j++ {
			w.Add(r.Normal()*2 + 10)
		}
		half := w.CI(0.95)
		if math.Abs(w.Mean()-10) <= half {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.91 || rate > 0.99 {
		t.Errorf("CI coverage = %g, want ≈0.95", rate)
	}
}

func TestMeanVariance(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean of empty should error")
	}
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Errorf("Mean = %g, err %v", m, err)
	}
	v, err := Variance([]float64{1, 2, 3})
	if err != nil || v != 1 {
		t.Errorf("Variance = %g, err %v", v, err)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of 1 sample should error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	med, err := Median(xs)
	if err != nil || med != 3 {
		t.Errorf("median = %g", med)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Errorf("extreme quantiles %g, %g", q0, q1)
	}
	q25, _ := Quantile(xs, 0.25)
	if q25 != 2 {
		t.Errorf("q25 = %g, want 2", q25)
	}
	// Interpolation between order statistics.
	q, _ := Quantile([]float64{0, 10}, 0.3)
	if q != 3 {
		t.Errorf("interpolated quantile = %g, want 3", q)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range level should error")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input should error")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestBootstrapCI(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Normal() + 5
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate interval [%g, %g]", lo, hi)
	}
	if lo > 5 || hi < 5 {
		t.Errorf("interval [%g, %g] misses true mean 5", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("interval [%g, %g] implausibly wide", lo, hi)
	}
	if _, _, err := BootstrapCI(nil, 0.95, 100, r); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 5, r); err == nil {
		t.Error("too few resamples should error")
	}
}

func TestKSExponentialAcceptsExponential(t *testing.T) {
	r := rng.New(99)
	rate := 1e-6
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Exp(rate)
	}
	res, err := KSTestExponential(xs, rate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("true exponential rejected: D=%g p=%g", res.Statistic, res.PValue)
	}
}

func TestKSExponentialRejectsWrongRate(t *testing.T) {
	r := rng.New(100)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Exp(1.0)
	}
	res, err := KSTestExponential(xs, 2.0) // wrong rate by 2×
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("wrong-rate exponential accepted: D=%g p=%g", res.Statistic, res.PValue)
	}
}

func TestKSRejectsNonExponential(t *testing.T) {
	r := rng.New(101)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Abs(r.Normal()) // half-normal, not exponential
	}
	res, err := KSTestExponential(xs, 1/math.Sqrt(2/math.Pi))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Error("half-normal accepted as exponential")
	}
}

func TestKSUniform(t *testing.T) {
	r := rng.New(55)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	res, err := KSTestUniform01(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("uniform sample rejected: p=%g", res.PValue)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KSTest(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty KS input should error")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Mode() != 0 {
		t.Errorf("mode = %d", h.Mode())
	}
	// Density integrates to in-range fraction.
	var integral float64
	width := 2.0
	for i := range h.Counts {
		integral += h.Density(i) * width
	}
	if !xmath.EqualWithin(integral, 4.0/7, 1e-12, 0) {
		t.Errorf("density integral = %g, want %g", integral, 4.0/7)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram should panic")
		}
	}()
	NewHistogram(1, 1, 5)
}

func TestExponentialHistogramShape(t *testing.T) {
	// The mode of an exponential histogram must be the first bin.
	r := rng.New(2)
	h := NewHistogram(0, 5, 25)
	for i := 0; i < 200000; i++ {
		h.Add(r.Exp(1))
	}
	if h.Mode() != 0 {
		t.Errorf("exponential mode in bin %d, want 0", h.Mode())
	}
	// Density at 0 should approximate rate = 1.
	if d := h.Density(0); math.Abs(d-0.9) > 0.1 {
		t.Errorf("density near 0 = %g, want ≈0.9 (bin-averaged)", d)
	}
}
