package stats

import (
	"testing"

	"amdahlyd/internal/rng"
)

func TestChiSquareGOFUniformDie(t *testing.T) {
	// A fair-die sample that matches expectations closely must pass.
	observed := []int64{102, 98, 100, 97, 103, 100}
	expected := []float64{100, 100, 100, 100, 100, 100}
	res, err := ChiSquareGOF(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 5 {
		t.Errorf("df = %d, want 5", res.DF)
	}
	if res.Reject(0.05) {
		t.Errorf("near-perfect fit rejected: χ²=%g p=%g", res.Statistic, res.PValue)
	}
	// A grossly skewed sample must fail.
	skewed := []int64{300, 50, 50, 50, 75, 75}
	res, err = ChiSquareGOF(skewed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Errorf("skewed sample accepted: p=%g", res.PValue)
	}
}

func TestChiSquareGOFValidation(t *testing.T) {
	if _, err := ChiSquareGOF([]int64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareGOF([]int64{10}, []float64{10}, 0); err == nil {
		t.Error("single bin accepted")
	}
	if _, err := ChiSquareGOF([]int64{10, 10}, []float64{10, 10}, 1); err == nil {
		t.Error("zero degrees of freedom accepted")
	}
	if _, err := ChiSquareGOF([]int64{10, 10}, []float64{10, 2}, 0); err == nil {
		t.Error("sparse expected bin accepted")
	}
}

func TestChiSquarePoissonAcceptsPoisson(t *testing.T) {
	r := rng.New(8)
	mean := 6.5
	counts := make([]int64, 4000)
	for i := range counts {
		counts[i] = r.Poisson(mean)
	}
	res, err := ChiSquarePoisson(counts, mean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("true Poisson rejected: χ²=%g df=%d p=%g", res.Statistic, res.DF, res.PValue)
	}
}

func TestChiSquarePoissonRejectsWrongMean(t *testing.T) {
	r := rng.New(6)
	counts := make([]int64, 4000)
	for i := range counts {
		counts[i] = r.Poisson(6.5)
	}
	res, err := ChiSquarePoisson(counts, 9.0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Errorf("wrong mean accepted: p=%g", res.PValue)
	}
}

func TestChiSquarePoissonRejectsOverdispersed(t *testing.T) {
	// A 50/50 mixture of Poisson(2) and Poisson(12) has mean 7 but is
	// overdispersed; the test must catch it.
	r := rng.New(7)
	counts := make([]int64, 4000)
	for i := range counts {
		if r.Float64() < 0.5 {
			counts[i] = r.Poisson(2)
		} else {
			counts[i] = r.Poisson(12)
		}
	}
	res, err := ChiSquarePoisson(counts, 7.0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Errorf("overdispersed mixture accepted: p=%g", res.PValue)
	}
}

func TestChiSquarePoissonValidation(t *testing.T) {
	if _, err := ChiSquarePoisson(nil, 5); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := ChiSquarePoisson([]int64{1, 2}, 0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := ChiSquarePoisson([]int64{-1}, 5); err == nil {
		t.Error("negative count accepted")
	}
}

func TestMergeSparseBins(t *testing.T) {
	obs := []int64{1, 2, 50, 3, 1}
	exp := []float64{1, 2, 50, 3, 1}
	o, e := mergeSparseBins(obs, exp, 5)
	var sumO int64
	var sumE float64
	for i := range o {
		sumO += o[i]
		sumE += e[i]
		if i < len(o)-1 && e[i] < 5 {
			t.Errorf("bin %d still sparse: %g", i, e[i])
		}
	}
	if sumO != 57 || sumE != 57 {
		t.Errorf("mass not conserved: %d, %g", sumO, sumE)
	}
}
