// Package stats provides the statistics substrate for the Monte-Carlo
// experiments: online moment accumulation, confidence intervals, quantiles,
// histograms, bootstrap resampling and Kolmogorov–Smirnov goodness-of-fit
// tests. The simulation study in the paper reports means over 500 runs;
// this package supplies those means together with uncertainty estimates so
// EXPERIMENTS.md can state how tight the reproduction is.
package stats

import (
	"errors"
	"math"
	"sort"

	"amdahlyd/internal/rng"
	"amdahlyd/internal/xmath"
)

// ErrEmpty is returned when a statistic is requested from no data.
var ErrEmpty = errors.New("stats: empty sample")

// Welford accumulates count, mean and variance online in a numerically
// stable way (Welford's algorithm). The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge combines another accumulator into this one (Chan et al. parallel
// formula), enabling per-worker accumulation in the parallel runner.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or NaN for fewer than
// two observations: a single run carries no spread information, and a
// zero here would let single-run campaigns report zero-width confidence
// intervals as if the estimate were exact. report.Fmt renders NaN as "-".
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation (NaN for n < 2).
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean (NaN for n < 2).
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// CI returns the half-width of the two-sided confidence interval for the
// mean at the given confidence level, using the Student-t distribution.
// With fewer than two observations no interval exists and the result is
// NaN (rendered "-" by report.Fmt), matching Variance/StdErr.
func (w *Welford) CI(conf float64) float64 {
	if w.n < 2 {
		return math.NaN()
	}
	tq := xmath.StudentTQuantile(conf, int(w.n-1))
	return tq * w.StdErr()
}

// Summary is a value snapshot of an accumulator, convenient for reports.
type Summary struct {
	N      int64
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	Max    float64
	CI95   float64
}

// Summarize captures the accumulator state.
func (w *Welford) Summarize() Summary {
	return Summary{
		N:      w.n,
		Mean:   w.mean,
		StdDev: w.StdDev(),
		StdErr: w.StdErr(),
		Min:    w.min,
		Max:    w.max,
		CI95:   w.CI(0.95),
	}
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return xmath.SumSlice(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var s xmath.Sum
	for _, x := range xs {
		d := x - m
		s.Add(d * d)
	}
	return s.Value() / float64(len(xs)-1), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The
// input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile level outside [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level, using resamples drawn from r.
func BootstrapCI(xs []float64, conf float64, resamples int, r *rng.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if resamples < 10 {
		return 0, 0, errors.New("stats: need at least 10 bootstrap resamples")
	}
	means := make([]float64, resamples)
	for b := range means {
		var s xmath.Sum
		for i := 0; i < len(xs); i++ {
			s.Add(xs[r.Intn(len(xs))])
		}
		means[b] = s.Value() / float64(len(xs))
	}
	alpha := (1 - conf) / 2
	lo, _ = Quantile(means, alpha)
	hi, _ = Quantile(means, 1-alpha)
	return lo, hi, nil
}
