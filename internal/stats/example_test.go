package stats_test

import (
	"fmt"

	"amdahlyd/internal/stats"
)

// Welford accumulation with a parallel merge: the way the Monte-Carlo
// runner aggregates per-worker results.
func ExampleWelford_Merge() {
	var a, b stats.Welford
	for _, x := range []float64{2, 4, 4, 4} {
		a.Add(x)
	}
	for _, x := range []float64{5, 5, 7, 9} {
		b.Add(x)
	}
	a.Merge(b)
	fmt.Printf("n = %d, mean = %g, variance = %.4f\n", a.N(), a.Mean(), a.Variance())
	// Output:
	// n = 8, mean = 5, variance = 4.5714
}

func ExampleQuantile() {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	med, _ := stats.Median(xs)
	q90, _ := stats.Quantile(xs, 0.9)
	fmt.Printf("median = %g, q90 = %g\n", med, q90)
	// Output:
	// median = 5, q90 = 8.2
}
