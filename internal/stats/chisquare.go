package stats

import (
	"errors"
	"math"

	"amdahlyd/internal/xmath"
)

// ChiSquareResult reports a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	// Statistic is Σ (observed − expected)² / expected.
	Statistic float64
	// DF is the degrees of freedom used for the p-value.
	DF int
	// PValue is P(χ²_DF >= Statistic).
	PValue float64
}

// Reject reports whether the null hypothesis is rejected at level alpha.
func (c ChiSquareResult) Reject(alpha float64) bool { return c.PValue < alpha }

// ChiSquareGOF runs a chi-square goodness-of-fit test of observed counts
// against expected counts. ddof is the number of model parameters
// estimated from the data (subtracted from the degrees of freedom in
// addition to the usual 1). Bins with expected counts below 5 violate the
// test's assumptions and are rejected with an error; merge them first.
func ChiSquareGOF(observed []int64, expected []float64, ddof int) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, errors.New("stats: observed/expected length mismatch")
	}
	if len(observed) < 2 {
		return ChiSquareResult{}, errors.New("stats: need at least 2 bins")
	}
	df := len(observed) - 1 - ddof
	if df < 1 {
		return ChiSquareResult{}, errors.New("stats: non-positive degrees of freedom")
	}
	var stat float64
	for i := range observed {
		if !(expected[i] >= 5) {
			return ChiSquareResult{}, errors.New(
				"stats: expected count below 5; merge sparse bins before testing")
		}
		d := float64(observed[i]) - expected[i]
		stat += d * d / expected[i]
	}
	p := 1 - xmath.ChiSquareCDF(stat, df)
	return ChiSquareResult{Statistic: stat, DF: df, PValue: p}, nil
}

// ChiSquarePoisson tests whether integer counts follow a Poisson
// distribution with the given mean: counts are binned at their observed
// values (tail-merged to keep expected counts >= 5) and compared with the
// Poisson pmf. It is the oracle used to validate the trace generator's
// per-window event counts.
func ChiSquarePoisson(counts []int64, mean float64) (ChiSquareResult, error) {
	if len(counts) == 0 {
		return ChiSquareResult{}, ErrEmpty
	}
	if !(mean > 0) {
		return ChiSquareResult{}, errors.New("stats: Poisson mean must be positive")
	}
	maxK := int64(0)
	for _, k := range counts {
		if k < 0 {
			return ChiSquareResult{}, errors.New("stats: negative count")
		}
		if k > maxK {
			maxK = k
		}
	}
	n := float64(len(counts))

	// pmf(k) computed iteratively: p(0) = e^{−μ}, p(k) = p(k−1)·μ/k.
	observed := make([]int64, maxK+1)
	for _, k := range counts {
		observed[k]++
	}
	expected := make([]float64, maxK+1)
	p := math.Exp(-mean)
	cumulative := 0.0
	for k := int64(0); k <= maxK; k++ {
		if k > 0 {
			p *= mean / float64(k)
		}
		expected[k] = n * p
		cumulative += p
	}
	// Put the entire upper tail mass into the last bin so expectations
	// sum to n exactly.
	expected[maxK] += n * (1 - cumulative)

	obs, exp := mergeSparseBins(observed, expected, 5)
	if len(obs) < 2 {
		return ChiSquareResult{}, errors.New("stats: too few distinct counts for a χ² test")
	}
	return ChiSquareGOF(obs, exp, 0)
}

// mergeSparseBins merges adjacent bins (from both ends toward the mode)
// until every expected count reaches the threshold.
func mergeSparseBins(observed []int64, expected []float64, threshold float64) ([]int64, []float64) {
	type bin struct {
		o int64
		e float64
	}
	var bins []bin
	// Left-to-right accumulation.
	var acc bin
	for i := range observed {
		acc.o += observed[i]
		acc.e += expected[i]
		if acc.e >= threshold {
			bins = append(bins, acc)
			acc = bin{}
		}
	}
	// Fold any remainder into the last bin.
	if acc.e > 0 || acc.o > 0 {
		if len(bins) == 0 {
			bins = append(bins, acc)
		} else {
			bins[len(bins)-1].o += acc.o
			bins[len(bins)-1].e += acc.e
		}
	}
	obs := make([]int64, len(bins))
	exp := make([]float64, len(bins))
	for i, b := range bins {
		obs[i] = b.o
		exp[i] = b.e
	}
	return obs, exp
}
