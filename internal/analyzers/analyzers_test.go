package analyzers

import (
	"testing"

	"amdahlyd/internal/analyzers/analysistest"
)

func TestFrozenLoop(t *testing.T) {
	analysistest.Run(t, "testdata", FrozenLoop, "frozenloop")
}

func TestNaNGuard(t *testing.T) {
	analysistest.Run(t, "testdata", NaNGuard, "nanguard")
}

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, "testdata", AtomicWrite, "atomicwrite")
}

func TestRawRand(t *testing.T) {
	analysistest.Run(t, "testdata", RawRand, "rawrand")
}

func TestKeyFmt(t *testing.T) {
	analysistest.Run(t, "testdata", KeyFmt, "keyfmt")
}

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", MapIter, "mapiter")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", WallTime, "walltime")
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, "testdata", SeedFlow, "seedflow")
}

func TestErrClass(t *testing.T) {
	analysistest.Run(t, "testdata", ErrClass, "errclass")
}

func TestAllIsStableAndNamed(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("All() returned %d analyzers, want 9", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
