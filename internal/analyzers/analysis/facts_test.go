package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// markFact marks exported functions whose name starts with "Seed".
type markFact struct{ Tag string }

func (*markFact) AFact() {}

// checkSrc type-checks src as one package, resolving imports against
// deps (source-checked packages from the same test).
func checkSrc(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*Package) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	imp := importerFunc(func(p string) (*types.Package, error) {
		if d, ok := deps[p]; ok {
			return d.Types, nil
		}
		t.Fatalf("unexpected import %q", p)
		return nil, nil
	})
	info := newTypesInfo()
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// factAnalyzer exports a markFact for every function whose name begins
// with Seed, and reports every call to a function carrying the fact.
var factAnalyzer = &Analyzer{
	Name:      "marktest",
	Doc:       "test analyzer: facts flow across package boundaries",
	FactTypes: []Fact{(*markFact)(nil)},
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !strings.HasPrefix(fd.Name.Name, "Seed") {
					continue
				}
				obj := pass.TypesInfo.Defs[fd.Name]
				pass.ExportObjectFact(obj, &markFact{Tag: "from " + pass.Pkg.Path()})
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var obj types.Object
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					obj = pass.TypesInfo.Uses[fun]
				case *ast.SelectorExpr:
					obj = pass.TypesInfo.Uses[fun.Sel]
				}
				fn, ok := obj.(*types.Func)
				if !ok {
					return true
				}
				var mark markFact
				if pass.ImportObjectFact(fn, &mark) {
					pass.Reportf(call.Pos(), "call to marked function %s (%s)", fn.Name(), mark.Tag)
				}
				return true
			})
		}
		return nil
	},
}

const libSrc = `package lib

func SeedStream(seed uint64) uint64 { return seed * 3 }
`

const appSrc = `package app

import "lib"

func Use() uint64 { return lib.SeedStream(7) }
`

// TestObjectFactsFlowAcrossPackages checks the in-process path: one
// RunWithFacts over [lib, app] in dependency order, the fact exported
// while analyzing lib is visible while analyzing app.
func TestObjectFactsFlowAcrossPackages(t *testing.T) {
	fset := token.NewFileSet()
	lib := checkSrc(t, fset, "lib", libSrc, nil)
	lib.DepOnly = true
	app := checkSrc(t, fset, "app", appSrc, map[string]*Package{"lib": lib})

	diags, facts, err := RunWithFacts([]*Package{lib, app}, []*Analyzer{factAnalyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "SeedStream (from lib)") {
		t.Fatalf("want one cross-package diagnostic naming SeedStream, got %v", diags)
	}
	if facts.Len() == 0 {
		t.Fatal("run exported no facts")
	}
}

// TestObjectFactsSurviveEncoding checks the unitchecker-shaped path: lib
// is analyzed in one run, its facts round-trip through Encode/Decode
// (the .vetx representation), and a separate run over app alone imports
// them.
func TestObjectFactsSurviveEncoding(t *testing.T) {
	fset := token.NewFileSet()
	lib := checkSrc(t, fset, "lib", libSrc, nil)
	app := checkSrc(t, fset, "app", appSrc, map[string]*Package{"lib": lib})

	_, libFacts, err := RunWithFacts([]*Package{lib}, []*Analyzer{factAnalyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := libFacts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := libFacts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("FactSet.Encode is not deterministic")
	}
	decoded, err := DecodeFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != libFacts.Len() {
		t.Fatalf("decode lost facts: %d != %d", decoded.Len(), libFacts.Len())
	}

	diags, _, err := RunWithFacts([]*Package{app}, []*Analyzer{factAnalyzer}, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "SeedStream (from lib)") {
		t.Fatalf("want one diagnostic from imported facts, got %v", diags)
	}
}

// TestLegacyEmptyVetxDecodes pins the compatibility contract with the
// zero-length stamp files written before the facts layer existed.
func TestLegacyEmptyVetxDecodes(t *testing.T) {
	s, err := DecodeFacts(nil)
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty vetx: got %v, %v", s, err)
	}
	if _, err := DecodeFacts([]byte("garbage")); err == nil {
		t.Fatal("garbage vetx decoded without error")
	}
}
