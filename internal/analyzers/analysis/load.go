package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// DepOnly marks a package analyzed only so its facts flow to the
	// packages that were actually requested; its diagnostics are
	// discarded by the driver.
	DepOnly bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the given
// patterns and decodes the stream. -export makes the toolchain compile
// every package (through the build cache) and report the path of its
// export data, which is what the type-checker imports against — the
// same modular scheme `go vet` uses, with no dependency on x/tools.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the import-path → export-data resolver shared by
// every type-check in one load.
func exportLookup(pkgs []*listPkg) map[string]string {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

// newImporter returns a shared gc-export-data importer over the lookup
// map. It caches, so the standard library is read at most once per load.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypeCheckFiles parses the named files (absolute paths) and
// type-checks them as one package against the given importer. It is the
// entry point for external drivers such as amdahl-lint's `go vet
// -vettool` mode, where the build system supplies the file list and the
// export-data map.
func TypeCheckFiles(fset *token.FileSet, importPath string, files []string, imp types.Importer) (*Package, error) {
	return typeCheck(fset, importPath, "", files, imp)
}

// typeCheck parses files and type-checks them as one package.
func typeCheck(fset *token.FileSet, importPath, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Load parses and type-checks every non-test package matching the
// patterns, resolved relative to dir (any directory inside the module).
// Test files are out of scope by design: the invariants amdahl-lint
// enforces are production-code routing rules, and tests legitimately
// write scratch files and poke hot paths directly.
//
// The returned slice preserves `go list -deps` order — dependencies
// before dependents — which is the order the facts layer requires:
// RunWithFacts analyzes packages front to back, so by the time a package
// is inspected, every fact its dependencies export is already in the
// store. Non-standard dependencies outside the requested patterns are
// loaded too, marked DepOnly: they contribute facts but their
// diagnostics are discarded.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := exportLookup(listed)
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = p.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks one directory of Go files as a single
// package outside the module's package graph — the fixture loader for
// the analysistest harness (testdata/ is invisible to `go list ./...`).
// Imports, including module-internal ones like amdahlyd/internal/core,
// resolve through export data listed from moduleRoot.
func LoadDir(moduleRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(fileNames)

	// A cheap parse pass discovers the imports whose export data the
	// type-check will need.
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	var imports []string
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)

	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(moduleRoot, imports)
		if err != nil {
			return nil, err
		}
		exports = exportLookup(listed)
	}
	fset = token.NewFileSet()
	imp := newImporter(fset, exports)
	return typeCheck(fset, "fixture/"+filepath.Base(dir), dir, fileNames, imp)
}
