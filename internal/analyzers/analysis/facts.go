package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"sort"
)

// A Fact is a serializable datum an analyzer attaches to a package-level
// object (or to a package) in one compilation unit and consumes in
// another — the mechanism that makes whole-program invariants tractable
// without whole-program analysis, exactly as in x/tools go/analysis.
// Facts are gob-encoded at export time in every mode, so a fact type
// that cannot round-trip fails fast in source mode too, not only under
// `go vet -vettool`.
//
// Fact types must be pointers to structs with exported fields, must
// implement AFact, and must be declared in the owning Analyzer's
// FactTypes list.
type Fact interface{ AFact() }

// factKey names one fact: the exporting analyzer, the package, the
// object within it ("" for package facts — see objectKey for the object
// path syntax), and the concrete fact type. Keying by (obj, type) rather
// than by types.Object identity is what lets facts survive the
// source-mode/export-data split: the same function seen from its own
// source and through a dependent's gc export data yields two distinct
// types.Func values but one key.
type factKey struct {
	Analyzer string
	Pkg      string
	Object   string
	Type     string
}

// factEntry is the serialized form of one fact, ordered for
// deterministic vetx bytes.
type factEntry struct {
	Key  factKey
	Data []byte
}

// A FactSet holds encoded facts, keyed per analyzer. It is the unit of
// exchange between compilation units: the source-mode driver threads one
// FactSet through packages in dependency order, and the vettool driver
// decodes the dependencies' .vetx files into one and encodes the
// cumulative result into this unit's .vetx output.
type FactSet struct {
	m map[factKey][]byte
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{m: make(map[factKey][]byte)} }

// Merge folds other's facts into s (other wins on duplicate keys; facts
// are content-addressed by object, so duplicates are re-exports of the
// same datum).
func (s *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	//lint:allow mapiter map-to-map copy keyed by factKey is order-independent; Encode sorts before serializing
	for k, v := range other.m {
		s.m[k] = v
	}
}

// Len reports the number of facts in the set.
func (s *FactSet) Len() int { return len(s.m) }

// vetxMagic versions the .vetx encoding; go vet only requires the file
// to exist, so the format is entirely ours.
const vetxMagic = "amdahl-lint facts v1\n"

// Encode serializes the set. The entry list is sorted so identical fact
// sets always produce identical bytes (vetx files feed build-cache
// hashing; nondeterministic bytes would cause spurious re-analysis).
func (s *FactSet) Encode() ([]byte, error) {
	entries := make([]factEntry, 0, len(s.m))
	for k, v := range s.m {
		entries = append(entries, factEntry{Key: k, Data: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	buf.WriteString(vetxMagic)
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts reverses Encode. Empty input decodes to an empty set, so
// the zero-length stamp files written by pre-facts builds of amdahl-lint
// remain readable.
func DecodeFacts(data []byte) (*FactSet, error) {
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	rest, ok := bytes.CutPrefix(data, []byte(vetxMagic))
	if !ok {
		return nil, fmt.Errorf("analysis: not an amdahl-lint facts file")
	}
	var entries []factEntry
	if err := gob.NewDecoder(bytes.NewReader(rest)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %v", err)
	}
	for _, e := range entries {
		s.m[e.Key] = e.Data
	}
	return s, nil
}

// objectKey renders the stable path of a package-level object. Facts may
// attach to package-level functions, methods, vars, types and consts;
// those cover every invariant this suite tracks, and — unlike full
// objectpath encoding — the key can be recomputed from an export-data
// view of the object without a scope walk.
func objectKey(obj types.Object) (string, error) {
	if obj == nil || obj.Pkg() == nil {
		return "", fmt.Errorf("analysis: facts require a package-level object")
	}
	if f, ok := obj.(*types.Func); ok {
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", fmt.Errorf("analysis: no fact key for method on %s", t)
			}
			return named.Obj().Name() + "." + f.Name(), nil
		}
		return f.Name(), nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", fmt.Errorf("analysis: %s is not package-level; facts attach to package-level objects only", obj.Name())
	}
	return obj.Name(), nil
}

func factTypeName(fact Fact) string { return fmt.Sprintf("%T", fact) }

func (p *Pass) factDeclared(fact Fact) bool {
	name := factTypeName(fact)
	for _, ft := range p.Analyzer.FactTypes {
		if factTypeName(ft) == name {
			return true
		}
	}
	return false
}

func (p *Pass) exportFact(pkgPath, objPath string, fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("analysis: %s exports facts but the driver provided no fact store", p.Analyzer.Name))
	}
	if !p.factDeclared(fact) {
		panic(fmt.Sprintf("analysis: %s exports undeclared fact type %s (add it to FactTypes)", p.Analyzer.Name, factTypeName(fact)))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: fact %s does not gob-encode: %v", p.Analyzer.Name, factTypeName(fact), err))
	}
	p.facts.m[factKey{
		Analyzer: p.Analyzer.Name,
		Pkg:      pkgPath,
		Object:   objPath,
		Type:     factTypeName(fact),
	}] = buf.Bytes()
}

func (p *Pass) importFact(pkgPath, objPath string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	if !p.factDeclared(fact) {
		panic(fmt.Sprintf("analysis: %s imports undeclared fact type %s (add it to FactTypes)", p.Analyzer.Name, factTypeName(fact)))
	}
	data, ok := p.facts.m[factKey{
		Analyzer: p.Analyzer.Name,
		Pkg:      pkgPath,
		Object:   objPath,
		Type:     factTypeName(fact),
	}]
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: decoding fact %s: %v", p.Analyzer.Name, factTypeName(fact), err))
	}
	return true
}

// ExportObjectFact attaches fact to a package-level object of the
// package under analysis. The fact becomes visible, via
// ImportObjectFact, to every later pass of the same analyzer over a
// package that can see obj — in source mode through the shared run
// store, in vettool mode through the .vetx files.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	key, err := objectKey(obj)
	if err != nil {
		panic(err)
	}
	p.exportFact(obj.Pkg().Path(), key, fact)
}

// ImportObjectFact decodes the fact of the given concrete type attached
// to obj into fact, reporting whether one was found. obj may come from
// source type-checking or from export data; both resolve to the same
// fact.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, err := objectKey(obj)
	if err != nil {
		return false
	}
	return p.importFact(obj.Pkg().Path(), key, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.exportFact(p.Pkg.Path(), "", fact)
}

// ImportPackageFact decodes the package fact of the given concrete type
// attached to pkg, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	return p.importFact(pkg.Path(), "", fact)
}

// An ObjectFactRef names one exported object fact without decoding it —
// enough to render "the classifiers live in service.RetryableStatus"
// style diagnostics.
type ObjectFactRef struct {
	Pkg    string
	Object string
}

// AllObjectFacts lists, sorted, every object fact of the given concrete
// type currently visible to this analyzer (facts of this package and of
// every dependency analyzed before it).
func (p *Pass) AllObjectFacts(fact Fact) []ObjectFactRef {
	if p.facts == nil {
		return nil
	}
	name := factTypeName(fact)
	var out []ObjectFactRef
	for k := range p.facts.m {
		if k.Analyzer == p.Analyzer.Name && k.Type == name && k.Object != "" {
			out = append(out, ObjectFactRef{Pkg: k.Pkg, Object: k.Object})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Object < out[j].Object
	})
	return out
}
