package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// DirectivePrefix is the comment prefix of a suppression directive.
const DirectivePrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
	bad      string // non-empty when the directive itself is malformed
}

// parseDirectives scans the comments of every file in the package.
func parseDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				d := &directive{pos: pkg.Fset.Position(c.Pos())}
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other //lint:allowX token, not ours
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "missing reason: write //lint:allow " + fields[0] + " <why this exception is sound>"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether d covers a diagnostic at pos: same file,
// and either the same line (end-of-line directive) or the line directly
// above (directive on its own line).
func (d *directive) suppresses(a string, pos token.Position) bool {
	return d.analyzer == a &&
		d.pos.Filename == pos.Filename &&
		(d.pos.Line == pos.Line || d.pos.Line == pos.Line-1)
}

// Run executes every analyzer over every package, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by position.
// Malformed directives and directives that suppressed nothing are
// reported as diagnostics from the pseudo-analyzer "lintdirective", so a
// stale exception cannot quietly outlive the code it excused.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(pkgs, analyzers, nil)
	return diags, err
}

// RunWithFacts is Run with the facts store exposed: pkgs must be in
// dependency order (as Load returns them), imported pre-seeds the store
// with facts from compilation units analyzed elsewhere (the vettool
// driver's decoded .vetx files; nil is an empty store), and the returned
// FactSet holds every fact known after the run — the imported ones plus
// everything the analyzers exported — ready to encode into this unit's
// .vetx output. Packages marked DepOnly are analyzed for their facts
// only; their diagnostics and directives are discarded.
func RunWithFacts(pkgs []*Package, analyzers []*Analyzer, imported *FactSet) ([]Diagnostic, *FactSet, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := NewFactSet()
	facts.Merge(imported)
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
			}
			pass.report = func(d Diagnostic) { raw = append(raw, d) }
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		if pkg.DepOnly {
			continue
		}
		dirs := parseDirectives(pkg)
		for _, d := range raw {
			suppressed := false
			for _, dir := range dirs {
				if dir.bad == "" && dir.suppresses(d.Analyzer, d.Position) {
					dir.used = true
					suppressed = true
				}
			}
			if !suppressed {
				out = append(out, d)
			}
		}
		for _, dir := range dirs {
			switch {
			case dir.bad != "":
				out = append(out, Diagnostic{
					Analyzer: "lintdirective",
					Position: dir.pos,
					Message:  dir.bad,
				})
			case !known[dir.analyzer]:
				// An allow for an analyzer that did not run this pass is
				// not an error — partial runs (amdahl-lint -run=...) must
				// not invalidate directives aimed at the full suite.
			case !dir.used:
				out = append(out, Diagnostic{
					Analyzer: "lintdirective",
					Position: dir.pos,
					Message: fmt.Sprintf(
						"//lint:allow %s suppresses nothing on this or the next line; delete the stale directive",
						dir.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, facts, nil
}
