package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// panicCheck flags every panic call: a minimal analyzer that exercises
// the driver and the //lint:allow machinery without depending on the
// real rule set.
var panicCheck = &Analyzer{
	Name: "paniccheck",
	Doc:  "flags panic calls (test analyzer)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						pass.Reportf(call.Pos(), "panic called")
					}
				}
				return true
			})
		}
		return nil
	},
}

const directiveSrc = `package p

func suppressedAbove() {
	//lint:allow paniccheck justified: fixture exception
	panic("a")
}

func unsuppressed() {
	panic("b")
}

func malformedDirective() {
	//lint:allow paniccheck
	panic("c")
}

func staleDirective() {
	//lint:allow paniccheck nothing on the next line triggers
	_ = 1
}

func suppressedSameLine() {
	panic("e") //lint:allow paniccheck justified: end-of-line form
}

func otherAnalyzer() {
	//lint:allow frozenloop aimed at an analyzer not running in this pass
	_ = 2
}
`

func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newTypesInfo()
	conf := &types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		ImportPath: "p",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	}
}

func TestDirectiveMachinery(t *testing.T) {
	pkg := loadSrc(t, directiveSrc)
	diags, err := Run([]*Package{pkg}, []*Analyzer{panicCheck})
	if err != nil {
		t.Fatal(err)
	}
	type wantDiag struct {
		analyzer string
		contains string
	}
	wants := []wantDiag{
		{"paniccheck", "panic called"},          // unsuppressed()
		{"lintdirective", "missing reason"},     // malformedDirective's bare allow
		{"paniccheck", "panic called"},          // malformedDirective's panic (bad allow suppresses nothing)
		{"lintdirective", "suppresses nothing"}, // staleDirective
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wants))
	}
	for i, w := range wants {
		if diags[i].Analyzer != w.analyzer || !strings.Contains(diags[i].Message, w.contains) {
			t.Errorf("diagnostic %d = %s, want analyzer %q containing %q",
				i, diags[i], w.analyzer, w.contains)
		}
	}
}

func TestRunReportsNothingOnCleanCode(t *testing.T) {
	pkg := loadSrc(t, "package p\n\nfunc ok() int { return 1 }\n")
	diags, err := Run([]*Package{pkg}, []*Analyzer{panicCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean package produced diagnostics: %v", diags)
	}
}
