// Package analysis is the minimal static-analysis framework behind
// amdahl-lint. It mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics — but is built entirely on the
// standard library (go/ast, go/types, go/importer), because this module
// deliberately carries no third-party dependencies.
//
// The deliberate API mirroring keeps a future migration to x/tools
// mechanical: an Analyzer here converts to an x/tools Analyzer by
// wrapping its Run, and the fixture harness in the sibling analysistest
// package speaks the same `// want "regexp"` dialect.
//
// Suppression: a diagnostic is suppressed by the directive
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. The reason is mandatory — an allow without a
// justification, and an allow that suppresses nothing, are themselves
// diagnostics — so every exception to a repo invariant is written down
// next to the code that needs it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named invariant check. Run inspects a single
// package through the Pass and reports findings via Pass.Report; a
// returned error means the analyzer itself failed (not that the code is
// dirty) and aborts the whole run.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a single lowercase word.
	Name string
	// Doc is the one-paragraph description shown by `amdahl-lint help`.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
	// FactTypes declares, by prototype value, every Fact type this
	// analyzer exports or imports. An analyzer with a nil FactTypes is
	// purely local; one with facts participates in cross-package
	// propagation (dependency order in source mode, .vetx files under
	// `go vet -vettool`).
	FactTypes []Fact
}

// A Pass is one analyzer's view of one type-checked package. Beyond the
// syntax and types of the package itself, a Pass exposes the analyzer's
// facts: Import* reads facts exported by earlier passes over this
// package's dependencies, Export* publishes facts for passes over its
// dependents.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactSet
}

// Report records a finding. The Analyzer field is filled in by the
// driver; Run functions only need Pos and Message.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if !d.Position.IsValid() && d.Pos.IsValid() {
		d.Position = p.Fset.Position(d.Pos)
	}
	p.report(d)
}

// Reportf is Report with fmt.Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the diagnostic in the compiler's file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}
