package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"amdahlyd/internal/analyzers/analysis"
)

// MapIter enforces the byte-stable-output rule behind the repo's
// headline guarantee: Go map iteration order is deliberately randomized,
// so ranging over a map while producing anything order-sensitive —
// appending to a slice, building a string, accumulating floats (addition
// is not associative), writing rows/CSV/JSON, sending on a channel,
// spawning goroutines, or merging into an outer container — yields
// output that differs run to run. The PR-9 router stats merge and
// health-probe snapshot were live instances.
//
// The blessed idiom collects the keys, sorts them, and iterates the
// sorted slice; a range whose only order-sensitive effect is appending
// to a slice that is sorted later in the same function (the key-collect
// step of that idiom) is exempt. Order-independent traversals — counting,
// integer accumulation, building a set, delete — are untouched.
var MapIter = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flags ranging over a map while appending, writing output, building strings, accumulating " +
		"floats, sending, spawning goroutines or merging into outer containers without an " +
		"intervening sort (nondeterministic-output bug class)",
	Run: runMapIter,
}

// mapSink is one order-sensitive operation found in a map-range body.
type mapSink struct {
	pos      token.Pos
	describe string
	// appendTo is non-nil for append sinks: the slice variable, used by
	// the sorted-later exemption.
	appendTo types.Object
}

func runMapIter(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	sinks := collectSinks(pass, rs)
	if len(sinks) == 0 {
		return
	}
	// The key-collect idiom: every sink is an append, and every append
	// target is sorted after the loop, before anything could consume the
	// map-ordered contents.
	allSortedAppends := true
	for _, s := range sinks {
		if s.appendTo == nil || !sortedAfter(pass, fd, rs, s.appendTo) {
			allSortedAppends = false
			break
		}
	}
	if allSortedAppends {
		return
	}
	s := sinks[0]
	pass.Reportf(rs.For,
		"ranging over map %s while %s; map order is randomized — collect the keys, sort, and iterate the sorted slice",
		exprString(rs.X), s.describe)
}

// collectSinks walks the loop body for order-sensitive operations.
func collectSinks(pass *analysis.Pass, rs *ast.RangeStmt) []mapSink {
	var sinks []mapSink
	add := func(pos token.Pos, desc string, appendTo types.Object) {
		sinks = append(sinks, mapSink{pos: pos, describe: desc, appendTo: appendTo})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			add(s.Arrow, "sending on a channel", nil)
		case *ast.GoStmt:
			add(s.Go, "spawning goroutines in map order", nil)
		case *ast.AssignStmt:
			classifyAssign(pass, rs, s, add)
		case *ast.CallExpr:
			if desc := writeSinkDesc(pass, s); desc != "" {
				add(s.Pos(), desc, nil)
			}
		}
		return true
	})
	return sinks
}

// classifyAssign detects appends, string building, float accumulation
// and outer-container merges.
func classifyAssign(pass *analysis.Pass, rs *ast.RangeStmt, s *ast.AssignStmt, add func(token.Pos, string, types.Object)) {
	for i, lhs := range s.Lhs {
		// Merging into a container declared outside the loop:
		// out[name] = ..., out.Field[name] = ... .
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if obj := rootObject(pass, idx.X); obj != nil && declaredOutside(obj, rs) {
				add(s.Pos(), fmt.Sprintf("merging into %s in map order", exprString(idx.X)), nil)
			}
			continue
		}
		obj := rootObject(pass, lhs)
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		t := obj.Type()
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isString(t) {
				add(s.Pos(), fmt.Sprintf("building string %s in map order", obj.Name()), nil)
			} else if isFloat(t) {
				add(s.Pos(), fmt.Sprintf("accumulating float %s in map order (float addition is not associative)", obj.Name()), nil)
			}
		case token.ASSIGN:
			if i < len(s.Rhs) {
				if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					add(s.Pos(), fmt.Sprintf("appending to %s", obj.Name()), obj)
					continue
				}
				if selfReferential(pass, s.Rhs[i], obj) {
					if isString(t) {
						add(s.Pos(), fmt.Sprintf("building string %s in map order", obj.Name()), nil)
					} else if isFloat(t) {
						add(s.Pos(), fmt.Sprintf("accumulating float %s in map order (float addition is not associative)", obj.Name()), nil)
					}
				}
			}
		}
	}
}

// writeSinkDesc reports calls that emit ordered output: fmt printing,
// Write/Encode-family methods (io.Writer, bufio, csv, json encoders).
func writeSinkDesc(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "writing formatted output in map order"
		}
		return "" // Sprintf and friends are pure
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
		return "writing rows in map order"
	case "Encode", "EncodeToken":
		return "encoding values in map order"
	case "Print", "Printf", "Println":
		return "printing in map order"
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort call after the
// range statement within the enclosing function — the second half of the
// collect-sort-iterate idiom.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rootObject resolves the base identifier of x (x, x.f, x[i], *x, …) to
// its object, or nil when the base is not a plain identifier.
func rootObject(pass *analysis.Pass, x ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(e)
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// selfReferential reports whether rhs mentions obj (s = s + x shapes).
func selfReferential(pass *analysis.Pass, rhs ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders a short display form of simple expressions for
// diagnostics.
func exprString(x ast.Expr) string {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	}
	return "expression"
}
