package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"

	"amdahlyd/internal/analyzers/analysis"
)

const atomicioPath = "amdahlyd/internal/atomicio"

// AtomicWrite enforces the PR-6 durability rule: every artifact and
// report write goes through internal/atomicio's write-temp-fsync-rename
// scheme, so a crash at any instant leaves either the previous file or
// the complete new one. Direct os.Create / os.WriteFile calls, write-
// capable os.OpenFile modes and bufio writers wrapped directly around an
// *os.File bypass that guarantee and are flagged outside internal/
// atomicio itself. Genuinely non-atomic sinks (the campaign's append-
// only journal, whose records are individually checksummed) carry a
// //lint:allow atomicwrite annotation with the reason.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "flags direct file writes (os.Create, os.WriteFile, writable os.OpenFile, " +
		"bufio over *os.File) outside internal/atomicio; artifacts go through atomicio.WriteFile",
	Run: runAtomicWrite,
}

func runAtomicWrite(pass *analysis.Pass) error {
	if pass.Pkg.Path() == atomicioPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "os":
				switch fn.Name() {
				case "Create", "WriteFile":
					pass.Reportf(call.Pos(),
						"os.%s writes the target file in place; route the artifact through internal/atomicio "+
							"(WriteFile/WriteFileBytes) so a crash cannot leave it truncated (PR-6 durability rule)",
						fn.Name())
				case "OpenFile":
					if len(call.Args) == 3 && opensForWrite(pass, call.Args[1]) {
						pass.Reportf(call.Pos(),
							"os.OpenFile with a writable mode bypasses internal/atomicio's temp-fsync-rename scheme; "+
								"route the write through atomicio or annotate the exception (PR-6 durability rule)")
					}
				}
			case "bufio":
				if (fn.Name() == "NewWriter" || fn.Name() == "NewWriterSize") &&
					len(call.Args) > 0 && isOSFile(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"bufio.%s directly over an *os.File buffers an in-place write; route the artifact "+
							"through internal/atomicio, which buffers and fsyncs the temp file for you (PR-6 durability rule)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// opensForWrite reports whether the os.OpenFile flag argument statically
// includes O_WRONLY or O_RDWR. A non-constant flag expression is treated
// as write-capable: the analyzer cannot prove it read-only, and every
// legitimate dynamic open deserves an explicit annotation anyway.
func opensForWrite(pass *analysis.Pass, flagArg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[flagArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return true
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	// O_RDONLY is 0 and O_WRONLY|O_RDWR occupy the low two bits on every
	// platform Go supports.
	return v&3 != 0
}

// isOSFile reports whether e's static type is *os.File.
func isOSFile(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
