package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"amdahlyd/internal/analyzers/analysis"
)

// StatusClassifierFact marks an exported bool-returning function in one
// of the error-classification home packages that inspects 5xx statuses —
// the typed helpers (service.RetryableStatus and kin) that the rest of
// the repo must route through. The fact exists so diagnostics in other
// packages can name the helpers that should be called instead, without
// those packages hard-coding the list.
type StatusClassifierFact struct{}

// AFact marks StatusClassifierFact as a fact type.
func (*StatusClassifierFact) AFact() {}

// errClassHome reports whether a package is an error-classification
// home: transient-vs-permanent retry semantics live in internal/service
// (RetryClient) and internal/fleet (hedged dispatch, failover), and
// nowhere else. The suffix form keeps fixtures and scratch modules
// honest under their own module paths.
func errClassHome(path string) bool {
	return strings.HasSuffix(path, "internal/service") || strings.HasSuffix(path, "internal/fleet")
}

// ErrClass enforces the PR-9 rule that transient-vs-permanent error
// classification happens through typed helpers in one place: a literal
// 5xx status comparison (`code == 503`, `resp.StatusCode >= 500`,
// `status == http.StatusServiceUnavailable`) outside internal/service
// and internal/fleet is a second copy of the retry policy waiting to
// drift from the first.
var ErrClass = &analysis.Analyzer{
	Name: "errclass",
	Doc: "flags literal 5xx HTTP status comparisons outside internal/service and internal/fleet; " +
		"retry/transient semantics stay in the typed classifiers",
	FactTypes: []analysis.Fact{(*StatusClassifierFact)(nil)},
	Run:       runErrClass,
}

func runErrClass(pass *analysis.Pass) error {
	home := errClassHome(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var comparisons []*ast.BinaryExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if ok && isStatusComparison(pass, be) {
					comparisons = append(comparisons, be)
				}
				return true
			})
			if len(comparisons) == 0 {
				continue
			}
			if home {
				exportClassifier(pass, fd)
				continue
			}
			for _, be := range comparisons {
				pass.Reportf(be.OpPos,
					"literal HTTP status comparison outside internal/service and internal/fleet "+
						"fragments retry semantics; %s", classifierHint(pass))
			}
		}
	}
	return nil
}

// isStatusComparison recognizes a comparison against 5xx status
// material: one operand is an integer constant in [500, 599] that is
// either a net/http Status* constant or sits opposite an operand whose
// name mentions a status or code.
func isStatusComparison(pass *analysis.Pass, be *ast.BinaryExpr) bool {
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return false
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		c, other := pair[0], pair[1]
		tv, ok := pass.TypesInfo.Types[c]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		v, ok := constant.Int64Val(tv.Value)
		if !ok || v < 500 || v > 599 {
			continue
		}
		if isHTTPStatusConst(pass, c) || mentionsStatusName(other) {
			return true
		}
	}
	return false
}

// isHTTPStatusConst reports whether expr resolves to a net/http Status*
// constant.
func isHTTPStatusConst(pass *analysis.Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == "net/http" &&
		strings.HasPrefix(c.Name(), "Status")
}

// mentionsStatusName reports whether the expression's identifiers look
// like HTTP status material (status, code).
func mentionsStatusName(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		name := strings.ToLower(id.Name)
		if strings.Contains(name, "status") || strings.Contains(name, "code") {
			found = true
		}
		return !found
	})
	return found
}

// exportClassifier publishes the fact for exported bool-returning
// helpers in a home package.
func exportClassifier(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 {
		return
	}
	if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
		return
	}
	pass.ExportObjectFact(obj, &StatusClassifierFact{})
}

// classifierHint names the known typed classifiers, discovered through
// facts so the list tracks the code.
func classifierHint(pass *analysis.Pass) string {
	refs := pass.AllObjectFacts((*StatusClassifierFact)(nil))
	if len(refs) == 0 {
		return "route the decision through internal/service's typed classifiers (service.RetryableStatus and kin)"
	}
	names := make([]string, 0, len(refs))
	for _, r := range refs {
		pkg := r.Pkg
		if i := strings.LastIndex(pkg, "/"); i >= 0 {
			pkg = pkg[i+1:]
		}
		names = append(names, pkg+"."+r.Object)
	}
	return "route the decision through " + strings.Join(names, ", ")
}
