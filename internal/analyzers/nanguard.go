package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"amdahlyd/internal/analyzers/analysis"
)

// NaNGuard catches the float-validation bug class that recurred in PR 5
// (SingleLevelCosts) and PR 7 (Platform.Validate): a rejection of the
// form
//
//	if x <= 0 { return err }           // or: if x < lo || x > hi
//
// is false for NaN x — every ordered comparison with NaN is false — so
// NaN sails through validation and corrupts everything downstream. The
// analyzer flags if-statements that (a) immediately reject (return an
// error / a NaN sentinel, or panic) and (b) gate that rejection on an
// ordered comparison of a non-constant float operand that is never
// NaN-checked (math.IsNaN or the x != x idiom) in the same function.
//
// The repo's blessed form inverts the acceptance instead, so NaN fails
// validation by construction and the analyzer stays quiet:
//
//	if !(x > 0) { return err }
var NaNGuard = &analysis.Analyzer{
	Name: "nanguard",
	Doc: "flags float validation conditionals (x < lo || x > hi, x <= 0) that reject " +
		"out-of-range values but let NaN through; write !(x in range) or add math.IsNaN",
	Run: runNaNGuard,
}

func runNaNGuard(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncNaN(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkFuncNaN(pass *analysis.Pass, body *ast.BlockStmt) {
	// Every expression the function NaN-checks anywhere, keyed by printed
	// form: math.IsNaN(x), the x != x idiom, and any ordered comparison
	// under a negation — the repo's blessed !(x > 0) form is itself a NaN
	// guard (NaN makes the inner comparison false, so the negation
	// rejects it), and once a function has rejected NaN x that way, later
	// positive comparisons of x are unreachable with NaN.
	guarded := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass, e); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "math" && fn.Name() == "IsNaN" && len(e.Args) == 1 {
				guarded[types.ExprString(e.Args[0])] = true
			}
		case *ast.BinaryExpr:
			if e.Op == token.NEQ && types.ExprString(e.X) == types.ExprString(e.Y) {
				guarded[types.ExprString(e.X)] = true
			}
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				for _, cmp := range orderedComparisons(e.X) {
					guarded[types.ExprString(cmp.X)] = true
					guarded[types.ExprString(cmp.Y)] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !isRejection(pass, ifStmt.Body) {
			return true
		}
		for _, cmp := range positiveComparisons(ifStmt.Cond) {
			for _, operand := range []ast.Expr{cmp.X, cmp.Y} {
				if !isNonConstFloat(pass, operand) || guarded[types.ExprString(operand)] {
					continue
				}
				pass.Reportf(cmp.Pos(),
					"validation %q rejects out-of-range %s but passes NaN (ordered comparisons with NaN are always false); "+
						"write the acceptance as !(%s in range) or add a math.IsNaN check (bug class of PR 5 and PR 7)",
					types.ExprString(ifStmt.Cond), types.ExprString(operand), types.ExprString(operand))
				return true // one diagnostic per if statement
			}
		}
		return true
	})
}

// positiveComparisons returns the ordered float comparisons reachable
// from cond through && and || without crossing a negation: exactly the
// comparisons that are false when an operand is NaN and thereby make a
// reject-branch unreachable. Comparisons under ! have the opposite
// effect (NaN ends up rejected), so the blessed !(x > 0) form — and any
// subexpression of it — is never reported.
func positiveComparisons(cond ast.Expr) []*ast.BinaryExpr {
	var out []*ast.BinaryExpr
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LAND, token.LOR:
				walk(e.X)
				walk(e.Y)
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				out = append(out, e)
			}
		}
	}
	walk(cond)
	return out
}

// orderedComparisons returns every ordered comparison anywhere inside e.
func orderedComparisons(e ast.Expr) []*ast.BinaryExpr {
	var out []*ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				out = append(out, b)
			}
		}
		return true
	})
	return out
}

// isRejection reports whether the if-body is a validation rejection: its
// first statement returns a non-nil error or a NaN sentinel, or panics.
func isRejection(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if isErrorExpr(pass, res) || isNaNCall(pass, res) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin)
		return isBuiltin && ident.Name == "panic"
	}
	return false
}

// isErrorExpr reports whether e has static type error and is not the
// literal nil (returning a nil error is a success path, not a
// rejection).
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isNaNCall matches math.NaN() — the rejection sentinel of the
// closed-form helpers that return a value rather than an error.
func isNaNCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "NaN"
}

// isNonConstFloat reports whether e is a non-constant, parameter-like
// expression (identifier, field selector or index) of floating-point
// type — the operands a caller-supplied NaN flows through directly.
// Compound expressions (math.Abs(f+s-1), derived sums) are deliberately
// out of scope: their inputs are what validation must catch, and
// flagging every arithmetic comparison would drown the real signal.
func isNonConstFloat(pass *analysis.Pass, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
