package analyzers

import (
	"strconv"

	"amdahlyd/internal/analyzers/analysis"
)

const rngPath = "amdahlyd/internal/rng"

// RawRand enforces the determinism/bit-identity contract: all randomness
// flows through internal/rng (xoshiro256** seeded via SplitMix64, with
// named deterministic stream splitting), so the same experiment produces
// bit-identical results on any machine at any GOMAXPROCS. math/rand and
// math/rand/v2 give no such guarantee — rand/v2's global functions are
// seeded non-deterministically by design — so importing either anywhere
// but internal/rng is flagged.
var RawRand = &analysis.Analyzer{
	Name: "rawrand",
	Doc: "flags math/rand and math/rand/v2 imports outside internal/rng; " +
		"deterministic streams come from internal/rng (bit-identity contract)",
	Run: runRawRand,
}

func runRawRand(pass *analysis.Pass) error {
	if pass.Pkg.Path() == rngPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(),
					"import of %s outside internal/rng breaks the bit-identity contract; "+
						"draw from an internal/rng stream (rng.New / Rand.Split) instead", path)
			}
		}
	}
	return nil
}
