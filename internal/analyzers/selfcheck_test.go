package analyzers

import (
	"testing"

	"amdahlyd/internal/analyzers/analysis"
)

// TestRepoSelfCheck runs the full amdahl-lint suite over the repository
// and requires zero diagnostics: every invariant the analyzers encode is
// either honoured or carries a justified //lint:allow. This is the test
// that makes a future PR fail the moment it violates a routing rule —
// the same gate CI enforces through scripts/lint.sh, kept in-tree so
// `go test ./...` alone catches it.
func TestRepoSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load(".", "amdahlyd/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module has far more — loader regression?", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
