// Fixtures for the nanguard analyzer: float validations that reject
// out-of-range values but let NaN through.
package nanguard

import (
	"errors"
	"fmt"
	"math"
)

func badLower(t float64) error {
	if t <= 0 { // want `rejects out-of-range t but passes NaN`
		return errors.New("bad t")
	}
	return nil
}

func badRange(x, lo, hi float64) error {
	if x < lo || x > hi { // want `passes NaN`
		return fmt.Errorf("x outside range")
	}
	return nil
}

func badSentinel(c float64) float64 {
	if c <= 0 { // want `passes NaN`
		return math.NaN()
	}
	return math.Sqrt(c)
}

func badPanic(p float64) float64 {
	if p < 1 { // want `passes NaN`
		panic("p < 1")
	}
	return p
}

func badConjunction(t, p float64) error {
	if t <= 0 && p >= 1 { // want `passes NaN`
		return errors.New("bad pattern")
	}
	return nil
}

// The blessed form: invert the acceptance, so a NaN operand makes the
// inner comparison false and the rejection fires.
func goodInverted(t float64) error {
	if !(t > 0) {
		return errors.New("bad t")
	}
	return nil
}

// An explicit NaN check in the same condition is a guard.
func goodGuardedSameCond(t float64) error {
	if math.IsNaN(t) || t <= 0 {
		return errors.New("bad t")
	}
	return nil
}

// ... as is one anywhere else in the same function,
func goodGuardedEarlier(t float64) error {
	if math.IsNaN(t) {
		return errors.New("NaN t")
	}
	if t <= 0 {
		return errors.New("bad t")
	}
	return nil
}

// ... and the x != x idiom.
func goodSelfCompare(t float64) error {
	if t != t || t <= 0 {
		return errors.New("bad t")
	}
	return nil
}

// A !(x ...) rejection anywhere in the function already catches NaN x,
// so a later positive comparison of the same operand is fine — the
// common `!(shape >= lo) || shape > hi` disjunction is NaN-rejecting.
func goodNegationGuard(shape float64) error {
	if !(shape >= 0.1) || shape > 10 {
		return errors.New("shape outside range")
	}
	return nil
}

// Compound operands (derived arithmetic, math.Abs of validated fields)
// are out of scope: validation must catch the inputs, not every
// downstream consistency check.
func goodCompound(f, s float64) error {
	if !(f >= 0) || !(s >= 0) {
		return errors.New("bad fractions")
	}
	if math.Abs(f+s-1) > 1e-3 {
		return errors.New("fractions must sum to 1")
	}
	return nil
}

// Ordinary float control flow neither returns an error nor a NaN
// sentinel and stays quiet.
func goodControlFlow(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Integers cannot be NaN.
func goodInt(n int) error {
	if n <= 0 {
		return errors.New("bad n")
	}
	return nil
}

// Constant-only comparisons cannot carry a NaN either.
func goodConst(debug bool) error {
	if debug && 1 < 2 {
		return errors.New("unreachable")
	}
	return nil
}

func suppressed(t float64) error {
	//lint:allow nanguard fixture: caller proves t finite
	if t <= 0 {
		return errors.New("bad t")
	}
	return nil
}
