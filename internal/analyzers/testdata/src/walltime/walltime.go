// Fixtures for the walltime analyzer: wall-clock readings outside the
// latency/backoff packages.
package walltime

import "time"

func badStamp() int64 {
	return time.Now().UnixNano() // want `time.Now outside a latency/backoff package`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since outside a latency/backoff package`
}

func goodDurationMath(d time.Duration) time.Duration {
	return 2*d + 50*time.Millisecond
}

func goodTicker(stop chan struct{}, tick func()) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			tick()
		}
	}
}

func allowedException() time.Time {
	//lint:allow walltime journal-style timestamp, metadata only, never reaches artifacts
	return time.Now()
}
