// Fixtures for the keyfmt analyzer: float formatting inside cache-key
// builders (functions whose name contains "key").
package keyfmt

import (
	"fmt"
	"strconv"

	"amdahlyd/internal/core"
)

func cacheKey(lambda float64, n int) string {
	return fmt.Sprintf("m|%g|%d", lambda, n) // want `float lambda formatted with %g inside a key builder`
}

func optionsKey(tol float64) string {
	return "opt|" + fmt.Sprintf("%v", tol) // want `float tol formatted with %v inside a key builder`
}

func precisionKey(v float64) string {
	return fmt.Sprintf("p|%8.3f", v) // want `float v formatted with %f inside a key builder`
}

func sprintKey(t float64) string {
	return fmt.Sprint("t=", t) // want `float t enters a cache key through fmt\.Sprint`
}

func decimalKey(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64) // want `strconv\.FormatFloat\('g'\) inside a key builder`
}

// The canonical token: exact-hex encoding, shared with core.CacheKey.
func goodKey(lambda float64, n int) string {
	return fmt.Sprintf("m|%s|%d", core.FormatFloatKey(lambda), n)
}

// A hand-rolled hex token is bit-exact and accepted.
func hexKeyToken(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// Non-key functions are out of scope: %g in reports and errors is fine.
func describe(lambda float64) string {
	return fmt.Sprintf("lambda=%g", lambda)
}

func suppressedKey(v float64) string {
	//lint:allow keyfmt fixture: debug-only label, never used as a cache key
	return fmt.Sprintf("dbg|%g", v)
}
