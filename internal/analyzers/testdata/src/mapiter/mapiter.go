// Fixtures for the mapiter analyzer: order-sensitive work inside map
// ranges, and the blessed collect-sort-iterate idiom.
package mapiter

import (
	"fmt"
	"os"
	"sort"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `ranging over map m while appending to out`
		out = append(out, k)
	}
	return out
}

func goodCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCollectSlicesSort(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func badWrite(m map[string]float64) {
	for k, v := range m { // want `ranging over map m while writing formatted output in map order`
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, int(v))
	}
}

func badStringBuild(m map[string]int) string {
	s := ""
	for k := range m { // want `ranging over map m while building string s in map order`
		s += k
	}
	return s
}

func badFloatAccumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `ranging over map m while accumulating float total in map order`
		total += v
	}
	return total
}

func goodIntAccumulate(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func badMerge(dst, src map[string]int) {
	for k, v := range src { // want `ranging over map src while merging into dst in map order`
		dst[k] = v
	}
}

func badSend(m map[string]int, ch chan string) {
	for k := range m { // want `ranging over map m while sending on a channel`
		ch <- k
	}
}

func badGo(m map[string]string, probe func(string)) {
	for _, addr := range m { // want `ranging over map m while spawning goroutines in map order`
		go probe(addr)
	}
}

func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func goodPerIterationLocals(m map[string]int) {
	for k, v := range m {
		row := []string{k}
		row = append(row, fmt.Sprint(v))
		_ = row
	}
}
