// Fixtures for the frozenloop analyzer: spec-layer entry points
// (core.Model.Overhead, core.Model.Freeze, hetero.CompileTopology) must
// not be called lexically inside for/range bodies.
package frozenloop

import (
	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/platform"
)

func sumOverheads(m core.Model, ps []float64) float64 {
	s := 0.0
	for _, p := range ps {
		s += m.Overhead(100, p) // want `core\.Model\.Overhead called inside a loop`
	}
	for i := 0; i < 4; i++ {
		fz := m.Freeze(float64(i + 1)) // want `core\.Model\.Freeze called inside a loop`
		s += fz.Overhead(100)
	}
	return s
}

func compileMany(tps []platform.Topology, sc costmodel.Scenario) int {
	n := 0
	for _, tp := range tps {
		if _, err := hetero.CompileTopology(tp, sc, 0.1, 60); err == nil { // want `hetero\.CompileTopology called inside a loop`
			n++
		}
	}
	return n
}

// The loop condition and post statement run once per iteration and are
// flagged like the body; the init statement runs once and is not.
func condAndPost(m core.Model) int {
	n := 0
	for x := m.Overhead(100, 2); m.Overhead(100, 8) > x; x += m.Overhead(100, 16) { // want `core\.Model\.Overhead` `core\.Model\.Overhead`
		n++
	}
	return n
}

// A function literal defined inside a loop body is still lexically
// inside the loop.
func literalInLoop(m core.Model, ps []float64) {
	for _, p := range ps {
		f := func() float64 { return m.Overhead(100, p) } // want `core\.Model\.Overhead called inside a loop`
		_ = f()
	}
}

// The blessed two-tier idiom: Freeze once outside, run the loop on the
// compiled core.Frozen (whose Overhead method is a different receiver
// and stays quiet).
func frozenFast(m core.Model, ts []float64) float64 {
	fz := m.Freeze(64)
	s := 0.0
	for _, t := range ts {
		s += fz.Overhead(t)
	}
	return s
}

// A closure handed to a runner (the parallelFor pattern) is not
// lexically inside a for body and is deliberately left alone.
func callbackPattern(m core.Model, run func(fn func(i int))) {
	run(func(i int) {
		_ = m.Overhead(100, float64(i+1))
	})
}

// A documented exception is suppressed by //lint:allow with a reason.
func suppressed(m core.Model, ps []float64) float64 {
	s := 0.0
	for _, p := range ps {
		//lint:allow frozenloop fixture: plan-time compile, executed once per cell
		s += m.Overhead(100, p)
	}
	return s
}
