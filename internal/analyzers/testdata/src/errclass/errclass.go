// Fixtures for the errclass analyzer: literal 5xx status comparisons
// outside the classification home packages.
package errclass

import "net/http"

func badLiteral(code int) bool {
	return code == 503 // want `literal HTTP status comparison outside internal/service and internal/fleet`
}

func badRange(resp *http.Response) bool {
	return resp.StatusCode >= 500 // want `literal HTTP status comparison outside internal/service and internal/fleet`
}

func badNamedConst(status int) bool {
	return status == http.StatusServiceUnavailable // want `literal HTTP status comparison outside internal/service and internal/fleet`
}

func badReversed(resp *http.Response) bool {
	return 500 <= resp.StatusCode // want `literal HTTP status comparison outside internal/service and internal/fleet`
}

func goodBufferSize(n int) bool {
	return n == 512 // a size, not a status: nothing status-named in sight
}

func goodNonFiveHundred(resp *http.Response) bool {
	return resp.StatusCode == http.StatusOK // 2xx checks are not retry classification
}

func allowedException(code int) bool {
	//lint:allow errclass protocol conformance test helper, not a retry decision
	return code == 503
}
