// Fixtures for the seedflow analyzer: seed positions discovered through
// rng.New and SeedParam facts, canonical vs ambient seed material.
package seedflow

import (
	"hash/fnv"
	"os"
	"time"

	"amdahlyd/internal/rng"
)

// newStream forwards its parameter into rng.New, so it earns a
// SeedParamFact and its callers are checked below.
func newStream(seed uint64) *rng.Rand { return rng.New(seed) }

func goodLiteral() *rng.Rand { return rng.New(42) }

func goodMaster(master uint64) *rng.Rand { return newStream(master ^ 0x9e3779b9) }

func goodSplit(r *rng.Rand) *rng.Rand { return r.Split(3) }

func goodFNVLabel(label string, master uint64) *rng.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return newStream(h.Sum64() ^ master)
}

// labelSeed derives from FNV material only, so it earns SeedDerivedFact
// and goodDerived passes.
func labelSeed(label string, master uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return h.Sum64() ^ master
}

func goodDerived(master uint64) *rng.Rand {
	return rng.New(labelSeed("cell/alpha=0.5", master))
}

func badDirectWallClock() *rng.Rand {
	return rng.New(uint64(time.Now().UnixNano())) // want `Time.UnixNano in the seed argument of rng.New is not canonical seed material`
}

func badThroughFact() *rng.Rand {
	return newStream(uint64(time.Now().Unix())) // want `Time.Unix in a seed argument of newStream is not canonical seed material`
}

func badPid() *rng.Rand {
	return newStream(uint64(os.Getpid())) // want `os.Getpid in a seed argument of newStream is not canonical seed material`
}

type runCfg struct {
	Runs int
	Seed uint64
}

func badSeedField() runCfg {
	return runCfg{Runs: 10, Seed: uint64(time.Now().UnixNano())} // want `Time.UnixNano in a Seed field is not canonical seed material`
}

func badSeedAssign(cfg *runCfg) {
	cfg.Seed = uint64(time.Now().UnixNano()) // want `Time.UnixNano in a Seed field is not canonical seed material`
}

func goodSeedField(master uint64) runCfg {
	return runCfg{Runs: 10, Seed: labelSeed("sweep", master)}
}
