// Fixtures for the atomicwrite analyzer: direct file writes outside
// internal/atomicio.
package atomicwrite

import (
	"bufio"
	"os"

	"amdahlyd/internal/atomicio"
)

func badCreate(path string) error {
	f, err := os.Create(path) // want `os\.Create writes the target file in place`
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("x")
	return err
}

func badWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile writes the target file in place`
}

func badOpenAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644) // want `os\.OpenFile with a writable mode`
}

func badOpenDynamic(path string, flags int) (*os.File, error) {
	return os.OpenFile(path, flags, 0o644) // want `os\.OpenFile with a writable mode`
}

func badBufio(f *os.File) *bufio.Writer {
	return bufio.NewWriter(f) // want `bufio\.NewWriter directly over an \*os\.File`
}

func badBufioSize(f *os.File) *bufio.Writer {
	return bufio.NewWriterSize(f, 1<<16) // want `bufio\.NewWriterSize directly over an \*os\.File`
}

func goodReadOnly(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}

func goodRead(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func goodAtomic(path string, data []byte) error {
	return atomicio.WriteFileBytes(path, data)
}

func suppressed(path string) (*os.File, error) {
	//lint:allow atomicwrite fixture: append-only journal, every record self-checksummed
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
