// Fixtures for the rawrand analyzer: math/rand imports outside
// internal/rng.
package rawrand

import (
	"math/rand" // want `import of math/rand outside internal/rng`

	randv2 "math/rand/v2" // want `import of math/rand/v2 outside internal/rng`

	"amdahlyd/internal/rng"
)

func badDraw() float64 {
	return rand.Float64() + randv2.Float64()
}

func goodDraw(seed uint64) float64 {
	return rng.New(seed).Float64()
}
