package analyzers

import (
	"go/ast"
	"go/types"

	"amdahlyd/internal/analyzers/analysis"
)

const (
	corePath   = "amdahlyd/internal/core"
	heteroPath = "amdahlyd/internal/hetero"
)

// FrozenLoop enforces the PR-1 two-tier rule: Model.Overhead,
// Model.Freeze and hetero.CompileTopology are spec-layer entry points
// that re-derive the compiled kernel on every call, so they must not
// appear lexically inside a for/range body (loop condition and post
// statement included — both run per iteration) outside internal/core
// itself. Hot loops take a core.Frozen compiled once per P — see the
// memoized probe closures in internal/optimize for the blessed idiom,
// which this purely lexical check deliberately leaves alone.
var FrozenLoop = &analysis.Analyzer{
	Name: "frozenloop",
	Doc: "flags Model.Overhead/Model.Freeze/hetero.CompileTopology calls inside loop bodies " +
		"(freeze once per P outside the loop; hot loops run on core.Frozen)",
	Run: runFrozenLoop,
}

func runFrozenLoop(pass *analysis.Pass) error {
	if pass.Pkg.Path() == corePath {
		return nil
	}
	for _, f := range pass.Files {
		scanLoops(f, false, func(call *ast.CallExpr) {
			if name := frozenAPIName(pass, call); name != "" {
				pass.Reportf(call.Pos(),
					"%s called inside a loop; compile once outside the loop and run the loop on core.Frozen (PR-1 two-tier rule)",
					name)
			}
		})
	}
	return nil
}

// scanLoops walks n reporting every call expression whose lexical
// position is inside a per-iteration region of a for or range statement.
func scanLoops(n ast.Node, inLoop bool, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				scanLoops(s.Init, inLoop, visit) // runs once
			}
			if s.Cond != nil {
				scanLoops(s.Cond, true, visit)
			}
			if s.Post != nil {
				scanLoops(s.Post, true, visit)
			}
			scanLoops(s.Body, true, visit)
			return false
		case *ast.RangeStmt:
			scanLoops(s.X, inLoop, visit) // evaluated once
			if s.Key != nil {
				scanLoops(s.Key, true, visit)
			}
			if s.Value != nil {
				scanLoops(s.Value, true, visit)
			}
			scanLoops(s.Body, true, visit)
			return false
		case *ast.CallExpr:
			if inLoop {
				visit(s)
			}
		}
		return true
	})
}

// frozenAPIName resolves the callee and returns its display name when it
// is one of the frozen-layer entry points, "" otherwise.
func frozenAPIName(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	switch fn.Pkg().Path() {
	case corePath:
		if (fn.Name() == "Overhead" || fn.Name() == "Freeze") &&
			recvNamed(sig) == "Model" {
			return "core.Model." + fn.Name()
		}
	case heteroPath:
		if fn.Name() == "CompileTopology" && sig.Recv() == nil {
			return "hetero.CompileTopology"
		}
	}
	return ""
}

// calleeFunc resolves a call's static callee, if it is a declared
// function or method (as opposed to a function-typed value).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// recvNamed returns the name of the method receiver's base named type,
// or "" for plain functions and non-named receivers.
func recvNamed(sig *types.Signature) string {
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
