package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"amdahlyd/internal/analyzers/analysis"
)

// SeedParamFact marks a function one of whose integer parameters is
// passed (possibly through further fact-carrying callees) into an rng
// seed position. Callers of such a function are then checked at the
// recorded argument positions — across package boundaries, which is the
// whole point: campaign seeds are derived in the planner and consumed by
// the executor, and sim.RunConfig seeds originate in the service layer.
type SeedParamFact struct {
	// Params holds the zero-based indices of the seed parameters,
	// sorted.
	Params []int
}

// AFact marks SeedParamFact as a fact type.
func (*SeedParamFact) AFact() {}

// SeedDerivedFact marks a function whose every return value is built
// from canonical seed material only (FNV folds, rng draws, constants,
// parameter arithmetic) — calling it inside a seed position is sound.
// experiments.cellSeed and the seedHash chain earn this fact.
type SeedDerivedFact struct{}

// AFact marks SeedDerivedFact as a fact type.
func (*SeedDerivedFact) AFact() {}

// SeedFlow enforces the seed-derivation contract behind bit-identical
// reproduction: every rng seed is derived from canonical material — an
// rng.Split/SplitString stream, FNV label-hash material, or the
// flag-declared master seed — never from wall-clock readings, PIDs, or
// other ambient state. Seed positions are discovered interprocedurally:
// rng.New's argument is the root, and a function forwarding its own
// int64/uint64 parameter into a seed position exports a SeedParamFact so
// its callers are checked too, in whatever package they live.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "flags seed material not derived from rng.Split, FNV label-hash material, or the " +
		"flag-declared master seed; seed positions propagate to callers via facts",
	FactTypes: []analysis.Fact{(*SeedParamFact)(nil), (*SeedDerivedFact)(nil)},
	Run:       runSeedFlow,
}

// isRngPath matches the repo's deterministic-randomness package. The
// suffix form keeps the analyzer honest in fixtures and in the
// self-check's scratch modules, whose rng lives under their own module
// path.
func isRngPath(path string) bool {
	return path == rngPath || strings.HasSuffix(path, "/internal/rng")
}

// canonicalCallPkgs are packages whose functions are canonical seed
// material wherever they appear inside a seed expression: the rng
// streams themselves, FNV and the other stdlib hashes, and the flag
// package (the master seed is flag-declared by contract).
func canonicalSeedCall(path string) bool {
	return isRngPath(path) || path == "hash" || strings.HasPrefix(path, "hash/") || path == "flag"
}

func runSeedFlow(pass *analysis.Pass) error {
	funcs := collectFuncs(pass)

	// Fact fixpoint within the package: seed positions feed on facts
	// (a call to a fact-carrying function is itself a sink), so iterate
	// until no new fact appears. Cross-package facts are already in the
	// store — packages are analyzed in dependency order.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if updateSeedParamFact(pass, fn) {
				changed = true
			}
			if updateSeedDerivedFact(pass, fn) {
				changed = true
			}
		}
	}

	// Reporting pass: every expression in a seed position must be
	// canonical.
	for _, fn := range funcs {
		for _, sink := range seedPositions(pass, fn.decl.Body) {
			for _, offender := range offendingCalls(pass, sink.expr) {
				pass.Reportf(offender.Pos(),
					"%s in %s is not canonical seed material; derive seeds only from rng.Split "+
						"streams, FNV label-hash material, or the flag-declared master seed",
					calleeDisplay(pass, offender), sink.describe)
			}
		}
	}
	return nil
}

// funcInfo pairs a declaration with its types.Func object.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pass *analysis.Pass) []*funcInfo {
	var out []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, &funcInfo{decl: fd, obj: obj})
		}
	}
	return out
}

// seedSink is one seed position: an expression that becomes an rng seed.
type seedSink struct {
	expr     ast.Expr
	describe string
}

// seedPositions finds every expression in body that flows into a seed:
// rng.New arguments, arguments at SeedParamFact positions of any callee,
// and values bound to a struct field named Seed (composite literal or
// assignment) — the shape sim.RunConfig and campaign cells use to carry
// seeds between layers.
func seedPositions(pass *analysis.Pass, body *ast.BlockStmt) []seedSink {
	var sinks []seedSink
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass, s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if isRngPath(fn.Pkg().Path()) && fn.Name() == "New" && len(s.Args) > 0 {
				sinks = append(sinks, seedSink{expr: s.Args[0], describe: "the seed argument of rng.New"})
				return true
			}
			var fact SeedParamFact
			if pass.ImportObjectFact(fn, &fact) {
				for _, idx := range fact.Params {
					if idx < len(s.Args) {
						sinks = append(sinks, seedSink{
							expr:     s.Args[idx],
							describe: "a seed argument of " + fn.Name(),
						})
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Seed" {
					sinks = append(sinks, seedSink{expr: kv.Value, describe: "a Seed field"})
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Seed" || i >= len(s.Rhs) {
					continue
				}
				sinks = append(sinks, seedSink{expr: s.Rhs[i], describe: "a Seed field"})
			}
		}
		return true
	})
	return sinks
}

// updateSeedParamFact records which of fn's own integer parameters reach
// a seed position, returning whether the fact changed.
func updateSeedParamFact(pass *analysis.Pass, fn *funcInfo) bool {
	params := seedableParams(pass, fn.decl)
	if len(params) == 0 {
		return false
	}
	indices := map[int]bool{}
	var prev SeedParamFact
	if pass.ImportObjectFact(fn.obj, &prev) {
		for _, i := range prev.Params {
			indices[i] = true
		}
	}
	before := len(indices)
	for _, sink := range seedPositions(pass, fn.decl.Body) {
		ast.Inspect(sink.expr, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if idx, ok := params[pass.TypesInfo.ObjectOf(id)]; ok {
				indices[idx] = true
			}
			return true
		})
	}
	if len(indices) == before {
		return false
	}
	fact := &SeedParamFact{Params: make([]int, 0, len(indices))}
	for i := range indices {
		fact.Params = append(fact.Params, i)
	}
	sort.Ints(fact.Params)
	pass.ExportObjectFact(fn.obj, fact)
	return true
}

// seedableParams maps fn's int64/uint64 parameter objects to their
// indices.
func seedableParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies an index
		}
		for i := 0; i < n; i++ {
			if i < len(field.Names) {
				obj := pass.TypesInfo.ObjectOf(field.Names[i])
				if obj != nil && isSeedInt(obj.Type()) {
					out[obj] = idx
				}
			}
			idx++
		}
	}
	return out
}

func isSeedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}

// updateSeedDerivedFact blesses functions whose every return value is
// canonical integer material, returning whether the fact was newly
// exported.
func updateSeedDerivedFact(pass *analysis.Pass, fn *funcInfo) bool {
	var existing SeedDerivedFact
	if pass.ImportObjectFact(fn.obj, &existing) {
		return false
	}
	sig, _ := fn.obj.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if b, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
			return false
		}
	}
	canonical := true
	sawReturn := false
	inspectSkippingFuncLits(fn.decl.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			canonical = false // named results; too opaque to bless
			return
		}
		for _, res := range ret.Results {
			if len(offendingCalls(pass, res)) > 0 {
				canonical = false
			}
		}
	})
	if !sawReturn || !canonical {
		return false
	}
	pass.ExportObjectFact(fn.obj, &SeedDerivedFact{})
	return true
}

// inspectSkippingFuncLits visits nodes of body without descending into
// nested function literals (their returns are not the function's).
func inspectSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// offendingCalls returns every call inside expr that is not canonical
// seed material: not a conversion, not a builtin, not an rng/hash/flag
// call, and not blessed by a SeedDerivedFact.
func offendingCalls(pass *analysis.Pass, expr ast.Expr) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return true
			}
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			out = append(out, call)
			return false // the whole call tree is one piece of bad material
		}
		if fn.Pkg() == nil || canonicalSeedCall(fn.Pkg().Path()) {
			return true
		}
		var derived SeedDerivedFact
		if pass.ImportObjectFact(fn, &derived) {
			return true
		}
		out = append(out, call)
		return false // report the outermost non-canonical call once
	})
	return out
}

// calleeDisplay renders the callee of call for diagnostics.
func calleeDisplay(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "a function value call"
	}
	if fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if name := recvNamed(sig); name != "" {
				return name + "." + fn.Name()
			}
		}
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
