// Package analysistest is the fixture harness for amdahl-lint
// analyzers, speaking the same `// want "regexp"` dialect as
// golang.org/x/tools/go/analysis/analysistest: a fixture package under
// testdata/src/<name> annotates each line that must be flagged with a
// trailing
//
//	// want "regexp"
//
// comment (several quoted regexps for several diagnostics on one line).
// Run loads the fixture through the real loader — imports of module
// packages such as amdahlyd/internal/core resolve against real export
// data, so the fixtures type-check against the actual API the analyzers
// match on — runs the analyzer plus the //lint:allow machinery, and
// fails the test on any mismatch in either direction.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"amdahlyd/internal/analyzers/analysis"
)

// Run checks the analyzer against the fixture packages, each a directory
// name under dir/src (conventionally dir is "testdata").
func Run(t *testing.T, dir string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	for _, fixture := range fixtures {
		t.Run(a.Name+"/"+fixture, func(t *testing.T) {
			t.Helper()
			pkg, err := analysis.LoadDir(root, filepath.Join(dir, "src", fixture))
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			check(t, pkg, diags)
		})
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so fixture imports resolve no matter which package runs the
// test.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// want is one expectation: a diagnostic at file:line matching re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Both quoting forms of the x/tools dialect are accepted: "..." with
// backslash escapes, and raw `...`.
var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants extracts expectations from every comment in the package.
func parseWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, qm := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					expr := qm[1]
					if qm[2] != "" {
						expr = qm[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !matchWant(wants, d.Position, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}
