package analyzers

import (
	"go/ast"

	"amdahlyd/internal/analyzers/analysis"
)

// wallClockAllowed lists the packages whose job is measuring real time:
// the fleet (hedge timers, health-probe pacing, retry latency) and the
// service layer (backoff, scheduler timeouts). Everywhere else —
// planners, simulators, cache keys, seed derivation, artifact
// rendering — wall-clock readings are banned: a time.Now that reaches a
// cache key, a seed or an artifact silently breaks the byte-identical
// reproduction guarantee, and the failure only shows up as a diff
// between two runs that should have matched. One-off legitimate uses
// (journal timestamps, CLI progress lines) carry //lint:allow walltime
// with the justification written next to the call.
var wallClockAllowed = map[string]bool{
	"amdahlyd/internal/fleet":   true,
	"amdahlyd/internal/service": true,
}

// WallTime flags time.Now and time.Since calls outside the latency and
// backoff packages. Duration arithmetic, tickers and timers are fine
// anywhere (they schedule work, they don't stamp results); it is the
// reading of the wall clock into a value that threatens determinism.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flags time.Now/time.Since outside latency/backoff packages (internal/fleet, internal/service); " +
		"wall-clock readings must never reach cache keys, seeds, or artifacts",
	Run: runWallTime,
}

func runWallTime(pass *analysis.Pass) error {
	if wallClockAllowed[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(call.Pos(),
					"time.%s outside a latency/backoff package; wall-clock must not reach "+
						"deterministic paths (cache keys, seeds, artifacts) — measure latency in "+
						"internal/fleet or internal/service, or annotate the exception", fn.Name())
			}
			return true
		})
	}
	return nil
}
