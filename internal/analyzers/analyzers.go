// Package analyzers is amdahl-lint's rule set: five repo-specific
// analyzers, each mechanically enforcing an invariant this codebase
// previously enforced only by reviewer memory.
//
//	frozenloop  — PR-1 two-tier rule: no Model.Overhead / Model.Freeze /
//	              hetero.CompileTopology inside loop bodies; hot loops
//	              run on a core.Frozen compiled once per P.
//	nanguard    — the twice-recurred float-validation bug class: a
//	              rejection gated on x <= 0 (or x < lo || x > hi) is
//	              false for NaN, so NaN passes validation.
//	atomicwrite — PR-6 durability rule: artifact/report writes go
//	              through internal/atomicio, never os.Create and kin.
//	rawrand     — bit-identity contract: randomness comes from
//	              internal/rng streams, never math/rand.
//	keyfmt      — cache-key canonicalization: float parameters in key
//	              builders use core.FormatFloatKey's exact-hex token,
//	              never %v/%g/%f.
//
// The repo rule going forward (ROADMAP): a new invariant ships with an
// analyzer here, not with a comment. Legitimate exceptions carry
// //lint:allow <analyzer> <reason> on or directly above the flagged
// line; the runner rejects reasons that are missing and directives that
// no longer suppress anything.
package analyzers

import "amdahlyd/internal/analyzers/analysis"

// All returns the full amdahl-lint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicWrite,
		FrozenLoop,
		KeyFmt,
		NaNGuard,
		RawRand,
	}
}
