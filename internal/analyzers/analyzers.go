// Package analyzers is amdahl-lint's rule set: nine repo-specific
// analyzers, each mechanically enforcing an invariant this codebase
// previously enforced only by reviewer memory.
//
// The original five are purely local — one package at a time:
//
//	frozenloop  — PR-1 two-tier rule: no Model.Overhead / Model.Freeze /
//	              hetero.CompileTopology inside loop bodies; hot loops
//	              run on a core.Frozen compiled once per P.
//	nanguard    — the twice-recurred float-validation bug class: a
//	              rejection gated on x <= 0 (or x < lo || x > hi) is
//	              false for NaN, so NaN passes validation.
//	atomicwrite — PR-6 durability rule: artifact/report writes go
//	              through internal/atomicio, never os.Create and kin.
//	rawrand     — bit-identity contract: randomness comes from
//	              internal/rng streams, never math/rand.
//	keyfmt      — cache-key canonicalization: float parameters in key
//	              builders use core.FormatFloatKey's exact-hex token,
//	              never %v/%g/%f.
//
// PR 10 added the determinism suite, two of which are interprocedural
// through the facts layer in the sibling analysis package (facts are
// gob-encoded per object, propagated in dependency order by the source
// driver and through .vetx stamp files under `go vet -vettool`):
//
//	mapiter     — no order-sensitive output (appends, row/CSV/JSON
//	              writes, string building, float accumulation, channel
//	              sends, goroutine spawns, outer-container merges) while
//	              ranging over a map without an intervening sort.
//	walltime    — time.Now/time.Since only in the latency/backoff
//	              packages (internal/fleet, internal/service); wall
//	              clock must never reach cache keys, seeds or artifacts.
//	seedflow    — facts-based: rng seeds derive only from rng.Split
//	              streams, FNV label-hash material, or the flag-declared
//	              master seed; SeedParamFact carries seed positions to
//	              callers across packages.
//	errclass    — facts-based: literal 5xx status comparisons only
//	              inside internal/service and internal/fleet, whose
//	              exported classifiers carry StatusClassifierFact.
//
// The repo rule going forward (ROADMAP): a new invariant ships with an
// analyzer here, not with a comment. Legitimate exceptions carry
// //lint:allow <analyzer> <reason> on or directly above the flagged
// line; the runner rejects reasons that are missing and directives that
// no longer suppress anything.
package analyzers

import "amdahlyd/internal/analyzers/analysis"

// All returns the full amdahl-lint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicWrite,
		ErrClass,
		FrozenLoop,
		KeyFmt,
		MapIter,
		NaNGuard,
		RawRand,
		SeedFlow,
		WallTime,
	}
}
