package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"amdahlyd/internal/analyzers/analysis"
)

// KeyFmt guards the cache-key canonicalization contract (DESIGN.md,
// "Service layer"): every float64 that enters a cache key is encoded
// with the exact shortest-hex token of core.FormatFloatKey (strconv
// FormatFloat 'x'), so two parameters share a token iff they are the
// same bit pattern. fmt's %v/%g/%f (and decimal strconv.FormatFloat
// modes) are not that token: precision-limited verbs collapse distinct
// values into one key (cache poisoning across models), and even the
// round-tripping forms fork the key space from every existing m1|/ml1|/
// hg1| entry. The analyzer scans functions whose name contains "key" —
// the repo convention for key builders (CacheKey, optionsKey, mcKey,
// ...) — and flags float-typed arguments reaching fmt verbs, fmt.Sprint
// concatenation, or non-'x' strconv.FormatFloat calls.
var KeyFmt = &analysis.Analyzer{
	Name: "keyfmt",
	Doc: "flags %v/%g/%f formatting of floats inside cache-key construction " +
		"(functions named *key*); keys use the exact-hex core.FormatFloatKey token",
	Run: runKeyFmt,
}

func runKeyFmt(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.Contains(strings.ToLower(fd.Name.Name), "key") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkKeyCall(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

func checkKeyCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Sprintf", "Fprintf", "Appendf", "Errorf":
			fmtIdx := 0
			if fn.Name() == "Fprintf" || fn.Name() == "Appendf" {
				fmtIdx = 1
			}
			if fn.Name() == "Errorf" {
				return // error text, not a key token
			}
			checkFormatCall(pass, call, fmtIdx)
		case "Sprint", "Sprintln", "Append", "Appendln":
			for _, arg := range call.Args {
				if isFloatExpr(pass, arg) {
					pass.Reportf(arg.Pos(),
						"float %s enters a cache key through fmt.%s (%%v semantics); "+
							"use core.FormatFloatKey for the exact-hex key token",
						types.ExprString(arg), fn.Name())
				}
			}
		}
	case "strconv":
		if fn.Name() == "FormatFloat" && len(call.Args) == 4 {
			if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil &&
				tv.Value.Kind() == constant.Int {
				if v, ok := constant.Int64Val(tv.Value); ok && v != 'x' && v != 'X' {
					pass.Reportf(call.Pos(),
						"strconv.FormatFloat(%q) inside a key builder is not the canonical token; "+
							"cache keys use the exact-hex 'x' encoding of core.FormatFloatKey",
						rune(v))
				}
			}
		}
	}
}

// checkFormatCall maps printf verbs to their arguments and flags every
// float argument consumed by a value-formatting verb. %x/%X on a float
// is fmt's hex-float form and is accepted — it is bit-exact, and it is
// how a hand-rolled key builder would spell the canonical token.
func checkFormatCall(pass *analysis.Pass, call *ast.CallExpr, fmtIdx int) {
	if len(call.Args) <= fmtIdx {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[fmtIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[fmtIdx+1:]

	argIdx := 0
	verbFor := map[int]rune{} // variadic arg index → verb consuming it
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// flags, width, precision; '*' consumes an argument.
	spec:
		for ; i < len(runes); i++ {
			switch r := runes[i]; {
			case r == '%':
				break spec // literal %%
			case strings.ContainsRune("+-# 0.", r) || r >= '0' && r <= '9':
				// flag / width / precision digits
			case r == '*':
				argIdx++
			case r == '[':
				// Indexed verbs re-order arguments; precise mapping is
				// not worth it here — treat every float argument as
				// reachable by the remaining verbs.
				for _, arg := range args {
					if isFloatExpr(pass, arg) {
						reportKeyVerb(pass, arg, 'v')
					}
				}
				return
			default:
				verbFor[argIdx] = r
				argIdx++
				break spec
			}
		}
	}
	for idx, verb := range verbFor {
		if idx >= len(args) {
			continue
		}
		if strings.ContainsRune("vgGfFeE", verb) && isFloatExpr(pass, args[idx]) {
			reportKeyVerb(pass, args[idx], verb)
		}
	}
}

func reportKeyVerb(pass *analysis.Pass, arg ast.Expr, verb rune) {
	pass.Reportf(arg.Pos(),
		"float %s formatted with %%%c inside a key builder; cache keys use the "+
			"exact-hex token of core.FormatFloatKey (DESIGN.md canonicalization rules)",
		types.ExprString(arg), verb)
}

// isFloatExpr reports whether e's static type (or an untyped constant's
// default type) is floating-point.
func isFloatExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if basic, ok := t.(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 {
		t = types.Default(t)
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
