package hetero

import (
	"amdahlyd/internal/core"
	"amdahlyd/internal/optimize"
)

// SweepOptions tunes the warm-start batch solver for sweep-shaped
// heterogeneous work (many joint optimizations along a smooth axis — a
// comm-term sweep, a group-size split, a λ axis). The zero value selects
// defaults consistent with optimize.SweepOptions.
type SweepOptions struct {
	// PatternOptions bounds the search exactly as for OptimalPattern.
	PatternOptions
	// BracketFactor, WarmGridP and WarmGridT configure the per-group warm
	// brackets (defaults 32, 10, 10, as in optimize.SweepOptions).
	BracketFactor        float64
	WarmGridP, WarmGridT int
	// Cold disables warm-starting entirely: every cell runs the reference
	// OptimalPattern scan and is bit-identical to a per-cell call.
	Cold bool
}

// SweepStats counts how a solver spent its per-group chains, aggregated
// across all (group, active-count) chains.
type SweepStats struct {
	// WarmSolves counts per-group solves inside a warm bracket.
	WarmSolves int
	// ColdSolves counts per-group full-box scans.
	ColdSolves int
	// Fallbacks counts rejected warm attempts re-solved on the full box.
	Fallbacks int
	// Evals totals exact-formula evaluations across all cells.
	Evals int
}

// SweepSolver solves a sequence of related heterogeneous optimizations by
// warm-starting every per-group pattern solve from the previous cell's
// optimum. Internally it holds one optimize.SweepSolver per (group,
// active-count) pair: along a smooth axis each group's A_g(G) optimum
// drifts slowly, so each chain pays the narrow-bracket solve with the
// standard edge-rejection/full-box-fallback discipline. Warm-starting is
// an accelerator, never a different answer beyond the refinement
// tolerance (pinned by the warm-vs-cold property tests); Cold mode
// delegates to OptimalPattern wholesale and is bit-identical to per-cell
// calls.
//
// A solver is stateful and must not be shared between goroutines; run one
// solver per chain. The chains are keyed by (group index, active count),
// so the solver assumes successive cells share a group layout (same group
// count and order) — the shape of every sweep axis in this repo.
type SweepSolver struct {
	opts   SweepOptions
	chains map[chainKey]*optimize.SweepSolver
	stats  SweepStats
}

// chainKey identifies one per-group warm chain. The group's clamped
// processor bound is part of the key: a group whose capacity changed
// between cells (a size-split axis) gets a fresh chain — a stale PMax
// baked into a solver would let the chain search outside the new
// capacity, which is a wrong answer, not just a slow one.
type chainKey struct {
	group  int
	active int
	pMax   float64
}

// NewSweepSolver builds a solver for one chain of related cells.
func NewSweepSolver(opts SweepOptions) *SweepSolver {
	return &SweepSolver{
		opts:   opts,
		chains: make(map[chainKey]*optimize.SweepSolver),
	}
}

// Stats returns the aggregated per-chain solve counters so far.
func (s *SweepSolver) Stats() SweepStats { return s.stats }

// chain returns (creating on first use) the per-(group, active) chain
// with the group's clamped search box baked in.
func (s *SweepSolver) chain(g, active int, po optimize.PatternOptions) *optimize.SweepSolver {
	k := chainKey{group: g, active: active, pMax: po.PMax}
	sv, ok := s.chains[k]
	if !ok {
		sv = optimize.NewSweepSolver(optimize.SweepOptions{
			PatternOptions: po,
			BracketFactor:  s.opts.BracketFactor,
			WarmGridP:      s.opts.WarmGridP,
			WarmGridT:      s.opts.WarmGridT,
		})
		s.chains[k] = sv
	}
	return sv
}

// Observe primes every active group's chain from an externally obtained
// optimum for hm (e.g. a cache hit for the cell), so the chains stay warm
// across cells the solver did not compute itself. Inactive groups'
// chains are left untouched — their next solve falls back to a cold scan,
// which is exactly the conservative behaviour a cache hit warrants.
func (s *SweepSolver) Observe(hm core.HeteroModel, res PatternResult) {
	for _, gp := range res.Groups {
		if gp.Group < 0 || gp.Group >= len(hm.Groups) {
			continue
		}
		m, err := hm.ActiveModel(gp.Group, res.Active)
		if err != nil {
			continue
		}
		po := s.opts.groupOptions(hm.Groups[gp.Group].Size)
		s.chain(gp.Group, res.Active, po).Observe(m, optimize.PatternResult{
			Solution: core.Solution{T: gp.T, P: gp.P, Overhead: gp.GroupOverhead},
			AtPBound: gp.AtPBound,
		})
	}
}

// Solve returns the joint heterogeneous optimum for the next cell of the
// chain. The first cell (and any per-group solve whose warm attempt is
// rejected) pays full-box scans; subsequent cells search only the narrow
// brackets around the previous per-group optima.
func (s *SweepSolver) Solve(hm core.HeteroModel) (PatternResult, error) {
	if s.opts.Cold {
		res, err := OptimalPattern(hm, s.opts.PatternOptions)
		if err != nil {
			return PatternResult{}, err
		}
		s.stats.ColdSolves += solvesIn(res)
		s.stats.Evals += res.Evals
		return res, nil
	}
	if err := hm.Validate(); err != nil {
		return PatternResult{}, err
	}
	evals := 0
	warm := func(g, active int, m core.Model, po optimize.PatternOptions) (optimize.PatternResult, error) {
		sv := s.chain(g, active, po)
		before := sv.Stats()
		res, err := sv.Solve(m)
		after := sv.Stats()
		s.stats.WarmSolves += after.WarmSolves - before.WarmSolves
		s.stats.ColdSolves += after.ColdSolves - before.ColdSolves
		s.stats.Fallbacks += after.Fallbacks - before.Fallbacks
		return res, err
	}
	res, err := solveScan(hm, s.opts.PatternOptions, memoized(hm, warm), &evals)
	if err != nil {
		return PatternResult{}, err
	}
	res.Evals = evals
	s.stats.Evals += evals
	res.Warm = true
	return res, nil
}

// solvesIn counts the per-group solves a cold joint solve performed (one
// per feasible group per distinct comm charge; approximated by the active
// set size, the only observable part).
func solvesIn(res PatternResult) int { return len(res.Groups) }

// BatchOptimalPattern solves every cell of an ordered sweep axis with one
// warm-start chain, returning one result per model. It is the batch
// counterpart of per-cell OptimalPattern calls: same answers within the
// refinement tolerance at a fraction of the evaluations.
func BatchOptimalPattern(models []core.HeteroModel, opts SweepOptions) ([]PatternResult, error) {
	s := NewSweepSolver(opts)
	out := make([]PatternResult, len(models))
	for i, hm := range models {
		res, err := s.Solve(hm)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
