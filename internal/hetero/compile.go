package hetero

import (
	"fmt"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/speedup"
)

// CompileTopology lowers a platform topology to the core layer: one
// single-group Model per group — the group's rates, its scenario-calibrated
// resilience costs (Calibrate at the group's own size and measured costs)
// and its base speedup profile — plus the topology's inter-group comm
// coefficient. It is the heterogeneous counterpart of
// experiments.BuildModel, and degenerates exactly to it: a speed-1 group
// compiles to the same plain Amdahl (or perfectly parallel) profile
// BuildModel would produce, so a one-group zero-comm topology yields a
// HeteroModel whose only group is bit-identical to the classical Model —
// same profile value, same cache key, same frozen kernels.
func CompileTopology(tp platform.Topology, sc costmodel.Scenario, alpha, downtime float64) (core.HeteroModel, error) {
	if err := tp.Validate(); err != nil {
		return core.HeteroModel{}, err
	}
	groups := make([]core.HeteroGroup, len(tp.Groups))
	for i, g := range tp.Groups {
		res, err := g.Platform().Resilience(sc, downtime)
		if err != nil {
			return core.HeteroModel{}, fmt.Errorf("hetero: group %s: %w", g.Name, err)
		}
		var profile speedup.Profile
		switch {
		case g.Speed == 1 && alpha == 0:
			profile = speedup.PerfectlyParallel{}
		case g.Speed == 1:
			am, err := speedup.NewAmdahl(alpha)
			if err != nil {
				return core.HeteroModel{}, fmt.Errorf("hetero: group %s: %w", g.Name, err)
			}
			profile = am
		default:
			ac, err := speedup.NewAmdahlComm(alpha, g.Speed, 0)
			if err != nil {
				return core.HeteroModel{}, fmt.Errorf("hetero: group %s: %w", g.Name, err)
			}
			profile = ac
		}
		m := core.Model{
			LambdaInd:    g.LambdaInd,
			FailStopFrac: g.FailStopFraction,
			SilentFrac:   g.SilentFraction,
			Res:          res,
			Profile:      profile,
		}
		if err := m.Validate(); err != nil {
			return core.HeteroModel{}, fmt.Errorf("hetero: group %s: %w", g.Name, err)
		}
		groups[i] = core.HeteroGroup{Model: m, Size: g.Size}
	}
	return core.HeteroModel{Groups: groups, Comm: tp.Comm}, nil
}
