package hetero

import (
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/xmath"
)

// Warm-vs-cold agreement bounds, mirroring the single-level and two-level
// sweep tests: the overhead is determined to ~Tol², the minimizer's
// position only to ~√Tol on flat basins.
const (
	sweepTolH  = 1e-8
	sweepTolXY = 1e-4
)

// heraAccel is the reference two-group topology of the heterogeneous
// study: Hera's CPU tiles plus a faster, less reliable accelerator group
// with a cheaper (smaller-memory) checkpoint.
func heraAccel(comm float64) platform.Topology {
	hera := platform.Hera()
	return platform.Topology{
		Name: "hera+accel",
		Comm: comm,
		Groups: []platform.Group{
			{Name: "cpu", LambdaInd: hera.LambdaInd, FailStopFraction: hera.FailStopFraction,
				SilentFraction: hera.SilentFraction, Size: hera.Processors, Speed: 1,
				CheckpointCost: hera.CheckpointCost, VerificationCost: hera.VerificationCost},
			{Name: "accel", LambdaInd: 50 * hera.LambdaInd, FailStopFraction: hera.FailStopFraction,
				SilentFraction: hera.SilentFraction, Size: 128, Speed: 8,
				CheckpointCost: 60, VerificationCost: 4},
		},
	}
}

// threeTier adds a burst-buffer-style slow third tier.
func threeTier(comm float64) platform.Topology {
	tp := heraAccel(comm)
	tp.Name = "three-tier"
	tp.Groups = append(tp.Groups, platform.Group{
		Name: "bb", LambdaInd: 5e-9, FailStopFraction: 0.2, SilentFraction: 0.8,
		Size: 2048, Speed: 0.5, CheckpointCost: 900, VerificationCost: 10,
	})
	return tp
}

func compile(t *testing.T, tp platform.Topology, sc costmodel.Scenario, alpha, downtime float64) core.HeteroModel {
	t.Helper()
	hm, err := CompileTopology(tp, sc, alpha, downtime)
	if err != nil {
		t.Fatalf("CompileTopology: %v", err)
	}
	return hm
}

// TestSingleGroupDegeneracy pins the central refactor invariant: a
// one-group topology with zero comm reproduces the classical
// optimize.OptimalPattern answer (T*, P*, H) bit-identically, for every
// sweep-figure scenario and for both the capacity-clamped and the
// default search box.
func TestSingleGroupDegeneracy(t *testing.T) {
	hera := platform.Hera()
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3, costmodel.Scenario5} {
		hm := compile(t, platform.SingleGroup(hera), sc, 0.1, 3600)
		got, err := OptimalPattern(hm, PatternOptions{})
		if err != nil {
			t.Fatalf("%v: OptimalPattern: %v", sc, err)
		}
		ref, err := optimize.OptimalPattern(hm.Groups[0].Model,
			optimize.PatternOptions{PMax: hera.Processors})
		if err != nil {
			t.Fatalf("%v: reference: %v", sc, err)
		}
		if got.Active != 1 || len(got.Groups) != 1 {
			t.Fatalf("%v: expected one active group, got %d", sc, got.Active)
		}
		gp := got.Groups[0]
		if gp.T != ref.T || gp.P != ref.P || got.Overhead != ref.Overhead ||
			gp.GroupOverhead != ref.Overhead || gp.AtPBound != ref.AtPBound {
			t.Errorf("%v: degeneracy not bit-identical:\n got (T=%v P=%v H=%v atB=%t)\nwant (T=%v P=%v H=%v atB=%t)",
				sc, gp.T, gp.P, got.Overhead, gp.AtPBound, ref.T, ref.P, ref.Overhead, ref.AtPBound)
		}
		if gp.Fraction != 1 {
			t.Errorf("%v: single-group fraction = %v, want exactly 1", sc, gp.Fraction)
		}
	}
}

// bruteForce enumerates every non-empty active set, solving each group
// with the identical per-group reference calls and assembling the
// harmonic overhead in group-index order — the independent oracle the
// scan is pinned against.
func bruteForce(t *testing.T, hm core.HeteroModel, opts PatternOptions) PatternResult {
	t.Helper()
	n := len(hm.Groups)
	best := PatternResult{Overhead: math.Inf(1)}
	for mask := 1; mask < 1<<n; mask++ {
		active := 0
		for g := 0; g < n; g++ {
			if mask&(1<<g) != 0 {
				active++
			}
		}
		solves := make([]groupSolve, 0, active)
		feasible := true
		for g := 0; g < n; g++ {
			if mask&(1<<g) == 0 {
				continue
			}
			m, err := hm.ActiveModel(g, active)
			if err != nil {
				t.Fatalf("ActiveModel(%d, %d): %v", g, active, err)
			}
			res, err := optimize.OptimalPattern(m, opts.groupOptions(hm.Groups[g].Size))
			if err != nil {
				feasible = false
				break
			}
			solves = append(solves, groupSolve{group: g, res: res})
		}
		if !feasible {
			continue
		}
		cand := assemble(solves)
		if cand.Overhead < best.Overhead {
			best = cand
		}
	}
	return best
}

// TestBruteForcePinning pins the G-scan + greedy subset selection against
// the exhaustive subset enumeration on three multi-group scenarios with
// different optimal shapes.
func TestBruteForcePinning(t *testing.T) {
	cases := []struct {
		name  string
		hm    core.HeteroModel
		wantG int // sanity expectation on the optimal active count
	}{
		// Zero comm: adding the second group is free, both always work.
		{"two-group-comm0", compile(t, heraAccel(0), costmodel.Scenario1, 0.1, 3600), 2},
		// A comm term high enough that cooperation no longer pays: the
		// fast accelerator should carry the job alone.
		{"two-group-comm-high", compile(t, heraAccel(3e-3), costmodel.Scenario1, 0.1, 3600), 1},
		// Three tiers under a moderate comm term, different scenario.
		{"three-tier", compile(t, threeTier(2e-5), costmodel.Scenario3, 0.1, 3600), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := PatternOptions{}
			got, err := OptimalPattern(tc.hm, opts)
			if err != nil {
				t.Fatalf("OptimalPattern: %v", err)
			}
			want := bruteForce(t, tc.hm, opts)
			if got.Active != want.Active || len(got.Groups) != len(want.Groups) {
				t.Fatalf("active set size: got %d, want %d", got.Active, want.Active)
			}
			if tc.wantG != 0 && got.Active != tc.wantG {
				t.Errorf("optimal active count = %d, expected %d for this regime", got.Active, tc.wantG)
			}
			if got.Overhead != want.Overhead {
				t.Errorf("combined H: got %v, want %v (brute force)", got.Overhead, want.Overhead)
			}
			for i := range got.Groups {
				g, w := got.Groups[i], want.Groups[i]
				if g.Group != w.Group || g.T != w.T || g.P != w.P || g.GroupOverhead != w.GroupOverhead {
					t.Errorf("group plan %d: got %+v, want %+v", i, g, w)
				}
			}
		})
	}
}

// TestAllocationBoxScan pins the closed-form harmonic split against a
// fine grid scan over the work fraction of a two-group run: no split on
// the grid beats the equalized-completion optimum, and the grid's best
// approaches it.
func TestAllocationBoxScan(t *testing.T) {
	hm := compile(t, heraAccel(1e-5), costmodel.Scenario1, 0.1, 3600)
	got, err := OptimalPattern(hm, PatternOptions{})
	if err != nil {
		t.Fatalf("OptimalPattern: %v", err)
	}
	if got.Active != 2 {
		t.Fatalf("expected both groups active, got %d", got.Active)
	}
	a0 := got.Groups[0].GroupOverhead
	a1 := got.Groups[1].GroupOverhead
	bestGrid := math.Inf(1)
	const cells = 20001
	for i := 1; i < cells; i++ {
		x := float64(i) / cells
		mk := math.Max(x*a0, (1-x)*a1)
		if mk < bestGrid {
			bestGrid = mk
		}
	}
	if bestGrid < got.Overhead*(1-1e-12) {
		t.Errorf("fraction grid beat the harmonic optimum: %v < %v", bestGrid, got.Overhead)
	}
	if d := xmath.RelDiff(bestGrid, got.Overhead); d > 1e-3 {
		t.Errorf("fine fraction grid should approach H*: got %v vs %v (rel %g)", bestGrid, got.Overhead, d)
	}
	// Completion times equalize: x_g·A_g = H for every active group.
	for _, gp := range got.Groups {
		if d := xmath.RelDiff(gp.Fraction*gp.GroupOverhead, got.Overhead); d > 1e-12 {
			t.Errorf("group %d completion time off the equalized makespan by %g", gp.Group, d)
		}
	}
	sum := 0.0
	for _, gp := range got.Groups {
		sum += gp.Fraction
	}
	if d := math.Abs(sum - 1); d > 1e-12 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

// TestSweepWarmMatchesCold is the warm-vs-cold property test along the
// comm axis: one warm chain over smoothly varying comm terms agrees with
// per-cell cold solves on the active set and the combined overhead.
func TestSweepWarmMatchesCold(t *testing.T) {
	comms := xmath.Logspace(1e-7, 1e-3, 12)
	models := make([]core.HeteroModel, len(comms))
	for i, c := range comms {
		models[i] = compile(t, heraAccel(c), costmodel.Scenario1, 0.1, 3600)
	}
	warm, err := BatchOptimalPattern(models, SweepOptions{})
	if err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	for i, hm := range models {
		cold, err := OptimalPattern(hm, PatternOptions{})
		if err != nil {
			t.Fatalf("cell %d cold: %v", i, err)
		}
		w := warm[i]
		if w.Active != cold.Active {
			t.Errorf("cell %d: warm active=%d, cold=%d", i, w.Active, cold.Active)
			continue
		}
		if d := xmath.RelDiff(w.Overhead, cold.Overhead); d > sweepTolH {
			t.Errorf("cell %d: overhead disagrees by %.3g: warm %g vs cold %g",
				i, d, w.Overhead, cold.Overhead)
		}
		for j := range w.Groups {
			if w.Groups[j].Group != cold.Groups[j].Group {
				t.Errorf("cell %d: warm selected group %d, cold %d", i, w.Groups[j].Group, cold.Groups[j].Group)
			}
			if d := xmath.RelDiff(w.Groups[j].P, cold.Groups[j].P); d > sweepTolXY {
				t.Errorf("cell %d group %d: P* disagrees by %.3g", i, j, d)
			}
		}
	}
	st := func() SweepStats {
		s := NewSweepSolver(SweepOptions{})
		for _, hm := range models {
			if _, err := s.Solve(hm); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats()
	}()
	if st.WarmSolves == 0 {
		t.Errorf("comm-axis chain never warm-solved: %+v", st)
	}
}

// TestSweepColdModeBitIdentical pins the escape hatch: Cold mode is
// bit-identical to per-cell OptimalPattern calls.
func TestSweepColdModeBitIdentical(t *testing.T) {
	comms := []float64{1e-6, 1e-5, 1e-4}
	models := make([]core.HeteroModel, len(comms))
	for i, c := range comms {
		models[i] = compile(t, heraAccel(c), costmodel.Scenario3, 0.1, 3600)
	}
	batch, err := BatchOptimalPattern(models, SweepOptions{Cold: true})
	if err != nil {
		t.Fatalf("cold batch: %v", err)
	}
	for i, hm := range models {
		ref, err := OptimalPattern(hm, PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b := batch[i]
		if b.Active != ref.Active || b.Overhead != ref.Overhead {
			t.Errorf("cell %d: cold-mode batch differs: H %v vs %v", i, b.Overhead, ref.Overhead)
		}
		for j := range b.Groups {
			if b.Groups[j] != ref.Groups[j] {
				t.Errorf("cell %d group %d: %+v vs %+v", i, j, b.Groups[j], ref.Groups[j])
			}
		}
	}
}

// TestCompileTopologyDegenerateProfile pins that a speed-1 zero-comm
// group compiles to the plain Amdahl profile — same cache key as the
// classical model, so the hg1| cache layer and the m1| layer share
// frozen kernels for the degenerate case.
func TestCompileTopologyDegenerateProfile(t *testing.T) {
	hm := compile(t, platform.SingleGroup(platform.Hera()), costmodel.Scenario1, 0.1, 3600)
	key, err := hm.Groups[0].Model.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(key, "amdahl:") || strings.Contains(key, "amdahlcomm") {
		t.Errorf("degenerate group should compile to plain Amdahl, key = %q", key)
	}
	hk, err := hm.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(hk, "hg1|") {
		t.Errorf("hetero key namespace: got %q, want hg1| prefix", hk)
	}

	// α = 0 keeps the perfectly-parallel dispatch.
	hm0 := compile(t, platform.SingleGroup(platform.Hera()), costmodel.Scenario1, 0, 3600)
	key0, err := hm0.Groups[0].Model.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(key0, "pp") {
		t.Errorf("α=0 degenerate group should compile to perfectly-parallel, key = %q", key0)
	}
}

// TestHeteroModelValidateAndKey exercises the hetero model's own
// validation and key canonicalization edges.
func TestHeteroModelValidateAndKey(t *testing.T) {
	hm := compile(t, heraAccel(1e-5), costmodel.Scenario1, 0.1, 3600)

	if err := (core.HeteroModel{}).Validate(); err == nil {
		t.Error("empty hetero model validated")
	}
	bad := hm
	bad.Comm = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN comm validated")
	}
	if _, err := bad.CacheKey(); err == nil {
		t.Error("NaN comm keyed")
	}
	bad = hm
	bad.Groups = append([]core.HeteroGroup{}, hm.Groups...)
	bad.Groups[0].Size = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("infinite group size validated")
	}

	k1, err := hm.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	other := compile(t, heraAccel(2e-5), costmodel.Scenario1, 0.1, 3600)
	k2, err := other.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("different comm terms share a cache key")
	}

	// Active-count plumbing: out-of-range arguments fail loudly.
	if _, err := hm.ActiveModel(0, 0); err == nil {
		t.Error("active=0 accepted")
	}
	if _, err := hm.ActiveModel(5, 1); err == nil {
		t.Error("group index out of range accepted")
	}
	// G = 1 returns the group's model unchanged (same profile value).
	m, err := hm.ActiveModel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Profile != hm.Groups[0].Model.Profile {
		t.Error("single-active model must be returned unchanged")
	}
}
