// Package hetero solves the joint optimization problem of a heterogeneous
// platform: given a topology of groups (per-group failure law, speed
// factor, resilience costs, capacity) coupled by an inter-group
// communication term, choose which groups work, how the divisible load
// splits across them, and the pattern (T_g, P_g) each group runs.
//
// # The model
//
// A job of W units of sequential work is divisible: an active set S of
// groups receives fractions x_g (Σ x_g = 1) and each group g processes its
// share with its own verified-checkpointing pattern PATTERN(T_g, P_g)
// under its own model. With |S| = G active groups, every group's speedup
// profile is charged the inter-group exchange term κ·(G−1) per allocated
// processor (core.HeteroModel.ActiveModel), so its effective overhead
//
//	A_g(G) = min_{T, P ≤ Size_g} H_g(T, P; κ·(G−1))
//
// is one single-group pattern optimization — solved by the existing
// optimize machinery on per-group Frozen kernels, never Model.Overhead in
// an inner loop. Overheads are scale-free (time per unit of sequential
// work), so A_g does not depend on x_g and the min-max makespan
//
//	H(S, x) = max_{g∈S} x_g · A_g
//
// is minimized by equalizing completion times: x_g ∝ 1/A_g, giving the
// harmonic combined overhead H(S) = 1/Σ_{g∈S} 1/A_g. For a fixed active
// count G the best set is therefore the G groups with smallest A_g(G),
// and the optimizer scans G = 1..n — a complete search over all 2^n−1
// active sets at n·n pattern solves.
//
// # Degeneracy
//
// A one-group model with zero comm term takes the exact
// optimize.OptimalPattern path (same options, PMax clamped to the group
// size) and returns its (T*, P*, H) unchanged — bit-identical to the
// classical single-platform answer, pinned by tests.
package hetero

import (
	"errors"
	"math"
	"sort"

	"amdahlyd/internal/core"
	"amdahlyd/internal/optimize"
)

// PatternOptions tunes the joint heterogeneous optimization. The
// embedded per-group search box is exactly optimize.PatternOptions; each
// group's PMax is additionally clamped to its capacity.
type PatternOptions struct {
	// PatternOptions bounds every per-group (T, P) solve. PMax defaults
	// to 1e13 and is clamped to min(PMax, group Size) per group.
	optimize.PatternOptions
	// MaxGroups caps the active group count G (0 = no cap beyond the
	// group count itself). The sweep figures use it to pin G.
	MaxGroups int
}

// pMaxDefault mirrors optimize.PatternOptions' default processor bound.
const pMaxDefault = 1e13

// groupOptions derives the per-group search box: the shared options with
// PMax clamped to the group capacity.
func (o PatternOptions) groupOptions(size float64) optimize.PatternOptions {
	po := o.PatternOptions
	if po.PMax == 0 {
		po.PMax = pMaxDefault
	}
	if size < po.PMax {
		po.PMax = size
	}
	return po
}

// GroupPlan is one active group's share of the joint optimum.
type GroupPlan struct {
	// Group is the index into HeteroModel.Groups (= topology order).
	Group int
	// Fraction is the work share x_g ∈ (0, 1].
	Fraction float64
	// T and P are the group's pattern parameters.
	T, P float64
	// GroupOverhead is A_g: the group's effective overhead (including the
	// comm charge of the active count) per unit of its own work.
	GroupOverhead float64
	// AtPBound reports the group's solve stopped at its capacity (or the
	// global PMax) with the overhead still decreasing.
	AtPBound bool
}

// PatternResult is the joint optimum over active set, work split and
// per-group patterns.
type PatternResult struct {
	// Groups lists the active groups' plans in group-index order.
	Groups []GroupPlan
	// Active is the active group count G = len(Groups).
	Active int
	// Overhead is the combined overhead H = 1/Σ 1/A_g (A_0 itself when a
	// single group is active — not the round-tripped reciprocal).
	Overhead float64
	// Evals counts exact-formula evaluations across all per-group solves.
	Evals int
	// Warm reports the result came from a SweepSolver warm-start solve.
	Warm bool
}

// errNoFeasible is returned when no group admits a feasible pattern.
var errNoFeasible = errors.New("hetero: no feasible pattern for any group")

// groupSolve is one group's standalone optimum at a given active count.
type groupSolve struct {
	group int
	res   optimize.PatternResult
	ok    bool
}

// solverFunc abstracts how a per-group pattern optimization is performed:
// the cold path calls optimize.OptimalPattern (bit-identical to the
// single-platform reference), the warm path routes through per-chain
// optimize.SweepSolvers.
type solverFunc func(g, active int, m core.Model, opts optimize.PatternOptions) (optimize.PatternResult, error)

// OptimalPattern solves the joint heterogeneous problem by the complete
// active-count scan described in the package comment. Per-group solves
// are memoized on the effective comm charge, so a zero-comm topology pays
// exactly one solve per group across all G.
func OptimalPattern(hm core.HeteroModel, opts PatternOptions) (PatternResult, error) {
	if err := hm.Validate(); err != nil {
		return PatternResult{}, err
	}
	evals := 0
	cold := func(g, active int, m core.Model, po optimize.PatternOptions) (optimize.PatternResult, error) {
		return optimize.OptimalPattern(m, po)
	}
	res, err := solveScan(hm, opts, memoized(hm, cold), &evals)
	if err != nil {
		return PatternResult{}, err
	}
	res.Evals = evals
	return res, nil
}

// memoized wraps a solver with a per-call cache keyed by (group, comm
// charge): distinct active counts reuse the identical solve whenever the
// effective profile is unchanged (always, when Comm = 0).
func memoized(hm core.HeteroModel, solve solverFunc) solverFunc {
	type key struct {
		group int
		extra float64
	}
	type entry struct {
		res optimize.PatternResult
		err error
	}
	memo := make(map[key]entry, len(hm.Groups)*2)
	return func(g, active int, m core.Model, po optimize.PatternOptions) (optimize.PatternResult, error) {
		k := key{group: g, extra: hm.Comm * float64(active-1)}
		if e, ok := memo[k]; ok {
			return e.res, e.err
		}
		res, err := solve(g, active, m, po)
		memo[k] = entry{res: res, err: err}
		return res, err
	}
}

// solveScan runs the G = 1..maxG scan on any per-group solver. Group
// solves that fail (no feasible pattern in the group's box) exclude the
// group from that active count; an active count with fewer feasible
// groups than G contributes no candidate.
func solveScan(hm core.HeteroModel, opts PatternOptions, solve solverFunc, evals *int) (PatternResult, error) {
	n := len(hm.Groups)
	maxG := n
	if opts.MaxGroups > 0 && opts.MaxGroups < n {
		maxG = opts.MaxGroups
	}
	best := PatternResult{Overhead: math.Inf(1)}
	found := false
	for active := 1; active <= maxG; active++ {
		solves := make([]groupSolve, 0, n)
		for g := 0; g < n; g++ {
			m, err := hm.ActiveModel(g, active)
			if err != nil {
				return PatternResult{}, err
			}
			res, err := solve(g, active, m, opts.groupOptions(hm.Groups[g].Size))
			if err != nil {
				// An infeasible group box is an exclusion, not a failure:
				// the remaining groups may still carry the job.
				continue
			}
			*evals += res.Evals
			solves = append(solves, groupSolve{group: g, res: res, ok: true})
		}
		if len(solves) < active {
			continue
		}
		// The best size-G set maximizes Σ 1/A_g: the G smallest overheads.
		// Ties break on group index (sort.SliceStable over an index-ordered
		// slice), keeping the scan deterministic.
		sort.SliceStable(solves, func(i, j int) bool {
			return solves[i].res.Overhead < solves[j].res.Overhead
		})
		cand := assemble(solves[:active])
		if cand.Overhead < best.Overhead {
			best = cand
			found = true
		}
	}
	if !found {
		return PatternResult{}, errNoFeasible
	}
	return best, nil
}

// assemble combines the selected groups' standalone optima into the joint
// plan: harmonic combined overhead and equalized-completion fractions.
// A single active group passes its overhead through untouched — the
// 1/(1/A) round trip is not bit-exact, and the degenerate case must be.
func assemble(selected []groupSolve) PatternResult {
	if len(selected) == 1 {
		s := selected[0]
		return PatternResult{
			Groups: []GroupPlan{{
				Group:         s.group,
				Fraction:      1,
				T:             s.res.T,
				P:             s.res.P,
				GroupOverhead: s.res.Overhead,
				AtPBound:      s.res.AtPBound,
			}},
			Active:   1,
			Overhead: s.res.Overhead,
		}
	}
	// Deterministic arithmetic order: accumulate in group-index order.
	ordered := make([]groupSolve, len(selected))
	copy(ordered, selected)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].group < ordered[j].group })
	inv := 0.0
	for _, s := range ordered {
		inv += 1 / s.res.Overhead
	}
	h := 1 / inv
	plans := make([]GroupPlan, len(ordered))
	for i, s := range ordered {
		plans[i] = GroupPlan{
			Group:         s.group,
			Fraction:      h / s.res.Overhead,
			T:             s.res.T,
			P:             s.res.P,
			GroupOverhead: s.res.Overhead,
			AtPBound:      s.res.AtPBound,
		}
	}
	return PatternResult{Groups: plans, Active: len(plans), Overhead: h}
}
