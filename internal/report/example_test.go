package report_test

import (
	"fmt"
	"math"
	"os"

	"amdahlyd/internal/report"
)

func ExampleTable_Render() {
	tb := report.NewTable("Optimal patterns on Hera",
		"scenario", "P*", "T* (s)")
	tb.AddRow("1", "219", "6239")
	tb.AddRow("3", "257", "9022")
	tb.Render(os.Stdout)
	// Output:
	// Optimal patterns on Hera
	// scenario  P*   T* (s)
	// ---------------------
	// 1         219  6239
	// 3         257  9022
}

func ExampleLogSlope() {
	// P* = Θ(λ^-1/4): recover the exponent from samples.
	var s report.Series
	for _, lam := range []float64{1e-12, 1e-10, 1e-8} {
		s.Add(lam, 3.1e3*math.Pow(lam, -0.25))
	}
	slope, _ := report.LogSlope(s)
	fmt.Printf("slope = %.2f\n", slope)
	// Output:
	// slope = -0.25
}
