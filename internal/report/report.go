// Package report renders experiment results as aligned text tables, CSV
// series and ASCII charts.
//
// Substitution note: the paper's figures are matplotlib plots. Go has no
// comparable plotting ecosystem, so every figure is emitted (a) as a CSV
// series file suitable for external plotting and (b) as an ASCII chart
// that shows the same shape — who wins, by what factor, where curves
// cross — which is the property the reproduction must preserve.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Fmt formats a float compactly for tables: fixed notation in a readable
// range, scientific outside it, and "-" for NaN (missing values).
func Fmt(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	}
	a := math.Abs(v)
	switch {
	case a >= 1e6 || a < 1e-4:
		return strconv.FormatFloat(v, 'e', 3, 64)
	case a >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case a >= 1:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 5, 64)
	}
}

// Table is a titled, column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are
// rejected.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Columns))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// AddFloats appends a row of formatted floats after a leading label.
func (t *Table) AddFloats(label string, vals ...float64) error {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, Fmt(v))
	}
	return t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing padding.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()
			b.Reset()
			b.WriteString(strings.TrimRight(s, " "))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named curve, the unit the paper's figures are made of.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// WriteSeriesCSV emits series in long form: series,x,y — one row per
// point, trivially consumable by any plotting tool.
func WriteSeriesCSV(w io.Writer, xLabel, yLabel string, series ...Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", xLabel, yLabel}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', 12, 64),
				strconv.FormatFloat(p.Y, 'g', 12, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// LogSlope estimates the log-log slope of a series by least squares over
// its positive points: the tool used to verify the paper's asymptotic
// orders (P* = Θ(λ^-1/4) etc.) from experiment output.
func LogSlope(s Series) (float64, error) {
	var xs, ys []float64
	for _, p := range s.Points {
		if p.X > 0 && p.Y > 0 {
			xs = append(xs, math.Log(p.X))
			ys = append(ys, math.Log(p.Y))
		}
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("report: need >= 2 positive points for a slope, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("report: degenerate x values")
	}
	return (n*sxy - sx*sy) / den, nil
}
