package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders series as an ASCII scatter/line chart with optional
// logarithmic axes — the terminal stand-in for the paper's figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX and LogY select logarithmic axes (points with non-positive
	// coordinates are dropped on log axes).
	LogX, LogY bool
	// Width and Height are the plot-area dimensions in characters
	// (defaults 72×20).
	Width, Height int
}

// markers cycles through distinguishable glyphs per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart with a frame, tick labels and a legend.
func (c Chart) Render(w io.Writer, series ...Series) error {
	width, height := c.Width, c.Height
	if width == 0 {
		width = 72
	}
	if height == 0 {
		height = 20
	}
	if width < 16 || height < 4 {
		return errors.New("report: chart too small")
	}

	type xy struct{ x, y float64 }
	var pts [][]xy
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		var cur []xy
		for _, p := range s.Points {
			x, y := p.X, p.Y
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			cur = append(cur, xy{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		pts = append(pts, cur)
	}
	if math.IsInf(minX, 1) {
		return errors.New("report: no plottable points")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, cur := range pts {
		mk := markers[si%len(markers)]
		for _, p := range cur {
			col := int((p.x - minX) / (maxX - minX) * float64(width-1))
			row := int((p.y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-row][col] = mk
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	yTop := Fmt(axisVal(maxY, c.LogY))
	yBot := Fmt(axisVal(minY, c.LogY))
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = pad(yTop, labelW)
		case height - 1:
			label = pad(yBot, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	xLo := Fmt(axisVal(minX, c.LogX))
	xHi := Fmt(axisVal(maxX, c.LogX))
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo,
		strings.Repeat(" ", gap), xHi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
