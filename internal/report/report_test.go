package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/xmath"
)

func TestFmt(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "-"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{0, "0"},
		{0.108, "0.10800"},
		{3.25, "3.250"},
		{219.4, "219.4"},
		{6240, "6240.0"},
		{1.69e-8, "1.690e-08"},
		{2.5e7, "2.500e+07"},
	}
	for _, c := range cases {
		if got := Fmt(c.v); got != c.want {
			t.Errorf("Fmt(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Theorem 2 on Hera", "scenario", "P*", "T*")
	if err := tb.AddRow("1", "219", "6240"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddFloats("2", 220.0, 6240.0); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("rows = %d", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Theorem 2 on Hera", "scenario", "P*", "219", "6240.0", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// Header and rows align: the "P*" column start must match.
	lines := strings.Split(out, "\n")
	head := strings.Index(lines[1], "P*")
	row := strings.Index(lines[3], "219")
	if head != row {
		t.Errorf("columns misaligned: header at %d, cell at %d\n%s", head, row, out)
	}
}

func TestTableRejectsWideRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	if err := tb.AddRow("1", "2", "3"); err == nil {
		t.Error("over-wide row accepted")
	}
	if err := tb.AddRow("1"); err != nil {
		t.Error("short row should be padded, not rejected")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var s1, s2 Series
	s1.Name = "first-order"
	s1.Add(1e-12, 100)
	s1.Add(1e-10, 50)
	s2.Name = "optimal"
	s2.Add(1e-12, 110)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "lambda", "pstar", s1, s2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header + 3 rows, got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "series,lambda,pstar" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "first-order,1e-12,100") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestLogSlopeRecoverseExponents(t *testing.T) {
	// y = 3·x^(-1/4): slope must be −0.25.
	var s Series
	for _, x := range []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8} {
		s.Add(x, 3*math.Pow(x, -0.25))
	}
	slope, err := LogSlope(s)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.EqualWithin(slope, -0.25, 1e-9, 1e-12) {
		t.Errorf("slope = %g, want −0.25", slope)
	}
}

func TestLogSlopeErrors(t *testing.T) {
	var s Series
	s.Add(1, 1)
	if _, err := LogSlope(s); err == nil {
		t.Error("single point accepted")
	}
	var neg Series
	neg.Add(-1, 5)
	neg.Add(-2, 5)
	if _, err := LogSlope(neg); err == nil {
		t.Error("non-positive points accepted")
	}
	var same Series
	same.Add(2, 5)
	same.Add(2, 7)
	if _, err := LogSlope(same); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestChartRender(t *testing.T) {
	var s Series
	s.Name = "P* vs lambda"
	for _, x := range []float64{1e-12, 1e-11, 1e-10, 1e-9, 1e-8} {
		s.Add(x, math.Pow(x, -0.25))
	}
	var buf bytes.Buffer
	c := Chart{Title: "Fig 5(a)", XLabel: "lambda", YLabel: "P*", LogX: true, LogY: true}
	if err := c.Render(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 5(a)") || !strings.Contains(out, "P* vs lambda") {
		t.Errorf("chart missing title or legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("chart has no data markers")
	}
	// A decreasing power law must put the '*' of the smallest x in the
	// top-left region and of the largest x in the bottom-right region.
	lines := strings.Split(out, "\n")
	var first, last int
	for i, ln := range lines {
		// Only plot-area rows (framed with '|'), not the legend.
		if strings.Contains(ln, "|") && strings.Contains(ln, "*") {
			if first == 0 {
				first = i
			}
			last = i
		}
	}
	topCol := strings.Index(lines[first], "*")
	botCol := strings.LastIndex(lines[last], "*")
	if !(topCol < botCol) {
		t.Errorf("decreasing curve not rendered as decreasing (cols %d vs %d)", topCol, botCol)
	}
}

func TestChartMultiSeriesMarkers(t *testing.T) {
	var a, b Series
	a.Name, b.Name = "A", "B"
	a.Add(1, 1)
	a.Add(2, 2)
	b.Add(1, 2)
	b.Add(2, 1)
	var buf bytes.Buffer
	if err := (Chart{}).Render(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("distinct markers missing:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	var empty Series
	var buf bytes.Buffer
	if err := (Chart{}).Render(&buf, empty); err == nil {
		t.Error("empty series accepted")
	}
	var s Series
	s.Add(-1, -1)
	if err := (Chart{LogX: true, LogY: true}).Render(&buf, s); err == nil {
		t.Error("only non-positive points on log axes accepted")
	}
	if err := (Chart{Width: 2, Height: 2}).Render(&buf, s); err == nil {
		t.Error("tiny chart accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// A flat line must render without division by zero.
	var s Series
	s.Add(1, 5)
	s.Add(2, 5)
	s.Add(3, 5)
	var buf bytes.Buffer
	if err := (Chart{}).Render(&buf, s); err != nil {
		t.Fatal(err)
	}
}
