// Package backoff is the repo's one retry-delay discipline: exponential
// backoff with deterministic splitmix64 jitter. The campaign executor
// (internal/campaign) and the service retry client (service.RetryClient,
// and through it the fleet router) share this exact schedule, so
// co-failing work decorrelates the same way everywhere without making
// any run nondeterministic — same seed, same attempt, same delay.
package backoff

import "time"

// Delay returns the wait before retrying after the given 1-based failed
// attempt: base·2^(attempt-1) plus up to 100% jitter derived
// deterministically from (seed, attempt) by splitmix64. Attempts below 1
// are treated as 1.
func Delay(base time.Duration, attempt int, seed uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base << uint(attempt-1)
	return d + time.Duration(Jitter(seed, attempt)*float64(d))
}

// Jitter returns the deterministic jitter fraction in [0, 1) for the
// (seed, attempt) pair: one splitmix64 step over seed + attempt·γ, the
// same mix the campaign executor has always used.
func Jitter(seed uint64, attempt int) float64 {
	h := seed + uint64(attempt)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
