package backoff

import (
	"testing"
	"time"
)

func TestDelayDeterministicAndBounded(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := Delay(base, attempt, 42)
		d2 := Delay(base, attempt, 42)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		lo := base << uint(attempt-1)
		if d1 < lo || d1 >= 2*lo {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, lo, 2*lo)
		}
	}
}

func TestDelayClampsAttemptBelowOne(t *testing.T) {
	if got, want := Delay(time.Second, 0, 7), Delay(time.Second, 1, 7); got != want {
		t.Fatalf("attempt 0 should behave as 1: %v vs %v", got, want)
	}
}

func TestJitterDecorrelatesSeeds(t *testing.T) {
	// Different seeds must not share a jitter sequence (that is the whole
	// point: co-failing cells back off at different times).
	same := 0
	for attempt := 1; attempt <= 16; attempt++ {
		if Jitter(1, attempt) == Jitter(2, attempt) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d of 16 attempts had identical jitter across seeds", same)
	}
	for attempt := 1; attempt <= 16; attempt++ {
		j := Jitter(99, attempt)
		if !(j >= 0 && j < 1) {
			t.Fatalf("jitter %g outside [0,1)", j)
		}
	}
}
