package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault injection for the fleet, extending the deterministic
// campaign.FaultPlan idea one level up: instead of failing Monte-Carlo
// attempts inside one process, a fleet FaultPlan misbehaves *replicas* —
// by peer and request class — so every failure mode the router must
// survive (503 shedding, slow owners, replicas dying mid-stream) is
// driven by a scripted test rather than luck. Faults are deterministic:
// same plan, same request order, same injections.

// Fault describes one injected misbehaviour.
type Fault struct {
	// Code short-circuits matching requests with this HTTP status before
	// the real handler runs; 503 carries Retry-After: 1, exercising the
	// load-shedding path end to end.
	Code int `json:"code,omitempty"`
	// DelayMS stalls matching requests before handling, exercising the
	// hedging path (a slow owner must not hold the client hostage).
	DelayMS int `json:"delay_ms,omitempty"`
	// Drop aborts the connection without a response — the closest
	// in-process stand-in for a replica dying mid-request.
	Drop bool `json:"drop,omitempty"`
	// DropAfterRows delays the Drop until N complete NDJSON rows have
	// been written, killing a replica mid-stream at a row boundary (the
	// router's line reassembly covers mid-row cuts regardless).
	DropAfterRows int `json:"drop_after_rows,omitempty"`
	// Reqs limits the fault to the first N matching requests fleet-wide
	// per plan entry (0 = every matching request, forever). Bounded
	// faults let a test script "fail twice, then recover".
	Reqs int `json:"reqs,omitempty"`
}

// FaultPlan maps "<peer>|<class>" to injected faults. Peer is the name
// the Controller wraps a replica under; class is the request class
// (first path segment under /v1/, e.g. "optimize", "sweep", "multilevel",
// plus "readyz"/"healthz"/"stats"). Either side may be "*".
type FaultPlan map[string]Fault

// Validate rejects negative knobs and malformed keys.
func (fp FaultPlan) Validate() error {
	for k, f := range fp {
		if !strings.Contains(k, "|") && k != "*" {
			return fmt.Errorf("fleet: fault key %q is not \"peer|class\" or \"*\"", k)
		}
		if f.Code < 0 || f.DelayMS < 0 || f.DropAfterRows < 0 || f.Reqs < 0 {
			return fmt.Errorf("fleet: fault %q: negative field", k)
		}
		if f.Code != 0 && (f.Code < 100 || f.Code > 599) {
			return fmt.Errorf("fleet: fault %q: status %d outside 100-599", k, f.Code)
		}
	}
	return nil
}

// ReadFaultPlan decodes a plan from JSON.
func ReadFaultPlan(r io.Reader) (FaultPlan, error) {
	var fp FaultPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fp); err != nil {
		return nil, fmt.Errorf("fleet: bad fault plan: %w", err)
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// Controller applies a FaultPlan to wrapped replica handlers, keeping
// the fleet-wide per-entry request counters that make bounded faults
// (Reqs) deterministic across peers.
type Controller struct {
	mu    sync.Mutex
	plan  FaultPlan
	fired map[string]int // plan entry key → matches consumed
	seen  map[string]int // "peer|class" → requests observed (test observability)
}

// NewController builds a controller for the plan (nil means no faults,
// counters still collected).
func NewController(plan FaultPlan) *Controller {
	return &Controller{plan: plan, fired: make(map[string]int), seen: make(map[string]int)}
}

// SetPlan swaps the plan mid-run (counters keep accumulating), letting a
// test script phase changes: "drop everything on p1, then heal it".
func (c *Controller) SetPlan(plan FaultPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plan = plan
}

// Seen returns how many requests of the class reached the peer
// (post-injection short-circuits included).
func (c *Controller) Seen(peer, class string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen[peer+"|"+class]
}

// RequestClass maps an URL path onto its fault class: the first path
// segment under /v1/ ("optimize", "sweep", "multilevel", "cache", …),
// or the bare first segment for the health endpoints.
func RequestClass(path string) string {
	p := strings.TrimPrefix(path, "/")
	if rest, ok := strings.CutPrefix(p, "v1/"); ok {
		p = rest
	}
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "*"
	}
	return p
}

// match resolves the fault for (peer, class), most specific key first,
// and consumes one firing if the entry is bounded. The consumed counter
// is per plan entry and fleet-wide, so {"*|optimize": {delay, reqs: 1}}
// delays exactly one request regardless of which peer it lands on.
func (c *Controller) match(peer, class string) (Fault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[peer+"|"+class]++
	for _, key := range []string{peer + "|" + class, peer + "|*", "*|" + class, "*"} {
		f, ok := c.plan[key]
		if !ok {
			continue
		}
		if f.Reqs > 0 && c.fired[key] >= f.Reqs {
			continue
		}
		c.fired[key]++
		return f, true
	}
	return Fault{}, false
}

// Wrap applies the plan to a replica handler under the given peer name.
func (c *Controller) Wrap(peer string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := c.match(peer, RequestClass(r.URL.Path))
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		if f.DelayMS > 0 {
			select {
			case <-time.After(time.Duration(f.DelayMS) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		switch {
		case f.Drop && f.DropAfterRows == 0:
			panic(http.ErrAbortHandler)
		case f.Drop:
			next.ServeHTTP(&droppingWriter{ResponseWriter: w, rowsLeft: f.DropAfterRows}, r)
		case f.Code != 0:
			if f.Code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(f.Code)
			fmt.Fprintf(w, "{\"error\":\"fleet: injected fault (status %d)\"}\n", f.Code)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// droppingWriter forwards writes until rowsLeft complete NDJSON rows
// have passed, then aborts the connection — a replica dying mid-stream.
type droppingWriter struct {
	http.ResponseWriter
	rowsLeft int
}

func (d *droppingWriter) Write(p []byte) (int, error) {
	if d.rowsLeft <= 0 {
		panic(http.ErrAbortHandler)
	}
	d.rowsLeft -= strings.Count(string(p), "\n")
	return d.ResponseWriter.Write(p)
}

// Flush keeps the wrapped writer streaming-capable.
func (d *droppingWriter) Flush() {
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
