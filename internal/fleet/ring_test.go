package fleet

import (
	"fmt"
	"strings"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real model keys: long common prefix, short varying
		// tail — the case the ring hash finisher exists for.
		keys[i] = fmt.Sprintf("m1|hera|s1|a=0.1|d=3600|l=%d", i)
	}
	return keys
}

func TestRingSpreadsKeysRoughlyEvenly(t *testing.T) {
	r := NewRing()
	peers := []string{"p1", "p2", "p3"}
	for _, p := range peers {
		r.Add(p)
	}
	counts := map[string]int{}
	keys := testKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of the keyspace; want a rough third", p, 100*share)
		}
	}
}

// TestRingRemovalOnlyMovesTheRemovedPeersKeys is the consistent-hashing
// property the fleet's failover and warm-fill cost model rests on:
// evicting a peer must not reshuffle keys between the survivors.
func TestRingRemovalOnlyMovesTheRemovedPeersKeys(t *testing.T) {
	r := NewRing()
	for _, p := range []string{"p1", "p2", "p3", "p4"} {
		r.Add(p)
	}
	keys := testKeys(4000)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Owner(k)
	}
	r.Remove("p3")
	for i, k := range keys {
		after := r.Owner(k)
		if before[i] != "p3" && after != before[i] {
			t.Fatalf("key %q moved %s → %s although p3 was removed", k, before[i], after)
		}
		if after == "p3" {
			t.Fatalf("key %q still owned by removed peer", k)
		}
	}
	// And re-adding restores the original placement exactly (vnode hashes
	// are deterministic).
	r.Add("p3")
	for i, k := range keys {
		if got := r.Owner(k); got != before[i] {
			t.Fatalf("key %q owned by %s after rejoin; was %s", k, got, before[i])
		}
	}
}

func TestRingOwnersDistinctAndOrdered(t *testing.T) {
	r := NewRing()
	for _, p := range []string{"a", "b", "c"} {
		r.Add(p)
	}
	for _, k := range testKeys(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v; want 3 distinct peers", k, owners)
		}
		seen := map[string]bool{}
		for _, p := range owners {
			if seen[p] {
				t.Fatalf("Owners(%q, 3) repeats %s: %v", k, p, owners)
			}
			seen[p] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] %s != Owner %s", owners[0], r.Owner(k))
		}
	}
	if got := r.Owners("x", 10); len(got) != 3 {
		t.Fatalf("Owners with n beyond membership = %v; want all 3", got)
	}
	if got := NewRing().Owner("x"); got != "" {
		t.Fatalf("empty ring Owner = %q; want empty", got)
	}
}

func TestRingNeighbourIsWarmFillDonor(t *testing.T) {
	r := NewRing()
	r.Add("p1")
	r.Add("p2")
	// Member case: the neighbour is another member.
	if n := r.Neighbour("p1"); n != "p2" {
		t.Fatalf("Neighbour(p1) = %q; want p2", n)
	}
	// Joiner case: a peer not (yet) in the ring still has a donor — the
	// member owning its keyspace right now.
	if n := r.Neighbour("p9"); n == "" || n == "p9" {
		t.Fatalf("Neighbour of absent joiner = %q; want a member", n)
	}
	// Single-member ring: the lone member is every joiner's donor, and
	// has no donor itself.
	r.Remove("p2")
	if n := r.Neighbour("p2"); n != "p1" {
		t.Fatalf("Neighbour of rejoining p2 = %q; want p1", n)
	}
	if n := r.Neighbour("p1"); n != "" {
		t.Fatalf("lone member's Neighbour = %q; want none", n)
	}
}

func TestRequestClass(t *testing.T) {
	cases := map[string]string{
		"/v1/optimize":            "optimize",
		"/v1/sweep":               "sweep",
		"/v1/multilevel/optimize": "multilevel",
		"/v1/hetero/simulate":     "hetero",
		"/v1/cache/fill":          "cache",
		"/readyz":                 "readyz",
		"/healthz":                "healthz",
		"/":                       "*",
	}
	for path, want := range cases {
		if got := RequestClass(path); got != want {
			t.Errorf("RequestClass(%q) = %q; want %q", path, got, want)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	if err := (FaultPlan{"p1|optimize": {Code: 503}}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for name, fp := range map[string]FaultPlan{
		"bad key":    {"p1": {Code: 503}},
		"bad status": {"p1|*": {Code: 42}},
		"negative":   {"*": {DelayMS: -1}},
	} {
		if err := fp.Validate(); err == nil {
			t.Errorf("%s: plan %v validated; want error", name, fp)
		}
	}
	fp, err := ReadFaultPlan(strings.NewReader(`{"*|optimize":{"code":503,"reqs":2}}`))
	if err != nil {
		t.Fatalf("ReadFaultPlan: %v", err)
	}
	if fp["*|optimize"].Reqs != 2 {
		t.Fatalf("decoded plan %v lost reqs", fp)
	}
}

// TestFaultBoundedReqsAreFleetWide pins the determinism contract: a
// bounded entry fires exactly Reqs times across all peers, most-specific
// key first.
func TestFaultBoundedReqsAreFleetWide(t *testing.T) {
	c := NewController(FaultPlan{
		"*|optimize": {Code: 503, Reqs: 2},
		"p2|*":       {DelayMS: 1},
	})
	// p1 consumes both bounded firings; the third optimize match falls
	// through to no fault.
	for i, wantFault := range []bool{true, true, false} {
		_, ok := c.match("p1", "optimize")
		if ok != wantFault {
			t.Fatalf("p1 optimize match %d = %v; want %v", i, ok, wantFault)
		}
	}
	// p2's more specific peer wildcard still matches (separate entry).
	if f, ok := c.match("p2", "optimize"); !ok || f.DelayMS != 1 {
		t.Fatalf("p2 match = %+v, %v; want the p2|* delay", f, ok)
	}
	if got := c.Seen("p1", "optimize"); got != 3 {
		t.Fatalf("Seen(p1, optimize) = %d; want 3", got)
	}
}
