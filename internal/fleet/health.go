package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"amdahlyd/internal/service"
)

// HealthOptions tunes the checker. The zero value probes every 500 ms,
// evicts after 2 consecutive failures and readmits after 2 consecutive
// passes — eager enough that a killed replica leaves the ring within a
// second, hysteretic enough that one dropped probe does not flap it.
type HealthOptions struct {
	// Interval between probe rounds (default 500 ms).
	Interval time.Duration
	// Timeout per probe (default Interval, so rounds never pile up).
	Timeout time.Duration
	// FailAfter consecutive failed probes evict a member (default 2).
	FailAfter int
	// RiseAfter consecutive passing probes readmit a non-member
	// (default 2).
	RiseAfter int
	// Client issues the probes (default http.DefaultClient).
	Client *http.Client
	// WarmFillLimit caps entries pulled per warm-fill (default 256,
	// the replica's own default; 0 keeps that default, negative
	// disables warm-fill).
	WarmFillLimit int
}

func (o HealthOptions) interval() time.Duration {
	if o.Interval > 0 {
		return o.Interval
	}
	return 500 * time.Millisecond
}

func (o HealthOptions) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return o.interval()
}

func (o HealthOptions) failAfter() int {
	if o.FailAfter > 0 {
		return o.FailAfter
	}
	return 2
}

func (o HealthOptions) riseAfter() int {
	if o.RiseAfter > 0 {
		return o.RiseAfter
	}
	return 2
}

func (o HealthOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

// HealthChecker drives ring membership from each peer's /readyz: a
// replica that stops answering (dead, draining, or saturated past its
// queue) is evicted after FailAfter consecutive failed probes, and a
// replica that comes back is warm-filled from its ring neighbour —
// the member that owned its keyspace in its absence — before being
// readmitted, so a rejoining peer takes traffic warm instead of paying
// cold solves for keys its neighbour already has.
type HealthChecker struct {
	ring  *Ring
	peers map[string]string // name → base URL
	opts  HealthOptions

	mu     sync.Mutex
	fails  map[string]int
	passes map[string]int
	fills  int // completed warm-fills (test observability)

	stop chan struct{}
	done chan struct{}
}

// NewHealthChecker builds a checker over the same peer set as the
// router; it drives the router's ring but owns no other router state.
func NewHealthChecker(ring *Ring, peers map[string]string, opts HealthOptions) *HealthChecker {
	return &HealthChecker{
		ring:   ring,
		peers:  peers,
		opts:   opts,
		fails:  make(map[string]int),
		passes: make(map[string]int),
	}
}

// Start launches the probe loop; Stop ends it.
func (h *HealthChecker) Start() {
	if h.stop != nil {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.opts.interval())
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.ProbeOnce(context.Background())
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it.
func (h *HealthChecker) Stop() {
	if h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop = nil
}

// Fills returns how many warm-fills have completed.
func (h *HealthChecker) Fills() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fills
}

// ProbeOnce runs one probe round across all peers (concurrently) and
// applies the membership transitions. Probes launch and verdicts apply
// in sorted peer order, so a round's evict/join sequence is identical
// across runs. Exported so tests can step the checker deterministically
// instead of sleeping through intervals.
func (h *HealthChecker) ProbeOnce(ctx context.Context) {
	names := make([]string, 0, len(h.peers))
	for name := range h.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	type verdict struct {
		peer string
		ok   bool
	}
	results := make(chan verdict, len(names))
	for _, name := range names {
		go func(name, base string) {
			results <- verdict{peer: name, ok: h.probe(ctx, base)}
		}(name, h.peers[name])
	}
	verdicts := make(map[string]bool, len(names))
	for range names {
		v := <-results
		verdicts[v.peer] = v.ok
	}
	for _, name := range names {
		h.observe(name, verdicts[name])
	}
}

// probe is one readiness check: anything but a timely 200 is a failure
// (a 503 from a draining or saturated replica deliberately reads as
// "stop routing here", which is the point of the readiness split).
func (h *HealthChecker) probe(ctx context.Context, base string) bool {
	pctx, cancel := context.WithTimeout(ctx, h.opts.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := h.opts.client().Do(req)
	if err != nil {
		return false
	}
	defer drainClose(resp)
	return resp.StatusCode == http.StatusOK
}

// observe applies one probe verdict with hysteresis.
func (h *HealthChecker) observe(peer string, ok bool) {
	h.mu.Lock()
	if !ok {
		h.fails[peer]++
		h.passes[peer] = 0
		evict := h.fails[peer] >= h.opts.failAfter()
		h.mu.Unlock()
		if evict {
			h.ring.Remove(peer)
		}
		return
	}
	h.fails[peer] = 0
	h.passes[peer]++
	join := h.passes[peer] >= h.opts.riseAfter() && !h.ring.Has(peer)
	h.mu.Unlock()
	if !join {
		return
	}
	// Warm-fill before admission: once the peer is in the ring it takes
	// traffic, so the fill must land first. The donor is computed against
	// the current ring (peer absent): the member owning its keyspace now.
	if h.opts.WarmFillLimit >= 0 {
		if donor := h.ring.Neighbour(peer); donor != "" {
			if _, err := WarmFill(context.Background(), h.opts.client(),
				h.peers[donor], h.peers[peer], h.opts.WarmFillLimit); err == nil {
				h.mu.Lock()
				h.fills++
				h.mu.Unlock()
			}
			// A failed fill is not a reason to keep a ready peer out of the
			// ring: it joins cold, exactly as if it had no donor.
		}
	}
	h.ring.Add(peer)
}

// WarmFill pulls up to limit hot cache entries from the donor replica
// and pushes them into the joiner, returning how many the joiner
// accepted. Sound end to end: entries are pure functions of their keys
// and float64 survives the JSON hop bit-exactly, so a filled entry is
// indistinguishable from one the joiner solved itself.
func WarmFill(ctx context.Context, client *http.Client, donorURL, joinerURL string, limit int) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := donorURL + "/v1/cache/hot"
	if limit > 0 {
		url = fmt.Sprintf("%s?limit=%d", url, limit)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fleet: warm-fill pull from %s: %w", donorURL, err)
	}
	hot, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("fleet: warm-fill pull from %s: %w", donorURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fleet: warm-fill pull from %s: status %d", donorURL, resp.StatusCode)
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, joinerURL+"/v1/cache/fill", bytes.NewReader(hot))
	if err != nil {
		return 0, err
	}
	preq.Header.Set("Content-Type", "application/json")
	presp, err := client.Do(preq)
	if err != nil {
		return 0, fmt.Errorf("fleet: warm-fill push to %s: %w", joinerURL, err)
	}
	defer drainClose(presp)
	if presp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fleet: warm-fill push to %s: status %d", joinerURL, presp.StatusCode)
	}
	var fr service.FillResponse
	if err := json.NewDecoder(io.LimitReader(presp.Body, 1<<20)).Decode(&fr); err != nil {
		return 0, fmt.Errorf("fleet: warm-fill push to %s: %w", joinerURL, err)
	}
	return fr.Accepted, nil
}
