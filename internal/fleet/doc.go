// Package fleet turns N amdahl-serve replicas into one fault-tolerant
// planning service (DESIGN.md, "Planning fleet").
//
// The shard space is the canonical model-key space the service layer
// already caches under (core.Model.CacheKey and the ml1|/hg1| variants):
// a consistent-hash Ring places each key on an owner replica, so all
// work for one model concentrates where its compiled kernels and result
// caches live. The Router fronts the fleet — it extracts the shard key
// from each request body, forwards to the owner, hedges slow owners to
// the ring successor, fails over on transport errors and transient
// statuses with bounded jittered backoff (internal/backoff), resumes a
// sweep stream mid-axis when a replica dies after k rows, and sheds load
// at its own bounded in-flight cap instead of amplifying a saturated
// replica into a retry storm. The HealthChecker drives ring membership
// from /readyz probes and warm-fills a rejoining replica from its ring
// Neighbour before readmission.
//
// Everything rests on one invariant inherited from the service layer:
// responses are pure functions of requests (solves are deterministic,
// campaigns are seeded). That is what makes hedging and replay always
// safe, warm-fill bit-identical, and an N-node fleet indistinguishable
// from a single node — the fleet adds availability, never a different
// answer.
//
// FaultPlan scripts replica misbehaviour (injected statuses, delays,
// connection drops, mid-stream deaths) by peer and request class, so
// every degradation path above is exercised by deterministic tests
// rather than left to production to discover.
package fleet
