package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amdahlyd/internal/backoff"
	"amdahlyd/internal/service"
)

// Router is the fleet's front door: it computes each request's shard key
// (the same canonical model key the replicas cache under), looks up the
// owner on the consistent-hash ring, and forwards. Around that one-line
// idea sits the robustness machinery:
//
//   - hedged requests — if the owner is slow, a duplicate goes to the
//     next ring successor and the first good answer wins (safe because
//     every response is a pure function of the request);
//   - failover — transport errors and transient statuses (503/502/504)
//     re-route to the successor with bounded, jittered backoff;
//   - mid-stream failover — a sweep replica dying after k rows is
//     replaced by re-issuing the remaining axis (Values[k:]) to the
//     successor and splicing the streams at the row boundary;
//   - load shedding — the router bounds its own in-flight set and sheds
//     with 503 + Retry-After rather than queueing unboundedly, and it
//     honours a replica's Retry-After as a backoff floor, so saturation
//     produces a calm convergence instead of a retry storm.
//
// The router holds no model state: bit-identity with a single node falls
// out of forwarding verbatim bodies to replicas running the same engine.
type Router struct {
	opts RouterOptions
	ring *Ring
	mux  *http.ServeMux

	// inflight bounds concurrently forwarded requests; nil = unbounded.
	inflight chan struct{}
	shed     atomic.Uint64

	mu    sync.Mutex
	peers map[string]*peerCounters
}

// RouterOptions configures a Router. Peers is required; everything else
// has serviceable defaults.
type RouterOptions struct {
	// Peers maps peer name → base URL (e.g. "http://10.0.0.7:8080").
	Peers map[string]string
	// HedgeAfter is how long the owner may sit on a unary request before
	// a duplicate is sent to its ring successor (default 150 ms; negative
	// disables hedging). Streams are never hedged — a slow first row is
	// legitimate on a long axis.
	HedgeAfter time.Duration
	// MaxAttempts bounds total sends per request, hedges included
	// (default 4).
	MaxAttempts int
	// RetryBase is the first failover backoff delay (default 50 ms),
	// growing exponentially with deterministic splitmix64 jitter.
	RetryBase time.Duration
	// MaxDelay caps any single backoff wait, including a replica's
	// Retry-After (default 2 s).
	MaxDelay time.Duration
	// MaxInFlight bounds concurrently forwarded requests; past it the
	// router sheds with 503 + Retry-After (default 256; negative =
	// unbounded).
	MaxInFlight int
	// Seed decorrelates this router's backoff jitter from its peers'.
	Seed uint64
	// Client is the forwarding HTTP client (default http.DefaultClient).
	Client *http.Client
}

func (o RouterOptions) hedgeAfter() time.Duration {
	if o.HedgeAfter < 0 {
		return 0
	}
	if o.HedgeAfter == 0 {
		return 150 * time.Millisecond
	}
	return o.HedgeAfter
}

func (o RouterOptions) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 4
}

func (o RouterOptions) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 50 * time.Millisecond
}

func (o RouterOptions) maxDelay() time.Duration {
	if o.MaxDelay > 0 {
		return o.MaxDelay
	}
	return 2 * time.Second
}

func (o RouterOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

// peerCounters is the per-peer forwarding ledger behind /v1/stats.
type peerCounters struct {
	forwards  uint64 // requests sent to this peer (hedges and retries included)
	hedges    uint64 // duplicate sends because the owner was slow
	failovers uint64 // re-routes to this peer after another peer failed
	retries   uint64 // re-sends to this same peer after it failed
	errors    uint64 // transport errors and transient statuses from this peer
}

// NewRouter builds a router over the given peers; all peers start in the
// ring (a HealthChecker prunes the sick ones).
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Peers) == 0 {
		return nil, errors.New("fleet: router needs at least one peer")
	}
	ring := NewRing()
	peers := make(map[string]*peerCounters, len(opts.Peers))
	names := make([]string, 0, len(opts.Peers))
	for name := range opts.Peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := opts.Peers[name]
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: peer %q: base URL %q is not absolute", name, base)
		}
		opts.Peers[name] = strings.TrimRight(base, "/")
		ring.Add(name)
		peers[name] = &peerCounters{}
	}
	rt := &Router{opts: opts, ring: ring, peers: peers}
	if opts.MaxInFlight >= 0 {
		n := opts.MaxInFlight
		if n == 0 {
			n = 256
		}
		rt.inflight = make(chan struct{}, n)
	}
	rt.mux = http.NewServeMux()
	for _, p := range []string{
		"/v1/evaluate", "/v1/optimize", "/v1/simulate",
		"/v1/multilevel/optimize", "/v1/multilevel/simulate",
		"/v1/hetero/optimize", "/v1/hetero/simulate",
	} {
		rt.mux.HandleFunc("POST "+p, rt.handleUnary)
	}
	rt.mux.HandleFunc("POST /v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
	return rt, nil
}

// Ring exposes the membership ring (the health checker drives it).
func (rt *Router) Ring() *Ring { return rt.ring }

// PeerURL returns a peer's base URL ("" for unknown peers).
func (rt *Router) PeerURL(peer string) string { return rt.opts.Peers[peer] }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) bump(peer string, f func(*peerCounters)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if c, ok := rt.peers[peer]; ok {
		f(c)
	}
}

// admit claims an in-flight slot, or reports the router saturated.
func (rt *Router) admit() bool {
	if rt.inflight == nil {
		return true
	}
	select {
	case rt.inflight <- struct{}{}:
		return true
	default:
		rt.shed.Add(1)
		return false
	}
}

func (rt *Router) done() {
	if rt.inflight != nil {
		<-rt.inflight
	}
}

// maxRouterBody mirrors the replica's request bound.
const maxRouterBody = 1 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	return body, nil
}

// ShardKey computes a request's placement key: the canonical cache key
// of the model (or topology) it concerns, built by the same code path
// the replicas key their caches with. Routing by model key means every
// request touching the same model lands on the same replica, so its
// compiled kernels and result caches concentrate instead of being
// diluted N ways. Sweeps shard by their base model: the whole axis is
// one warm-start chain on one replica, and repeated sweeps of the same
// base (different values) reuse that replica's per-cell cache.
func ShardKey(path string, body []byte) (string, error) {
	switch RequestClass(path) {
	case "evaluate":
		var q service.EvaluateRequest
		if err := json.Unmarshal(body, &q); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		return modelKey(q.Model)
	case "optimize":
		var q service.OptimizeRequest
		if err := json.Unmarshal(body, &q); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		return modelKey(q.Model)
	case "simulate":
		var q service.SimulateRequest
		if err := json.Unmarshal(body, &q); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		return modelKey(q.Model)
	case "multilevel":
		// Both multilevel endpoints carry the base model in the same spot.
		var q struct {
			Model service.ModelSpec `json:"model"`
		}
		if err := json.Unmarshal(body, &q); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		return modelKey(q.Model)
	case "hetero":
		var q struct {
			Topology service.TopologySpec `json:"topology"`
		}
		if err := json.Unmarshal(body, &q); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		return topologyKey(q.Topology)
	case "sweep":
		var q service.SweepRequest
		if err := json.Unmarshal(body, &q); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		if q.Hetero != nil {
			return topologyKey(q.Hetero.Topology)
		}
		return modelKey(q.Model)
	}
	return "", fmt.Errorf("fleet: no shard key for %q", path)
}

func modelKey(spec service.ModelSpec) (string, error) {
	m, _, err := spec.Build()
	if err != nil {
		return "", err
	}
	return m.CacheKey()
}

func topologyKey(spec service.TopologySpec) (string, error) {
	hm, _, err := spec.Build()
	if err != nil {
		return "", err
	}
	return hm.CacheKey()
}

// writeJSON mirrors the replica's envelope for router-originated bodies.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		buf = []byte(`{"error":"fleet: unrepresentable response"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}

func writeErr(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// send forwards one attempt to a peer, counting it.
func (rt *Router) send(ctx context.Context, peer, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.opts.Peers[peer]+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	rt.bump(peer, func(c *peerCounters) { c.forwards++ })
	return rt.opts.client().Do(req)
}

type attemptResult struct {
	resp *http.Response
	peer string
	err  error
}

// dispatch races the owner (and, past HedgeAfter, its successor) for a
// unary request, failing over along the ring with bounded backoff until
// a definitive response arrives. A definitive response is anything
// non-transient — a replica's 400 is the request's answer, not a reason
// to ask someone else. When every attempt ends transient, the last
// transient response (with its Retry-After) is surfaced to the client.
func (rt *Router) dispatch(ctx context.Context, key, path string, body []byte) (*http.Response, string, error) {
	owners := rt.ring.Owners(key, rt.ring.Len())
	if len(owners) == 0 {
		return nil, "", errors.New("fleet: no peers in ring")
	}
	maxAttempts := rt.opts.maxAttempts()
	results := make(chan attemptResult, maxAttempts)
	launched, received := 0, 0
	next := 0
	launch := func(peer string) {
		launched++
		go func() {
			resp, err := rt.send(ctx, peer, path, body)
			results <- attemptResult{resp: resp, peer: peer, err: err}
		}()
	}
	// Stragglers (the losing half of a hedge, attempts resolved after the
	// winner) drain in the background so their connections are reusable.
	defer func() {
		if n := launched - received; n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					if ar := <-results; ar.resp != nil {
						drainClose(ar.resp)
					}
				}
			}()
		}
	}()

	launch(owners[next])
	next++
	inFlight := 1
	var hedgeC <-chan time.Time
	if d := rt.opts.hedgeAfter(); d > 0 && len(owners) > 1 {
		hedgeC = time.After(d)
	}
	var lastResp *http.Response
	var lastPeer string
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, "", ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if launched < maxAttempts {
				peer := owners[next%len(owners)]
				next++
				rt.bump(peer, func(c *peerCounters) { c.hedges++ })
				launch(peer)
				inFlight++
			}
		case ar := <-results:
			received++
			inFlight--
			if ar.err == nil && !service.RetryableStatus(ar.resp.StatusCode) {
				return ar.resp, ar.peer, nil
			}
			rt.bump(ar.peer, func(c *peerCounters) { c.errors++ })
			if ar.err != nil {
				lastErr = ar.err
			} else {
				if lastResp != nil {
					drainClose(lastResp)
				}
				lastResp, lastPeer = ar.resp, ar.peer
				lastErr = fmt.Errorf("fleet: %s from %s: transient status %d", path, ar.peer, ar.resp.StatusCode)
			}
			if inFlight > 0 {
				continue // the hedge (or a pending retry) may still win
			}
			if launched >= maxAttempts {
				if lastResp != nil {
					return lastResp, lastPeer, nil
				}
				return nil, "", fmt.Errorf("fleet: giving up after %d attempts: %w", launched, lastErr)
			}
			delay := backoff.Delay(rt.opts.retryBase(), launched, rt.opts.Seed)
			if ra := service.RetryAfter(lastResp); ra > delay {
				delay = ra
			}
			if lim := rt.opts.maxDelay(); delay > lim {
				delay = lim
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, "", ctx.Err()
			}
			peer := owners[next%len(owners)]
			next++
			if peer == ar.peer {
				rt.bump(peer, func(c *peerCounters) { c.retries++ })
			} else {
				rt.bump(peer, func(c *peerCounters) { c.failovers++ })
			}
			launch(peer)
			inFlight++
		}
	}
}

func (rt *Router) handleUnary(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	key, err := ShardKey(r.URL.Path, body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !rt.admit() {
		writeErr(w, http.StatusServiceUnavailable, errors.New("fleet: router saturated, retry later"))
		return
	}
	defer rt.done()
	resp, peer, err := rt.dispatch(r.Context(), key, r.URL.Path, body)
	if err != nil {
		status := http.StatusBadGateway
		if r.Context().Err() != nil {
			status = 499
		}
		writeErr(w, status, err)
		return
	}
	defer resp.Body.Close()
	copyHeader(w, resp, "Content-Type")
	copyHeader(w, resp, "Retry-After")
	w.Header().Set("X-Fleet-Peer", peer)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func copyHeader(w http.ResponseWriter, resp *http.Response, name string) {
	if v := resp.Header.Get(name); v != "" {
		w.Header().Set(name, v)
	}
}

// handleSweep forwards a streaming sweep with mid-stream failover: the
// router relays whole NDJSON rows as they arrive and counts them; when
// the replica dies (connection cut, partial line, or a server-side
// termination notice like "draining"), it re-issues the request with the
// remaining axis values to the next ring peer and splices the streams at
// the row boundary. Cold sweeps splice bit-identically (every cell is an
// independent full solve); warm sweeps stay within the documented
// refinement tolerance, exactly as on a single node whose chain restarts.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var req service.SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	key, err := ShardKey(r.URL.Path, body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !rt.admit() {
		writeErr(w, http.StatusServiceUnavailable, errors.New("fleet: router saturated, retry later"))
		return
	}
	defer rt.done()

	flusher, _ := w.(http.Flusher)
	want := len(req.Values)
	emitted := 0
	wroteHeader := false
	emitLine := func(line string) {
		if !wroteHeader {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wroteHeader = true
		}
		_, _ = io.WriteString(w, line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var lastPeer string
	var lastErr error
	var retryFloor time.Duration
	for attempt := 1; attempt <= rt.opts.maxAttempts(); attempt++ {
		if attempt > 1 {
			delay := backoff.Delay(rt.opts.retryBase(), attempt-1, rt.opts.Seed)
			if retryFloor > delay {
				delay = retryFloor
			}
			if lim := rt.opts.maxDelay(); delay > lim {
				delay = lim
			}
			retryFloor = 0
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		owners := rt.ring.Owners(key, rt.ring.Len())
		if len(owners) == 0 {
			lastErr = errors.New("fleet: no peers in ring")
			continue
		}
		peer := owners[(attempt-1)%len(owners)]
		if attempt > 1 {
			if peer == lastPeer {
				rt.bump(peer, func(c *peerCounters) { c.retries++ })
			} else {
				rt.bump(peer, func(c *peerCounters) { c.failovers++ })
			}
		}
		lastPeer = peer
		sendBody := body
		if emitted > 0 {
			// Resume exactly where the dead replica stopped: the remaining
			// axis values, same request otherwise. The original raw body is
			// only reusable for a from-zero attempt.
			rest := req
			rest.Values = req.Values[emitted:]
			sendBody, err = json.Marshal(rest)
			if err != nil {
				break // cannot happen for a body that unmarshalled; bail honestly
			}
		}
		resp, err := rt.send(r.Context(), peer, "/v1/sweep", sendBody)
		if err != nil {
			rt.bump(peer, func(c *peerCounters) { c.errors++ })
			lastErr = err
			continue
		}
		if service.RetryableStatus(resp.StatusCode) {
			rt.bump(peer, func(c *peerCounters) { c.errors++ })
			lastErr = fmt.Errorf("fleet: sweep via %s: transient status %d", peer, resp.StatusCode)
			retryFloor = service.RetryAfter(resp)
			drainClose(resp)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Definitive non-stream answer (400/422/...): relay it verbatim.
			// Possible only before any rows went out — a resumed request is a
			// valid request, so a mid-splice 400 cannot arise.
			copyHeader(w, resp, "Content-Type")
			w.Header().Set("X-Fleet-Peer", peer)
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
			resp.Body.Close()
			return
		}
		terminated, err := rt.relayRows(resp, want, &emitted, emitLine)
		resp.Body.Close()
		if emitted >= want && !terminated && err == nil {
			return // clean full stream
		}
		rt.bump(peer, func(c *peerCounters) { c.errors++ })
		if err != nil {
			lastErr = fmt.Errorf("fleet: sweep via %s died mid-stream after %d rows: %w", peer, emitted, err)
		} else {
			lastErr = fmt.Errorf("fleet: sweep via %s terminated early after %d rows", peer, emitted)
		}
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: sweep failed")
	}
	err = fmt.Errorf("fleet: giving up after %d attempts: %w", rt.opts.maxAttempts(), lastErr)
	if !wroteHeader {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	buf, _ := json.Marshal(map[string]string{"error": err.Error()})
	emitLine(string(buf) + "\n")
}

// relayRows copies complete NDJSON rows from a replica stream to the
// client, bumping *emitted per row. It returns terminated=true when the
// replica announced an early termination (a trailing non-positional
// error line, e.g. a drain), and a non-nil error when the connection
// died mid-stream; a clean return with *emitted == want is a full
// stream.
func (rt *Router) relayRows(resp *http.Response, want int, emitted *int, emitLine func(string)) (terminated bool, err error) {
	br := bufio.NewReader(resp.Body)
	for *emitted < want {
		line, err := br.ReadString('\n')
		if err != nil {
			// EOF with a partial line means the replica died mid-row; the
			// fragment is discarded and the row re-fetched elsewhere. Plain
			// EOF short of the full axis is a death at a row boundary.
			return false, fmt.Errorf("stream ended after %d of %d rows: %w", *emitted, want, err)
		}
		if msg, isErr := errorLine(line); isErr && !positionalError(msg) {
			// A server-side termination notice (drain, cancellation): do not
			// relay it — the remaining rows come from the next peer.
			return true, nil
		}
		emitLine(line)
		*emitted++
	}
	return false, nil
}

// errorLine reports whether an NDJSON line is an error envelope rather
// than a sweep row (rows always carry an "x" field; envelopes only
// "error").
func errorLine(line string) (string, bool) {
	var e struct {
		Error string          `json:"error"`
		X     json.RawMessage `json:"x"`
	}
	if json.Unmarshal([]byte(line), &e) != nil {
		return "", false
	}
	return e.Error, e.Error != "" && e.X == nil
}

// positionalError reports whether an error line stands in for one cell
// (an unrepresentable value) rather than terminating the stream; those
// relay as rows — the next peer would deterministically produce the
// same line.
func positionalError(msg string) bool {
	return strings.Contains(msg, "not representable in JSON")
}

// PeerStats is one peer's slice of the router ledger, plus (best-effort)
// the replica's own engine stats — the per-shard cache hit/miss view.
type PeerStats struct {
	URL       string         `json:"url"`
	InRing    bool           `json:"in_ring"`
	Forwards  uint64         `json:"forwards"`
	Hedges    uint64         `json:"hedges"`
	Failovers uint64         `json:"failovers"`
	Retries   uint64         `json:"retries"`
	Errors    uint64         `json:"errors"`
	Engine    *service.Stats `json:"engine,omitempty"`
}

// RouterStats is the GET /v1/stats body in router mode.
type RouterStats struct {
	Ring  []string             `json:"ring"`
	Shed  uint64               `json:"shed"`
	Peers map[string]PeerStats `json:"peers"`
}

// Stats snapshots the router ledger. When ctx is non-nil each live
// peer's /v1/stats is fetched (briefly, best-effort) so the fleet view
// includes per-shard cache hit/miss counters.
func (rt *Router) Stats(ctx context.Context) RouterStats {
	out := RouterStats{
		Ring:  rt.ring.Peers(),
		Shed:  rt.shed.Load(),
		Peers: make(map[string]PeerStats, len(rt.opts.Peers)),
	}
	names := make([]string, 0, len(rt.peers))
	rt.mu.Lock()
	for name := range rt.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := rt.peers[name]
		out.Peers[name] = PeerStats{
			URL:       rt.opts.Peers[name],
			InRing:    rt.ring.Has(name),
			Forwards:  c.forwards,
			Hedges:    c.hedges,
			Failovers: c.failovers,
			Retries:   c.retries,
			Errors:    c.errors,
		}
	}
	rt.mu.Unlock()
	if ctx == nil {
		return out
	}
	var wg sync.WaitGroup
	var smu sync.Mutex
	engines := make(map[string]*service.Stats)
	for _, name := range names {
		if !out.Peers[name].InRing {
			continue
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, rt.opts.Peers[name]+"/v1/stats", nil)
			if err != nil {
				return
			}
			resp, err := rt.opts.client().Do(req)
			if err != nil {
				return
			}
			defer drainClose(resp)
			if resp.StatusCode != http.StatusOK {
				return
			}
			var st service.Stats
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) != nil {
				return
			}
			smu.Lock()
			engines[name] = &st
			smu.Unlock()
		}(name)
	}
	wg.Wait()
	for _, name := range names {
		st := engines[name]
		if st == nil {
			continue
		}
		ps := out.Peers[name]
		ps.Engine = st
		out.Peers[name] = ps
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
}

// handleReady: a router is ready while it has someone to route to.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.ring.Len() == 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, service.ReadyResponse{Reason: "no live peers"})
		return
	}
	writeJSON(w, http.StatusOK, service.ReadyResponse{Ready: true})
}

// drainClose discards and closes a response body, keeping the
// underlying connection reusable.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
