package fleet

import (
	"fmt"
	"sort"
	"sync"
)

// vnodesPerPeer is the virtual-node count per peer. 64 points per peer
// keeps the keyspace split within a few percent of even for small fleets
// while the ring stays tiny (a ten-peer fleet is 640 points).
const vnodesPerPeer = 64

// Ring is a consistent-hash ring over the canonical model-key space: a
// request's shard key (core.Model.CacheKey and friends — already stable,
// versioned, representation-independent) hashes to a point, and the
// first peer clockwise owns it. Peers join and leave (health-driven)
// without reshuffling the rest of the keyspace: only the keys adjacent
// to the moved virtual nodes change owner, which is what makes failover
// and warm-fill cheap.
type Ring struct {
	mu     sync.RWMutex
	points []ringPoint
	peers  map[string]bool
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds an empty ring; peers join via Add (normally driven by
// the health checker, so the ring only ever contains ready peers).
func NewRing() *Ring {
	return &Ring{peers: make(map[string]bool)}
}

// ringHash is FNV-1a 64 with a final splitmix64-style finisher: FNV alone
// clusters on short common-prefix strings (every model key opens with its
// version tag), and the finisher spreads those over the ring.
func ringHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// Add inserts a peer's virtual nodes; adding a present peer is a no-op.
func (r *Ring) Add(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.peers[peer] {
		return
	}
	r.peers[peer] = true
	for i := 0; i < vnodesPerPeer; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(fmt.Sprintf("%s#%d", peer, i)),
			peer: peer,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a peer's virtual nodes; removing an absent peer is a
// no-op.
func (r *Ring) Remove(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.peers[peer] {
		return
	}
	delete(r.peers, peer)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.peer != peer {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports peer membership.
func (r *Ring) Has(peer string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peers[peer]
}

// Peers returns the current members in sorted order, so callers that
// render or serialize the membership (the router's /v1/stats, logs) get
// identical bytes for identical membership.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.peers))
	for p := range r.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.peers)
}

// Owners returns up to n distinct peers for the key in ring order: the
// owner first, then the successors a hedged or failed-over request
// escalates to. With fewer than n members it returns them all.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.peer] {
			seen[p.peer] = true
			out = append(out, p.peer)
		}
	}
	return out
}

// Owner returns the key's owner, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Neighbour returns the peer that owns most of peer's keyspace in its
// absence: the first distinct peer after peer's first virtual node. It
// is the warm-fill donor for a joining peer — the member that has been
// answering (and caching) the joiner's keys while it was away — and it
// works whether or not peer is currently a member, because a joiner
// asks *before* it is added to the ring.
func (r *Ring) Neighbour(peer string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(fmt.Sprintf("%s#%d", peer, 0))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.peer != peer {
			return p.peer
		}
	}
	return ""
}
