package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"amdahlyd/internal/service"
)

// The multi-node integration suite: N real service replicas plus the
// router, all in one process (httptest servers), so fleet behaviour —
// bit-identity, failover, hedging, scripted fault plans, warm-fill — is
// exercised end to end over real HTTP under -race.

type replica struct {
	name string
	srv  *service.Server
	ts   *httptest.Server
}

// newFleet starts n replicas (wrapped in the fault controller) and a
// router over them, with fast retry timing and hedging off unless the
// test opts in.
func newFleet(t *testing.T, n int, ctrl *Controller, hedgeAfter time.Duration) (*Router, []*replica) {
	t.Helper()
	peers := make(map[string]string, n)
	reps := make([]*replica, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i+1)
		srv := service.NewServer(service.NewEngine(service.Options{MaxConcurrent: 2}))
		var h http.Handler = srv
		if ctrl != nil {
			h = ctrl.Wrap(name, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		peers[name] = ts.URL
		reps[i] = &replica{name: name, srv: srv, ts: ts}
	}
	rt, err := NewRouter(RouterOptions{
		Peers:      peers,
		HedgeAfter: hedgeAfter,
		RetryBase:  time.Millisecond,
		MaxDelay:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt, reps
}

func byName(reps []*replica, name string) *replica {
	for _, r := range reps {
		if r.name == name {
			return r
		}
	}
	return nil
}

const heteroTopology = `{"name":"hera+accel","comm":0.02,"scenario":1,"groups":[` +
	`{"name":"cpu","lambda_ind":1.69e-8,"f":0.2188,"s":0.7812,"size":25600,"speed":1,"cp":300,"vp":15},` +
	`{"name":"accel","lambda_ind":8.45e-7,"f":0.2188,"s":0.7812,"size":128,"speed":8,"cp":60,"vp":4}]}`

// fleetRequests covers every shardable request class, including the
// multilevel (ml1|) and heterogeneous (hg1|) key namespaces. Sweeps are
// cold so rows are bitwise independent of request history.
func fleetRequests() []struct{ path, body string } {
	return []struct{ path, body string }{
		{"/v1/evaluate", `{"model":{"platform":"hera","scenario":1}}`},
		{"/v1/optimize", `{"model":{"platform":"hera","scenario":1}}`},
		{"/v1/optimize", `{"model":{"platform":"hera","scenario":3,"alpha":0.05}}`},
		{"/v1/optimize", `{"model":{"platform":"coastal","scenario":2}}`},
		{"/v1/optimize", `{"model":{"platform":"atlas","scenario":5,"downtime":600}}`},
		{"/v1/simulate", `{"model":{"platform":"hera"},"runs":10,"patterns":10,"seed":7}`},
		{"/v1/multilevel/optimize", `{"model":{"platform":"hera","scenario":3}}`},
		{"/v1/multilevel/simulate", `{"model":{"platform":"hera","scenario":3},"runs":5,"patterns":5,"seed":3}`},
		{"/v1/hetero/optimize", `{"topology":` + heteroTopology + `}`},
		{"/v1/sweep", `{"model":{"platform":"hera","scenario":1},"axis":"lambda","values":[1e-10,1e-9,1e-8],"cold":true}`},
		{"/v1/sweep", `{"model":{"platform":"hera","scenario":3},"axis":"alpha","values":[0.05,0.1,0.2],"cold":true,"multilevel":{}}`},
		{"/v1/sweep", `{"axis":"comm","values":[0.01,0.02],"cold":true,"hetero":{"topology":` + heteroTopology + `}}`},
		// Repeat of an earlier optimize: must be cached=true on both sides
		// (the fleet routes same-model requests to the same replica).
		{"/v1/optimize", `{"model":{"platform":"hera","scenario":1}}`},
	}
}

func post(t *testing.T, base, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

// TestFleetBitIdenticalToSingleNode is the acceptance criterion: an
// N-node fleet must be byte-for-byte indistinguishable from one replica
// for every request class.
func TestFleetBitIdenticalToSingleNode(t *testing.T) {
	single := httptest.NewServer(service.NewServer(service.NewEngine(service.Options{MaxConcurrent: 2})))
	defer single.Close()
	rt, _ := newFleet(t, 3, nil, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	for i, req := range fleetRequests() {
		wantCode, wantBody := post(t, single.URL, req.path, req.body)
		gotCode, gotBody := post(t, front.URL, req.path, req.body)
		if gotCode != wantCode {
			t.Fatalf("request %d %s: fleet status %d, single %d\nfleet body: %s", i, req.path, gotCode, wantCode, gotBody)
		}
		if gotBody != wantBody {
			t.Fatalf("request %d %s: fleet and single node disagree\nfleet:  %s\nsingle: %s", i, req.path, gotBody, wantBody)
		}
	}
}

// TestFleetFailoverOnReplicaDeathMidRun kills one replica partway
// through a request run: every request must still return the right
// answer (re-routed within the retry budget), and the health checker
// must evict the corpse from the ring.
func TestFleetFailoverOnReplicaDeathMidRun(t *testing.T) {
	single := httptest.NewServer(service.NewServer(service.NewEngine(service.Options{MaxConcurrent: 2})))
	defer single.Close()
	rt, reps := newFleet(t, 3, nil, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	// RetryClient is the fleet's own client discipline; the run must not
	// need it (the router absorbs the failure), but a real client would
	// wear it, so the test does too.
	rc := &service.RetryClient{MaxAttempts: 3, Base: time.Millisecond}
	do := func(i int, alpha float64) {
		t.Helper()
		body := fmt.Sprintf(`{"model":{"platform":"hera","scenario":1,"alpha":%g}}`, alpha)
		_, want := post(t, single.URL, "/v1/optimize", body)
		resp, err := rc.Post(context.Background(), front.URL+"/v1/optimize", []byte(body))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		defer resp.Body.Close()
		got, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, got)
		}
		if string(got) != want {
			t.Fatalf("request %d: wrong answer after failover\ngot:  %s\nwant: %s", i, got, want)
		}
	}
	for i := 0; i < 10; i++ {
		do(i, 0.01+float64(i)*0.01)
	}
	// Kill p2 mid-run: in-flight and future connections die at the socket.
	dead := reps[1]
	dead.ts.CloseClientConnections()
	dead.ts.Close()
	for i := 10; i < 30; i++ {
		do(i, 0.01+float64(i)*0.01)
	}
	st := rt.Stats(nil)
	if st.Peers[dead.name].Errors == 0 {
		t.Fatalf("no errors recorded against the killed peer: %+v", st.Peers)
	}
	var reroutes uint64
	for _, ps := range st.Peers {
		reroutes += ps.Failovers + ps.Retries
	}
	if reroutes == 0 {
		t.Fatalf("killed a replica mid-run but nothing failed over: %+v", st.Peers)
	}
	// The health checker notices within FailAfter probes and evicts.
	peers := map[string]string{}
	for _, r := range reps {
		peers[r.name] = r.ts.URL
	}
	hc := NewHealthChecker(rt.Ring(), peers, HealthOptions{Timeout: 200 * time.Millisecond})
	hc.ProbeOnce(context.Background())
	hc.ProbeOnce(context.Background())
	if rt.Ring().Has(dead.name) {
		t.Fatalf("dead peer still in ring after two failed probes")
	}
	if rt.Ring().Len() != 2 {
		t.Fatalf("ring has %d members; want 2", rt.Ring().Len())
	}
}

// TestFleetConvergesThrough503Storm scripts a shedding owner: the
// request's owner answers 503 (with Retry-After) twice, then heals; the
// router must converge without surfacing the 503.
func TestFleetConvergesThrough503Storm(t *testing.T) {
	ctrl := NewController(nil)
	rt, _ := newFleet(t, 3, ctrl, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	body := `{"model":{"platform":"hera","scenario":2}}`
	key, err := ShardKey("/v1/optimize", []byte(body))
	if err != nil {
		t.Fatalf("ShardKey: %v", err)
	}
	owner := rt.Ring().Owner(key)
	ctrl.SetPlan(FaultPlan{owner + "|optimize": {Code: 503, Reqs: 2}})

	code, respBody := post(t, front.URL, "/v1/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("status %d through 503 storm: %s", code, respBody)
	}
	var res service.OptimizeResponse
	if err := json.Unmarshal([]byte(respBody), &res); err != nil || res.P <= 0 {
		t.Fatalf("implausible optimize result %s (err %v)", respBody, err)
	}
	st := rt.Stats(nil)
	if st.Peers[owner].Errors == 0 {
		t.Fatalf("owner's 503s not recorded: %+v", st.Peers)
	}
}

// TestFleetDropsConnectionAndFailsOver scripts a replica dying on the
// wire (connection aborted, no response): the router must re-route and
// the client must see only the good answer.
func TestFleetDropsConnectionAndFailsOver(t *testing.T) {
	ctrl := NewController(nil)
	rt, _ := newFleet(t, 3, ctrl, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	body := `{"model":{"platform":"coastalssd","scenario":4}}`
	key, err := ShardKey("/v1/optimize", []byte(body))
	if err != nil {
		t.Fatalf("ShardKey: %v", err)
	}
	owner := rt.Ring().Owner(key)
	ctrl.SetPlan(FaultPlan{owner + "|optimize": {Drop: true, Reqs: 1}})

	code, respBody := post(t, front.URL, "/v1/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("status %d after connection drop: %s", code, respBody)
	}
	st := rt.Stats(nil)
	var failovers uint64
	for _, ps := range st.Peers {
		failovers += ps.Failovers
	}
	if failovers == 0 {
		t.Fatalf("drop did not fail over: %+v", st.Peers)
	}
}

// TestFleetHedgesSlowOwner scripts a slow owner: the hedge to the ring
// successor must win long before the owner's injected delay expires.
func TestFleetHedgesSlowOwner(t *testing.T) {
	ctrl := NewController(nil)
	rt, _ := newFleet(t, 3, ctrl, 10*time.Millisecond)
	front := httptest.NewServer(rt)
	defer front.Close()

	body := `{"model":{"platform":"atlas","scenario":1}}`
	key, err := ShardKey("/v1/optimize", []byte(body))
	if err != nil {
		t.Fatalf("ShardKey: %v", err)
	}
	owner := rt.Ring().Owner(key)
	ctrl.SetPlan(FaultPlan{owner + "|optimize": {DelayMS: 2000, Reqs: 1}})

	start := time.Now()
	code, respBody := post(t, front.URL, "/v1/optimize", body)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, respBody)
	}
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("hedge did not rescue the request: took %s against a 2 s owner delay", elapsed)
	}
	st := rt.Stats(nil)
	var hedges uint64
	for _, ps := range st.Peers {
		hedges += ps.Hedges
	}
	if hedges == 0 {
		t.Fatalf("slow owner produced no hedges: %+v", st.Peers)
	}
}

// TestFleetSweepMidStreamFailover kills the owner after 3 NDJSON rows:
// the router must resume the remaining axis on the successor and the
// spliced stream must be byte-identical to a single node's.
func TestFleetSweepMidStreamFailover(t *testing.T) {
	single := httptest.NewServer(service.NewServer(service.NewEngine(service.Options{MaxConcurrent: 2})))
	defer single.Close()
	ctrl := NewController(nil)
	rt, _ := newFleet(t, 3, ctrl, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	body := `{"model":{"platform":"hera","scenario":1},"axis":"alpha",` +
		`"values":[0.01,0.02,0.05,0.1,0.15,0.2,0.3,0.4],"cold":true}`
	key, err := ShardKey("/v1/sweep", []byte(body))
	if err != nil {
		t.Fatalf("ShardKey: %v", err)
	}
	owner := rt.Ring().Owner(key)
	ctrl.SetPlan(FaultPlan{owner + "|sweep": {Drop: true, DropAfterRows: 3, Reqs: 1}})

	_, want := post(t, single.URL, "/v1/sweep", body)
	code, got := post(t, front.URL, "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", code, got)
	}
	if got != want {
		t.Fatalf("spliced sweep differs from single node\ngot:  %s\nwant: %s", got, want)
	}
	if n := len(strings.Split(strings.TrimSpace(got), "\n")); n != 8 {
		t.Fatalf("spliced sweep has %d rows; want 8", n)
	}
	st := rt.Stats(nil)
	if st.Peers[owner].Errors == 0 {
		t.Fatalf("mid-stream death not recorded against owner: %+v", st.Peers)
	}
}

// TestFleetWarmFillOnRejoin walks a replica through death and rebirth:
// while it is out, its neighbour serves (and caches) its keyspace; on
// rejoin the checker warm-fills it from that neighbour, so its first
// request back is a cache hit with bit-identical numbers.
func TestFleetWarmFillOnRejoin(t *testing.T) {
	ctrl := NewController(nil)
	rt, reps := newFleet(t, 2, ctrl, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	peers := map[string]string{}
	for _, r := range reps {
		peers[r.name] = r.ts.URL
	}
	hc := NewHealthChecker(rt.Ring(), peers, HealthOptions{Timeout: 200 * time.Millisecond})

	// Find a model owned by p2 so its eviction actually moves traffic.
	var body, key string
	for alpha := 0.01; alpha < 0.5; alpha += 0.01 {
		b := fmt.Sprintf(`{"model":{"platform":"hera","scenario":6,"alpha":%g}}`, alpha)
		k, err := ShardKey("/v1/optimize", []byte(b))
		if err != nil {
			t.Fatalf("ShardKey: %v", err)
		}
		if rt.Ring().Owner(k) == "p2" {
			body, key = b, k
			break
		}
	}
	if body == "" {
		t.Fatal("no test model owned by p2; ring is degenerate")
	}

	// p2 flunks two probes and is evicted.
	ctrl.SetPlan(FaultPlan{"p2|readyz": {Code: 503, Reqs: 2}})
	hc.ProbeOnce(context.Background())
	hc.ProbeOnce(context.Background())
	if rt.Ring().Has("p2") {
		t.Fatal("p2 still in ring after failed probes")
	}

	// With p2 out, p1 owns (and caches) the key.
	code, firstBody := post(t, front.URL, "/v1/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("optimize while p2 down: status %d: %s", code, firstBody)
	}
	if got := rt.Ring().Owner(key); got != "p1" {
		t.Fatalf("key owned by %q while p2 is out; want p1", got)
	}

	// p2 heals (fault budget spent): two passing probes readmit it, warm-
	// filled from its neighbour first.
	hc.ProbeOnce(context.Background())
	hc.ProbeOnce(context.Background())
	if !rt.Ring().Has("p2") {
		t.Fatal("p2 not readmitted after passing probes")
	}
	if hc.Fills() != 1 {
		t.Fatalf("Fills = %d; want 1", hc.Fills())
	}
	p2 := byName(reps, "p2")
	if fills := p2.srv.Engine().Stats().CacheFills; fills == 0 {
		t.Fatal("p2 accepted no warm-fill entries")
	}

	// p2's first request back is served from the transferred cache, with
	// numbers bit-identical to what p1 solved.
	code, secondBody := post(t, front.URL, "/v1/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("optimize after rejoin: status %d: %s", code, secondBody)
	}
	var first, second service.OptimizeResponse
	if err := json.Unmarshal([]byte(firstBody), &first); err != nil {
		t.Fatalf("first response: %v", err)
	}
	if err := json.Unmarshal([]byte(secondBody), &second); err != nil {
		t.Fatalf("second response: %v", err)
	}
	if !second.Cached {
		t.Fatalf("rejoined replica solved cold (cached=false): %s", secondBody)
	}
	if second.T != first.T || second.P != first.P || second.Overhead != first.Overhead {
		t.Fatalf("warm-filled answer differs\nfirst:  %s\nsecond: %s", firstBody, secondBody)
	}
	if p2.srv.Engine().Stats().OptimizeCalls != 1 {
		// The one call is the routed request itself; a fill must never
		// masquerade as a solve.
		t.Fatalf("p2 optimize_calls = %d; want 1 (served from fill, not solved)",
			p2.srv.Engine().Stats().OptimizeCalls)
	}
}

// TestRouterShedsAtInFlightCap pins the router's own load-shedding
// contract: past MaxInFlight it answers 503 + Retry-After immediately
// instead of queueing.
func TestRouterShedsAtInFlightCap(t *testing.T) {
	rt, _ := newFleet(t, 1, nil, -1)
	rt.inflight = make(chan struct{}, 1)
	rt.inflight <- struct{}{} // occupy the only slot
	front := httptest.NewServer(rt)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"model":{"platform":"hera"}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated router answered %d; want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if rt.shed.Load() != 1 {
		t.Fatalf("shed counter = %d; want 1", rt.shed.Load())
	}
}

// TestRouterStatsExposesPerShardCaches checks the fleet stats view:
// per-peer forward counters plus each replica's own cache hit/miss
// numbers fetched live.
func TestRouterStatsExposesPerShardCaches(t *testing.T) {
	rt, _ := newFleet(t, 2, nil, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	body := `{"model":{"platform":"hera","scenario":1}}`
	post(t, front.URL, "/v1/optimize", body)
	post(t, front.URL, "/v1/optimize", body) // second hit is cached

	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var st RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if len(st.Ring) != 2 || len(st.Peers) != 2 {
		t.Fatalf("stats ring/peers = %v / %d entries; want 2/2", st.Ring, len(st.Peers))
	}
	var forwards, optCalls, hits uint64
	for _, ps := range st.Peers {
		forwards += ps.Forwards
		if ps.Engine == nil {
			t.Fatalf("peer engine stats missing: %+v", ps)
		}
		optCalls += ps.Engine.OptimizeCalls
		hits += ps.Engine.OptimizeCache.Hits
	}
	if forwards < 2 {
		t.Fatalf("forwards = %d; want ≥ 2", forwards)
	}
	if optCalls != 2 {
		t.Fatalf("fleet-wide optimize_calls = %d; want 2", optCalls)
	}
	if hits == 0 {
		t.Fatal("repeated request produced no cache hit on its shard")
	}
}

// TestRouterStatsBytesStableAcrossCalls pins the mapiter fix in
// Router.Stats and Ring.Peers: with traffic quiesced, /v1/stats must
// serialize to the same bytes on every call — the ring membership slice
// and the per-peer merge may not leak map iteration order.
func TestRouterStatsBytesStableAcrossCalls(t *testing.T) {
	rt, _ := newFleet(t, 3, nil, -1)
	front := httptest.NewServer(rt)
	defer front.Close()

	body := `{"model":{"platform":"hera","scenario":1}}`
	post(t, front.URL, "/v1/optimize", body)

	fetch := func() []byte {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/stats")
		if err != nil {
			t.Fatalf("GET /v1/stats: %v", err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read stats body: %v", err)
		}
		return b
	}
	first := fetch()
	for i := 0; i < 5; i++ {
		if got := fetch(); !bytes.Equal(got, first) {
			t.Fatalf("stats bytes drifted on call %d:\nfirst: %s\n  got: %s", i+2, first, got)
		}
	}
}
