package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestValidateRejectsNonFinite is the table-driven NaN/±Inf audit of
// Platform.Validate: every numeric field must reject NaN and both
// infinities (a NaN slips through naive range checks because every
// comparison against it is false).
func TestValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	posInf := math.Inf(1)
	negInf := math.Inf(-1)
	fields := []struct {
		name string
		set  func(*Platform, float64)
	}{
		{"LambdaInd", func(p *Platform, v float64) { p.LambdaInd = v }},
		{"FailStopFraction", func(p *Platform, v float64) { p.FailStopFraction = v }},
		{"SilentFraction", func(p *Platform, v float64) { p.SilentFraction = v }},
		{"Processors", func(p *Platform, v float64) { p.Processors = v }},
		{"CheckpointCost", func(p *Platform, v float64) { p.CheckpointCost = v }},
		{"VerificationCost", func(p *Platform, v float64) { p.VerificationCost = v }},
	}
	for _, f := range fields {
		for _, v := range []float64{nan, posInf, negInf} {
			pl := Hera()
			f.set(&pl, v)
			if err := pl.Validate(); err == nil {
				t.Errorf("Platform with %s = %g accepted", f.name, v)
			}
		}
	}
}

func TestGroupValidateRejectsNonFinite(t *testing.T) {
	good := Group{Name: "g", LambdaInd: 1e-8, FailStopFraction: 0.25, SilentFraction: 0.75,
		Size: 64, Speed: 2, CheckpointCost: 100, VerificationCost: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid group rejected: %v", err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		g := good
		g.Speed = v
		if err := g.Validate(); err == nil {
			t.Errorf("group with speed = %g accepted", v)
		}
	}
	// Platform-row fields route through the same audited Validate.
	g := good
	g.LambdaInd = math.NaN()
	if err := g.Validate(); err == nil {
		t.Error("group with NaN λ_ind accepted")
	}
}

func TestTopologyValidate(t *testing.T) {
	good := SingleGroup(Hera())
	if err := good.Validate(); err != nil {
		t.Fatalf("degenerate topology rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Topology)
	}{
		{"empty name", func(tp *Topology) { tp.Name = "" }},
		{"no groups", func(tp *Topology) { tp.Groups = nil }},
		{"negative comm", func(tp *Topology) { tp.Comm = -1e-6 }},
		{"NaN comm", func(tp *Topology) { tp.Comm = math.NaN() }},
		{"infinite comm", func(tp *Topology) { tp.Comm = math.Inf(1) }},
		{"duplicate group names", func(tp *Topology) {
			tp.Groups = append(tp.Groups, tp.Groups[0])
		}},
		{"invalid group", func(tp *Topology) { tp.Groups[0].CheckpointCost = 0 }},
	}
	for _, tc := range cases {
		tp := SingleGroup(Hera())
		tc.mutate(&tp)
		if err := tp.Validate(); err == nil {
			t.Errorf("%s: invalid topology accepted", tc.name)
		}
	}
}

func TestSingleGroupView(t *testing.T) {
	h := Hera()
	tp := SingleGroup(h)
	if tp.Comm != 0 || len(tp.Groups) != 1 || tp.Groups[0].Speed != 1 {
		t.Fatalf("SingleGroup shape wrong: %+v", tp)
	}
	// The Platform round trip through Group must be lossless.
	if got := tp.Groups[0].Platform(); got != h {
		t.Errorf("Group.Platform() round trip changed the row:\n got %+v\nwant %+v", got, h)
	}
	if tp.TotalSize() != h.Processors {
		t.Errorf("TotalSize = %g, want %g", tp.TotalSize(), h.Processors)
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	tps := []Topology{
		SingleGroup(Hera()),
		{
			Name: "hera+accel",
			Comm: 1e-5,
			Groups: []Group{
				{Name: "cpu", LambdaInd: 1.69e-8, FailStopFraction: 0.2188, SilentFraction: 0.7812,
					Size: 512, Speed: 1, CheckpointCost: 300, VerificationCost: 15.4},
				{Name: "accel", LambdaInd: 8.45e-7, FailStopFraction: 0.2188, SilentFraction: 0.7812,
					Size: 128, Speed: 8, CheckpointCost: 60, VerificationCost: 4},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteTopologyJSON(&buf, tps); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTopologyJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tps) {
		t.Fatalf("round trip lost topologies: %d", len(back))
	}
	for i := range tps {
		if back[i].Name != tps[i].Name || back[i].Comm != tps[i].Comm ||
			len(back[i].Groups) != len(tps[i].Groups) {
			t.Errorf("topology %d header changed in round trip: %+v", i, back[i])
		}
		for j := range tps[i].Groups {
			if back[i].Groups[j] != tps[i].Groups[j] {
				t.Errorf("topology %d group %d changed in round trip: %+v", i, j, back[i].Groups[j])
			}
		}
	}
}

func TestReadTopologyJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadTopologyJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage topology JSON accepted")
	}
	bad := `[{"name":"x","comm":-1,"groups":[{"name":"g","lambda_ind":1e-8,"f":0.2,"s":0.8,"size":8,"speed":1,"cp":10,"vp":1}]}]`
	if _, err := ReadTopologyJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid topology accepted from JSON")
	}
}
