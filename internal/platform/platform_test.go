package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/xmath"
)

func TestTable2Values(t *testing.T) {
	// Spot-check the hard-coded registry against Table II of the paper.
	h := Hera()
	if h.LambdaInd != 1.69e-8 || h.FailStopFraction != 0.2188 ||
		h.Processors != 512 || h.CheckpointCost != 300 || h.VerificationCost != 15.4 {
		t.Errorf("Hera parameters corrupted: %+v", h)
	}
	a := Atlas()
	if a.LambdaInd != 1.62e-8 || a.SilentFraction != 0.9375 || a.CheckpointCost != 439 {
		t.Errorf("Atlas parameters corrupted: %+v", a)
	}
	c := Coastal()
	if c.LambdaInd != 2.34e-9 || c.Processors != 2048 || c.VerificationCost != 4.5 {
		t.Errorf("Coastal parameters corrupted: %+v", c)
	}
	ssd := CoastalSSD()
	if ssd.CheckpointCost != 2500 || ssd.VerificationCost != 180 {
		t.Errorf("CoastalSSD parameters corrupted: %+v", ssd)
	}
}

func TestAllPlatformsValid(t *testing.T) {
	pls := All()
	if len(pls) != 4 {
		t.Fatalf("expected 4 platforms, got %d", len(pls))
	}
	for _, pl := range pls {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: %v", pl.Name, err)
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	pls := All()
	pls[0].LambdaInd = 42
	if Hera().LambdaInd == 42 {
		t.Error("All exposed internal registry storage")
	}
}

func TestRatesSplitAndScale(t *testing.T) {
	h := Hera()
	lf, ls := h.Rates(512)
	if !xmath.EqualWithin(lf+ls, 512*1.69e-8, 1e-12, 0) {
		t.Errorf("total platform rate = %g, want %g", lf+ls, 512*1.69e-8)
	}
	if !xmath.EqualWithin(lf/(lf+ls), 0.2188, 1e-9, 0) {
		t.Errorf("fail-stop share = %g, want f", lf/(lf+ls))
	}
	// Rates scale linearly with P (Proposition 1.2 of [13]).
	lf2, ls2 := h.Rates(1024)
	if !xmath.EqualWithin(lf2, 2*lf, 1e-12, 0) || !xmath.EqualWithin(ls2, 2*ls, 1e-12, 0) {
		t.Error("rates not linear in P")
	}
	// P < 1 clamps.
	lfc, _ := h.Rates(0)
	lf1, _ := h.Rates(1)
	if lfc != lf1 {
		t.Error("P < 1 not clamped in Rates")
	}
}

func TestMTBFInd(t *testing.T) {
	h := Hera()
	if !xmath.EqualWithin(h.MTBFInd(), 1/1.69e-8, 1e-12, 0) {
		t.Errorf("MTBF = %g", h.MTBFInd())
	}
	// Roughly 1.9 years: λ_ind ≈ 1.69e-8 per second.
	years := h.MTBFInd() / (365.25 * 86400)
	if years < 1.5 || years > 2.5 {
		t.Errorf("Hera individual MTBF = %g years, outside plausible range", years)
	}
}

func TestResilienceCalibration(t *testing.T) {
	h := Hera()
	for _, s := range costmodel.AllScenarios {
		r, err := h.Resilience(s, 3600)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got := r.Checkpoint.At(h.Processors); !xmath.EqualWithin(got, 300, 1e-9, 0) {
			t.Errorf("%v: C_P(512) = %g", s, got)
		}
		if r.Downtime != 3600 {
			t.Errorf("%v: downtime = %g", s, r.Downtime)
		}
	}
}

func TestWithLambda(t *testing.T) {
	h := Hera().WithLambda(1e-10)
	if h.LambdaInd != 1e-10 {
		t.Error("WithLambda did not set rate")
	}
	if h.Name != "Hera" || h.CheckpointCost != 300 {
		t.Error("WithLambda disturbed other fields")
	}
	if Hera().LambdaInd != 1.69e-8 {
		t.Error("WithLambda mutated the registry")
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"hera", "HERA", "Hera"} {
		if pl, err := Lookup(name); err != nil || pl.Name != "Hera" {
			t.Errorf("Lookup(%q) = %v, %v", name, pl.Name, err)
		}
	}
	for _, name := range []string{"coastalssd", "coastal-ssd", "Coastal SSD", "coastal_ssd"} {
		if pl, err := Lookup(name); err != nil || pl.Name != "CoastalSSD" {
			t.Errorf("Lookup(%q) = %v, %v", name, pl.Name, err)
		}
	}
	if _, err := Lookup("summit"); err == nil {
		t.Error("unknown platform accepted")
	} else if !strings.Contains(err.Error(), "Hera") {
		t.Error("error should list built-ins")
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	good := Hera()
	cases := []func(*Platform){
		func(p *Platform) { p.Name = "" },
		func(p *Platform) { p.LambdaInd = 0 },
		func(p *Platform) { p.LambdaInd = math.Inf(1) },
		func(p *Platform) { p.FailStopFraction = -0.1 },
		func(p *Platform) { p.SilentFraction = 1.5 },
		func(p *Platform) { p.FailStopFraction = 0.5; p.SilentFraction = 0.2 },
		func(p *Platform) { p.Processors = 0 },
		func(p *Platform) { p.CheckpointCost = 0 },
		func(p *Platform) { p.VerificationCost = -1 },
	}
	for i, mutate := range cases {
		pl := good
		mutate(&pl)
		if err := pl.Validate(); err == nil {
			t.Errorf("case %d: invalid platform accepted: %+v", i, pl)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, All()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("round trip lost platforms: %d", len(back))
	}
	for i, pl := range back {
		if pl != All()[i] {
			t.Errorf("platform %d changed in round trip: %+v", i, pl)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
	bad := `[{"name":"X","lambda_ind":-1,"f":0.5,"s":0.5,"p":10,"cp":10,"vp":1}]`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid platform accepted from JSON")
	}
}
