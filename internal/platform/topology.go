package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Group is one homogeneous tile of a heterogeneous platform: Size
// processors sharing an individual error rate, a speed factor relative to
// the topology's baseline processor, and checkpoint/verification costs
// measured at the group's deployed size. A Group is exactly a Platform
// row plus the speed factor; Platform() recovers that view for scenario
// calibration.
type Group struct {
	// Name identifies the group within its topology ("cpu", "accel", …).
	Name string `json:"name"`
	// LambdaInd is the group's individual per-processor error rate (1/s).
	LambdaInd float64 `json:"lambda_ind"`
	// FailStopFraction is f, the fraction of errors that are fail-stop.
	FailStopFraction float64 `json:"f"`
	// SilentFraction is s = 1−f, the fraction that are silent.
	SilentFraction float64 `json:"s"`
	// Size is the number of processors in the group; a job may allocate
	// any P_g ≤ Size from it.
	Size float64 `json:"size"`
	// Speed is the per-processor speed factor σ relative to the
	// topology's baseline (1 = baseline; an accelerator tile has σ > 1).
	Speed float64 `json:"speed"`
	// CheckpointCost is the measured C_P (seconds) at Size processors.
	CheckpointCost float64 `json:"cp"`
	// VerificationCost is the measured V_P (seconds) at Size processors.
	VerificationCost float64 `json:"vp"`
}

// Platform returns the group viewed as a single homogeneous platform:
// the row the scenario calibration and the failure model consume. The
// speed factor is not part of that view — it lives in the speedup
// profile, not the cost model.
func (g Group) Platform() Platform {
	return Platform{
		Name:             g.Name,
		LambdaInd:        g.LambdaInd,
		FailStopFraction: g.FailStopFraction,
		SilentFraction:   g.SilentFraction,
		Processors:       g.Size,
		CheckpointCost:   g.CheckpointCost,
		VerificationCost: g.VerificationCost,
	}
}

// Validate checks the group the same way Platform.Validate checks a row
// (NaN and infinities rejected field by field), plus the speed factor.
func (g Group) Validate() error {
	if err := g.Platform().Validate(); err != nil {
		return err
	}
	if !(g.Speed > 0) || math.IsInf(g.Speed, 0) {
		return fmt.Errorf("platform group %s: speed σ = %g must be positive and finite", g.Name, g.Speed)
	}
	return nil
}

// Topology is a platform made of heterogeneous groups plus one
// inter-group communication coefficient: when more than one group works
// on the same job, every participating processor pays Comm seconds of
// overhead per unit of sequential work per additional active group (the
// linear-cost exchange term of the Amdahl-meets-DLT analysis). A
// one-group topology with Comm = 0 is exactly a classical Platform.
type Topology struct {
	// Name labels the topology in reports and manifests.
	Name string `json:"name"`
	// Comm is the inter-group communication coefficient κ ≥ 0
	// (dimensionless: overhead per unit sequential work, per allocated
	// processor, per additional active group).
	Comm float64 `json:"comm"`
	// Groups lists the tiles. Order is meaningful: group indices identify
	// groups in optimizer results and simulation plans.
	Groups []Group `json:"groups"`
}

// Validate rejects topologies that could not be compiled into a
// heterogeneous model: no groups, duplicate group names, a non-finite or
// negative communication coefficient, or any invalid group.
func (tp Topology) Validate() error {
	if tp.Name == "" {
		return errors.New("platform: topology with empty name")
	}
	if len(tp.Groups) == 0 {
		return fmt.Errorf("platform topology %s: no groups", tp.Name)
	}
	if !(tp.Comm >= 0) || math.IsInf(tp.Comm, 0) {
		return fmt.Errorf("platform topology %s: comm κ = %g must be non-negative and finite", tp.Name, tp.Comm)
	}
	seen := make(map[string]bool, len(tp.Groups))
	for _, g := range tp.Groups {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("platform topology %s: %w", tp.Name, err)
		}
		if seen[g.Name] {
			return fmt.Errorf("platform topology %s: duplicate group %q", tp.Name, g.Name)
		}
		seen[g.Name] = true
	}
	return nil
}

// TotalSize returns the total processor count across all groups.
func (tp Topology) TotalSize() float64 {
	total := 0.0
	for _, g := range tp.Groups {
		total += g.Size
	}
	return total
}

// SingleGroup wraps a classical platform as a one-group topology with
// speed 1 and zero communication — the degenerate case every hetero
// layer must reproduce bit-identically.
func SingleGroup(pl Platform) Topology {
	return Topology{
		Name: pl.Name,
		Comm: 0,
		Groups: []Group{{
			Name:             pl.Name,
			LambdaInd:        pl.LambdaInd,
			FailStopFraction: pl.FailStopFraction,
			SilentFraction:   pl.SilentFraction,
			Size:             pl.Processors,
			Speed:            1,
			CheckpointCost:   pl.CheckpointCost,
			VerificationCost: pl.VerificationCost,
		}},
	}
}

// WriteTopologyJSON serializes a set of topologies.
func WriteTopologyJSON(w io.Writer, tps []Topology) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tps)
}

// ReadTopologyJSON loads and validates a set of topologies.
func ReadTopologyJSON(r io.Reader) ([]Topology, error) {
	var tps []Topology
	if err := json.NewDecoder(r).Decode(&tps); err != nil {
		return nil, fmt.Errorf("platform: decoding topology JSON: %w", err)
	}
	for _, tp := range tps {
		if err := tp.Validate(); err != nil {
			return nil, err
		}
	}
	return tps, nil
}
