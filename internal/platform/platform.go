// Package platform holds the platform parameters of Table II: the four
// real machines (Hera, Atlas, Coastal, Coastal SSD) whose error rates and
// checkpointing costs were measured for the Scalable Checkpoint/Restart
// (SCR) study, plus JSON load/save for user-defined platforms.
//
// λ_ind aggregates both fail-stop and silent errors per processor; the
// fractions f and s = 1−f split it into the two sources. The checkpoint
// and verification costs are the measured values at the deployed processor
// count and are projected onto other counts by the scenario calibration in
// internal/costmodel.
package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"amdahlyd/internal/costmodel"
)

// Platform is one row of Table II.
type Platform struct {
	// Name identifies the platform ("Hera", …).
	Name string `json:"name"`
	// LambdaInd is the individual per-processor error rate (1/s),
	// aggregating fail-stop and silent sources.
	LambdaInd float64 `json:"lambda_ind"`
	// FailStopFraction is f, the fraction of errors that are fail-stop.
	FailStopFraction float64 `json:"f"`
	// SilentFraction is s = 1−f, the fraction that are silent.
	SilentFraction float64 `json:"s"`
	// Processors is the deployed processor count at which the costs below
	// were measured.
	Processors float64 `json:"p"`
	// CheckpointCost is the measured C_P (seconds) at Processors.
	CheckpointCost float64 `json:"cp"`
	// VerificationCost is the measured V_P (seconds) at Processors.
	VerificationCost float64 `json:"vp"`
}

// Validate checks internal consistency (rates positive, fractions in
// [0, 1] and summing to 1 within measurement rounding). Every range test
// is written in the form !(x in range) so that a NaN field — for which
// any comparison is false — is rejected rather than silently admitted,
// and infinities are rejected explicitly: a platform is a set of
// measurements, and a non-finite measurement is a corrupt one.
func (pl Platform) Validate() error {
	if pl.Name == "" {
		return errors.New("platform: empty name")
	}
	if !(pl.LambdaInd > 0) || math.IsInf(pl.LambdaInd, 0) {
		return fmt.Errorf("platform %s: λ_ind = %g must be positive and finite", pl.Name, pl.LambdaInd)
	}
	if !(pl.FailStopFraction >= 0 && pl.FailStopFraction <= 1) {
		return fmt.Errorf("platform %s: f = %g outside [0,1]", pl.Name, pl.FailStopFraction)
	}
	if !(pl.SilentFraction >= 0 && pl.SilentFraction <= 1) {
		return fmt.Errorf("platform %s: s = %g outside [0,1]", pl.Name, pl.SilentFraction)
	}
	if math.Abs(pl.FailStopFraction+pl.SilentFraction-1) > 1e-3 {
		return fmt.Errorf("platform %s: f + s = %g, want 1", pl.Name,
			pl.FailStopFraction+pl.SilentFraction)
	}
	if !(pl.Processors >= 1) || math.IsInf(pl.Processors, 0) {
		return fmt.Errorf("platform %s: P = %g must be >= 1 and finite", pl.Name, pl.Processors)
	}
	if !(pl.CheckpointCost > 0) || math.IsInf(pl.CheckpointCost, 0) {
		return fmt.Errorf("platform %s: C_P = %g must be positive and finite", pl.Name, pl.CheckpointCost)
	}
	if !(pl.VerificationCost >= 0) || math.IsInf(pl.VerificationCost, 0) {
		return fmt.Errorf("platform %s: V_P = %g must be non-negative and finite", pl.Name, pl.VerificationCost)
	}
	return nil
}

// MTBFInd returns the individual-processor MTBF μ_ind = 1/λ_ind (seconds).
func (pl Platform) MTBFInd() float64 { return 1 / pl.LambdaInd }

// Rates returns the platform-level fail-stop and silent error rates for a
// job running on procs processors: λf = f·λ_ind·P and λs = s·λ_ind·P
// (Section II, failure model).
func (pl Platform) Rates(procs float64) (lambdaF, lambdaS float64) {
	if procs < 1 {
		procs = 1
	}
	return pl.FailStopFraction * pl.LambdaInd * procs,
		pl.SilentFraction * pl.LambdaInd * procs
}

// Resilience calibrates the scenario's cost model from this platform's
// measurements (Section IV-A) with the given downtime.
func (pl Platform) Resilience(s costmodel.Scenario, downtime float64) (costmodel.Resilience, error) {
	return s.Calibrate(pl.Processors, pl.CheckpointCost, pl.VerificationCost, downtime)
}

// WithLambda returns a copy with a different individual error rate,
// keeping everything else; used by the λ-sweep experiments (Figs. 5–6).
func (pl Platform) WithLambda(lambda float64) Platform {
	pl.LambdaInd = lambda
	return pl
}

// The four platforms of Table II.
var table2 = []Platform{
	{Name: "Hera", LambdaInd: 1.69e-8, FailStopFraction: 0.2188, SilentFraction: 0.7812,
		Processors: 512, CheckpointCost: 300, VerificationCost: 15.4},
	{Name: "Atlas", LambdaInd: 1.62e-8, FailStopFraction: 0.0625, SilentFraction: 0.9375,
		Processors: 1024, CheckpointCost: 439, VerificationCost: 9.1},
	{Name: "Coastal", LambdaInd: 2.34e-9, FailStopFraction: 0.1667, SilentFraction: 0.8333,
		Processors: 2048, CheckpointCost: 1051, VerificationCost: 4.5},
	{Name: "CoastalSSD", LambdaInd: 2.34e-9, FailStopFraction: 0.1667, SilentFraction: 0.8333,
		Processors: 2048, CheckpointCost: 2500, VerificationCost: 180},
}

// Hera returns the Hera platform (512 dual-quad-core nodes).
func Hera() Platform { return table2[0] }

// Atlas returns the Atlas platform.
func Atlas() Platform { return table2[1] }

// Coastal returns the Coastal platform with disk-based SCR storage.
func Coastal() Platform { return table2[2] }

// CoastalSSD returns the Coastal platform with SSD-based SCR storage.
func CoastalSSD() Platform { return table2[3] }

// All returns the four Table II platforms in paper order.
func All() []Platform {
	out := make([]Platform, len(table2))
	copy(out, table2)
	return out
}

// Lookup finds a built-in platform by case-insensitive name. The Coastal
// SSD platform also answers to "coastal-ssd" and "coastal ssd".
func Lookup(name string) (Platform, error) {
	key := strings.ToLower(strings.NewReplacer(" ", "", "-", "", "_", "").Replace(name))
	for _, pl := range table2 {
		if strings.ToLower(pl.Name) == key {
			return pl, nil
		}
	}
	names := make([]string, len(table2))
	for i, pl := range table2 {
		names[i] = pl.Name
	}
	sort.Strings(names)
	return Platform{}, fmt.Errorf("platform: unknown platform %q (built-ins: %s)",
		name, strings.Join(names, ", "))
}

// WriteJSON serializes a set of platforms.
func WriteJSON(w io.Writer, pls []Platform) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pls)
}

// ReadJSON loads and validates a set of platforms.
func ReadJSON(r io.Reader) ([]Platform, error) {
	var pls []Platform
	if err := json.NewDecoder(r).Decode(&pls); err != nil {
		return nil, fmt.Errorf("platform: decoding JSON: %w", err)
	}
	for _, pl := range pls {
		if err := pl.Validate(); err != nil {
			return nil, err
		}
	}
	return pls, nil
}
