package xmath

import "math"

// RegularizedGammaP returns P(a, x) = γ(a, x)/Γ(a), the regularized lower
// incomplete gamma function, for a > 0, x >= 0. It uses the power series
// for x < a+1 and the Lentz continued fraction for the complement
// otherwise (Numerical Recipes §6.2). P(a, x) is the CDF of a Gamma(a, 1)
// variable and, with a = k/2, x = v/2, the chi-square CDF with k degrees
// of freedom.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegularizedGammaQ returns Q(a, x) = 1 − P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series, which converges
// fast for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by the modified Lentz
// continued fraction, which converges fast for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns the CDF of the chi-square distribution with k
// degrees of freedom at v.
func ChiSquareCDF(v float64, k int) float64 {
	if k < 1 {
		return math.NaN()
	}
	return RegularizedGammaP(float64(k)/2, v/2)
}
