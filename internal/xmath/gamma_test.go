package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	cases := []struct {
		a, x, want float64
	}{
		// P(1, x) = 1 − e^{−x}.
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 2, 1 - math.Exp(-2)},
		// P(1/2, x) = erf(√x).
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		// Median of Gamma(a) grows like a − 1/3: P(10, 9.669) ≈ 0.5.
		{10, 9.66871461471, 0.5},
	}
	for _, c := range cases {
		if got := RegularizedGammaP(c.a, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P(%g, %g) = %.12g, want %.12g", c.a, c.x, got, c.want)
		}
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10, 50} {
		for _, x := range []float64{0.1, 1, 5, 20, 80} {
			p := RegularizedGammaP(a, x)
			q := RegularizedGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q != 1 at a=%g x=%g: %g", a, x, p+q)
			}
		}
	}
}

func TestRegularizedGammaEdges(t *testing.T) {
	if RegularizedGammaP(2, 0) != 0 || RegularizedGammaQ(2, 0) != 1 {
		t.Error("x = 0 boundary wrong")
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, -1}} {
		if !math.IsNaN(RegularizedGammaP(bad[0], bad[1])) {
			t.Errorf("P(%g, %g) should be NaN", bad[0], bad[1])
		}
		if !math.IsNaN(RegularizedGammaQ(bad[0], bad[1])) {
			t.Errorf("Q(%g, %g) should be NaN", bad[0], bad[1])
		}
	}
	if got := RegularizedGammaP(3, 1e4); got != 1 {
		t.Errorf("P saturates at 1, got %g", got)
	}
}

// Property: P(a, ·) is non-decreasing in x.
func TestRegularizedGammaMonotone(t *testing.T) {
	f := func(aRaw, x1Raw, dxRaw uint16) bool {
		a := 0.1 + float64(aRaw%500)/10
		x1 := float64(x1Raw%1000) / 10
		x2 := x1 + float64(dxRaw%1000)/10
		return RegularizedGammaP(a, x1) <= RegularizedGammaP(a, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCDFReferenceValues(t *testing.T) {
	// Classic critical values: P(χ²_k <= v) for textbook (k, v) pairs.
	cases := []struct {
		v    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{7.815, 3, 0.95},
		{18.307, 10, 0.95},
		{23.209, 10, 0.99},
		{2.706, 1, 0.90},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.v, c.k); math.Abs(got-c.want) > 2e-4 {
			t.Errorf("χ²CDF(%g; k=%d) = %.5f, want %.3f", c.v, c.k, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareCDF(1, 0)) {
		t.Error("k = 0 should be NaN")
	}
}

func TestChiSquareCDFAgainstExponential(t *testing.T) {
	// χ² with 2 degrees of freedom is Exp(1/2).
	for _, v := range []float64{0.5, 1, 3, 10} {
		want := 1 - math.Exp(-v/2)
		if got := ChiSquareCDF(v, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("χ²CDF(%g; 2) = %g, want %g", v, got, want)
		}
	}
}
