package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.8413447460685429, 1}, // Φ(1)
		{0.025, -1.959963984540054},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !EqualWithin(got, c.want, 1e-9, 1e-12) {
			t.Errorf("NormalQuantile(%g) = %.12g, want %.12g", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ∓Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("quantile outside [0,1] should be NaN")
	}
}

// Property: NormalCDF(NormalQuantile(p)) == p across the unit interval.
func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		p := (float64(u%99998) + 1) / 100000 // p in (0, 1)
		x := NormalQuantile(p)
		return EqualWithin(NormalCDF(x), p, 1e-10, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integral of the pdf from −8 to x should match the CDF.
	x := 1.3
	const n = 400000
	lo := -8.0
	h := (x - lo) / n
	var s Sum
	for i := 0; i < n; i++ {
		s.Add(NormalPDF(lo+(float64(i)+0.5)*h) * h)
	}
	if !EqualWithin(s.Value(), NormalCDF(x), 1e-7, 0) {
		t.Errorf("∫pdf = %g, CDF = %g", s.Value(), NormalCDF(x))
	}
}

func TestStudentTQuantileReferenceValues(t *testing.T) {
	// Reference two-sided 95% and 99% critical values (standard tables).
	cases := []struct {
		conf float64
		nu   int
		want float64
		tol  float64
	}{
		{0.95, 1, 12.7062, 1e-3},
		{0.95, 2, 4.3027, 1e-3},
		{0.95, 5, 2.5706, 5e-3},
		{0.95, 10, 2.2281, 5e-3},
		{0.95, 30, 2.0423, 5e-3},
		{0.99, 10, 3.1693, 1e-2},
		{0.95, 500, 1.9647, 5e-3},
	}
	for _, c := range cases {
		got := StudentTQuantile(c.conf, c.nu)
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("t(%g, ν=%d) = %g, want %g", c.conf, c.nu, got, c.want)
		}
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	z := NormalQuantile(0.975)
	tq := StudentTQuantile(0.95, 5000)
	if !EqualWithin(tq, z, 1e-3, 0) {
		t.Errorf("t with huge ν = %g, normal = %g", tq, z)
	}
}

func TestStudentTDomainErrors(t *testing.T) {
	for _, bad := range []struct {
		conf float64
		nu   int
	}{{0, 5}, {1, 5}, {0.95, 0}, {-1, 3}} {
		if !math.IsNaN(StudentTQuantile(bad.conf, bad.nu)) {
			t.Errorf("StudentTQuantile(%g, %d) should be NaN", bad.conf, bad.nu)
		}
	}
}

func TestKolmogorovCDFAnchors(t *testing.T) {
	// For large n the Stephens-corrected statistic follows the asymptotic
	// Kolmogorov distribution: K(0.8276) ≈ 0.5, K(1.3581) ≈ 0.95.
	n := 100000
	sn := math.Sqrt(float64(n))
	adj := sn + 0.12 + 0.11/sn
	cases := []struct {
		x, want float64
	}{
		{0.82757, 0.5},
		{1.35810, 0.95},
		{1.62762, 0.99},
	}
	for _, c := range cases {
		got := KolmogorovCDF(c.x/adj, n)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("K(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestKolmogorovCDFEdges(t *testing.T) {
	if KolmogorovCDF(0, 100) != 0 || KolmogorovCDF(-1, 100) != 0 {
		t.Error("non-positive d should give probability 0")
	}
	if !math.IsNaN(KolmogorovCDF(0.5, 0)) {
		t.Error("n = 0 should be NaN")
	}
	if got := KolmogorovCDF(10, 100); got != 1 {
		t.Errorf("huge statistic should saturate at 1, got %g", got)
	}
}

// Property: the Kolmogorov CDF is non-decreasing in d.
func TestKolmogorovMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		d1 := float64(a%1000) / 1000
		d2 := d1 + float64(b%1000)/1000
		return KolmogorovCDF(d1, 500) <= KolmogorovCDF(d2, 500)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
