package xmath

import "math"

// NormalQuantile returns the inverse of the standard normal CDF at p,
// using Acklam's rational approximation refined with one Halley step.
// The absolute error after refinement is below 1e-12 across (0, 1).
// It returns ±Inf at p = 0 or 1 and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients of Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// NormalCDF returns the standard normal cumulative distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// StudentTQuantile returns the upper-tail two-sided critical value t such
// that P(|T_ν| <= t) = conf for a Student-t variable with ν degrees of
// freedom, using the Cornish–Fisher style expansion of Hill (1970). For
// ν >= 100 the normal quantile is a better-than-1e-4 approximation and is
// used directly. conf must lie in (0, 1).
func StudentTQuantile(conf float64, nu int) float64 {
	if !(conf > 0 && conf < 1) || nu < 1 {
		return math.NaN()
	}
	p := 0.5 + conf/2 // one-sided quantile level
	z := NormalQuantile(p)
	if nu >= 100 {
		return z
	}
	// Exact closed forms for the smallest degrees of freedom, where the
	// asymptotic expansion is weakest.
	switch nu {
	case 1:
		return math.Tan(math.Pi / 2 * conf)
	case 2:
		return z2Quantile(conf)
	}
	n := float64(nu)
	z2 := z * z
	// Peiser/Fisher expansion of the t quantile around the normal one.
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/n + g2/(n*n) + g3/(n*n*n) + g4/(n*n*n*n)
}

// z2Quantile is the exact two-sided t quantile for 2 degrees of freedom:
// t = sqrt(2/(1−conf²) − 2) rearranged from the closed-form CDF.
func z2Quantile(conf float64) float64 {
	alpha := 1 - conf
	return math.Sqrt(2/(alpha*(2-alpha)) - 2)
}

// KolmogorovCDF returns P(D_n <= d) for the Kolmogorov distribution with
// the asymptotic series K(x) = 1 − 2 Σ (−1)^{k−1} e^{−2k²x²}, where
// x = d·(√n + 0.12 + 0.11/√n) per Stephens' correction. Used by the KS
// goodness-of-fit test in internal/stats.
func KolmogorovCDF(d float64, n int) float64 {
	if d <= 0 {
		return 0
	}
	if n <= 0 {
		return math.NaN()
	}
	sn := math.Sqrt(float64(n))
	x := d * (sn + 0.12 + 0.11/sn)
	if x < 0.2 {
		return 0 // series converges to 0 numerically
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * x * x)
		sum += sign * term
		if term < 1e-16 {
			break
		}
		sign = -sign
	}
	return Clamp(1-2*sum, 0, 1)
}
