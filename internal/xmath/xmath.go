// Package xmath provides numerically careful scalar math helpers shared by
// the analytical model, the optimizers and the statistics layer.
//
// The expected-time formula of Proposition 1 mixes terms such as
// exp(λC)·(exp(λ(C+T+V))−1) where the exponents span many orders of
// magnitude: λ is as small as 1e-12 while T can exceed 1e7 seconds. The
// helpers here keep those evaluations stable (expm1-based forms, log-space
// products) and supply the special functions the statistics layer needs
// (inverse normal CDF, Student-t quantiles, the Kolmogorov distribution)
// without any dependency outside the standard library.
package xmath

import (
	"errors"
	"math"
	"strconv"
)

// ErrDomain is returned by functions whose argument lies outside the
// mathematical domain of the function.
var ErrDomain = errors.New("xmath: argument outside domain")

// FloatKey encodes a float64 exactly for use inside cache keys: shortest
// hexadecimal form, so two values share a token iff they are the same
// float64 bit pattern (with -0 and +0 collapsed — they are arithmetically
// indistinguishable in every formula here). This is the single canonical
// encoding shared by core.Model.CacheKey, failures.CacheKey and the
// request keys in internal/service; changing it invalidates (never
// aliases) existing keys, as they all embed it.
func FloatKey(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// Expm1Div returns (e^x - 1)/x, evaluated stably for small |x|.
// The limit at x = 0 is 1.
func Expm1Div(x float64) float64 {
	if x == 0 {
		return 1
	}
	// For tiny x, expm1 keeps full precision where exp(x)-1 would not.
	return math.Expm1(x) / x
}

// XOverExpm1 returns x/(e^x - 1), the reciprocal of Expm1Div. The limit at
// x = 0 is 1. This is the factor appearing in the expected lost time
// E_lost(W) = 1/λ − W/(e^{λW}−1) of Proposition 1.
func XOverExpm1(x float64) float64 {
	if x == 0 {
		return 1
	}
	em := math.Expm1(x)
	if math.IsInf(em, 1) {
		return 0
	}
	return x / em
}

// ExpectedLost returns E_lost(W) for an exponential failure process with
// rate lambda observed over an execution of length w: the expected time
// elapsed before the failure, conditioned on the failure striking within
// the window. It equals 1/λ − W/(e^{λW}−1) and tends to W/2 as λW → 0.
func ExpectedLost(lambda, w float64) float64 {
	if lambda <= 0 || w <= 0 {
		return w / 2 // λ→0 limit of the closed form
	}
	x := lambda * w
	if x < 1e-8 {
		// Second-order Taylor expansion: W/2 − λW²/12 + O((λW)³).
		return w/2 - lambda*w*w/12
	}
	return 1/lambda - w/math.Expm1(x)
}

// Log1pExp returns log(1 + e^x) without overflow for large x.
func Log1pExp(x float64) float64 {
	if x > 35 {
		return x + math.Exp(-x)
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// LogExpm1 returns log(e^x − 1) for x > 0, stable for both tiny and huge x.
func LogExpm1(x float64) float64 {
	if !(x > 0) {
		return math.NaN()
	}
	if x > 35 {
		return x // e^x − 1 ≈ e^x
	}
	if x < 1e-8 {
		return math.Log(x) + x/2 // log(x + x²/2 + …)
	}
	return math.Log(math.Expm1(x))
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Lerp linearly interpolates between a and b with parameter t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Horner evaluates the polynomial with the given coefficients (constant
// term first) at x using Horner's rule.
func Horner(x float64, coeffs ...float64) float64 {
	var acc float64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = acc*x + coeffs[i]
	}
	return acc
}

// Sum is a compensated (Neumaier) accumulator. The zero value is ready to
// use. It keeps full double precision when summing many values of mixed
// magnitude, as happens when accumulating millions of simulated pattern
// durations.
type Sum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates v.
func (s *Sum) Add(v float64) {
	t := s.sum + v
	if math.Abs(s.sum) >= math.Abs(v) {
		s.c += (s.sum - t) + v
	} else {
		s.c += (v - t) + s.sum
	}
	s.sum = t
}

// Value returns the compensated total.
func (s *Sum) Value() float64 { return s.sum + s.c }

// Reset clears the accumulator.
func (s *Sum) Reset() { s.sum, s.c = 0, 0 }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var s Sum
	for _, x := range xs {
		s.Add(x)
	}
	return s.Value()
}

// EqualWithin reports whether a and b agree within relative tolerance rel
// or absolute tolerance abs (whichever is looser). NaNs are never equal.
func EqualWithin(a, b, rel, abs float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

// RelDiff returns |a−b| / max(|a|, |b|), or 0 when both are zero.
func RelDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// Linspace returns n points evenly spaced on [lo, hi] inclusive. n must be
// at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("xmath: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Logspace returns n points evenly spaced in log scale on [lo, hi]
// inclusive. Both bounds must be positive and n at least 2.
func Logspace(lo, hi float64, n int) []float64 {
	if !(lo > 0) || !(hi > 0) {
		panic("xmath: Logspace needs positive bounds")
	}
	pts := Linspace(math.Log(lo), math.Log(hi), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	pts[0], pts[n-1] = lo, hi
	return pts
}

// GeometricMean returns the geometric mean of xs (all positive).
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrDomain
	}
	var s Sum
	for _, x := range xs {
		if !(x > 0) {
			return 0, ErrDomain
		}
		s.Add(math.Log(x))
	}
	return math.Exp(s.Value() / float64(len(xs))), nil
}
