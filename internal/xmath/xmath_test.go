package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpm1DivBasics(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 1},
		{1, math.E - 1},
		{-1, 1 - 1/math.E},
		{1e-12, 1 + 0.5e-12},
	}
	for _, c := range cases {
		if got := Expm1Div(c.x); !EqualWithin(got, c.want, 1e-12, 1e-15) {
			t.Errorf("Expm1Div(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestXOverExpm1Reciprocal(t *testing.T) {
	for _, x := range []float64{-5, -1, -1e-6, 1e-9, 0.5, 3, 20} {
		prod := Expm1Div(x) * XOverExpm1(x)
		if !EqualWithin(prod, 1, 1e-12, 0) {
			t.Errorf("Expm1Div(%g)*XOverExpm1(%g) = %g, want 1", x, x, prod)
		}
	}
}

func TestXOverExpm1Overflow(t *testing.T) {
	if got := XOverExpm1(1e6); got != 0 {
		t.Errorf("XOverExpm1(1e6) = %g, want 0 (underflow of x·e^{-x})", got)
	}
}

func TestExpectedLostSmallRateLimit(t *testing.T) {
	// As λW → 0, E_lost(W) → W/2.
	w := 100.0
	got := ExpectedLost(1e-15, w)
	if !EqualWithin(got, w/2, 1e-9, 0) {
		t.Errorf("ExpectedLost tiny rate = %g, want %g", got, w/2)
	}
	// λ = 0 exactly uses the limit.
	if got := ExpectedLost(0, w); got != w/2 {
		t.Errorf("ExpectedLost(0, w) = %g, want %g", got, w/2)
	}
}

func TestExpectedLostClosedForm(t *testing.T) {
	lambda, w := 0.01, 250.0
	want := 1/lambda - w/math.Expm1(lambda*w)
	if got := ExpectedLost(lambda, w); !EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("ExpectedLost = %g, want %g", got, want)
	}
}

func TestExpectedLostMonotoneInW(t *testing.T) {
	// Expected lost time grows with the window length.
	lambda := 1e-4
	prev := 0.0
	for _, w := range []float64{1, 10, 100, 1e3, 1e4, 1e5} {
		got := ExpectedLost(lambda, w)
		if got <= prev {
			t.Fatalf("ExpectedLost not increasing at w=%g: %g <= %g", w, got, prev)
		}
		prev = got
	}
}

func TestExpectedLostBelowHalfWindowProperty(t *testing.T) {
	// For an exponential process, the conditional expected loss is always
	// strictly between 0 and W/2 · (1 + small); more precisely it is at
	// most W/2 and at least 0, approaching 1/λ for λW large.
	f := func(l, w uint32) bool {
		lambda := 1e-9 + float64(l%100000)*1e-7
		win := 1 + float64(w%1000000)
		got := ExpectedLost(lambda, win)
		return got > 0 && got <= win/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog1pExp(t *testing.T) {
	cases := []float64{-100, -40, -5, 0, 5, 40, 100, 700}
	for _, x := range cases {
		got := Log1pExp(x)
		var want float64
		switch {
		case x > 30:
			want = x + math.Exp(-x)
		case x < -30:
			want = math.Exp(x) // log(1+ε) ≈ ε; naive form rounds to 0
		default:
			want = math.Log(1 + math.Exp(x))
		}
		if !EqualWithin(got, want, 1e-12, 1e-300) {
			t.Errorf("Log1pExp(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLogExpm1(t *testing.T) {
	for _, x := range []float64{1e-12, 1e-6, 0.1, 1, 10, 50, 500} {
		got := LogExpm1(x)
		var want float64
		if x > 30 {
			want = x
		} else {
			want = math.Log(math.Expm1(x))
		}
		if !EqualWithin(got, want, 1e-9, 0) {
			t.Errorf("LogExpm1(%g) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(LogExpm1(-1)) {
		t.Error("LogExpm1(-1) should be NaN")
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	if Lerp(2, 4, 0.5) != 3 {
		t.Error("Lerp midpoint wrong")
	}
}

func TestHorner(t *testing.T) {
	// p(x) = 1 + 2x + 3x²  at x = 2 → 1 + 4 + 12 = 17
	if got := Horner(2, 1, 2, 3); got != 17 {
		t.Errorf("Horner = %g, want 17", got)
	}
	if got := Horner(5); got != 0 {
		t.Errorf("empty Horner = %g, want 0", got)
	}
}

func TestNeumaierSumCancellation(t *testing.T) {
	// Classic Neumaier test: 1 + 1e100 + 1 − 1e100 = 2, naive sum gives 0.
	var s Sum
	for _, v := range []float64{1, 1e100, 1, -1e100} {
		s.Add(v)
	}
	if got := s.Value(); got != 2 {
		t.Errorf("compensated sum = %g, want 2", got)
	}
	s.Reset()
	if s.Value() != 0 {
		t.Error("Reset did not clear the accumulator")
	}
}

func TestSumSliceMatchesAccumulator(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 1e-17, -0.6}
	var s Sum
	for _, x := range xs {
		s.Add(x)
	}
	if SumSlice(xs) != s.Value() {
		t.Error("SumSlice disagrees with incremental accumulator")
	}
}

func TestEqualWithin(t *testing.T) {
	if !EqualWithin(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Error("relative tolerance not honoured")
	}
	if EqualWithin(1.0, 1.1, 1e-3, 0) {
		t.Error("clearly different values compared equal")
	}
	if EqualWithin(math.NaN(), math.NaN(), 1, 1) {
		t.Error("NaN compared equal")
	}
	if !EqualWithin(0, 1e-16, 0, 1e-12) {
		t.Error("absolute tolerance not honoured")
	}
}

func TestRelDiff(t *testing.T) {
	if RelDiff(0, 0) != 0 {
		t.Error("RelDiff(0,0) != 0")
	}
	if got := RelDiff(1, 2); got != 0.5 {
		t.Errorf("RelDiff(1,2) = %g, want 0.5", got)
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !EqualWithin(pts[i], want[i], 1e-15, 0) {
			t.Errorf("Linspace[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
}

func TestLogspaceEndpointsExact(t *testing.T) {
	pts := Logspace(1e-12, 1e-8, 9)
	if pts[0] != 1e-12 || pts[len(pts)-1] != 1e-8 {
		t.Errorf("Logspace endpoints %g, %g not exact", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatal("Logspace not strictly increasing")
		}
	}
	// Evenly spaced ratios.
	r := pts[1] / pts[0]
	for i := 2; i < len(pts); i++ {
		if !EqualWithin(pts[i]/pts[i-1], r, 1e-9, 0) {
			t.Error("Logspace ratios not constant")
		}
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linspace with n=1 should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestLogspacePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Logspace with lo=0 should panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestGeometricMean(t *testing.T) {
	got, err := GeometricMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(got, 10, 1e-12, 0) {
		t.Errorf("GeometricMean = %g, want 10", got)
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("empty slice should error")
	}
	if _, err := GeometricMean([]float64{1, -1}); err == nil {
		t.Error("negative value should error")
	}
}

// Property: ExpectedLost agrees with a numerical integration of the
// conditional density for moderate λW.
func TestExpectedLostMatchesNumericalIntegral(t *testing.T) {
	lambda, w := 0.002, 800.0
	// ∫0^W t λ e^{−λt} dt / (1 − e^{−λW})
	const n = 200000
	dt := w / n
	var num Sum
	for i := 0; i < n; i++ {
		tm := (float64(i) + 0.5) * dt
		num.Add(tm * lambda * math.Exp(-lambda*tm) * dt)
	}
	want := num.Value() / (-math.Expm1(-lambda * w))
	got := ExpectedLost(lambda, w)
	if !EqualWithin(got, want, 1e-6, 0) {
		t.Errorf("ExpectedLost = %g, numerical integral = %g", got, want)
	}
}
