package core

import (
	"fmt"
	"math"
	"strings"

	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

// CacheKeyer is the optional interface a speedup.Profile (or any other
// model component) can implement to provide its own canonical cache key.
// The contract is the same as Model.CacheKey's: two components with equal
// keys must evaluate identically everywhere, and two observably different
// components must produce different keys.
type CacheKeyer interface {
	CacheKey() string
}

// CacheKey returns a canonical, hashable identity for the model, suitable
// as a cache key for compiled evaluators (Frozen), memoized optimizer
// results and Monte-Carlo campaign results.
//
// Canonicalization rules (documented in DESIGN.md, "Service layer"):
//
//   - every float64 parameter is encoded with strconv.FormatFloat 'x'
//     (exact shortest hexadecimal): two parameters map to the same token
//     iff they are the same float64 bit pattern (with -0 and +0 collapsed
//     deliberately — they evaluate identically in every formula);
//   - the speedup profile is keyed by exact type plus its parameters for
//     the four built-in profiles; a custom profile must implement
//     CacheKeyer (preferred) or provide an injective Name();
//   - NaN parameters are rejected: NaN never compares equal, so a NaN key
//     would poison a cache with unreachable entries (and the model is
//     invalid anyway).
//
// The key is *identity*, not equivalence: models that happen to evaluate
// equal (e.g. a zero-rate exponential vs a zero silent fraction) hash
// apart, which only costs a duplicate cache slot, never a wrong result.
func (m Model) CacheKey() (string, error) {
	for _, v := range []float64{
		m.LambdaInd, m.FailStopFrac, m.SilentFrac,
		m.Res.Checkpoint.A, m.Res.Checkpoint.B, m.Res.Checkpoint.C,
		m.Res.Recovery.A, m.Res.Recovery.B, m.Res.Recovery.C,
		m.Res.Verification.V, m.Res.Verification.U, m.Res.Downtime,
	} {
		if math.IsNaN(v) {
			return "", fmt.Errorf("core: cannot key a model with NaN parameters")
		}
	}
	prof, err := profileKey(m.Profile)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(192)
	b.WriteString("m1|") // key-format version: bump when the layout changes
	appendHex(&b, m.LambdaInd)
	appendHex(&b, m.FailStopFrac)
	appendHex(&b, m.SilentFrac)
	appendHex(&b, m.Res.Checkpoint.A)
	appendHex(&b, m.Res.Checkpoint.B)
	appendHex(&b, m.Res.Checkpoint.C)
	appendHex(&b, m.Res.Recovery.A)
	appendHex(&b, m.Res.Recovery.B)
	appendHex(&b, m.Res.Recovery.C)
	appendHex(&b, m.Res.Verification.V)
	appendHex(&b, m.Res.Verification.U)
	appendHex(&b, m.Res.Downtime)
	b.WriteString(prof)
	return b.String(), nil
}

// FormatFloatKey encodes one float64 exactly for use inside cache keys;
// it is xmath.FloatKey, the canonical token shared by Model.CacheKey,
// the distribution keys in internal/failures and the request keys in
// internal/service.
func FormatFloatKey(v float64) string {
	return xmath.FloatKey(v)
}

func appendHex(b *strings.Builder, v float64) {
	b.WriteString(FormatFloatKey(v))
	b.WriteByte('|')
}

// profileKey canonicalizes the speedup profile. The built-in profiles are
// keyed structurally (exact type + exact parameters); anything else must
// either implement CacheKeyer or rely on an injective Name().
func profileKey(p speedup.Profile) (string, error) {
	switch prof := p.(type) {
	case nil:
		return "", fmt.Errorf("core: cannot key a model with a nil profile")
	case speedup.Amdahl:
		if math.IsNaN(prof.Alpha) {
			return "", fmt.Errorf("core: cannot key an Amdahl profile with NaN α")
		}
		return "amdahl:" + FormatFloatKey(prof.Alpha), nil
	case speedup.PerfectlyParallel:
		return "pp", nil
	case speedup.AmdahlComm:
		if math.IsNaN(prof.Alpha) || math.IsNaN(prof.Speed) || math.IsNaN(prof.Comm) {
			return "", fmt.Errorf("core: cannot key an AmdahlComm profile with NaN parameters")
		}
		return "amdahlcomm:" + FormatFloatKey(prof.Alpha) + "," +
			FormatFloatKey(prof.Speed) + "," + FormatFloatKey(prof.Comm), nil
	case speedup.Gustafson:
		if math.IsNaN(prof.Alpha) {
			return "", fmt.Errorf("core: cannot key a Gustafson profile with NaN α")
		}
		return "gustafson:" + FormatFloatKey(prof.Alpha), nil
	case speedup.PowerLaw:
		if math.IsNaN(prof.Gamma) {
			return "", fmt.Errorf("core: cannot key a power-law profile with NaN γ")
		}
		return "powerlaw:" + FormatFloatKey(prof.Gamma), nil
	}
	if k, ok := p.(CacheKeyer); ok {
		return "custom:" + k.CacheKey(), nil
	}
	// Last resort: the display name. Names are meant for humans — nothing
	// forces a custom profile to embed every parameter, or to format them
	// losslessly — so this is only safe for profiles whose Name() is
	// injective, hence the preference order above.
	return "named:" + p.Name(), nil
}
