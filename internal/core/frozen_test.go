package core

import (
	"math"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/speedup"
)

// relErr returns |a−b| / max(|a|, |b|, 1), treating equal infinities and
// NaN pairs as a perfect match.
func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / scale
}

// TestFrozenMatchesModel is the frozen-engine equivalence property test:
// across random (T, P, scenario, α) draws, every Frozen method must agree
// with its Model counterpart to ≤ 1e-12 relative error (they are designed
// to be bit-exact; the tolerance only guards the test against future
// regressions that re-order arithmetic).
func TestFrozenMatchesModel(t *testing.T) {
	r := rng.New(0xF0F0)
	platforms := []struct {
		lambda, f  float64
		procs      float64
		cost, vqst float64
	}{
		{1.69e-8, 0.2188, 512, 300, 15.4},
		{1.62e-8, 0.0625, 1024, 439, 9.1},
		{2.34e-9, 0.1667, 2048, 1051, 4.5},
		{2.34e-9, 0.1667, 2048, 2500, 180},
	}

	checked := 0
	for trial := 0; trial < 4000; trial++ {
		pl := platforms[r.Intn(len(platforms))]
		sc := costmodel.AllScenarios[r.Intn(len(costmodel.AllScenarios))]
		downtime := []float64{0, 60, 3600}[r.Intn(3)]
		res, err := sc.Calibrate(pl.procs, pl.cost, pl.vqst, downtime)
		if err != nil {
			t.Fatal(err)
		}

		alpha := []float64{0, 1e-4, 1e-2, 0.1, 0.5}[r.Intn(5)]
		var profile speedup.Profile
		if alpha == 0 {
			profile = speedup.PerfectlyParallel{}
		} else {
			profile = speedup.Amdahl{Alpha: alpha}
		}

		// λ_ind spread over the paper's sweep range 1e-12 … 1e-8.
		lambda := pl.lambda * math.Pow(10, -2+4*r.Float64())
		m := Model{
			LambdaInd:    lambda,
			FailStopFrac: pl.f,
			SilentFrac:   1 - pl.f,
			Res:          res,
			Profile:      profile,
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}

		// P spans 1 … 1e12 (the α = 0 sweeps reach that far), T spans
		// microseconds to ~30 years, both log-uniform.
		p := math.Pow(10, 12*r.Float64())
		period := math.Pow(10, -6+15*r.Float64())
		fz := m.Freeze(p)

		pairs := []struct {
			name          string
			frozen, model float64
		}{
			{"PatternTime", fz.PatternTime(period), m.ExactPatternTime(period, p)},
			{"Overhead", fz.Overhead(period), m.Overhead(period, p)},
			{"OverheadLog", fz.OverheadLog(math.Log(period)), m.Overhead(math.Exp(math.Log(period)), p)},
			{"FirstOrderPatternTime", fz.FirstOrderPatternTime(period), m.FirstOrderPatternTime(period, p)},
			{"OptimalPeriod", fz.OptimalPeriod(), m.OptimalPeriodFixedP(p)},
			{"OverheadAtOptimalPeriod", fz.OverheadAtOptimalPeriod(), m.OverheadAtOptimalPeriod(p)},
			{"ErrorFreeOverhead", fz.ErrorFreeOverhead(period), m.ErrorFreeOverhead(period, p)},
			{"ProfileOverhead", fz.ProfileOverhead(), m.Profile.Overhead(p)},
		}
		for _, pair := range pairs {
			if e := relErr(pair.frozen, pair.model); !(e <= 1e-12) {
				t.Fatalf("%s mismatch at P=%g, T=%g, α=%g, %v, D=%g, λ=%g: frozen=%g model=%g (rel err %g)",
					pair.name, p, period, alpha, sc, downtime, lambda,
					pair.frozen, pair.model, e)
			}
			checked++
		}

		// OverflowsBeyond must only ever claim +Inf regions.
		if u := math.Log(period); fz.OverflowsBeyond(u) && !math.IsInf(fz.Overhead(period), 1) {
			t.Fatalf("OverflowsBeyond(%g) true but Overhead finite at P=%g", u, p)
		}
	}
	if checked == 0 {
		t.Fatal("no comparisons performed")
	}
}

// TestFrozenBitExact pins the stronger design goal on the paper's own
// operating points: Frozen is not just close to Model, it is bit-identical
// (the optimizer's probe sequence and therefore every published figure
// depends on this).
func TestFrozenBitExact(t *testing.T) {
	res, err := costmodel.Scenario1.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	for _, p := range []float64{1, 219, 512, 1e4, 1e8} {
		fz := m.Freeze(p)
		for _, period := range []float64{1e-3, 60, 6240, 1e6, 1e10} {
			if got, want := fz.PatternTime(period), m.ExactPatternTime(period, p); got != want {
				t.Errorf("PatternTime(%g) at P=%g: %b != %b", period, p, got, want)
			}
			if got, want := fz.Overhead(period), m.Overhead(period, p); got != want {
				t.Errorf("Overhead(%g) at P=%g: %b != %b", period, p, got, want)
			}
		}
	}
}

// TestFrozenOverflowsBeyondMonotone checks the monotonicity contract that
// the infeasible-grid rejection relies on: once OverflowsBeyond reports
// true at u, the overhead is +Inf at every probed u' ≥ u.
func TestFrozenOverflowsBeyondMonotone(t *testing.T) {
	res, err := costmodel.Scenario1.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	fz := m.Freeze(1e11) // deep failure-dominated regime
	uStart := math.Log(1e-6)
	for u := uStart; u < 30; u += 0.25 {
		if fz.OverflowsBeyond(u) {
			for du := 0.0; du < 40; du += 0.5 {
				if !math.IsInf(fz.Overhead(math.Exp(u+du)), 1) {
					t.Fatalf("overhead finite at u=%g beyond overflow point u=%g", u+du, u)
				}
			}
			return
		}
	}
	t.Skip("no overflow point found in probe range (platform too reliable)")
}
