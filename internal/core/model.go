// Package core implements the paper's primary contribution: the exact
// expected execution time of a periodic verified-checkpointing pattern
// PATTERN(T, P) under fail-stop and silent errors (Proposition 1), its
// first-order expansion, the optimal checkpointing period for a fixed
// processor count (Theorem 1), the optimal pattern parameters for the
// linear and constant cost classes (Theorems 2 and 3), the overhead
// expressions of the remaining cases (Sections III-D.3 and III-D.4), and
// the validity bounds of the first-order approximation (Section III-B).
//
// # The VC protocol
//
// A pattern is T seconds of useful work followed by a verification V_P and
// a checkpoint C_P. Fail-stop errors (rate λf = f·λ_ind·P) interrupt
// execution anywhere, including inside V, C and R; after a downtime D and
// a recovery R_P the whole pattern restarts. Silent errors (rate
// λs = s·λ_ind·P) strike only during computation and are caught by the
// verification at the end of the pattern, triggering a recovery and a
// re-execution. A silent error followed by a fail-stop error inside the
// same pattern is masked by the rollback.
//
// # A note on Proposition 1
//
// The paper's displayed intermediate formula for E(T+V_P) carries a
// typographical slip (a spurious e^{λs(T+V)}·(T+V) term: the expected-lost
// -time algebra cancels it), but its final Equation (2) is correct; the
// implementation below was re-derived from the renewal equations and
// matches Equation (2) exactly, and the Monte-Carlo simulator in
// internal/sim validates it to within confidence intervals.
package core

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
)

// Model binds everything the formulas need: the error environment of a
// platform, a calibrated resilience-cost model and a speedup profile.
type Model struct {
	// LambdaInd is the individual per-processor error rate (both error
	// sources combined), 1/seconds.
	LambdaInd float64
	// FailStopFrac is f, the fraction of errors that are fail-stop.
	FailStopFrac float64
	// SilentFrac is s = 1−f, the fraction of errors that are silent.
	SilentFrac float64
	// Res carries C_P, R_P, V_P and the downtime D.
	Res costmodel.Resilience
	// Profile is the application speedup profile (Amdahl in the paper).
	Profile speedup.Profile
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if !(m.LambdaInd >= 0) || math.IsInf(m.LambdaInd, 0) {
		return fmt.Errorf("core: λ_ind = %g must be finite and non-negative", m.LambdaInd)
	}
	if !(m.FailStopFrac >= 0 && m.FailStopFrac <= 1) {
		return fmt.Errorf("core: f = %g outside [0,1]", m.FailStopFrac)
	}
	if !(m.SilentFrac >= 0 && m.SilentFrac <= 1) {
		return fmt.Errorf("core: s = %g outside [0,1]", m.SilentFrac)
	}
	if math.Abs(m.FailStopFrac+m.SilentFrac-1) > 1e-3 {
		return fmt.Errorf("core: f + s = %g, want 1", m.FailStopFrac+m.SilentFrac)
	}
	if m.Profile == nil {
		return errors.New("core: nil speedup profile")
	}
	return m.Res.Validate()
}

// Rates returns the platform-level fail-stop and silent rates λf_P and
// λs_P for P processors.
func (m Model) Rates(p float64) (lambdaF, lambdaS float64) {
	if p < 1 {
		p = 1
	}
	return m.FailStopFrac * m.LambdaInd * p, m.SilentFrac * m.LambdaInd * p
}

// EffectiveRate returns λf_P/2 + λs_P, the combined rate constant that
// drives every optimal-period formula: fail-stop errors lose half a period
// on average while silent errors always lose the full period.
func (m Model) EffectiveRate(p float64) float64 {
	lf, ls := m.Rates(p)
	return lf/2 + ls
}

// ExactPatternTime evaluates Proposition 1 (Equation (2)) extended to an
// arbitrary recovery cost R_P:
//
//	E = (1/λf + D) · ( e^{λf·C}·(1 − e^{λs·T})
//	                 + e^{λf·R}·(e^{λf·(C+T+V)+λs·T} − 1) )
//
// with the analytic λf → 0 limit
//
//	E = C + (T+V)·e^{λs·T} + (e^{λs·T} − 1)·R
//
// used when the fail-stop exponents underflow first-order resolution.
// The result is +Inf when the exponentials overflow, which makes the
// function directly usable as a minimization objective.
//
// This is a thin wrapper over Freeze: hot loops that hold P fixed should
// call Freeze(p) once and evaluate Frozen.PatternTime per period instead.
func (m Model) ExactPatternTime(t, p float64) float64 {
	if t <= 0 || p < 1 {
		return math.Inf(1)
	}
	f := m.Freeze(p)
	return f.PatternTime(t)
}

// FirstOrderPatternTime evaluates the second-order Taylor expansion of
// E(PATTERN) used in the proof of Theorem 1 (lower-order terms dropped):
//
//	E ≈ T + V + C + (λf/2 + λs)·T² + λf·T·(V+C+R+D) + λs·T·(V+R)
//	  + λf·C·(C/2+R+V+D) + λf·V·(V+R+D)
func (m Model) FirstOrderPatternTime(t, p float64) float64 {
	if t <= 0 || p < 1 {
		return math.Inf(1)
	}
	f := m.Freeze(p)
	return f.FirstOrderPatternTime(t)
}

// PatternWork returns the amount of sequential-equivalent work a pattern
// processes: W_pattern = T · S(P).
func (m Model) PatternWork(t, p float64) float64 {
	return t * m.Profile.Speedup(p)
}

// Overhead returns the expected execution overhead of the pattern,
// H(T, P) = E(PATTERN)/(T·S(P)) = (E/T)·H(P): the expected seconds of
// wall-clock time per second of sequential work. Minimizing it minimizes
// the expected application makespan.
func (m Model) Overhead(t, p float64) float64 {
	if t <= 0 || p < 1 {
		return math.Inf(1)
	}
	f := m.Freeze(p)
	return f.Overhead(t)
}

// Speedup returns the expected pattern speedup S(T, P) = T·S(P)/E.
func (m Model) Speedup(t, p float64) float64 {
	return 1 / m.Overhead(t, p)
}

// ErrorFreeOverhead returns H(T, P) with both error rates forced to zero:
// the pattern still pays V_P + C_P per period. Used by ablation benches.
func (m Model) ErrorFreeOverhead(t, p float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	cv := m.Res.CombinedVC(p)
	return (t + cv) / t * m.Profile.Overhead(p)
}

// ExpectedMakespan approximates the expected total execution time of an
// application with wTotal seconds of sequential work, split into periodic
// patterns: E(W_final) ≈ H(T, P) · W_total (Section II, optimization
// objective).
func (m Model) ExpectedMakespan(wTotal, t, p float64) float64 {
	return m.Overhead(t, p) * wTotal
}

// PatternCount returns the approximate number of patterns the application
// executes: W_total / (T·S(P)).
func (m Model) PatternCount(wTotal, t, p float64) float64 {
	return wTotal / m.PatternWork(t, p)
}
