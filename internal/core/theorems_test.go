package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

func TestOptimalPeriodFixedPFormula(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	p := 512.0
	cv := m.Res.CombinedVC(p)
	lf, ls := m.Rates(p)
	want := math.Sqrt(cv / (lf/2 + ls))
	if got := m.OptimalPeriodFixedP(p); !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("T*_P = %g, want %g", got, want)
	}
}

func TestOptimalPeriodIsStationaryPoint(t *testing.T) {
	// T*_P must minimize the first-order overhead g(T) = (V+C)/T + rate·T.
	// Check by sampling around the optimum with the EXACT overhead, which
	// the first-order solution approximates: H(T*±20%) > H(T*).
	for _, sc := range costmodel.AllScenarios {
		m := heraModel(t, sc, 0.1)
		for _, p := range []float64{128, 512, 1448} {
			tStar := m.OptimalPeriodFixedP(p)
			h0 := m.Overhead(tStar, p)
			if m.Overhead(tStar*1.2, p) <= h0-1e-9 {
				t.Errorf("%v P=%g: overhead decreases right of T*", sc, p)
			}
			if m.Overhead(tStar*0.8, p) <= h0-1e-9 {
				t.Errorf("%v P=%g: overhead decreases left of T*", sc, p)
			}
		}
	}
}

func TestOptimalPeriodNoErrors(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.LambdaInd = 0
	if !math.IsInf(m.OptimalPeriodFixedP(512), 1) {
		t.Error("with no errors the optimal period must be infinite")
	}
}

func TestOverheadAtOptimalPeriodFormula(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	p := 512.0
	cv := m.Res.CombinedVC(p)
	rate := m.EffectiveRate(p)
	want := m.Profile.Overhead(p) * (1 + 2*math.Sqrt(rate*cv))
	got := m.OverheadAtOptimalPeriod(p)
	if !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("H(T*_P, P) = %g, want %g", got, want)
	}
	// The Theorem 1 prediction must track the exact overhead at T*_P.
	// At Hera's real λ_ind the first-order gap is ≈1% (the paper itself
	// reports percent-level agreement in Fig. 2).
	exact := m.Overhead(m.OptimalPeriodFixedP(p), p)
	if xmath.RelDiff(got, exact) > 2e-2 {
		t.Errorf("Theorem 1 prediction %g vs exact %g", got, exact)
	}
}

// Values computed independently (by hand) from Theorem 2 with Hera
// parameters: c = 300/512, f = 0.2188, s = 0.7812, λ = 1.69e-8, α = 0.1.
func TestTheorem2HeraNumbers(t *testing.T) {
	sol, err := FirstOrderLinearCost(0.1, 300.0/512, 0.2188, 0.7812, 1.69e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.P-219) > 3 {
		t.Errorf("P* = %g, hand computation gives ≈219", sol.P)
	}
	if math.Abs(sol.T-6240) > 60 {
		t.Errorf("T* = %g, hand computation gives ≈6240 s", sol.T)
	}
	// Paper (Fig. 2): overhead ≈ 0.11 at α = 0.1.
	if sol.Overhead < 0.105 || sol.Overhead > 0.115 {
		t.Errorf("H* = %g, paper reports ≈0.11", sol.Overhead)
	}
	if sol.Class != costmodel.ClassLinear || sol.Method != "first-order" {
		t.Errorf("solution metadata wrong: %+v", sol)
	}
}

// Same for Theorem 3 with d = C_P + V_P = 315.4 (scenario 3 on Hera).
func TestTheorem3HeraNumbers(t *testing.T) {
	sol, err := FirstOrderConstantCost(0.1, 315.4, 0.2188, 0.7812, 1.69e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.P-258) > 4 {
		t.Errorf("P* = %g, hand computation gives ≈258", sol.P)
	}
	if math.Abs(sol.T-9020) > 90 {
		t.Errorf("T* = %g, hand computation gives ≈9020 s", sol.T)
	}
	if sol.Overhead < 0.105 || sol.Overhead > 0.115 {
		t.Errorf("H* = %g, paper reports ≈0.11", sol.Overhead)
	}
}

// The striking asymptotic orders: P* = Θ(λ^-1/4) under Theorem 2 and
// Θ(λ^-1/3) under Theorem 3; T* = Θ(λ^-1/2) and Θ(λ^-1/3).
func TestAsymptoticOrders(t *testing.T) {
	const ratio = 16.0
	s2a, _ := FirstOrderLinearCost(0.1, 0.5, 0.2, 0.8, 1e-8)
	s2b, _ := FirstOrderLinearCost(0.1, 0.5, 0.2, 0.8, 1e-8/ratio)
	if !xmath.EqualWithin(s2b.P/s2a.P, math.Pow(ratio, 0.25), 1e-9, 0) {
		t.Errorf("Theorem 2 P* order: grew %g×, want %g×", s2b.P/s2a.P, math.Pow(ratio, 0.25))
	}
	if !xmath.EqualWithin(s2b.T/s2a.T, math.Sqrt(ratio), 1e-9, 0) {
		t.Errorf("Theorem 2 T* order: grew %g×, want %g×", s2b.T/s2a.T, math.Sqrt(ratio))
	}
	s3a, _ := FirstOrderConstantCost(0.1, 315, 0.2, 0.8, 1e-8)
	s3b, _ := FirstOrderConstantCost(0.1, 315, 0.2, 0.8, 1e-8/ratio)
	if !xmath.EqualWithin(s3b.P/s3a.P, math.Cbrt(ratio), 1e-9, 0) {
		t.Errorf("Theorem 3 P* order: grew %g×, want %g×", s3b.P/s3a.P, math.Cbrt(ratio))
	}
	if !xmath.EqualWithin(s3b.T/s3a.T, math.Cbrt(ratio), 1e-9, 0) {
		t.Errorf("Theorem 3 T* order: grew %g×, want %g×", s3b.T/s3a.T, math.Cbrt(ratio))
	}
}

// Consistency: plugging Theorem 2/3's P* into Theorem 1's period formula
// (with the class's idealized cost) must return Theorem 2/3's T*.
func TestTheoremsConsistentWithTheorem1(t *testing.T) {
	alpha, f, s, lam := 0.1, 0.2188, 0.7812, 1.69e-8
	fs := f/2 + s

	c := 300.0 / 512
	s2, _ := FirstOrderLinearCost(alpha, c, f, s, lam)
	// Idealized case 1: V+C = cP, rate = fs·λ·P ⇒ T* = sqrt(c/(fs·λ)).
	wantT := math.Sqrt(c * s2.P / (fs * lam * s2.P))
	if !xmath.EqualWithin(s2.T, wantT, 1e-9, 0) {
		t.Errorf("Theorem 2 T* = %g, Theorem 1 with P* gives %g", s2.T, wantT)
	}

	d := 315.4
	s3, _ := FirstOrderConstantCost(alpha, d, f, s, lam)
	wantT3 := math.Sqrt(d / (fs * lam * s3.P))
	if !xmath.EqualWithin(s3.T, wantT3, 1e-9, 0) {
		t.Errorf("Theorem 3 T* = %g, Theorem 1 with P* gives %g", s3.T, wantT3)
	}
}

// P* from Theorem 2/3 must (approximately) minimize the Theorem 1
// overhead curve H(T*_P, P) over P when λ is small.
func TestPStarMinimizesTheorem1Curve(t *testing.T) {
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3} {
		m := heraModel(t, sc, 0.1)
		m.LambdaInd = 1e-12 // deep in the first-order validity region
		sol, err := m.FirstOrder()
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		h0 := m.OverheadAtOptimalPeriod(sol.P)
		for _, factor := range []float64{0.5, 0.8, 1.25, 2} {
			if h := m.OverheadAtOptimalPeriod(sol.P * factor); h < h0-1e-12 {
				t.Errorf("%v: H at %g×P* (%g) below H at P* (%g)", sc, factor, h, h0)
			}
		}
	}
}

func TestTheorem2InputValidation(t *testing.T) {
	if _, err := FirstOrderLinearCost(0, 0.5, 0.2, 0.8, 1e-8); !errors.Is(err, ErrNoFirstOrder) {
		t.Error("α = 0 must yield ErrNoFirstOrder")
	}
	if _, err := FirstOrderLinearCost(1, 0.5, 0.2, 0.8, 1e-8); !errors.Is(err, ErrNoFirstOrder) {
		t.Error("α = 1 must yield ErrNoFirstOrder")
	}
	if _, err := FirstOrderLinearCost(0.1, 0, 0.2, 0.8, 1e-8); err == nil {
		t.Error("c = 0 accepted")
	}
	if _, err := FirstOrderLinearCost(0.1, 0.5, 0.2, 0.8, 0); err == nil {
		t.Error("λ = 0 accepted")
	}
}

func TestTheorem3InputValidation(t *testing.T) {
	if _, err := FirstOrderConstantCost(0, 300, 0.2, 0.8, 1e-8); !errors.Is(err, ErrNoFirstOrder) {
		t.Error("α = 0 must yield ErrNoFirstOrder")
	}
	if _, err := FirstOrderConstantCost(0.1, 0, 0.2, 0.8, 1e-8); err == nil {
		t.Error("d = 0 accepted")
	}
}

func TestFirstOrderDispatch(t *testing.T) {
	// Scenarios 1–2 → Theorem 2; 3–5 → Theorem 3; 6 → no first-order.
	for _, sc := range costmodel.AllScenarios {
		m := heraModel(t, sc, 0.1)
		sol, err := m.FirstOrder()
		switch sc {
		case costmodel.Scenario6:
			if !errors.Is(err, ErrNoFirstOrder) {
				t.Errorf("%v: want ErrNoFirstOrder, got %v", sc, err)
			}
		default:
			if err != nil {
				t.Errorf("%v: %v", sc, err)
				continue
			}
			if sol.Class != sc.ExpectedClass() {
				t.Errorf("%v: dispatched to %v, want %v", sc, sol.Class, sc.ExpectedClass())
			}
			if sol.P <= 0 || sol.T <= 0 || sol.Overhead <= 0.1 {
				t.Errorf("%v: implausible solution %+v", sc, sol)
			}
		}
	}
}

func TestFirstOrderRequiresAmdahl(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.Profile = speedup.PerfectlyParallel{}
	if _, err := m.FirstOrder(); !errors.Is(err, ErrNoFirstOrder) {
		t.Error("non-Amdahl profile must yield ErrNoFirstOrder")
	}
}

func TestDecreasingCostOverheadMonotone(t *testing.T) {
	// Case 3 overhead decreases monotonically in P (Section III-D.3).
	prev := math.Inf(1)
	for _, p := range []float64{10, 100, 1000, 10000} {
		h := DecreasingCostOverhead(0.1, 315.4*512, 0.2188, 0.7812, 1.69e-8, p)
		if h >= prev {
			t.Errorf("case-3 overhead not decreasing at P=%g", p)
		}
		prev = h
	}
	// Floor is α·(1 + 2sqrt(h·fs·λ)).
	floor := 0.1 * (1 + 2*math.Sqrt(315.4*512*0.89*1.69e-8))
	if h := DecreasingCostOverhead(0.1, 315.4*512, 0.2188, 0.7812, 1.69e-8, 1e12); math.Abs(h-floor) > 1e-3 {
		t.Errorf("case-3 overhead floor = %g, want ≈%g", h, floor)
	}
}

func TestPerfectlyParallelOverheadSubcases(t *testing.T) {
	f, s, lam, p := 0.2, 0.8, 1e-8, 1000.0
	fs := f/2 + s
	// c ≠ 0.
	resLin := costmodel.New(costmodel.Checkpoint{C: 0.5}, costmodel.Verification{}, 0)
	want := 1/p + 2*math.Sqrt(0.5*fs*lam)
	if got := PerfectlyParallelOverhead(resLin, f, s, lam, p); !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("case-4 linear: %g, want %g", got, want)
	}
	// c = 0, d ≠ 0.
	resConst := costmodel.New(costmodel.Checkpoint{A: 300}, costmodel.Verification{V: 15}, 0)
	want = 1/p + 2*math.Sqrt(315*fs*lam/p)
	if got := PerfectlyParallelOverhead(resConst, f, s, lam, p); !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("case-4 constant: %g, want %g", got, want)
	}
	// c = d = 0.
	resDec := costmodel.New(costmodel.Checkpoint{B: 1000}, costmodel.Verification{U: 500}, 0)
	want = (1 / p) * (1 + 2*math.Sqrt(1500*fs*lam))
	if got := PerfectlyParallelOverhead(resDec, f, s, lam, p); !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("case-4 decreasing: %g, want %g", got, want)
	}
}

func TestCheckValidity(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	// At the paper's operating point the approximation is valid.
	v := m.CheckValidity(6000, 512)
	if !v.OK {
		t.Errorf("validity should hold at Hera's operating point: %+v", v)
	}
	// At absurd scale it must fail.
	v = m.CheckValidity(1e6, 1e7)
	if v.OK {
		t.Errorf("validity should fail at extreme scale: %+v", v)
	}
	if v.LambdaT <= 0 || v.LambdaCV <= 0 {
		t.Errorf("validity indicators not populated: %+v", v)
	}
}

func TestMaxOrderDelta(t *testing.T) {
	lin := costmodel.New(costmodel.Checkpoint{C: 1}, costmodel.Verification{}, 0)
	if MaxOrderDelta(lin) != 0.5 {
		t.Error("δ should be 1/2 when c ≠ 0")
	}
	con := costmodel.New(costmodel.Checkpoint{A: 1}, costmodel.Verification{}, 0)
	if MaxOrderDelta(con) != 1 {
		t.Error("δ should be 1 when c = 0")
	}
}

func TestSolutionString(t *testing.T) {
	s := Solution{T: 6000, P: 219, Overhead: 0.108, Method: "first-order"}
	str := s.String()
	for _, frag := range []string{"first-order", "219", "6000", "0.108"} {
		if !strings.Contains(str, frag) {
			t.Errorf("Solution.String() = %q missing %q", str, frag)
		}
	}
}
