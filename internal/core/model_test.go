package core

import (
	"math"
	"testing"
	"testing/quick"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

// heraModel builds a Model with Hera-like parameters (Table II) under the
// given scenario shape, without importing internal/platform (core must
// stay below it in the dependency order).
func heraModel(t *testing.T, sc costmodel.Scenario, alpha float64) Model {
	t.Helper()
	res, err := sc.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: alpha},
	}
}

func TestValidate(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := m
	bad.FailStopFrac = 0.7 // f + s != 1
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent fractions accepted")
	}
	bad = m
	bad.LambdaInd = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	bad = m
	bad.Profile = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestRatesProportions(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	lf, ls := m.Rates(512)
	if !xmath.EqualWithin(lf, 0.2188*1.69e-8*512, 1e-12, 0) {
		t.Errorf("λf = %g", lf)
	}
	if !xmath.EqualWithin(ls, 0.7812*1.69e-8*512, 1e-12, 0) {
		t.Errorf("λs = %g", ls)
	}
	if !xmath.EqualWithin(m.EffectiveRate(512), lf/2+ls, 1e-12, 0) {
		t.Error("EffectiveRate mismatch")
	}
}

func TestExactPatternTimeErrorFreeLimit(t *testing.T) {
	// With λ_ind = 0 the pattern costs exactly T + V + C.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.LambdaInd = 0
	got := m.ExactPatternTime(1000, 512)
	want := 1000 + 15.4 + 300
	if !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("error-free E = %g, want %g", got, want)
	}
}

func TestExactPatternTimeFailStopOnly(t *testing.T) {
	// With s = 0 the formula must reduce to the classical fail-stop form
	// (1/λf + D)·e^{λf·R}·(e^{λf·(C+T+V)} − 1).
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 1, 0
	p, tt := 512.0, 4000.0
	lf, _ := m.Rates(p)
	c := m.Res.Checkpoint.At(p)
	v := m.Res.Verification.At(p)
	want := (1/lf + m.Res.Downtime) * math.Exp(lf*c) * math.Expm1(lf*(c+tt+v))
	got := m.ExactPatternTime(tt, p)
	if !xmath.EqualWithin(got, want, 1e-10, 0) {
		t.Errorf("fail-stop-only E = %g, want %g", got, want)
	}
}

func TestExactPatternTimeSilentOnly(t *testing.T) {
	// With f = 0 the λf → 0 limit applies:
	// E = C + (T+V)e^{λsT} + (e^{λsT} − 1)·R.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 0, 1
	p, tt := 512.0, 4000.0
	_, ls := m.Rates(p)
	c := m.Res.Checkpoint.At(p)
	v := m.Res.Verification.At(p)
	want := c + (tt+v)*math.Exp(ls*tt) + math.Expm1(ls*tt)*c
	got := m.ExactPatternTime(tt, p)
	if !xmath.EqualWithin(got, want, 1e-10, 0) {
		t.Errorf("silent-only E = %g, want %g", got, want)
	}
}

func TestExactPatternTimeClosedFormWhenRecoveryEqualsCheckpoint(t *testing.T) {
	// When R = C, Equation (2) collapses to
	// (1/λf + D)·e^{λfC+λsT}·(e^{λf(C+T+V)} − 1). Verify the identity.
	m := heraModel(t, costmodel.Scenario1, 0.1)
	for _, p := range []float64{64, 512, 4096} {
		for _, tt := range []float64{100, 5000, 50000} {
			lf, ls := m.Rates(p)
			c := m.Res.Checkpoint.At(p)
			v := m.Res.Verification.At(p)
			closed := (1/lf + m.Res.Downtime) * math.Exp(lf*c+ls*tt) * math.Expm1(lf*(c+tt+v))
			got := m.ExactPatternTime(tt, p)
			if !xmath.EqualWithin(got, closed, 1e-9, 0) {
				t.Errorf("P=%g T=%g: general %g vs closed %g", p, tt, got, closed)
			}
		}
	}
}

func TestExactPatternTimeGeneralRecovery(t *testing.T) {
	// With R ≠ C the general form must differ from the R = C closed form
	// in the right direction: larger R costs more.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	base := m.ExactPatternTime(5000, 512)
	m.Res.Recovery = costmodel.Checkpoint{A: 3 * m.Res.Checkpoint.A}
	moreRecovery := m.ExactPatternTime(5000, 512)
	if moreRecovery <= base {
		t.Errorf("tripling R did not increase E: %g vs %g", moreRecovery, base)
	}
}

func TestExactPatternTimeInvalidInputs(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if !math.IsInf(m.ExactPatternTime(0, 512), 1) {
		t.Error("T = 0 should be +Inf")
	}
	if !math.IsInf(m.ExactPatternTime(-5, 512), 1) {
		t.Error("negative T should be +Inf")
	}
	if !math.IsInf(m.ExactPatternTime(100, 0.5), 1) {
		t.Error("P < 1 should be +Inf")
	}
}

func TestExactPatternTimeOverflowIsInf(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if got := m.ExactPatternTime(1e30, 1e6); !math.IsInf(got, 1) {
		t.Errorf("astronomical T should overflow to +Inf, got %g", got)
	}
}

// Property: E(PATTERN) is strictly increasing in T, in λ_ind, and in D.
func TestExactPatternTimeMonotonicity(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	f := func(tRaw, dRaw uint16) bool {
		t1 := 100 + float64(tRaw%40000)
		t2 := t1 + 1 + float64(dRaw%10000)
		if m.ExactPatternTime(t1, 512) >= m.ExactPatternTime(t2, 512) {
			return false
		}
		hot := m
		hot.LambdaInd = m.LambdaInd * 10
		if hot.ExactPatternTime(t1, 512) <= m.ExactPatternTime(t1, 512) {
			return false
		}
		slow := m
		slow.Res.Downtime = m.Res.Downtime + 1 + float64(dRaw%7200)
		return slow.ExactPatternTime(t1, 512) > m.ExactPatternTime(t1, 512)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the first-order expansion converges to the exact formula as
// λ_ind → 0: relative error shrinks by ~the rate ratio each decade.
func TestFirstOrderExpansionConvergence(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	p, tt := 512.0, 5000.0
	prevErr := math.Inf(1)
	for _, lam := range []float64{1e-7, 1e-8, 1e-9, 1e-10, 1e-11} {
		mm := m
		mm.LambdaInd = lam
		exact := mm.ExactPatternTime(tt, p)
		approx := mm.FirstOrderPatternTime(tt, p)
		relErr := xmath.RelDiff(exact, approx)
		if relErr >= prevErr {
			t.Errorf("λ=%g: first-order error %g did not shrink (prev %g)", lam, relErr, prevErr)
		}
		prevErr = relErr
	}
	if prevErr > 1e-8 {
		t.Errorf("residual first-order error %g too large at λ=1e-11", prevErr)
	}
}

func TestFirstOrderPatternTimeTermStructure(t *testing.T) {
	// Evaluate the expansion explicitly against an independent rendering
	// of the Theorem 1 proof formula.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	p, tt := 512.0, 4000.0
	lf, ls := m.Rates(p)
	c, v, d := 300.0, 15.4, 3600.0
	r := c
	want := tt + v + c + (lf/2+ls)*tt*tt + lf*tt*(v+c+r+d) + ls*tt*(v+r) +
		lf*c*(c/2+r+v+d) + lf*v*(v+r+d)
	got := m.FirstOrderPatternTime(tt, p)
	if !xmath.EqualWithin(got, want, 1e-12, 0) {
		t.Errorf("expansion = %g, want %g", got, want)
	}
}

func TestOverheadDefinition(t *testing.T) {
	// H(T,P) = E/(T·S(P)) = (E/T)·H(P) and Speedup is its reciprocal.
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tt, p := 6000.0, 512.0
	e := m.ExactPatternTime(tt, p)
	wantH := e / tt * m.Profile.Overhead(p)
	if got := m.Overhead(tt, p); !xmath.EqualWithin(got, wantH, 1e-12, 0) {
		t.Errorf("Overhead = %g, want %g", got, wantH)
	}
	if got := m.Speedup(tt, p); !xmath.EqualWithin(got, 1/wantH, 1e-12, 0) {
		t.Errorf("Speedup = %g, want %g", got, 1/wantH)
	}
	if !math.IsInf(m.Overhead(0, p), 1) {
		t.Error("overhead at T=0 should be +Inf")
	}
}

func TestOverheadExceedsErrorFreeFloor(t *testing.T) {
	// With errors, overhead is strictly above the error-free overhead,
	// which itself is strictly above H(P).
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tt, p := 6000.0, 512.0
	h := m.Overhead(tt, p)
	hFree := m.ErrorFreeOverhead(tt, p)
	hP := m.Profile.Overhead(p)
	if !(h > hFree && hFree > hP) {
		t.Errorf("ordering violated: H=%g, H_free=%g, H(P)=%g", h, hFree, hP)
	}
}

func TestExpectedMakespanAndPatternCount(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tt, p, w := 6000.0, 512.0, 1e9
	if got, want := m.ExpectedMakespan(w, tt, p), m.Overhead(tt, p)*w; got != want {
		t.Errorf("makespan = %g, want %g", got, want)
	}
	if got, want := m.PatternCount(w, tt, p), w/(tt*m.Profile.Speedup(p)); got != want {
		t.Errorf("pattern count = %g, want %g", got, want)
	}
	if got := m.PatternWork(tt, p); !xmath.EqualWithin(got, tt*m.Profile.Speedup(p), 1e-15, 0) {
		t.Errorf("pattern work = %g", got)
	}
}

// Property: for random small-rate models, the exact formula stays within a
// hair of the first-order expansion, across all six scenarios.
func TestExactVsExpansionAcrossScenarios(t *testing.T) {
	for _, sc := range costmodel.AllScenarios {
		m := heraModel(t, sc, 0.1)
		m.LambdaInd = 1e-10
		for _, p := range []float64{32, 512, 8192} {
			tt := m.OptimalPeriodFixedP(p)
			exact := m.ExactPatternTime(tt, p)
			approx := m.FirstOrderPatternTime(tt, p)
			// At the optimal period λ_P·T is O(sqrt(λ_P·CV)), so the
			// dropped third-order terms contribute O((λT)³/6) ≈ 0.2%
			// at the largest P probed here.
			if xmath.RelDiff(exact, approx) > 5e-3 {
				t.Errorf("%v P=%g: exact %g vs expansion %g", sc, p, exact, approx)
			}
		}
	}
}
