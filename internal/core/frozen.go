package core

import "math"

// Frozen is a Model compiled at a fixed processor count P: every
// loop-invariant quantity of Proposition 1 and of the first-order
// expansion — the platform rates λf_P and λs_P, the resilience costs C_P,
// R_P, V_P, the downtime D, the renewal constant k = 1/λf + D, the
// exponentials e^{λf·C} and e^{λf·R}, the error-free overhead H(P) and the
// Theorem 1 constants — is evaluated once at construction. The per-call
// cost of PatternTime and Overhead is then two expm1 calls and a handful
// of multiplies, with zero allocations, which is what the inner
// T-minimization of the nested (T, P) optimizer and the Monte-Carlo
// pricing loops actually pay.
//
// Frozen is the compiled-kernel counterpart of Model (the specification):
// use Model for one-off evaluations and validation, Freeze once per P for
// any loop that holds P fixed. All methods reproduce the corresponding
// Model methods bit-exactly (the arithmetic is performed in the same
// order on the same intermediate values).
type Frozen struct {
	// P is the processor count the evaluator was compiled for (clamped
	// to 1 like Model.Rates does).
	P float64
	// LambdaF and LambdaS are the platform-level rates λf_P and λs_P.
	LambdaF, LambdaS float64
	// C, R, V are C_P, R_P, V_P; D is the downtime.
	C, R, V, D float64

	// neverLimit records that the λf→0 limit branch is unreachable for
	// every t > 0: the branch condition λf·(C+R+V+t+D) < 1e-13 is
	// monotone non-decreasing in t (rounded multiplication and addition
	// by non-negative values preserve order), so when it already fails at
	// t = 0 the per-call test can be skipped without changing any result.
	neverLimit bool

	crv     float64 // C + R + V, the λf→0 branch test constant
	k       float64 // 1/λf + D (+Inf when λf = 0; the branch never uses it)
	expC    float64 // e^{λf·C}
	expR    float64 // e^{λf·R}
	hP      float64 // H(P) = Profile.Overhead(P)
	cv      float64 // C + V, the Theorem 1 numerator
	effRate float64 // λf/2 + λs, the Theorem 1 denominator
	// First-order expansion constants (FirstOrderPatternTime).
	foVCRD   float64 // V + C + R + D
	foVR     float64 // V + R
	foConstC float64 // λf·C·(C/2 + R + V + D)
	foConstV float64 // λf·V·(V + R + D)
}

// Freeze compiles the model at processor count p. It does not validate;
// callers that accept untrusted models should call Validate first.
func (m Model) Freeze(p float64) Frozen {
	if p < 1 {
		p = 1
	}
	lf, ls := m.Rates(p)
	c := m.Res.Checkpoint.At(p)
	r := m.Res.Recovery.At(p)
	v := m.Res.Verification.At(p)
	d := m.Res.Downtime
	crv := c + r + v
	return Frozen{
		P:       p,
		LambdaF: lf,
		LambdaS: ls,
		C:       c,
		R:       r,
		V:       v,
		D:       d,

		neverLimit: !(lf*(crv+d) < 1e-13),

		crv:     crv,
		k:       1/lf + d,
		expC:    math.Exp(lf * c),
		expR:    math.Exp(lf * r),
		hP:      m.Profile.Overhead(p),
		cv:      c + v,
		effRate: lf/2 + ls,

		foVCRD:   v + c + r + d,
		foVR:     v + r,
		foConstC: lf * c * (c/2 + r + v + d),
		foConstV: lf * v * (v + r + d),
	}
}

// PatternTime evaluates Proposition 1 (Equation (2)) at the compiled P,
// bit-exactly equal to Model.ExactPatternTime(t, P).
func (f *Frozen) PatternTime(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	lsT := f.LambdaS * t
	// λf so small that λf·(everything) is far below the cancellation
	// floor: use the exact limit instead of the 0/0 form.
	if !f.neverLimit && f.LambdaF*(f.crv+t+f.D) < 1e-13 {
		expLsT := math.Exp(lsT)
		return f.C + (t+f.V)*expLsT + math.Expm1(lsT)*f.R
	}
	// e^{λf(C+T+V)+λsT} − 1, kept in expm1 form for small exponents.
	grow := math.Expm1(f.LambdaF*(f.C+t+f.V) + lsT)
	shrink := math.Expm1(lsT) // e^{λsT} − 1 >= 0
	e := f.k * (f.expR*grow - f.expC*shrink)
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e
}

// Overhead returns H(T, P) = E(PATTERN)/T · H(P) at the compiled P,
// bit-exactly equal to Model.Overhead(t, P).
//
// PatternTime is manually inlined here: this is the innermost objective of
// the nested (T, P) optimizer and the extra call frame plus the +Inf
// re-check are measurable at that call rate. With t and H(P) finite and
// positive, e/t·H(P) is +Inf exactly when e is, so the overflow guard of
// the two-step formulation is redundant.
func (f *Frozen) Overhead(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	lsT := f.LambdaS * t
	if !f.neverLimit && f.LambdaF*(f.crv+t+f.D) < 1e-13 {
		expLsT := math.Exp(lsT)
		e := f.C + (t+f.V)*expLsT + math.Expm1(lsT)*f.R
		return e / t * f.hP
	}
	grow := math.Expm1(f.LambdaF*(f.C+t+f.V) + lsT)
	shrink := math.Expm1(lsT)
	e := f.k * (f.expR*grow - f.expC*shrink)
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e / t * f.hP
}

// OverheadLog returns Overhead(e^u): the form the log-grid period
// minimizer consumes. The transform and the kernel share one stack frame
// (the kernel body is repeated rather than called — at the optimizer's
// call rate the extra frame is measurable), and the period t = e^u is
// always positive, so only the overflow guards remain. Bit-exactly equal
// to Overhead(math.Exp(u)).
func (f *Frozen) OverheadLog(u float64) float64 {
	t := math.Exp(u)
	lsT := f.LambdaS * t
	if !f.neverLimit && f.LambdaF*(f.crv+t+f.D) < 1e-13 {
		expLsT := math.Exp(lsT)
		e := f.C + (t+f.V)*expLsT + math.Expm1(lsT)*f.R
		return e / t * f.hP
	}
	grow := math.Expm1(f.LambdaF*(f.C+t+f.V) + lsT)
	shrink := math.Expm1(lsT)
	e := f.k * (f.expR*grow - f.expC*shrink)
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e / t * f.hP
}

// FirstOrderPatternTime evaluates the second-order Taylor expansion of
// E(PATTERN) at the compiled P, bit-exactly equal to
// Model.FirstOrderPatternTime(t, P).
func (f *Frozen) FirstOrderPatternTime(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return t + f.V + f.C +
		f.effRate*t*t +
		f.LambdaF*t*f.foVCRD +
		f.LambdaS*t*f.foVR +
		f.foConstC +
		f.foConstV
}

// OverflowsBeyond reports that Overhead(e^u) is +Inf and provably +Inf
// for every period t ≥ e^u. The fail-stop exponent λf·(C+t+V) + λs·t is
// monotone non-decreasing in t even under rounding (every operation is a
// correctly-rounded add or multiply by a non-negative constant), and once
// Expm1 overflows the pattern time is +Inf whatever the silent-error term
// does (k, e^{λf·R} > 0, and the Inf−Inf case is mapped to +Inf too). The
// period minimizer uses this to reject an entire infeasible grid after
// probing only its low edge.
func (f *Frozen) OverflowsBeyond(u float64) bool {
	if !f.neverLimit {
		return false // λf→0 regime: the limit branch never overflows this way
	}
	t := math.Exp(u)
	return math.IsInf(math.Expm1(f.LambdaF*(f.C+t+f.V)+f.LambdaS*t), 1)
}

// OptimalPeriod returns Theorem 1's first-order optimal period T*_P at
// the compiled P, bit-exactly equal to Model.OptimalPeriodFixedP(P).
func (f *Frozen) OptimalPeriod() float64 {
	if f.effRate <= 0 {
		return math.Inf(1) // no errors: checkpoint never
	}
	return math.Sqrt(f.cv / f.effRate)
}

// OverheadAtOptimalPeriod returns Theorem 1's overhead at T*_P,
// bit-exactly equal to Model.OverheadAtOptimalPeriod(P).
func (f *Frozen) OverheadAtOptimalPeriod() float64 {
	return f.hP * (1 + 2*math.Sqrt(f.effRate*f.cv))
}

// ErrorFreeOverhead returns H(T, P) with both error rates forced to zero,
// bit-exactly equal to Model.ErrorFreeOverhead(t, P).
func (f *Frozen) ErrorFreeOverhead(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return (t + f.cv) / t * f.hP
}

// ProfileOverhead returns the cached error-free execution overhead H(P).
func (f *Frozen) ProfileOverhead() float64 { return f.hP }

// Speedup returns the expected pattern speedup S(T, P) = 1/H(T, P).
func (f *Frozen) Speedup(t float64) float64 {
	return 1 / f.Overhead(t)
}
