package core

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
)

// ErrNoFirstOrder is returned when the first-order analysis has no bounded
// optimum: the decreasing cost class C_P+V_P = h/P (Section III-D.3) and
// the perfectly parallel profile α = 0 (Section III-D.4). The numerical
// solver in internal/optimize still applies in those regimes.
var ErrNoFirstOrder = errors.New(
	"core: no bounded first-order optimum for this cost class / speedup profile")

// Solution is an optimal (or candidate) pattern configuration together
// with its predicted overhead.
type Solution struct {
	// T is the checkpointing period in seconds.
	T float64
	// P is the (possibly fractional) processor allocation.
	P float64
	// Overhead is the predicted expected execution overhead H(T, P).
	Overhead float64
	// Method records how the solution was obtained ("first-order",
	// "numerical", …).
	Method string
	// Class is the analytical case that produced a first-order solution.
	Class costmodel.Class
}

// String implements fmt.Stringer.
func (s Solution) String() string {
	return fmt.Sprintf("%s: P*=%.6g, T*=%.6g s, H=%.6g", s.Method, s.P, s.T, s.Overhead)
}

// OptimalPeriodFixedP returns Theorem 1's first-order optimal
// checkpointing period for a fixed processor count,
//
//	T*_P = sqrt( (V_P + C_P) / (λf_P/2 + λs_P) ),
//
// the Young/Daly extension to two error sources and verified checkpoints.
func (m Model) OptimalPeriodFixedP(p float64) float64 {
	cv := m.Res.CombinedVC(p)
	rate := m.EffectiveRate(p)
	if rate <= 0 {
		return math.Inf(1) // no errors: checkpoint never
	}
	return math.Sqrt(cv / rate)
}

// OverheadAtOptimalPeriod returns Theorem 1's expected execution overhead
// at T*_P (lower-order terms dropped):
//
//	H(T*_P, P) = H(P) · (1 + 2·sqrt((λf_P/2 + λs_P)·(V_P + C_P))).
func (m Model) OverheadAtOptimalPeriod(p float64) float64 {
	cv := m.Res.CombinedVC(p)
	rate := m.EffectiveRate(p)
	return m.Profile.Overhead(p) * (1 + 2*math.Sqrt(rate*cv))
}

// FirstOrderLinearCost implements Theorem 2 (case 1: C_P = cP + o(P),
// constant sequential fraction α > 0):
//
//	P* = ( 1 / (c·(f/2+s)·λ_ind) )^{1/4} · ( (1−α)/(2α) )^{1/2}
//	T* = ( c / ((f/2+s)·λ_ind) )^{1/2}
//	H* = α + 2·( 4α²(1−α)²·c·(f/2+s)·λ_ind )^{1/4}
//
// The caller provides α and the linear coefficient c.
func FirstOrderLinearCost(alpha, c, f, s, lambdaInd float64) (Solution, error) {
	if !(alpha > 0 && alpha < 1) {
		return Solution{}, fmt.Errorf("core: Theorem 2 needs 0 < α < 1, got %g: %w",
			alpha, ErrNoFirstOrder)
	}
	if !(c > 0) || !(lambdaInd > 0) {
		return Solution{}, fmt.Errorf("core: Theorem 2 needs c > 0 and λ_ind > 0")
	}
	fs := f/2 + s
	pStar := math.Pow(1/(c*fs*lambdaInd), 0.25) * math.Sqrt((1-alpha)/(2*alpha))
	tStar := math.Sqrt(c / (fs * lambdaInd))
	h := alpha + 2*math.Pow(4*alpha*alpha*(1-alpha)*(1-alpha)*c*fs*lambdaInd, 0.25)
	return Solution{
		T: tStar, P: pStar, Overhead: h,
		Method: "first-order", Class: costmodel.ClassLinear,
	}, nil
}

// FirstOrderConstantCost implements Theorem 3 (case 2: C_P+V_P = d + o(1),
// constant sequential fraction α > 0):
//
//	P* = ( 1 / (d·(f/2+s)·λ_ind) )^{1/3} · ( (1−α)/α )^{2/3}
//	T* = ( d² / ((f/2+s)·λ_ind) )^{1/3} · ( α/(1−α) )^{1/3}
//	H* = α + 3·( α²(1−α)·d·(f/2+s)·λ_ind )^{1/3}
func FirstOrderConstantCost(alpha, d, f, s, lambdaInd float64) (Solution, error) {
	if !(alpha > 0 && alpha < 1) {
		return Solution{}, fmt.Errorf("core: Theorem 3 needs 0 < α < 1, got %g: %w",
			alpha, ErrNoFirstOrder)
	}
	if !(d > 0) || !(lambdaInd > 0) {
		return Solution{}, fmt.Errorf("core: Theorem 3 needs d > 0 and λ_ind > 0")
	}
	fs := f/2 + s
	pStar := math.Cbrt(1/(d*fs*lambdaInd)) * math.Pow((1-alpha)/alpha, 2.0/3)
	tStar := math.Cbrt(d*d/(fs*lambdaInd)) * math.Cbrt(alpha/(1-alpha))
	h := alpha + 3*math.Cbrt(alpha*alpha*(1-alpha)*d*fs*lambdaInd)
	return Solution{
		T: tStar, P: pStar, Overhead: h,
		Method: "first-order", Class: costmodel.ClassConstant,
	}, nil
}

// DecreasingCostOverhead returns the overhead expression of Section
// III-D.3 (case 3: C_P+V_P = h/P, constant α): at the Theorem 1 period,
//
//	H(T*_P, P) = (α + (1−α)/P) · (1 + 2·sqrt(h·(f/2+s)·λ_ind)),
//
// which decreases monotonically in P within the validity bound, so there
// is no bounded first-order optimum; the function exposes the expression
// for the numerical comparisons.
func DecreasingCostOverhead(alpha, h, f, s, lambdaInd, p float64) float64 {
	fs := f/2 + s
	return (alpha + (1-alpha)/p) * (1 + 2*math.Sqrt(h*fs*lambdaInd))
}

// PerfectlyParallelOverhead returns the case-4 (H(P) = 1/P) overhead at
// the Theorem 1 period for each cost sub-case of Section III-D.4:
//
//	c ≠ 0:          1/P + 2·sqrt(c·(f/2+s)·λ_ind)
//	c = 0, d ≠ 0:   1/P + 2·sqrt(d·(f/2+s)·λ_ind / P)
//	c = d = 0:      (1/P)·(1 + 2·sqrt(h·(f/2+s)·λ_ind))
//
// The sub-case is chosen from the resilience model's classification.
func PerfectlyParallelOverhead(res costmodel.Resilience, f, s, lambdaInd, p float64) float64 {
	fs := f/2 + s
	cl := res.Classify()
	switch cl.Class {
	case costmodel.ClassLinear:
		return 1/p + 2*math.Sqrt(cl.Coeff*fs*lambdaInd)
	case costmodel.ClassConstant:
		return 1/p + 2*math.Sqrt(cl.Coeff*fs*lambdaInd/p)
	default:
		return (1 / p) * (1 + 2*math.Sqrt(cl.Coeff*fs*lambdaInd))
	}
}

// FirstOrder dispatches on the model's cost class and returns the
// first-order optimal pattern of Theorem 2 or Theorem 3. It requires an
// Amdahl profile with 0 < α < 1; every other combination is the province
// of the numerical solver and yields ErrNoFirstOrder.
func (m Model) FirstOrder() (Solution, error) {
	am, ok := m.Profile.(speedup.Amdahl)
	if !ok {
		return Solution{}, fmt.Errorf("core: first-order analysis needs an Amdahl profile, have %s: %w",
			m.Profile.Name(), ErrNoFirstOrder)
	}
	cl := m.Res.Classify()
	switch cl.Class {
	case costmodel.ClassLinear:
		return FirstOrderLinearCost(am.Alpha, cl.Coeff, m.FailStopFrac, m.SilentFrac, m.LambdaInd)
	case costmodel.ClassConstant:
		return FirstOrderConstantCost(am.Alpha, cl.Coeff, m.FailStopFrac, m.SilentFrac, m.LambdaInd)
	default:
		return Solution{}, fmt.Errorf("core: %v: %w", cl.Class, ErrNoFirstOrder)
	}
}

// Validity reports how well the first-order assumptions of Section III-B
// hold for a concrete pattern: both indicators must be well below 1.
type Validity struct {
	// LambdaCV is λ_P·(C_P + V_P), the resilience-cost exponent ε term.
	LambdaCV float64
	// LambdaT is λ_P·T, the pattern-length exponent.
	LambdaT float64
	// OK reports both indicators below the conventional 0.1 threshold.
	OK bool
}

// CheckValidity evaluates the Section III-B indicators at (T, P).
func (m Model) CheckValidity(t, p float64) Validity {
	lf, ls := m.Rates(p)
	lam := lf + ls
	v := Validity{
		LambdaCV: lam * m.Res.CombinedVC(p),
		LambdaT:  lam * t,
	}
	v.OK = v.LambdaCV < 0.1 && v.LambdaT < 0.1
	return v
}

// MaxOrderDelta returns δ from Inequality (5): the highest order x such
// that P = Θ(λ_ind^−x) keeps the approximation valid — 1/2 when the
// checkpoint cost grows linearly (c ≠ 0), 1 otherwise.
func MaxOrderDelta(res costmodel.Resilience) float64 {
	if res.Checkpoint.C != 0 {
		return 0.5
	}
	return 1
}
