package core

import (
	"math"
	"testing"
	"testing/quick"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
)

// randomModel derives a plausible random model from fuzz inputs: λ_ind in
// [1e-11, 1e-6], f in (0,1), any Table III scenario, α in (0, 0.5].
func randomModel(t *testing.T, lamRaw, fRaw, scRaw, aRaw uint16) Model {
	t.Helper()
	lambda := 1e-11 * math.Pow(10, float64(lamRaw%500)/100) // 1e-11 … 1e-6
	f := 0.01 + 0.98*float64(fRaw%1000)/1000
	sc := costmodel.AllScenarios[int(scRaw)%len(costmodel.AllScenarios)]
	alpha := 0.001 + 0.499*float64(aRaw%1000)/1000
	res, err := sc.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		LambdaInd:    lambda,
		FailStopFrac: f,
		SilentFrac:   1 - f,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: alpha},
	}
}

// Property: the exact expected time always dominates the error-free time
// T + V + C, for any random model and pattern.
func TestExactDominatesErrorFreeProperty(t *testing.T) {
	fn := func(lamRaw, fRaw, scRaw, aRaw, tRaw, pRaw uint16) bool {
		m := randomModel(t, lamRaw, fRaw, scRaw, aRaw)
		tt := 10 + float64(tRaw%50000)
		p := 1 + float64(pRaw%4096)
		free := tt + m.Res.Verification.At(p) + m.Res.Checkpoint.At(p)
		return m.ExactPatternTime(tt, p) >= free
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: within the first-order validity region (Section III-B),
// Theorem 1's period beats wide perturbations — the exact overhead at
// T*_P is no worse than at 3×T*_P or T*_P/3. Outside validity the paper
// makes no such claim, so those draws are skipped.
func TestTheorem1BeatsWidePerturbationsProperty(t *testing.T) {
	fn := func(lamRaw, fRaw, scRaw, aRaw, pRaw uint16) bool {
		m := randomModel(t, lamRaw, fRaw, scRaw, aRaw)
		p := 16 + float64(pRaw%2048)
		tStar := m.OptimalPeriodFixedP(p)
		if math.IsInf(tStar, 0) {
			return true
		}
		if v := m.CheckValidity(tStar, p); v.LambdaT > 0.3 || v.LambdaCV > 0.3 {
			return true // outside the approximation's advertised domain
		}
		h := m.Overhead(tStar, p)
		return h <= m.Overhead(3*tStar, p)+1e-12 && h <= m.Overhead(tStar/3, p)+1e-12
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: at equal total rates and with all resilience costs removed,
// silent errors are strictly more expensive than fail-stop errors — a
// fail-stop interrupts immediately (losing T/2 on average), a silent
// error is caught only at the end of the period (losing all of T).
func TestSilentCostsMoreThanFailStopProperty(t *testing.T) {
	fn := func(lamRaw, tRaw uint16) bool {
		lambda := 1e-9 * math.Pow(10, float64(lamRaw%300)/100)
		tt := 100 + 2*float64(tRaw%50000)
		base := Model{
			LambdaInd: lambda,
			Res:       costmodel.New(costmodel.Checkpoint{}, costmodel.Verification{}, 0),
			Profile:   speedup.Amdahl{Alpha: 0.1},
		}
		failOnly := base
		failOnly.FailStopFrac, failOnly.SilentFrac = 1, 0
		silentOnly := base
		silentOnly.FailStopFrac, silentOnly.SilentFrac = 0, 1
		return silentOnly.ExactPatternTime(tt, 512) >= failOnly.ExactPatternTime(tt, 512)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the first-order solutions scale correctly under the paper's
// invariances — scaling both c (or d) and λ so their product is constant
// leaves H* unchanged in Theorem 2/3.
func TestTheoremScaleInvarianceProperty(t *testing.T) {
	fn := func(kRaw uint16) bool {
		k := 1 + float64(kRaw%100)
		a2, err := FirstOrderLinearCost(0.1, 0.5, 0.2, 0.8, 1e-8)
		if err != nil {
			return false
		}
		b2, err := FirstOrderLinearCost(0.1, 0.5*k, 0.2, 0.8, 1e-8/k)
		if err != nil {
			return false
		}
		a3, err := FirstOrderConstantCost(0.1, 300, 0.2, 0.8, 1e-8)
		if err != nil {
			return false
		}
		b3, err := FirstOrderConstantCost(0.1, 300*k, 0.2, 0.8, 1e-8/k)
		if err != nil {
			return false
		}
		return math.Abs(a2.Overhead-b2.Overhead) < 1e-12 &&
			math.Abs(a3.Overhead-b3.Overhead) < 1e-12
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: overhead decreases when any single resilience cost decreases.
func TestOverheadMonotoneInCostsProperty(t *testing.T) {
	fn := func(lamRaw, fRaw, aRaw, tRaw uint16) bool {
		m := randomModel(t, lamRaw, fRaw, 2 /* scenario 3: constant costs */, aRaw)
		tt := 100 + float64(tRaw%20000)
		h0 := m.Overhead(tt, 512)
		cheaper := m
		cheaper.Res.Checkpoint.A = m.Res.Checkpoint.A / 2
		if cheaper.Overhead(tt, 512) > h0 {
			return false
		}
		shorterD := m
		shorterD.Res.Downtime = m.Res.Downtime / 2
		return shorterD.Overhead(tt, 512) <= h0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
