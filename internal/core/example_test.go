package core_test

import (
	"fmt"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
)

// The headline computation of the paper: closed-form optimal processor
// count and checkpointing period on Hera (Table II) under scenario 1.
func ExampleFirstOrderLinearCost() {
	sol, err := core.FirstOrderLinearCost(
		0.1,       // sequential fraction α
		300.0/512, // c: checkpoint seconds per processor
		0.2188,    // f: fail-stop fraction
		0.7812,    // s: silent fraction
		1.69e-8,   // λ_ind
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P* = %.0f processors\n", sol.P)
	fmt.Printf("T* = %.0f s\n", sol.T)
	fmt.Printf("H* = %.3f\n", sol.Overhead)
	// Output:
	// P* = 219 processors
	// T* = 6239 s
	// H* = 0.108
}

// Theorem 1: the Young/Daly period generalized to verified checkpoints
// under two error sources, for a fixed processor count.
func ExampleModel_OptimalPeriodFixedP() {
	res, _ := costmodel.Scenario3.Calibrate(512, 300, 15.4, 3600)
	m := core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	fmt.Printf("T*_512 = %.0f s\n", m.OptimalPeriodFixedP(512))
	fmt.Printf("H(T*_512, 512) = %.4f\n", m.OverheadAtOptimalPeriod(512))
	// Output:
	// T*_512 = 6398 s
	// H(T*_512, 512) = 0.1118
}

// Proposition 1: the exact expected execution time of one pattern.
func ExampleModel_ExactPatternTime() {
	res, _ := costmodel.Scenario1.Calibrate(512, 300, 15.4, 3600)
	m := core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	e := m.ExactPatternTime(6240, 512)
	fmt.Printf("E(PATTERN) = %.1f s for T+V+C = %.1f s of useful content\n",
		e, 6240+15.4+300)
	// Output:
	// E(PATTERN) = 6931.3 s for T+V+C = 6555.4 s of useful content
}
