package core

import (
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
)

func keyModel(t *testing.T) Model {
	t.Helper()
	prof, err := speedup.NewAmdahl(0.1)
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		LambdaInd:    1e-9,
		FailStopFrac: 0.8,
		SilentFrac:   0.2,
		Res: costmodel.New(
			costmodel.Checkpoint{A: 120, B: 3, C: 0.001},
			costmodel.Verification{V: 20, U: 1},
			3600),
		Profile: prof,
	}
}

func mustKey(t *testing.T, m Model) string {
	t.Helper()
	k, err := m.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCacheKeyDeterministic(t *testing.T) {
	a, b := mustKey(t, keyModel(t)), mustKey(t, keyModel(t))
	if a != b {
		t.Errorf("identical models keyed differently:\n%s\n%s", a, b)
	}
}

// Every observable parameter must perturb the key, including a change in
// the last ulp (the hex encoding is exact, not %g-rounded).
func TestCacheKeySensitivity(t *testing.T) {
	base := mustKey(t, keyModel(t))
	perturb := []struct {
		name string
		mut  func(*Model)
	}{
		{"lambda", func(m *Model) { m.LambdaInd *= 2 }},
		{"lambda-ulp", func(m *Model) { m.LambdaInd = math.Nextafter(m.LambdaInd, 1) }},
		{"failstop", func(m *Model) { m.FailStopFrac = 0.7 }},
		{"silent", func(m *Model) { m.SilentFrac = 0.3 }},
		{"checkpoint-a", func(m *Model) { m.Res.Checkpoint.A++ }},
		{"checkpoint-b", func(m *Model) { m.Res.Checkpoint.B++ }},
		{"checkpoint-c", func(m *Model) { m.Res.Checkpoint.C *= 2 }},
		{"recovery", func(m *Model) { m.Res.Recovery.A++ }},
		{"verify-v", func(m *Model) { m.Res.Verification.V++ }},
		{"verify-u", func(m *Model) { m.Res.Verification.U++ }},
		{"downtime", func(m *Model) { m.Res.Downtime = 0 }},
		{"profile-alpha", func(m *Model) { m.Profile = speedup.Amdahl{Alpha: 0.2} }},
		{"profile-type", func(m *Model) { m.Profile = speedup.Gustafson{Alpha: 0.1} }},
		{"profile-pp", func(m *Model) { m.Profile = speedup.PerfectlyParallel{} }},
		{"profile-powerlaw", func(m *Model) { m.Profile = speedup.PowerLaw{Gamma: 0.9} }},
	}
	seen := map[string]string{base: "base"}
	for _, p := range perturb {
		m := keyModel(t)
		p.mut(&m)
		k := mustKey(t, m)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbation %q collides with %q", p.name, prev)
		}
		seen[k] = p.name
	}
}

// Amdahl(α) and Gustafson(α) share the parameter but not the formula:
// the type must be part of the key even when Name-style formatting of
// the parameters would agree.
func TestCacheKeyProfileTypesDistinct(t *testing.T) {
	m := keyModel(t)
	m.Profile = speedup.Amdahl{Alpha: 0.25}
	a := mustKey(t, m)
	m.Profile = speedup.Gustafson{Alpha: 0.25}
	g := mustKey(t, m)
	if a == g {
		t.Error("Amdahl and Gustafson with equal α share a key")
	}
}

func TestCacheKeyRejectsNaNAndNilProfile(t *testing.T) {
	m := keyModel(t)
	m.LambdaInd = math.NaN()
	if _, err := m.CacheKey(); err == nil {
		t.Error("NaN λ_ind keyed without error")
	}
	m = keyModel(t)
	m.Profile = nil
	if _, err := m.CacheKey(); err == nil {
		t.Error("nil profile keyed without error")
	}
	m = keyModel(t)
	m.Profile = speedup.Amdahl{Alpha: math.NaN()}
	if _, err := m.CacheKey(); err == nil {
		t.Error("NaN α keyed without error")
	}
}

type customKeyedProfile struct{ speedup.PerfectlyParallel }

func (customKeyedProfile) CacheKey() string { return "my-profile-v2" }

type namedOnlyProfile struct{ speedup.PerfectlyParallel }

func (namedOnlyProfile) Name() string { return "named-only" }

func TestCacheKeyCustomProfiles(t *testing.T) {
	m := keyModel(t)
	m.Profile = customKeyedProfile{}
	k := mustKey(t, m)
	if !strings.Contains(k, "custom:my-profile-v2") {
		t.Errorf("CacheKeyer profile ignored: %s", k)
	}
	m.Profile = namedOnlyProfile{}
	k = mustKey(t, m)
	if !strings.Contains(k, "named:named-only") {
		t.Errorf("Name fallback missing: %s", k)
	}
}
