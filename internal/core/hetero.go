package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"amdahlyd/internal/speedup"
)

// HeteroGroup pairs one group's compiled-down specification — a complete
// single-group Model (group rates, group-calibrated resilience costs,
// group base profile) — with the group's processor capacity. The base
// profile is the one the group runs *alone* (no inter-group exchange);
// ActiveModel derives the comm-charged variant for multi-group runs.
type HeteroGroup struct {
	// Model is the group's single-group model.
	Model Model
	// Size is the group's processor capacity: allocations are P_g ≤ Size.
	Size float64
}

// HeteroModel is a heterogeneous platform compiled to the core layer: one
// Model per group plus the inter-group communication coefficient. Every
// hot loop runs on per-group Frozen kernels obtained from ActiveModel +
// Freeze; the single-group case (one group, Comm = 0) is byte-for-byte
// today's Model — ActiveModel returns it unchanged.
type HeteroModel struct {
	// Groups lists the per-group models in topology order.
	Groups []HeteroGroup
	// Comm is the inter-group communication coefficient κ: a group active
	// alongside (G−1) others runs with its profile's comm term increased
	// by κ·(G−1) per allocated processor.
	Comm float64
}

// Validate checks every group model plus the hetero-specific fields.
func (hm HeteroModel) Validate() error {
	if len(hm.Groups) == 0 {
		return errors.New("core: heterogeneous model with no groups")
	}
	if !(hm.Comm >= 0) || math.IsInf(hm.Comm, 0) {
		return fmt.Errorf("core: inter-group comm κ = %g must be non-negative and finite", hm.Comm)
	}
	for i, g := range hm.Groups {
		if err := g.Model.Validate(); err != nil {
			return fmt.Errorf("core: group %d: %w", i, err)
		}
		if !(g.Size >= 1) || math.IsInf(g.Size, 0) {
			return fmt.Errorf("core: group %d: size = %g must be >= 1 and finite", i, g.Size)
		}
	}
	return nil
}

// ActiveModel returns group i's model adjusted for a run in which active
// groups participate: the profile's communication coefficient grows by
// Comm·(active−1) — each of the group's processors exchanges with every
// other active group at linear cost. With active = 1 (or Comm = 0 on a
// comm-free base profile) the group's model is returned *unchanged*, so
// the degenerate case keeps today's profile values, cache keys and frozen
// kernels bit-identically.
//
// Only the Amdahl family (Amdahl, PerfectlyParallel, AmdahlComm) knows
// how to absorb a communication term; any other profile is accepted only
// when no comm charge applies.
func (hm HeteroModel) ActiveModel(i, active int) (Model, error) {
	if i < 0 || i >= len(hm.Groups) {
		return Model{}, fmt.Errorf("core: group index %d outside [0, %d)", i, len(hm.Groups))
	}
	if active < 1 || active > len(hm.Groups) {
		return Model{}, fmt.Errorf("core: active group count %d outside [1, %d]", active, len(hm.Groups))
	}
	m := hm.Groups[i].Model
	extra := hm.Comm * float64(active-1)
	if extra == 0 {
		return m, nil
	}
	switch prof := m.Profile.(type) {
	case speedup.Amdahl:
		m.Profile = speedup.AmdahlComm{Alpha: prof.Alpha, Speed: 1, Comm: extra}
	case speedup.PerfectlyParallel:
		m.Profile = speedup.AmdahlComm{Alpha: 0, Speed: 1, Comm: extra}
	case speedup.AmdahlComm:
		prof.Comm += extra
		m.Profile = prof
	default:
		return Model{}, fmt.Errorf(
			"core: profile %s cannot absorb an inter-group comm term (need the Amdahl family)",
			m.Profile.Name())
	}
	return m, nil
}

// FreezeGroup compiles group i's model for a run with the given active
// group count at allocation p: the per-group kernel every heterogeneous
// hot loop (optimizer inner solve, Monte-Carlo pricing) runs on.
func (hm HeteroModel) FreezeGroup(i, active int, p float64) (Frozen, error) {
	m, err := hm.ActiveModel(i, active)
	if err != nil {
		return Frozen{}, err
	}
	return m.Freeze(p), nil
}

// CacheKey returns the canonical identity of the heterogeneous model
// under the versioned "hg1|" namespace: the comm coefficient plus each
// group's full single-group model key and size, in group order. The same
// canonicalization rules as Model.CacheKey apply (exact-hex floats, NaN
// rejected); group order is meaningful — permuted groups are observably
// different models (group indices appear in results).
func (hm HeteroModel) CacheKey() (string, error) {
	if len(hm.Groups) == 0 {
		return "", errors.New("core: cannot key a heterogeneous model with no groups")
	}
	if math.IsNaN(hm.Comm) {
		return "", errors.New("core: cannot key a heterogeneous model with NaN comm")
	}
	var b strings.Builder
	b.Grow(64 + 224*len(hm.Groups))
	b.WriteString("hg1|") // key-format version: bump when the layout changes
	b.WriteString(FormatFloatKey(hm.Comm))
	for _, g := range hm.Groups {
		if math.IsNaN(g.Size) {
			return "", errors.New("core: cannot key a heterogeneous group with NaN size")
		}
		mk, err := g.Model.CacheKey()
		if err != nil {
			return "", err
		}
		b.WriteString("[")
		b.WriteString(FormatFloatKey(g.Size))
		b.WriteString("@")
		b.WriteString(mk)
		b.WriteString("]")
	}
	return b.String(), nil
}
