package multilevel

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func testSimulator(t testing.TB) *Simulator {
	t.Helper()
	c := heraCosts()
	lf, ls := heraRates(512)
	s, err := NewSimulator(c, Pattern{T: 6000, K: 3}, lf, ls)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCampaignWorkerCountIndependent pins the bit-independence contract:
// per-run Split(i) streams make the campaign statistics identical at any
// worker count (run under -race, this also exercises concurrent Split on
// the shared master).
func TestCampaignWorkerCountIndependent(t *testing.T) {
	s := testSimulator(t)
	base := CampaignConfig{Runs: 64, Patterns: 40, Seed: 11, HOfP: 0.1}
	var (
		mu      sync.Mutex
		results []CampaignResult
		wg      sync.WaitGroup
	)
	for _, workers := range []int{1, 2, 5, 16} {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = w
			res, err := s.SimulateContext(context.Background(), cfg)
			if err != nil {
				t.Errorf("workers=%d: %v", w, err)
				return
			}
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(workers)
	}
	wg.Wait()
	if len(results) < 4 {
		t.Fatal("missing results")
	}
	ref := results[0]
	for _, res := range results[1:] {
		if res.Overhead != ref.Overhead {
			t.Errorf("overhead summary differs across worker counts: %+v vs %+v",
				res.Overhead, ref.Overhead)
		}
		if res.FailStops != ref.FailStops || res.SilentDetections != ref.SilentDetections ||
			res.DiskRecoveries != ref.DiskRecoveries || res.MemRecoveries != ref.MemRecoveries {
			t.Errorf("event totals differ across worker counts")
		}
	}
}

// TestCampaignMatchesLegacySimulate: the Simulate wrapper and a parallel
// SimulateContext must summarize the identical sample.
func TestCampaignMatchesLegacySimulate(t *testing.T) {
	s := testSimulator(t)
	sum, err := s.Simulate(40, 30, 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SimulateContext(context.Background(), CampaignConfig{
		Runs: 40, Patterns: 30, Seed: 7, Workers: 8, HOfP: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead != sum {
		t.Errorf("parallel campaign %+v differs from sequential %+v", res.Overhead, sum)
	}
}

// TestCampaignCancellation: a pre-cancelled context must abort without
// running the campaign, and a cancellation mid-campaign must surface
// ctx.Err() promptly.
func TestCampaignCancellation(t *testing.T) {
	s := testSimulator(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SimulateContext(ctx, CampaignConfig{Runs: 8, Patterns: 8, Seed: 1, HOfP: 0.1}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled campaign returned %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.SimulateContext(ctx2, CampaignConfig{
			Runs: 1 << 20, Patterns: 200, Seed: 1, Workers: 2, HOfP: 0.1,
		})
		done <- err
	}()
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled campaign returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
}

func TestCampaignValidation(t *testing.T) {
	s := testSimulator(t)
	bg := context.Background()
	if _, err := s.SimulateContext(bg, CampaignConfig{Runs: -1, Patterns: 10, Seed: 1, HOfP: 0.1}); err == nil {
		t.Error("negative runs accepted")
	}
	// The hOfP regression: a NaN, zero or infinite H(P) used to flow
	// straight into the summary as NaN instead of erroring.
	for _, h := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := s.SimulateContext(bg, CampaignConfig{Runs: 4, Patterns: 4, Seed: 1, HOfP: h}); err == nil {
			t.Errorf("H(P) = %g accepted", h)
		}
		if _, err := s.Simulate(4, 4, 1, h); err == nil {
			t.Errorf("Simulate with H(P) = %g accepted", h)
		}
	}
}
