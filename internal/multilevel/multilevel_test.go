package multilevel

import (
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

// heraCosts builds a plausible two-level cost set: disk checkpoint 300 s,
// in-memory 20 s, verification 15.4 s.
func heraCosts() Costs {
	return Costs{V: 15.4, C1: 20, R1: 20, C2: 300, R2: 300, D: 3600}
}

func heraRates(procs float64) (lf, ls float64) {
	return 0.2188 * 1.69e-8 * procs, 0.7812 * 1.69e-8 * procs
}

func TestCostsValidate(t *testing.T) {
	if err := heraCosts().Validate(); err != nil {
		t.Errorf("valid costs rejected: %v", err)
	}
	bad := heraCosts()
	bad.C1 = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	inv := heraCosts()
	inv.C1, inv.C2 = 300, 20 // level 2 cheaper than level 1
	if err := inv.Validate(); err == nil {
		t.Error("inverted level costs accepted")
	}
}

func TestFirstOrderSeparation(t *testing.T) {
	c := heraCosts()
	lf, ls := heraRates(512)
	plan, err := FirstOrder(c, lf, ls, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// K rounds the separable K* = U*/T* (T* = sqrt((V+C1)/λs),
	// U* = sqrt(2·C2/λf)) to an adjacent integer…
	sepT := math.Sqrt((c.V + c.C1) / ls)
	wantU := math.Sqrt(2 * c.C2 / lf)
	kReal := wantU / sepT
	if math.Abs(float64(plan.K)-kReal) > 1 {
		t.Errorf("K = %d, want ≈%g", plan.K, kReal)
	}
	if plan.K < 1 {
		t.Error("K must be at least 1")
	}
	// …and T is re-optimized for that integer K (near the separable T*
	// when K* is far from its rounding boundaries, but not equal to it).
	wantT := OptimalSegmentLength(c, plan.K, lf, ls)
	if plan.T != wantT {
		t.Errorf("T = %g, want the re-optimized segment length %g", plan.T, wantT)
	}
	if plan.T < sepT/2 || plan.T > sepT*2 {
		t.Errorf("re-optimized T = %g implausibly far from separable %g", plan.T, sepT)
	}
}

// Regression: FirstOrder used to return the *separable* T* with the
// rounded K. The separable period is optimal only for the continuous K*,
// so in regimes where K* rounds hard the returned plan sat far above the
// true first-order optimum — most dramatically when K* < 1 clamps to
// K = 1 and the optimal segment degenerates to the single-level
// Young/Daly period sqrt((V+C1+C2)/(λs+λf/2)). Pin an adversarial cost
// set in that regime plus a near-half-integer K* case, and require the
// plan to match a brute-force integer-K scan with re-optimized T.
func TestFirstOrderRoundingRegression(t *testing.T) {
	cases := []struct {
		name   string
		c      Costs
		lf, ls float64
	}{
		// K* ≈ 0.326: clamps to K = 1; the separable T* ≈ 25822 s while
		// the true first-order optimum at K = 1 is T ≈ 8146 s. The old
		// plan's overhead exceeds the optimum by ~74%.
		{"clamped", Costs{V: 15.4, C1: 20, R1: 20, C2: 300, R2: 300, D: 3600}, 1e-5, 5.31e-8},
		// K* ≈ 2.4999: the half-integer boundary where rounding is most
		// brutal for a fixed-T plan.
		{"half-integer", Costs{V: 15.4, C1: 20, R1: 20, C2: 300, R2: 300, D: 3600},
			1e-6, 1e-6 * 2.4999 * 2.4999 * 35.4 / 600},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := FirstOrder(tc.c, tc.lf, tc.ls, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			// Brute force over integer K with re-optimized T per K.
			bestH := math.Inf(1)
			bestK := 0
			for k := 1; k <= 200; k++ {
				tt := OptimalSegmentLength(tc.c, k, tc.lf, tc.ls)
				if h := Overhead(tc.c, Pattern{T: tt, K: k}, tc.lf, tc.ls, 0.1); h < bestH {
					bestH, bestK = h, k
				}
			}
			if plan.K != bestK {
				t.Errorf("K = %d, brute force wants %d", plan.K, bestK)
			}
			if plan.PredictedH > bestH*(1+1e-12) {
				t.Errorf("PredictedH = %g exceeds brute-force optimum %g (excess %.2f%%)",
					plan.PredictedH, bestH, (plan.PredictedH/bestH-1)*100)
			}
			// The separable-T plan must not sneak back in: at the clamped
			// case it is measurably worse than what FirstOrder now returns.
			sepT := math.Sqrt((tc.c.V + tc.c.C1) / tc.ls)
			if sepH := Overhead(tc.c, Pattern{T: sepT, K: plan.K}, tc.lf, tc.ls, 0.1); sepH < plan.PredictedH {
				t.Errorf("separable-T plan (%g) beats the re-optimized plan (%g)", sepH, plan.PredictedH)
			}
		})
	}
}

func TestFirstOrderIsStationary(t *testing.T) {
	c := heraCosts()
	lf, ls := heraRates(512)
	plan, err := FirstOrder(c, lf, ls, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	h0 := Overhead(c, plan.Pattern, lf, ls, 0.1)
	if !xmath.EqualWithin(h0, plan.PredictedH, 1e-12, 0) {
		t.Error("PredictedH inconsistent with Overhead")
	}
	// Perturbing T or K must not improve the first-order overhead.
	for _, fT := range []float64{0.8, 1.25} {
		if h := Overhead(c, Pattern{T: plan.T * fT, K: plan.K}, lf, ls, 0.1); h < h0-1e-12 {
			t.Errorf("overhead %g at %g·T* beats optimum %g", h, fT, h0)
		}
	}
	for _, dK := range []int{-1, 1} {
		k := plan.K + dK
		if k < 1 {
			continue
		}
		if h := Overhead(c, Pattern{T: plan.T, K: k}, lf, ls, 0.1); h < h0-1e-12 {
			t.Errorf("overhead %g at K=%d beats optimum %g", h, k, h0)
		}
	}
}

func TestFirstOrderValidation(t *testing.T) {
	c := heraCosts()
	if _, err := FirstOrder(c, 0, 1e-6, 0.1); err == nil {
		t.Error("zero fail-stop rate accepted")
	}
	if _, err := FirstOrder(c, 1e-6, 0, 0.1); err == nil {
		t.Error("zero silent rate accepted")
	}
	if _, err := FirstOrder(c, 1e-6, 1e-6, 0); err == nil {
		t.Error("zero H(P) accepted")
	}
	bad := c
	bad.V = math.NaN()
	if _, err := FirstOrder(bad, 1e-6, 1e-6, 0.1); err == nil {
		t.Error("NaN cost accepted")
	}
}

func TestSimulatorValidation(t *testing.T) {
	c := heraCosts()
	if _, err := NewSimulator(c, Pattern{T: 0, K: 3}, 1e-6, 1e-6); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewSimulator(c, Pattern{T: 100, K: 0}, 1e-6, 1e-6); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewSimulator(c, Pattern{T: 100, K: 3}, -1, 1e-6); err == nil {
		t.Error("negative rate accepted")
	}
	s, err := NewSimulator(c, Pattern{T: 100, K: 3}, 1e-6, 1e-6)
	if err != nil || s == nil {
		t.Fatalf("valid simulator rejected: %v", err)
	}
	if _, err := s.Simulate(0, 10, 1, 0.1); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestSimulatorErrorFree(t *testing.T) {
	c := heraCosts()
	s, err := NewSimulator(c, Pattern{T: 1000, K: 4}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	s.SimulatePattern(rng.New(1), &st)
	// 4 segments of (T+V+C1) plus one C2; the last segment still takes
	// its in-memory checkpoint in this protocol.
	want := 4*(1000+c.V+c.C1) + c.C2
	if !xmath.EqualWithin(st.Elapsed, want, 1e-12, 0) {
		t.Errorf("error-free elapsed %g, want %g", st.Elapsed, want)
	}
	if st.FailStops != 0 || st.SilentDetections != 0 {
		t.Errorf("phantom errors: %+v", st)
	}
}

// The simulated overhead must match the first-order prediction within a
// few percent in the first-order validity regime.
func TestSimulationMatchesFirstOrder(t *testing.T) {
	c := heraCosts()
	lf, ls := heraRates(512)
	plan, err := FirstOrder(c, lf, ls, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(c, plan.Pattern, lf, ls)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Simulate(120, 80, 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if xmath.RelDiff(sum.Mean, plan.PredictedH) > 0.03 {
		t.Errorf("simulated %g vs predicted %g", sum.Mean, plan.PredictedH)
	}
}

// The economic claim: with cheap in-memory checkpoints and mostly-silent
// errors (the Hera mix), the optimal two-level pattern beats the optimal
// single-level pattern.
func TestTwoLevelBeatsSingleLevelWhenSilentDominates(t *testing.T) {
	res, err := costmodel.Scenario3.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	p := 512.0
	lf, ls := m.Rates(p)
	hOfP := m.Profile.Overhead(p)

	// Single level: Theorem 1 optimal pattern, priced by its simulator.
	single := m.OverheadAtOptimalPeriod(p)

	costs, err := SingleLevelCosts(m, p, 20.0/300) // 20 s in-memory checkpoint
	if err != nil {
		t.Fatal(err)
	}
	plan, err := FirstOrder(costs, lf, ls, hOfP)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 2 {
		t.Fatalf("expected a genuinely multi-segment pattern, got K=%d", plan.K)
	}
	if plan.PredictedH >= single {
		t.Errorf("two-level %g should beat single-level %g with cheap C1", plan.PredictedH, single)
	}

	// And the advantage survives simulation.
	s, err := NewSimulator(costs, plan.Pattern, lf, ls)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Simulate(100, 60, 11, hOfP)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean >= single {
		t.Errorf("simulated two-level %g should beat single-level %g", sum.Mean, single)
	}
}

func TestSingleLevelCostsValidation(t *testing.T) {
	res, _ := costmodel.Scenario3.Calibrate(512, 300, 15.4, 3600)
	m := core.Model{
		LambdaInd: 1e-8, FailStopFrac: 0.2, SilentFrac: 0.8,
		Res: res, Profile: speedup.Amdahl{Alpha: 0.1},
	}
	if _, err := SingleLevelCosts(m, 512, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := SingleLevelCosts(m, 512, -0.01); err == nil {
		t.Error("negative fraction accepted")
	}
	// NaN compares false against both bounds: the naive two-sided check
	// used to let it through and poison every derived cost.
	if _, err := SingleLevelCosts(m, 512, math.NaN()); err == nil {
		t.Error("NaN fraction accepted")
	}
	c, err := SingleLevelCosts(m, 512, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.EqualWithin(c.C1, 30, 1e-9, 0) || !xmath.EqualWithin(c.C2, 300, 1e-9, 0) {
		t.Errorf("derived costs wrong: %+v", c)
	}
}

// The boundary fractions are meaningful configurations, not errors: 0 is
// a free (instant) in-memory level, 1 prices both levels at the full
// disk cost. Both must produce valid cost sets that FirstOrder accepts.
func TestSingleLevelCostsBoundaryFractions(t *testing.T) {
	res, _ := costmodel.Scenario3.Calibrate(512, 300, 15.4, 3600)
	m := core.Model{
		LambdaInd: 1e-8, FailStopFrac: 0.2, SilentFrac: 0.8,
		Res: res, Profile: speedup.Amdahl{Alpha: 0.1},
	}
	lf, ls := m.Rates(512)
	for _, tc := range []struct {
		frac   float64
		c1, c2 float64
	}{
		{0, 0, 300},
		{1, 300, 300},
	} {
		c, err := SingleLevelCosts(m, 512, tc.frac)
		if err != nil {
			t.Fatalf("fraction %g rejected: %v", tc.frac, err)
		}
		if !xmath.EqualWithin(c.C1, tc.c1, 1e-9, 0) || !xmath.EqualWithin(c.C2, tc.c2, 1e-9, 0) {
			t.Errorf("fraction %g: derived costs %+v, want C1=%g C2=%g", tc.frac, c, tc.c1, tc.c2)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("fraction %g: derived costs invalid: %v", tc.frac, err)
		}
		plan, err := FirstOrder(c, lf, ls, 0.1)
		if err != nil {
			t.Errorf("fraction %g: FirstOrder rejected derived costs: %v", tc.frac, err)
		} else if plan.K < 1 || !(plan.T > 0) || !(plan.PredictedH > 0) || math.IsInf(plan.PredictedH, 0) {
			t.Errorf("fraction %g: degenerate plan %+v", tc.frac, plan)
		}
	}
}

// Error accounting: with only silent errors, every detection costs one
// memory recovery and no disk recovery.
func TestSilentOnlyUsesMemoryRecoveries(t *testing.T) {
	c := heraCosts()
	_, ls := heraRates(512)
	s, err := NewSimulator(c, Pattern{T: 5000, K: 5}, 0, ls*100)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		s.SimulatePattern(r, &st)
	}
	if st.SilentDetections == 0 {
		t.Fatal("no silent errors at 100× rate — test is vacuous")
	}
	if st.DiskRecoveries != 0 || st.FailStops != 0 {
		t.Errorf("silent-only run touched disk recovery: %+v", st)
	}
	if st.MemRecoveries != st.SilentDetections {
		t.Errorf("memory recoveries %d != detections %d", st.MemRecoveries, st.SilentDetections)
	}
}

// With only fail-stop errors, rollbacks always go to disk.
func TestFailStopOnlyUsesDiskRecoveries(t *testing.T) {
	c := heraCosts()
	lf, _ := heraRates(512)
	s, err := NewSimulator(c, Pattern{T: 5000, K: 5}, lf*100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	r := rng.New(5)
	for i := 0; i < 500; i++ {
		s.SimulatePattern(r, &st)
	}
	if st.FailStops == 0 {
		t.Fatal("no fail-stops at 100× rate — test is vacuous")
	}
	if st.MemRecoveries != 0 || st.SilentDetections != 0 {
		t.Errorf("fail-stop-only run used memory recovery: %+v", st)
	}
	if st.DiskRecoveries < st.FailStops {
		t.Errorf("disk recoveries %d < fail-stops %d", st.DiskRecoveries, st.FailStops)
	}
}

func TestOptimalNumericalNeverWorseThanFirstOrder(t *testing.T) {
	c := heraCosts()
	lf, ls := heraRates(512)
	fo, err := FirstOrder(c, lf, ls, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	num, err := OptimalNumerical(c, lf, ls, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if num.PredictedH > fo.PredictedH+1e-15 {
		t.Errorf("numerical %g worse than first-order %g", num.PredictedH, fo.PredictedH)
	}
	if num.K < 1 || num.T <= 0 {
		t.Errorf("degenerate plan %+v", num)
	}
}

func TestOptimalSegmentLengthStationarity(t *testing.T) {
	// For each K, the closed-form T must be the minimum of the overhead.
	c := heraCosts()
	lf, ls := heraRates(512)
	for _, k := range []int{1, 3, 8, 20} {
		tt := OptimalSegmentLength(c, k, lf, ls)
		h0 := Overhead(c, Pattern{T: tt, K: k}, lf, ls, 0.1)
		for _, f := range []float64{0.9, 1.1} {
			if h := Overhead(c, Pattern{T: tt * f, K: k}, lf, ls, 0.1); h < h0-1e-12 {
				t.Errorf("K=%d: %g at %g·T beats %g", k, h, f, h0)
			}
		}
	}
}

func TestOptimalNumericalPropagatesErrors(t *testing.T) {
	if _, err := OptimalNumerical(heraCosts(), 0, 1e-6, 0.1); err == nil {
		t.Error("zero rate accepted")
	}
}
