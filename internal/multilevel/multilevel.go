// Package multilevel implements the two-level resilience pattern the
// paper lists as future work (Section V, "multi-level resilience
// protocols"). This is an EXTENSION beyond the paper's evaluation; it is
// exercised by its own tests and benchmarks and documented in DESIGN.md.
//
// # Protocol
//
// A two-level pattern executes K segments of length T. Each segment ends
// with a verification V_P and a cheap level-1 (in-memory) checkpoint C1;
// the pattern ends with an expensive level-2 (disk) checkpoint C2.
//
//   - A silent error is caught by the segment's verification and rolls
//     back to the previous in-memory checkpoint: only the current segment
//     is re-executed (cheap rollback, cost R1).
//   - A fail-stop error loses the node's memory, so in-memory checkpoints
//     are useless: after a downtime the pattern restarts from the last
//     disk checkpoint (cost R2) and re-executes from its beginning.
//
// # First-order optimum
//
// With per-work overhead
//
//	H ≈ H(P)·(1 + (V+C1)/T + λs·T + C2/(K·T) + λf·K·T/2)
//
// the two decision variables separate in T and U = K·T:
//
//	T* = sqrt((V_P + C1)/λs)      (the silent-error Young/Daly)
//	U* = sqrt(2·C2/λf)            (the fail-stop Young/Daly)
//	K* = U*/T*
//
// recovering exactly Young's formula on each level — the natural
// two-level generalization of the paper's Theorem 1.
package multilevel

import (
	"context"
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

// Costs holds the two-level resilience costs at a fixed processor count.
type Costs struct {
	// V is the verification cost.
	V float64
	// C1 and R1 are the level-1 (in-memory) checkpoint and recovery.
	C1, R1 float64
	// C2 and R2 are the level-2 (disk) checkpoint and recovery.
	C2, R2 float64
	// D is the downtime after a fail-stop error.
	D float64
}

// Validate rejects negative or non-finite costs and a level-2 checkpoint
// cheaper than level 1 (which would make the second level pointless).
func (c Costs) Validate() error {
	for _, v := range []float64{c.V, c.C1, c.R1, c.C2, c.R2, c.D} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("multilevel: negative or non-finite cost")
		}
	}
	if !(c.C2 >= c.C1) {
		return fmt.Errorf("multilevel: level-2 checkpoint (%g) cheaper than level-1 (%g)",
			c.C2, c.C1)
	}
	return nil
}

// Pattern is a two-level pattern choice.
type Pattern struct {
	// T is the segment length (seconds).
	T float64
	// K is the number of segments per disk checkpoint.
	K int
}

// Plan is a solved two-level configuration with its predicted overhead.
type Plan struct {
	Pattern
	// PredictedH is the first-order expected execution overhead.
	PredictedH float64
}

// FirstOrder returns the first-order optimum for the given costs,
// platform rates (λf, λs at the target processor count) and error-free
// overhead hOfP = H(P).
//
// The separable analysis gives the continuous optimum T* = sqrt((V+C1)/λs),
// U* = sqrt(2·C2/λf), K* = U*/T* — and K* is also the exact continuous
// minimizer of the T-re-optimized objective min_T H(T, K): the product
// (V + C1 + C2/K)·(λs + λf·K/2) that min_T H = H(P)·(1 + 2·sqrt(·))
// depends on is stationary at exactly K*² = 2·C2·λs/((V+C1)·λf). The
// integer optimum is therefore floor or ceil of K*, but each candidate
// must be scored at its own re-optimized segment length
// (OptimalSegmentLength): the separable T* is optimal only for the
// continuous K*, and a plan pinned at the separable T can sit far above
// the true first-order optimum when K* rounds hard (near-half-integer
// K*, or the K* < 1 regime where K clamps to 1 and the optimal segment
// degenerates to the single-level Young/Daly period).
func FirstOrder(c Costs, lambdaF, lambdaS, hOfP float64) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	if !(lambdaF > 0) || !(lambdaS > 0) {
		return Plan{}, errors.New("multilevel: both error rates must be positive")
	}
	if !(hOfP > 0) {
		return Plan{}, errors.New("multilevel: H(P) must be positive")
	}
	t := math.Sqrt((c.V + c.C1) / lambdaS)
	u := math.Sqrt(2 * c.C2 / lambdaF)
	kReal := u / t
	if kReal < 1 {
		kReal = 1
	}
	lo, hi := math.Floor(kReal), math.Ceil(kReal)
	best := planAtK(c, int(lo), lambdaF, lambdaS, hOfP)
	if hi != lo {
		if alt := planAtK(c, int(hi), lambdaF, lambdaS, hOfP); alt.PredictedH < best.PredictedH {
			best = alt
		}
	}
	return best, nil
}

// planAtK is the first-order optimum restricted to a fixed integer K: the
// re-optimized segment length and its overhead.
func planAtK(c Costs, k int, lambdaF, lambdaS, hOfP float64) Plan {
	t := OptimalSegmentLength(c, k, lambdaF, lambdaS)
	return Plan{
		Pattern:    Pattern{T: t, K: k},
		PredictedH: overhead(c, t, k, lambdaF, lambdaS, hOfP),
	}
}

// overhead is the first-order expected execution overhead of a two-level
// pattern.
func overhead(c Costs, t float64, k int, lambdaF, lambdaS, hOfP float64) float64 {
	if t <= 0 || k < 1 {
		return math.Inf(1)
	}
	u := float64(k) * t
	return hOfP * (1 +
		(c.V+c.C1)/t +
		lambdaS*t +
		c.C2/u +
		lambdaF*u/2)
}

// Overhead exposes the first-order overhead formula for a given pattern.
func Overhead(c Costs, p Pattern, lambdaF, lambdaS, hOfP float64) float64 {
	return overhead(c, p.T, p.K, lambdaF, lambdaS, hOfP)
}

// SingleLevelCosts derives the two-level cost set from a core model at a
// given processor count, treating the model's checkpoint as the disk
// level and inMemFraction·C_P as the in-memory level.
func SingleLevelCosts(m core.Model, p, inMemFraction float64) (Costs, error) {
	// The negated form catches NaN (which compares false both ways and
	// would otherwise flow into every derived cost).
	if !(inMemFraction >= 0 && inMemFraction <= 1) {
		return Costs{}, fmt.Errorf("multilevel: in-memory fraction %g outside [0,1]", inMemFraction)
	}
	c2 := m.Res.Checkpoint.At(p)
	r2 := m.Res.Recovery.At(p)
	return Costs{
		V:  m.Res.Verification.At(p),
		C1: inMemFraction * c2,
		R1: inMemFraction * r2,
		C2: c2,
		R2: r2,
		D:  m.Res.Downtime,
	}, nil
}

// Simulator plays the two-level protocol by Monte-Carlo.
type Simulator struct {
	costs   Costs
	lambdaF float64
	lambdaS float64
	pattern Pattern
}

// NewSimulator validates and builds a simulator.
func NewSimulator(c Costs, p Pattern, lambdaF, lambdaS float64) (*Simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !(p.T > 0) || p.K < 1 {
		return nil, fmt.Errorf("multilevel: invalid pattern %+v", p)
	}
	if !(lambdaF >= 0) || !(lambdaS >= 0) {
		return nil, errors.New("multilevel: negative rates")
	}
	return &Simulator{costs: c, lambdaF: lambdaF, lambdaS: lambdaS, pattern: p}, nil
}

// Stats aggregates a simulated two-level run.
type Stats struct {
	Patterns         int64
	Elapsed          float64
	FailStops        int64
	SilentDetections int64
	DiskRecoveries   int64
	MemRecoveries    int64
}

// failStopIn samples a fail-stop strike within a window.
func (s *Simulator) failStopIn(window float64, r *rng.Rand) (float64, bool) {
	if s.lambdaF == 0 {
		return 0, false
	}
	t := r.Exp(s.lambdaF)
	if t < window {
		return t, true
	}
	return 0, false
}

// diskRestart charges a downtime plus a completed level-2 recovery
// (fail-stop errors can strike the recovery itself).
func (s *Simulator) diskRestart(r *rng.Rand, st *Stats) {
	st.Elapsed += s.costs.D
	for {
		st.DiskRecoveries++
		if lost, struck := s.failStopIn(s.costs.R2, r); struck {
			st.FailStops++
			st.Elapsed += lost + s.costs.D
			continue
		}
		st.Elapsed += s.costs.R2
		return
	}
}

// SimulatePattern plays one two-level pattern to completion.
func (s *Simulator) SimulatePattern(r *rng.Rand, st *Stats) {
	for !s.attemptPattern(r, st) {
	}
	st.Patterns++
}

// attemptPattern plays the K segments and the disk checkpoint once,
// restarting segments internally as needed; it reports false when the
// final disk checkpoint failed and the whole pattern must be replayed.
func (s *Simulator) attemptPattern(r *rng.Rand, st *Stats) bool {
	c := s.costs
	seg := 0
	for seg < s.pattern.K {
		// One segment: T + V, then (except after the last segment) an
		// in-memory checkpoint C1.
		window := s.pattern.T + c.V
		if lost, struck := s.failStopIn(window, r); struck {
			st.FailStops++
			st.Elapsed += lost
			s.diskRestart(r, st)
			seg = 0
			continue
		}
		if r.Float64() < -math.Expm1(-s.lambdaS*s.pattern.T) {
			// Silent error: verification catches it; roll back to the
			// previous in-memory checkpoint (or pattern start).
			st.SilentDetections++
			st.Elapsed += window
			if lost, struck := s.failStopIn(c.R1, r); struck {
				st.FailStops++
				st.Elapsed += lost
				s.diskRestart(r, st)
				seg = 0
				continue
			}
			st.MemRecoveries++
			st.Elapsed += c.R1
			continue // retry the same segment
		}
		st.Elapsed += window
		if lost, struck := s.failStopIn(c.C1, r); struck {
			st.FailStops++
			st.Elapsed += lost
			s.diskRestart(r, st)
			seg = 0
			continue
		}
		st.Elapsed += c.C1
		seg++
	}
	// Disk checkpoint at the end of the pattern.
	if lost, struck := s.failStopIn(c.C2, r); struck {
		st.FailStops++
		st.Elapsed += lost
		s.diskRestart(r, st)
		return false // replay the whole pattern
	}
	st.Elapsed += c.C2
	return true
}

// Simulate runs a Monte-Carlo campaign and returns the per-run overhead
// summary, where overhead = elapsed / (patterns·K·T) · hOfP. It is
// SimulateContext with a background context and a single worker; per-run
// streams (Split(i)) make the two return identical statistics at any
// worker count.
func (s *Simulator) Simulate(runs, patterns int, seed uint64, hOfP float64) (stats.Summary, error) {
	// Explicit arguments keep the historical contract: zero is an error
	// here, a select-the-default in CampaignConfig.
	if runs < 1 || patterns < 1 {
		return stats.Summary{}, errors.New("multilevel: need positive runs and patterns")
	}
	res, err := s.SimulateContext(context.Background(), CampaignConfig{
		Runs: runs, Patterns: patterns, Seed: seed, Workers: 1, HOfP: hOfP,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	return res.Overhead, nil
}

// OptimalNumerical refines the first-order plan by direct search: golden
// refinement over the segment length T at each integer K in a window
// around the first-order K*, scoring with the first-order overhead. It
// guards against regimes where the separable approximation's rounding of
// K is visibly suboptimal.
func OptimalNumerical(c Costs, lambdaF, lambdaS, hOfP float64) (Plan, error) {
	seed, err := FirstOrder(c, lambdaF, lambdaS, hOfP)
	if err != nil {
		return Plan{}, err
	}
	best := seed
	lo := seed.K - 3
	if lo < 1 {
		lo = 1
	}
	for k := lo; k <= seed.K+3; k++ {
		t := OptimalSegmentLength(c, k, lambdaF, lambdaS)
		h := overhead(c, t, k, lambdaF, lambdaS, hOfP)
		if h < best.PredictedH {
			best = Plan{Pattern: Pattern{T: t, K: k}, PredictedH: h}
		}
	}
	return best, nil
}

// OptimalSegmentLength minimizes the first-order overhead over T for a
// fixed K: dH/dT = 0 gives T = sqrt((V + C1 + C2/K) / (λs + λf·K/2)).
// K = 1 recovers the single-level Young/Daly period for the combined
// cost V + C1 + C2.
func OptimalSegmentLength(c Costs, k int, lambdaF, lambdaS float64) float64 {
	kk := float64(k)
	return math.Sqrt((c.V + c.C1 + c.C2/kk) / (lambdaS + lambdaF*kk/2))
}
