package multilevel

import (
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/xmath"
)

// Warm-vs-cold agreement bounds, mirroring the single-level sweep tests:
// the overhead is determined to ~Tol², the minimizer's position only to
// ~√Tol on flat basins. K is integral and jumps only at measure-zero
// boundaries, so K disagreement is tolerated only when the overheads tie
// to far below the H bound.
const (
	mlSweepTolH  = 1e-8
	mlSweepTolXY = 1e-4
)

func mlLambdaAxis(n int) []float64 {
	return xmath.Logspace(1e-12, 1e-8, n)
}

func assertJointAgrees(t *testing.T, label string, warm, cold PatternResult) {
	t.Helper()
	if warm.AtPBound != cold.AtPBound {
		t.Errorf("%s: warm AtPBound=%t, cold %t", label, warm.AtPBound, cold.AtPBound)
		return
	}
	if d := xmath.RelDiff(warm.PredictedH, cold.PredictedH); d > mlSweepTolH {
		t.Errorf("%s: overhead disagrees by %.3g: warm %g vs cold %g",
			label, d, warm.PredictedH, cold.PredictedH)
	}
	if d := xmath.RelDiff(warm.P, cold.P); d > mlSweepTolXY {
		t.Errorf("%s: P* disagrees by %.3g: warm %g vs cold %g", label, d, warm.P, cold.P)
	}
	if warm.K != cold.K {
		// Legitimate only on an exact K-tie boundary, where both integer
		// candidates price identically to within the overhead tolerance.
		if d := xmath.RelDiff(warm.PredictedH, cold.PredictedH); d > mlSweepTolH {
			t.Errorf("%s: K disagrees (%d vs %d) without an overhead tie", label, warm.K, cold.K)
		}
	} else if d := xmath.RelDiff(warm.T, cold.T); d > mlSweepTolXY {
		t.Errorf("%s: T* disagrees by %.3g: warm %g vs cold %g", label, d, warm.T, cold.T)
	}
}

// TestMultilevelBatchMatchesColdLambdaAxis is the main equivalence
// property: over a dense λ_ind axis the warm chain must agree with
// per-cell OptimalPattern on (T*, K*, P*, H).
func TestMultilevelBatchMatchesColdLambdaAxis(t *testing.T) {
	const frac = 20.0 / 300
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3, costmodel.Scenario5} {
		models := make([]core.Model, 0, 17)
		for _, lambda := range mlLambdaAxis(17) {
			models = append(models, jointModel(t, sc, 0.1, lambda))
		}
		batch, err := BatchOptimalPattern(models, frac, SweepOptions{})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		for i, m := range models {
			cold, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
			if err != nil {
				t.Fatalf("%v cell %d: %v", sc, i, err)
			}
			assertJointAgrees(t, sc.String(), batch[i], cold)
		}
	}
}

// TestMultilevelBatchMatchesColdAlphaAndFracAxes covers the remaining
// axes: the sequential fraction (including the α = 0 perfectly parallel
// head cell) and the in-memory cost fraction — the C1 axis, where the
// model is fixed and the protocol cost varies.
func TestMultilevelBatchMatchesColdAlphaAndFracAxes(t *testing.T) {
	alphas := []float64{0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}
	var models []core.Model
	for _, alpha := range alphas {
		models = append(models, jointModel(t, costmodel.Scenario3, alpha, 1.69e-8))
	}
	batch, err := BatchOptimalPattern(models, 0.1, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		cold, err := OptimalPattern(m, InMemoryFraction(m, 0.1), PatternOptions{})
		if err != nil {
			t.Fatalf("alpha cell %d: %v", i, err)
		}
		assertJointAgrees(t, "alpha-axis", batch[i], cold)
	}

	// The C1 axis: one model, the in-memory fraction swept through its
	// whole range on a single chain.
	m := jointModel(t, costmodel.Scenario3, 0.1, 1.69e-8)
	s := NewSweepSolver(SweepOptions{})
	for _, frac := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1} {
		res, err := s.Solve(m, InMemoryFraction(m, frac))
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		cold, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertJointAgrees(t, "frac-axis", res, cold)
	}
	if st := s.Stats(); st.WarmSolves == 0 {
		t.Errorf("stats = %+v: no warm solves on a smooth fraction axis", st)
	}
}

// TestMultilevelAxisJumpFallsBack drives the chain across a λ_ind jump
// far larger than the warm bracket: the warm attempt must be rejected at
// the bracket edge and the cold fallback must recover the reference.
func TestMultilevelAxisJumpFallsBack(t *testing.T) {
	const frac = 20.0 / 300
	models := []core.Model{
		jointModel(t, costmodel.Scenario3, 0.1, 1e-12),
		jointModel(t, costmodel.Scenario3, 0.1, 1e-5),
	}
	s := NewSweepSolver(SweepOptions{})
	for i, m := range models {
		res, err := s.Solve(m, InMemoryFraction(m, frac))
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		cold, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertJointAgrees(t, "axis-jump", res, cold)
	}
	if st := s.Stats(); st.Fallbacks == 0 {
		t.Errorf("stats = %+v, want at least one fallback across the λ jump", st)
	}
}

// TestMultilevelColdModeBitIdentical pins the escape hatch: Cold mode
// must return bit-identical results to per-cell OptimalPattern.
func TestMultilevelColdModeBitIdentical(t *testing.T) {
	const frac = 0.1
	var models []core.Model
	for _, lambda := range mlLambdaAxis(5) {
		models = append(models, jointModel(t, costmodel.Scenario3, 0.1, lambda))
	}
	batch, err := BatchOptimalPattern(models, frac, SweepOptions{Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		cold, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].T != cold.T || batch[i].K != cold.K || batch[i].P != cold.P ||
			batch[i].PredictedH != cold.PredictedH {
			t.Errorf("cell %d: cold mode differs: %+v vs %+v", i, batch[i], cold)
		}
		if batch[i].Warm {
			t.Errorf("cell %d: cold mode flagged warm", i)
		}
	}
}

// TestMultilevelBatchAmortizesEvals: the measurable win — the warm chain
// must spend a small fraction of the per-cell inner solves.
func TestMultilevelBatchAmortizesEvals(t *testing.T) {
	const frac = 20.0 / 300
	models := make([]core.Model, 0, 17)
	for _, lambda := range mlLambdaAxis(17) {
		models = append(models, jointModel(t, costmodel.Scenario3, 0.1, lambda))
	}
	batch, err := BatchOptimalPattern(models, frac, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warmEvals, warmCells := 0, 0
	for _, r := range batch {
		warmEvals += r.Evals
		if r.Warm {
			warmCells++
		}
	}
	coldEvals := 0
	for _, m := range models {
		cold, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		coldEvals += cold.Evals
	}
	if warmEvals*3 > coldEvals {
		t.Errorf("warm chain used %d inner solves vs %d cold: below the 3× amortization floor",
			warmEvals, coldEvals)
	}
	if warmCells < len(models)-2 {
		t.Errorf("only %d/%d cells warm-started on a smooth axis", warmCells, len(models))
	}
}

// TestMultilevelSweepSolverRejectsBadOptions holds warm mode to the
// option contract.
func TestMultilevelSweepSolverRejectsBadOptions(t *testing.T) {
	m := jointModel(t, costmodel.Scenario3, 0.1, 1.69e-8)
	for _, opts := range []PatternOptions{
		{PMin: 5, PMax: 2}, // inverted box
		{PMin: 0.5},        // processor bound below 1
	} {
		s := NewSweepSolver(SweepOptions{PatternOptions: opts})
		if _, err := s.Solve(m, InMemoryFraction(m, 0.1)); err == nil {
			t.Errorf("options %+v accepted by warm solver", opts)
		}
	}
}
