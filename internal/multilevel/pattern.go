package multilevel

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/optimize"
)

// CostsFunc derives the two-level cost set at a processor count. The
// joint (T, K, P) optimizer probes many processor counts; the costs —
// like the model's resilience costs — generally depend on P (a larger
// machine checkpoints more memory). InMemoryFraction builds the common
// case from a core model.
type CostsFunc func(p float64) (Costs, error)

// InMemoryFraction is the CostsFunc of the standard derivation: the
// model's checkpoint/recovery at P as the disk level, frac·C_P as the
// in-memory level (SingleLevelCosts at every probed P).
func InMemoryFraction(m core.Model, frac float64) CostsFunc {
	return func(p float64) (Costs, error) {
		return SingleLevelCosts(m, p, frac)
	}
}

// PatternOptions tunes the joint (T, K, P) optimization. The zero value
// selects the same search box as the single-level optimizer.
type PatternOptions struct {
	// PMin and PMax bound the processor search (defaults 1 and 1e13,
	// matching optimize.PatternOptions).
	PMin, PMax float64
	// GridP is the coarse log-grid resolution of the outer P scan
	// (default 96; the inner (T, K) solve is closed-form, so outer grid
	// points are cheap).
	GridP int
	// Tol is the relative tolerance of the outer refinement
	// (default 1e-10).
	Tol float64
	// IntegerP rounds the processor allocation to the better of
	// floor/ceil after the continuous optimization.
	IntegerP bool
}

func (o PatternOptions) withDefaults() PatternOptions {
	if o.PMin == 0 {
		o.PMin = 1
	}
	if o.PMax == 0 {
		o.PMax = 1e13
	}
	if o.GridP == 0 {
		o.GridP = 96
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

func (o PatternOptions) validate() error {
	if !(o.PMax > o.PMin) || o.PMin < 1 {
		return fmt.Errorf("multilevel: bad processor bounds [%g, %g]", o.PMin, o.PMax)
	}
	return nil
}

// PatternResult is the joint optimum of the two-level first-order
// overhead H(T, K, P) over segment length, segment count and processor
// allocation.
type PatternResult struct {
	Plan
	// P is the optimal processor allocation.
	P float64
	// AtPBound reports that the optimizer stopped at PMax with the
	// overhead still decreasing (unbounded-allocation regimes, exactly as
	// in the single-level optimizer).
	AtPBound bool
	// Evals counts inner (T, K) solves — one per distinct probed P.
	Evals int
	// Warm reports that the result was produced by a SweepSolver
	// warm-start solve rather than the full-box scan.
	Warm bool
}

// innerPlan is the memoized outcome of one per-P inner (T, K) solve.
type innerPlan struct {
	plan Plan
	err  error
}

// errNilCosts is shared by every entry point that takes a CostsFunc.
var errNilCosts = errors.New("multilevel: nil CostsFunc")

// validateJoint holds a model to the preconditions of the two-level
// first-order analysis: both error sources present (the separable optima
// divide by each rate) and a non-nil profile via Model.Validate.
func validateJoint(m core.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if !(m.LambdaInd > 0) || !(m.FailStopFrac > 0) || !(m.SilentFrac > 0) {
		return errors.New(
			"multilevel: the two-level analysis needs positive fail-stop and silent rates")
	}
	return nil
}

// solveAtP solves the inner (T, K) problem at a fixed processor count on
// the compiled evaluator: derive the costs and platform rates once,
// then the first-order optimum is closed-form (FirstOrder — the
// T-re-optimized floor/ceil rounding of the separable K*). The hot loop
// never touches Model methods: every P-dependent quantity comes from one
// Freeze plus one CostsFunc call.
func solveAtP(m core.Model, costsFor CostsFunc, p float64) (Plan, error) {
	fz := m.Freeze(p)
	c, err := costsFor(p)
	if err != nil {
		return Plan{}, err
	}
	return FirstOrder(c, fz.LambdaF, fz.LambdaS, fz.ProfileOverhead())
}

// OptimalPattern minimizes the two-level first-order overhead jointly
// over (T, K, P): a log-grid scan over P with golden refinement (the
// same outer scheme as the single-level optimize.OptimalPattern), each
// probe solving the inner (T, K) problem exactly via the closed-form
// first-order optimum on a per-P compiled evaluator. This answers the
// paper's central question — how many processors should the job use — for
// the two-level protocol of Section V's future work.
func OptimalPattern(m core.Model, costsFor CostsFunc, opts PatternOptions) (PatternResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return PatternResult{}, err
	}
	if err := validateJoint(m); err != nil {
		return PatternResult{}, err
	}
	if costsFor == nil {
		return PatternResult{}, errNilCosts
	}
	return scanBox(m, costsFor, opts, opts.PMin, opts.PMax, opts.GridP, false)
}

// scanBox runs the outer P solve over [pLo, pHi]: log-grid localization
// of g(P) = min_{T,K} H(T, K, P), refinement, optional integer rounding.
// warm selects the short Brent polish (SweepSolver's narrow brackets);
// the full box keeps the reference GridRefine path so OptimalPattern is
// deterministic and cold sweep cells are bit-identical to it.
func scanBox(m core.Model, costsFor CostsFunc, opts PatternOptions, pLo, pHi float64, gridP int, warm bool) (PatternResult, error) {
	evals := 0
	memo := make(map[float64]innerPlan, gridP+8)
	var probeErr error // first inner failure, for the all-infeasible diagnostic
	probe := func(p float64) innerPlan {
		if pr, ok := memo[p]; ok {
			return pr
		}
		plan, err := solveAtP(m, costsFor, p)
		evals++
		if err != nil && probeErr == nil {
			probeErr = err
		}
		pr := innerPlan{plan: plan, err: err}
		memo[p] = pr
		return pr
	}
	g := func(p float64) float64 {
		pr := probe(p)
		if pr.err != nil {
			return math.Inf(1)
		}
		return pr.plan.PredictedH
	}

	var (
		outer optimize.Result
		err   error
	)
	if warm {
		outer, err = optimize.GridBrentLog(g, pLo, pHi, gridP, opts.Tol)
	} else {
		outer, err = optimize.GridRefine(g, pLo, pHi, gridP, true, opts.Tol)
	}
	if err != nil {
		if warm {
			return PatternResult{}, err
		}
		// A whole-box failure means every probe was infeasible; the first
		// inner error is the actual cause (e.g. an out-of-range in-memory
		// fraction from the CostsFunc), not search-box geometry.
		if probeErr != nil {
			return PatternResult{}, fmt.Errorf("multilevel: no feasible pattern in the search box: %w", probeErr)
		}
		return PatternResult{}, errors.New("multilevel: no feasible pattern in the search box")
	}

	pStar := outer.X
	atBound := pStar >= opts.PMax*(1-1e-6)
	if opts.IntegerP && !atBound {
		pStar = optimize.BetterInteger(g, pStar, opts.PMin, opts.PMax)
	}
	inner := probe(pStar)
	if inner.err != nil {
		return PatternResult{}, inner.err
	}
	return PatternResult{
		Plan:     inner.plan,
		P:        pStar,
		AtPBound: atBound,
		Evals:    evals,
	}, nil
}
