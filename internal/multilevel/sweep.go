package multilevel

import (
	"math"

	"amdahlyd/internal/core"
)

// SweepOptions tunes the warm-start batch solver for sweep-shaped
// two-level work (many joint optimizations along a smooth axis). The
// zero value selects defaults consistent with optimize.SweepOptions.
type SweepOptions struct {
	// PatternOptions bounds the search box exactly as for OptimalPattern;
	// a warm solve never leaves it, and every fallback runs inside it.
	PatternOptions
	// BracketFactor is the half-width of the warm bracket: cell i
	// searches P in [P*_{i-1}/BracketFactor, P*_{i-1}·BracketFactor]
	// (default 32, as in optimize.SweepOptions).
	BracketFactor float64
	// WarmGridP is the grid resolution inside the warm bracket
	// (default 10); it only needs to localize the minimum for the Brent
	// polish.
	WarmGridP int
	// Cold disables warm-starting entirely: every cell runs the
	// reference OptimalPattern scan and is bit-identical to a per-cell
	// call.
	Cold bool
}

func (o SweepOptions) withDefaults() SweepOptions {
	o.PatternOptions = o.PatternOptions.withDefaults()
	if o.BracketFactor == 0 {
		o.BracketFactor = 32
	}
	if o.WarmGridP == 0 {
		o.WarmGridP = 10
	}
	return o
}

// coldScanGridP mirrors optimize's chain-restart resolution: coarser
// than OptimalPattern's default 96 but still ~2 points per decade over
// the default 13-decade box.
const coldScanGridP = 64

// SweepStats counts how a solver spent its cells.
type SweepStats struct {
	// WarmSolves counts cells solved inside the warm bracket.
	WarmSolves int
	// ColdSolves counts cells solved by a full-box scan (first cell of a
	// chain, a rejected warm attempt, or Cold mode).
	ColdSolves int
	// Fallbacks counts warm attempts that were rejected and re-solved on
	// the full box; they are also counted in ColdSolves.
	Fallbacks int
	// Evals totals inner (T, K) solves across all cells.
	Evals int
}

// SweepSolver solves a sequence of related two-level optimizations — the
// cells of one axis (in-memory fraction, λ, α, C1…), ordered so that
// (T*, K*, P*) varies smoothly — by warm-starting each cell's outer P
// search from the previous optimum, with the same bracket-narrowing and
// full-box-fallback discipline as optimize.SweepSolver: a warm solve
// whose optimum lands on a warm-only bracket edge, or whose bracket is
// infeasible, falls back to the full cold box. Warm-starting is an
// accelerator, never a different answer beyond the refinement tolerance
// (pinned by the warm-vs-cold property tests).
//
// The two-level first-order objective has a single algebraic class (no
// counterpart of costmodel.Classify), so the class-change fallback of
// the single-level solver has no analogue here.
//
// A solver is stateful and must not be shared between goroutines; run
// one solver per chain.
type SweepSolver struct {
	opts SweepOptions

	havePrev    bool
	prevP       float64
	prevAtBound bool

	stats SweepStats
}

// NewSweepSolver builds a solver for one chain of related cells.
func NewSweepSolver(opts SweepOptions) *SweepSolver {
	return &SweepSolver{opts: opts.withDefaults()}
}

// Stats returns the per-chain solve counters accumulated so far.
func (s *SweepSolver) Stats() SweepStats { return s.stats }

// Observe primes the warm-start state from an externally obtained
// optimum (e.g. a cache hit for the cell), so the chain stays warm
// across cells the solver did not compute itself.
func (s *SweepSolver) Observe(res PatternResult) {
	s.havePrev = true
	s.prevP = res.P
	s.prevAtBound = res.AtPBound
}

// Solve returns the joint (T, K, P) optimum for the next cell of the
// chain. The first cell (and any cell whose warm solve is rejected)
// pays a full-box scan; subsequent cells search only the narrow bracket
// around the previous P*.
func (s *SweepSolver) Solve(m core.Model, costsFor CostsFunc) (PatternResult, error) {
	if err := s.opts.PatternOptions.validate(); err != nil {
		return PatternResult{}, err
	}
	if err := validateJoint(m); err != nil {
		return PatternResult{}, err
	}
	if costsFor == nil {
		return PatternResult{}, errNilCosts
	}
	if s.opts.Cold || !s.havePrev {
		return s.solveCold(m, costsFor, false)
	}
	res, ok, err := s.solveWarm(m, costsFor)
	if err != nil {
		return PatternResult{}, err
	}
	if !ok {
		return s.solveCold(m, costsFor, true)
	}
	s.stats.WarmSolves++
	s.stats.Evals += res.Evals
	s.Observe(res)
	return res, nil
}

// solveCold runs the full-box solve and records it as the new warm
// seed. In Cold mode it is bit-identical to a per-cell OptimalPattern
// call (same grid, same refinement); a chain restart in warm mode uses
// the same reference scan at a coarser outer grid.
func (s *SweepSolver) solveCold(m core.Model, costsFor CostsFunc, fallback bool) (PatternResult, error) {
	if fallback {
		s.stats.Fallbacks++
	}
	s.stats.ColdSolves++
	opts := s.opts.PatternOptions
	gridP := opts.GridP
	if !s.opts.Cold {
		gridP = min(coldScanGridP, gridP)
	}
	res, err := scanBox(m, costsFor, opts, opts.PMin, opts.PMax, gridP, false)
	if err != nil {
		return PatternResult{}, err
	}
	s.stats.Evals += res.Evals
	s.Observe(res)
	return res, nil
}

// solveWarm attempts the narrow-bracket solve. ok = false requests a
// cold fallback (infeasible bracket, or an optimum pinned to a warm
// edge that is not a global bound).
func (s *SweepSolver) solveWarm(m core.Model, costsFor CostsFunc) (res PatternResult, ok bool, err error) {
	opts := s.opts
	pLo := math.Max(opts.PMin, s.prevP/opts.BracketFactor)
	pHi := math.Min(opts.PMax, s.prevP*opts.BracketFactor)
	if s.prevAtBound {
		// An unbounded-allocation neighbour: the optimum may still sit at
		// PMax, so the warm bracket must include it.
		pHi = opts.PMax
	}
	if !(pHi > pLo) {
		return PatternResult{}, false, nil
	}
	res, err = scanBox(m, costsFor, opts.PatternOptions, pLo, pHi, opts.WarmGridP, true)
	if err != nil {
		// An infeasible or unsolvable warm bracket is a fallback trigger,
		// not a sweep failure: the cold box may still contain an optimum.
		return PatternResult{}, false, nil
	}
	// Reject an optimum pinned against a warm-only edge: the true optimum
	// drifted further than the bracket, so the narrow solve localized the
	// wrong basin. Global bounds are legitimate resting points.
	const edgeMargin = 0.02
	uLo, uHi, uX := math.Log(pLo), math.Log(pHi), math.Log(res.P)
	margin := edgeMargin * (uHi - uLo)
	if (uX-uLo < margin && pLo > opts.PMin*(1+1e-12)) ||
		(uHi-uX < margin && pHi < opts.PMax*(1-1e-12)) {
		return PatternResult{}, false, nil
	}
	res.Warm = true
	return res, true, nil
}

// BatchOptimalPattern solves every cell of an ordered sweep axis with
// one warm-start chain: models[i] is paired with the derived in-memory
// fraction frac (the common axis shape — the models vary, the fraction
// is the protocol choice). It is the batch counterpart of per-cell
// OptimalPattern calls: same answers within the refinement tolerance at
// a fraction of the inner solves.
func BatchOptimalPattern(models []core.Model, frac float64, opts SweepOptions) ([]PatternResult, error) {
	s := NewSweepSolver(opts)
	out := make([]PatternResult, len(models))
	for i, m := range models {
		res, err := s.Solve(m, InMemoryFraction(m, frac))
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
