package multilevel

import (
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

// jointModel builds a Hera-like model for the joint (T, K, P) tests
// without importing experiments (which imports this package).
func jointModel(t testing.TB, sc costmodel.Scenario, alpha, lambda float64) core.Model {
	t.Helper()
	res, err := sc.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	var profile speedup.Profile = speedup.PerfectlyParallel{}
	if alpha != 0 {
		profile = speedup.Amdahl{Alpha: alpha}
	}
	m := core.Model{
		LambdaInd:    lambda,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      profile,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// bruteForceJoint scans a dense log grid of P, solving the inner (T, K)
// problem by an exhaustive integer-K scan with the closed-form segment
// length — the reference the optimizer must agree with.
func bruteForceJoint(t testing.TB, m core.Model, frac, pMin, pMax float64, gridP, kMax int) (bestP float64, bestK int, bestH float64) {
	t.Helper()
	bestH = math.Inf(1)
	uLo, uHi := math.Log(pMin), math.Log(pMax)
	for i := 0; i < gridP; i++ {
		p := math.Exp(uLo + (uHi-uLo)*float64(i)/float64(gridP-1))
		c, err := SingleLevelCosts(m, p, frac)
		if err != nil {
			t.Fatal(err)
		}
		lf, ls := m.Rates(p)
		hOfP := m.Profile.Overhead(p)
		for k := 1; k <= kMax; k++ {
			tt := OptimalSegmentLength(c, k, lf, ls)
			if h := Overhead(c, Pattern{T: tt, K: k}, lf, ls, hOfP); h < bestH {
				bestP, bestK, bestH = p, k, h
			}
		}
	}
	return bestP, bestK, bestH
}

// TestOptimalPatternMatchesBruteForce is the correctness anchor of the
// joint optimizer: on pinned scenarios the (T, K, P) optimum must agree
// with an exhaustive box scan.
func TestOptimalPatternMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name   string
		sc     costmodel.Scenario
		alpha  float64
		lambda float64
		frac   float64
	}{
		{"hera-sc3", costmodel.Scenario3, 0.1, 1.69e-8, 20.0 / 300},
		{"sc1-high-rate", costmodel.Scenario1, 0.1, 1e-7, 0.1},
		{"sc5-low-alpha", costmodel.Scenario5, 0.01, 1e-9, 0.5},
		{"free-mem-level", costmodel.Scenario3, 0.1, 1.69e-8, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := jointModel(t, tc.sc, tc.alpha, tc.lambda)
			res, err := OptimalPattern(m, InMemoryFraction(m, tc.frac), PatternOptions{})
			if err != nil {
				t.Fatal(err)
			}
			bp, bk, bh := bruteForceJoint(t, m, tc.frac, 1, 1e13, 1600, 300)
			// The optimizer refines beyond the brute-force grid, so it may
			// only be better (up to roundoff).
			if res.PredictedH > bh*(1+1e-9) {
				t.Errorf("optimizer H = %g worse than brute force %g", res.PredictedH, bh)
			}
			// The brute-force grid spacing is ~13/1600 decades ≈ 1.9%.
			if d := math.Abs(math.Log(res.P / bp)); d > 0.04 {
				t.Errorf("P* = %g vs brute force %g (log gap %.3g)", res.P, bp, d)
			}
			if res.K != bk && xmath.RelDiff(res.PredictedH, bh) > 1e-6 {
				t.Errorf("K = %d vs brute force %d with H gap %g", res.K, bk, xmath.RelDiff(res.PredictedH, bh))
			}
			// Internal consistency: T is the closed-form optimum at (K, P*).
			c, err := SingleLevelCosts(m, res.P, tc.frac)
			if err != nil {
				t.Fatal(err)
			}
			lf, ls := m.Rates(res.P)
			if want := OptimalSegmentLength(c, res.K, lf, ls); res.T != want {
				t.Errorf("T = %g, want closed-form %g at K=%d, P=%g", res.T, want, res.K, res.P)
			}
		})
	}
}

// TestOptimalPatternBeatsFixedP pins the point of the whole exercise:
// jointly optimizing P must do at least as well as the two-level optimum
// at the deployed processor count.
func TestOptimalPatternBeatsFixedP(t *testing.T) {
	m := jointModel(t, costmodel.Scenario3, 0.1, 1.69e-8)
	const frac = 20.0 / 300
	res, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := SingleLevelCosts(m, 512, frac)
	if err != nil {
		t.Fatal(err)
	}
	lf, ls := m.Rates(512)
	fixed, err := FirstOrder(c, lf, ls, m.Profile.Overhead(512))
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedH > fixed.PredictedH*(1+1e-12) {
		t.Errorf("joint optimum %g worse than fixed-P optimum %g", res.PredictedH, fixed.PredictedH)
	}
}

func TestOptimalPatternValidation(t *testing.T) {
	m := jointModel(t, costmodel.Scenario3, 0.1, 1.69e-8)
	if _, err := OptimalPattern(m, nil, PatternOptions{}); err == nil {
		t.Error("nil CostsFunc accepted")
	}
	if _, err := OptimalPattern(m, InMemoryFraction(m, 0.1), PatternOptions{PMin: 5, PMax: 2}); err == nil {
		t.Error("inverted processor box accepted")
	}
	silentOnly := m
	silentOnly.FailStopFrac, silentOnly.SilentFrac = 0, 1
	if _, err := OptimalPattern(silentOnly, InMemoryFraction(silentOnly, 0.1), PatternOptions{}); err == nil {
		t.Error("single-source model accepted (separable optima divide by each rate)")
	}
	if _, err := OptimalPattern(m, InMemoryFraction(m, math.NaN()), PatternOptions{}); err == nil {
		t.Error("NaN fraction accepted (CostsFunc errors must propagate)")
	}
	// The all-infeasible diagnostic must surface the underlying CostsFunc
	// error, not just search-box geometry.
	if _, err := OptimalPattern(m, InMemoryFraction(m, -0.5), PatternOptions{}); err == nil {
		t.Error("negative fraction accepted")
	} else if !strings.Contains(err.Error(), "in-memory fraction") {
		t.Errorf("out-of-range fraction error hides the cause: %v", err)
	}
}

// TestOptimalPatternIntegerP: the rounded allocation must be one of the
// integers adjacent to the continuous optimum and feasible.
func TestOptimalPatternIntegerP(t *testing.T) {
	m := jointModel(t, costmodel.Scenario3, 0.1, 1.69e-8)
	frac := 20.0 / 300
	cont, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	integ, err := OptimalPattern(m, InMemoryFraction(m, frac), PatternOptions{IntegerP: true})
	if err != nil {
		t.Fatal(err)
	}
	if integ.P != math.Floor(integ.P) {
		t.Errorf("IntegerP returned non-integral P = %g", integ.P)
	}
	if math.Abs(integ.P-cont.P) > 1 {
		t.Errorf("integer P = %g not adjacent to continuous %g", integ.P, cont.P)
	}
}
