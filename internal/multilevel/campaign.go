package multilevel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"amdahlyd/internal/rng"
	"amdahlyd/internal/sim"
	"amdahlyd/internal/stats"
)

// CampaignConfig parameterizes a two-level Monte-Carlo campaign. The
// zero value plus a Seed and HOfP reproduces the paper's methodology
// (500 independent runs of 500 patterns each), exactly like
// sim.RunConfig for the single-level simulators.
type CampaignConfig struct {
	// Runs is the number of independent simulation runs (default 500).
	Runs int
	// Patterns is the number of two-level patterns per run (default 500).
	Patterns int
	// Seed fixes the campaign's master random stream; run i uses the
	// deterministic child stream Split(i), so results are independent of
	// scheduling and worker count.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// HOfP is the error-free overhead H(P) the per-run elapsed times are
	// scaled by. It must be positive and finite: a NaN or non-positive
	// value would silently turn every summary into NaN.
	HOfP float64
}

// WithDefaults returns the effective configuration (the paper's 500×500
// budget and GOMAXPROCS workers). Exported so callers that key campaigns
// by configuration (the service result cache) normalize exactly the way
// SimulateContext will.
func (c CampaignConfig) WithDefaults() CampaignConfig {
	if c.Runs == 0 {
		c.Runs = 500
	}
	if c.Patterns == 0 {
		c.Patterns = 500
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// CampaignResult aggregates a two-level Monte-Carlo campaign.
type CampaignResult struct {
	// Overhead summarizes per-run execution overheads
	// H = elapsed/(patterns·K·T) · H(P); its Mean is the two-level
	// counterpart of the single-level "simulated execution overhead".
	Overhead stats.Summary
	// FailStops, SilentDetections, DiskRecoveries and MemRecoveries are
	// totals across runs.
	FailStops        int64
	SilentDetections int64
	DiskRecoveries   int64
	MemRecoveries    int64
	// Config echoes the effective configuration.
	Config CampaignConfig
}

// SimulateContext runs the Monte-Carlo campaign for the simulator's
// two-level pattern on the shared chunked-dispatch runner
// (sim.ForEachRun): runs fan out over a bounded worker pool, run i
// always draws from the deterministic child stream Split(i) — so the
// statistics are bit-independent of the worker count — and the first run
// error (or ctx becoming done) cancels outstanding work instead of
// paying for the remaining runs. Two-level campaigns therefore cost the
// same machinery as the single-level ones in internal/sim.
func (s *Simulator) SimulateContext(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	cfg = cfg.WithDefaults()
	if cfg.Runs < 1 || cfg.Patterns < 1 {
		return CampaignResult{}, errors.New("multilevel: need positive runs and patterns")
	}
	// !(x > 0) also rejects NaN: an invalid H(P) would otherwise scale
	// every per-run overhead into NaN and surface as a NaN summary.
	if !(cfg.HOfP > 0) || math.IsInf(cfg.HOfP, 0) {
		return CampaignResult{}, fmt.Errorf("multilevel: H(P) = %g must be positive and finite", cfg.HOfP)
	}

	master := rng.New(cfg.Seed)
	work := float64(s.pattern.K) * s.pattern.T * float64(cfg.Patterns)
	outs := make([]Stats, cfg.Runs)
	err := sim.ForEachRun(ctx, cfg.Runs, cfg.Workers, func(i int) error {
		r := master.Split(uint64(i))
		st := &outs[i]
		for p := 0; p < cfg.Patterns; p++ {
			s.SimulatePattern(r, st)
		}
		return nil
	})
	if err != nil {
		return CampaignResult{}, err
	}

	// Accumulate in run-index order: the Welford stream (and therefore
	// the floating-point summary) is identical whatever the dispatch
	// interleaving was.
	var acc stats.Welford
	res := CampaignResult{Config: cfg}
	for i := range outs {
		st := &outs[i]
		acc.Add(st.Elapsed / work * cfg.HOfP)
		res.FailStops += st.FailStops
		res.SilentDetections += st.SilentDetections
		res.DiskRecoveries += st.DiskRecoveries
		res.MemRecoveries += st.MemRecoveries
	}
	res.Overhead = acc.Summarize()
	return res, nil
}
