package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"amdahlyd/internal/xmath"
)

func TestGoldenQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	res := Golden(f, -10, 10, 1e-10, 0)
	if !res.Converged {
		t.Error("golden did not converge on a parabola")
	}
	if math.Abs(res.X-3) > 1e-6 {
		t.Errorf("minimizer = %g, want 3", res.X)
	}
}

func TestGoldenReversedBounds(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	res := Golden(f, 5, -5, 1e-10, 0)
	if math.Abs(res.X) > 1e-6 {
		t.Errorf("minimizer = %g, want 0", res.X)
	}
}

func TestGoldenHandlesInfPlateau(t *testing.T) {
	// Objective is +Inf for x > 2 (like an overflowing exponential).
	f := func(x float64) float64 {
		if x > 2 {
			return math.Inf(1)
		}
		return (x - 1) * (x - 1)
	}
	res := Golden(f, 0, 100, 1e-9, 400)
	if math.Abs(res.X-1) > 1e-4 {
		t.Errorf("minimizer = %g, want 1 despite Inf plateau", res.X)
	}
}

func TestBrentMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return 2*(x-1.5)*(x-1.5) + 7 }
	res := BrentMin(f, -100, 100, 1e-12, 0)
	if !res.Converged {
		t.Error("Brent did not converge")
	}
	if math.Abs(res.X-1.5) > 1e-7 {
		t.Errorf("minimizer = %g, want 1.5", res.X)
	}
	if math.Abs(res.F-7) > 1e-12 {
		t.Errorf("minimum = %g, want 7", res.F)
	}
}

func TestBrentMinBeatsGoldenOnSmoothFunctions(t *testing.T) {
	// Brent's parabolic steps should need fewer evaluations than golden
	// on a well-behaved smooth objective at the same tolerance.
	f := func(x float64) float64 { return math.Cosh(x - 0.7) }
	g := Golden(f, -10, 10, 1e-10, 0)
	b := BrentMin(f, -10, 10, 1e-10, 0)
	if math.Abs(b.X-0.7) > 1e-6 || math.Abs(g.X-0.7) > 1e-6 {
		t.Fatalf("wrong minimizers: golden %g, brent %g", g.X, b.X)
	}
	if b.Evals >= g.Evals {
		t.Errorf("Brent used %d evals, golden %d; expected Brent to be cheaper",
			b.Evals, g.Evals)
	}
}

func TestBrentMinNonSmooth(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 2) }
	res := BrentMin(f, -10, 10, 1e-10, 0)
	if math.Abs(res.X-2) > 1e-6 {
		t.Errorf("|x−2| minimizer = %g", res.X)
	}
}

// Property: for random parabolas, both minimizers find the vertex.
func TestMinimizersOnRandomParabolas(t *testing.T) {
	f := func(vRaw, aRaw uint16) bool {
		vertex := float64(vRaw%2000)/100 - 10 // [−10, 10)
		scale := 0.1 + float64(aRaw%100)
		obj := func(x float64) float64 { return scale * (x - vertex) * (x - vertex) }
		g := Golden(obj, -15, 15, 1e-10, 0)
		b := BrentMin(obj, -15, 15, 1e-10, 0)
		return math.Abs(g.X-vertex) < 1e-5 && math.Abs(b.X-vertex) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGridRefineMultimodal(t *testing.T) {
	// Two wells; the global one is at x = 8 with depth −2.
	f := func(x float64) float64 {
		return -math.Exp(-(x-2)*(x-2)) - 2*math.Exp(-(x-8)*(x-8))
	}
	res, err := GridRefine(f, 0, 10, 60, false, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-8) > 1e-4 {
		t.Errorf("global minimizer = %g, want 8", res.X)
	}
}

func TestGridRefineLogAxis(t *testing.T) {
	// Minimum of a/x + b·x is at sqrt(a/b); spans decades, so log grid.
	a, b := 1e6, 1e-6
	want := math.Sqrt(a / b) // 1e6
	f := func(x float64) float64 { return a/x + b*x }
	res, err := GridRefine(f, 1, 1e12, 80, true, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if xmath.RelDiff(res.X, want) > 1e-6 {
		t.Errorf("minimizer = %g, want %g", res.X, want)
	}
}

func TestGridRefineErrors(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := GridRefine(f, 1, 1, 10, false, 0); err == nil {
		t.Error("hi == lo accepted")
	}
	if _, err := GridRefine(f, 0, 1, 2, false, 0); err == nil {
		t.Error("2 grid points accepted")
	}
	if _, err := GridRefine(f, 0, 1, 10, true, 0); err == nil {
		t.Error("log axis with lo = 0 accepted")
	}
	inf := func(float64) float64 { return math.Inf(1) }
	if _, err := GridRefine(inf, 1, 10, 10, false, 0); err == nil {
		t.Error("all-Inf objective accepted")
	}
}

func TestGridRefineBoundaryMinimum(t *testing.T) {
	// Monotone decreasing objective: the minimum is the right endpoint.
	f := func(x float64) float64 { return -x }
	res, err := GridRefine(f, 0, 10, 30, false, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-10) > 1e-4 {
		t.Errorf("boundary minimum at %g, want 10", res.X)
	}
}

func TestBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %.12g, want √2", root)
	}
	if _, err := Bisect(f, 2, 3, 0, 0); err != ErrNoBracket {
		t.Error("non-bracketing interval accepted")
	}
	// Exact root at an endpoint.
	g := func(x float64) float64 { return x*x - 4 }
	if r, err := Bisect(g, 2, 3, 0, 0); err != nil || r != 2 {
		t.Error("endpoint root not detected")
	}
}

func TestBrentRoot(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	root, err := BrentRoot(f, 0, 1, 1e-14, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The Dottie number.
	if math.Abs(root-0.7390851332151607) > 1e-10 {
		t.Errorf("root = %.16g, want Dottie number", root)
	}
	if _, err := BrentRoot(f, 2, 3, 0, 0); err != ErrNoBracket {
		t.Error("non-bracketing interval accepted")
	}
}

func TestBrentRootHardCases(t *testing.T) {
	// Flat near the root: f(x) = (x−1)^9.
	f := func(x float64) float64 { return math.Pow(x-1, 9) }
	root, err := BrentRoot(f, -4, 4.3, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-1) > 1e-3 {
		t.Errorf("flat-root estimate = %g, want 1", root)
	}
}

// Property: BrentRoot and Bisect agree on random monotone cubics.
func TestRootFindersAgree(t *testing.T) {
	f := func(cRaw uint16) bool {
		c := 1 + float64(cRaw%100)
		obj := func(x float64) float64 { return x*x*x + c*x - 5 }
		r1, err1 := Bisect(obj, -10, 10, 1e-12, 0)
		r2, err2 := BrentRoot(obj, -10, 10, 1e-12, 0)
		return err1 == nil && err2 == nil && math.Abs(r1-r2) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
