package optimize

import (
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/xmath"
)

// Warm-vs-cold agreement bounds. The cold reference converges its
// refinement interval to Tol = 1e-10 (relative, in log coordinates);
// near a quadratic minimum an interval of that size leaves the objective
// determined to ~Tol² and the minimizer's position to ~√Tol, so the
// solvers may legitimately disagree by ~1e-5 in (T*, P*) on flat basins
// while agreeing far more tightly on the overhead itself.
const (
	sweepTolH  = 1e-8
	sweepTolXY = 1e-4
)

// lambdaAxis is a dense λ_ind axis spanning the Fig. 5/6 range.
func lambdaAxis(n int) []float64 {
	return xmath.Logspace(1e-12, 1e-8, n)
}

func modelWithLambda(t *testing.T, sc costmodel.Scenario, alpha, lambda float64) core.Model {
	t.Helper()
	m := heraModel(t, sc, alpha)
	m.LambdaInd = lambda
	return m
}

func assertAgrees(t *testing.T, label string, warm, cold PatternResult) {
	t.Helper()
	if warm.AtPBound != cold.AtPBound {
		t.Errorf("%s: warm AtPBound=%t, cold %t", label, warm.AtPBound, cold.AtPBound)
		return
	}
	if d := xmath.RelDiff(warm.Overhead, cold.Overhead); d > sweepTolH {
		t.Errorf("%s: overhead disagrees by %.3g: warm %g vs cold %g",
			label, d, warm.Overhead, cold.Overhead)
	}
	if d := xmath.RelDiff(warm.P, cold.P); d > sweepTolXY {
		t.Errorf("%s: P* disagrees by %.3g: warm %g vs cold %g", label, d, warm.P, cold.P)
	}
	if d := xmath.RelDiff(warm.T, cold.T); d > sweepTolXY {
		t.Errorf("%s: T* disagrees by %.3g: warm %g vs cold %g", label, d, warm.T, cold.T)
	}
}

// TestBatchMatchesColdDenseLambdaAxis is the main equivalence property:
// over scenarios 1, 3 and 5 (the sweep-figure subset) × a dense λ_ind
// axis, the warm-start chain must agree with per-cell OptimalPattern on
// (T*, P*, H) within the refinement tolerance.
func TestBatchMatchesColdDenseLambdaAxis(t *testing.T) {
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3, costmodel.Scenario5} {
		for _, alpha := range []float64{0.1, 0} {
			models := make([]core.Model, 0, 17)
			for _, lambda := range lambdaAxis(17) {
				models = append(models, modelWithLambda(t, sc, alpha, lambda))
			}
			batch, err := BatchOptimalPattern(models, SweepOptions{})
			if err != nil {
				t.Fatalf("%v α=%g: %v", sc, alpha, err)
			}
			for i, m := range models {
				cold, err := OptimalPattern(m, PatternOptions{})
				if err != nil {
					t.Fatalf("%v α=%g cell %d: %v", sc, alpha, i, err)
				}
				assertAgrees(t, sc.String(), batch[i], cold)
			}
		}
	}
}

// TestBatchMatchesColdAlphaAndDowntimeAxes covers the Fig. 4 and Fig. 7
// axes: the sequential fraction (including the α = 0 perfectly parallel
// head cell, which typically pins P* to the search bound) and the
// downtime.
func TestBatchMatchesColdAlphaAndDowntimeAxes(t *testing.T) {
	alphas := []float64{0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}
	downtimes := []float64{0, 1800, 3600, 5400, 7200, 9000, 10800}
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3, costmodel.Scenario5} {
		var models []core.Model
		for _, alpha := range alphas {
			models = append(models, heraModel(t, sc, alpha))
		}
		for _, d := range downtimes {
			res, err := sc.Calibrate(512, 300, 15.4, d)
			if err != nil {
				t.Fatal(err)
			}
			m := heraModel(t, sc, 0.1)
			m.Res = res
			models = append(models, m)
		}
		batch, err := BatchOptimalPattern(models, SweepOptions{})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		for i, m := range models {
			cold, err := OptimalPattern(m, PatternOptions{})
			if err != nil {
				t.Fatalf("%v cell %d: %v", sc, i, err)
			}
			assertAgrees(t, sc.String(), batch[i], cold)
		}
	}
}

// TestBatchShapeFlipForcesFallback alternates objective classes along
// the axis (scenario 1 is the linear class, scenario 5 the decreasing
// class): every cell must detect the flip, re-solve cold, and still
// agree with the per-cell reference.
func TestBatchShapeFlipForcesFallback(t *testing.T) {
	var models []core.Model
	for i := 0; i < 6; i++ {
		sc := costmodel.Scenario1
		if i%2 == 1 {
			sc = costmodel.Scenario5
		}
		models = append(models, heraModel(t, sc, 0.1))
	}
	s := NewSweepSolver(SweepOptions{})
	for i, m := range models {
		res, err := s.Solve(m)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		cold, err := OptimalPattern(m, PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertAgrees(t, "shape-flip", res, cold)
		if res.Warm {
			t.Errorf("cell %d: class flip must not warm-start", i)
		}
	}
	if st := s.Stats(); st.ColdSolves != len(models) || st.WarmSolves != 0 {
		t.Errorf("stats = %+v, want all %d cells cold", st, len(models))
	}
}

// TestBatchAxisJumpFallsBack drives the chain across a λ_ind jump far
// larger than the warm bracket: the warm attempt must be rejected at
// the bracket edge and the cold fallback must recover the reference
// optimum.
func TestBatchAxisJumpFallsBack(t *testing.T) {
	models := []core.Model{
		modelWithLambda(t, costmodel.Scenario3, 0.1, 1e-12),
		modelWithLambda(t, costmodel.Scenario3, 0.1, 1e-5),
	}
	s := NewSweepSolver(SweepOptions{})
	for i, m := range models {
		res, err := s.Solve(m)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		cold, err := OptimalPattern(m, PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertAgrees(t, "axis-jump", res, cold)
	}
	if st := s.Stats(); st.Fallbacks == 0 {
		t.Errorf("stats = %+v, want at least one fallback across the λ jump", st)
	}
}

// TestSweepSolverColdModeBitIdentical pins the -warm=false escape hatch:
// Cold mode must return bit-identical results to per-cell OptimalPattern.
func TestSweepSolverColdModeBitIdentical(t *testing.T) {
	var models []core.Model
	for _, lambda := range lambdaAxis(5) {
		models = append(models, modelWithLambda(t, costmodel.Scenario3, 0.1, lambda))
	}
	batch, err := BatchOptimalPattern(models, SweepOptions{Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		cold, err := OptimalPattern(m, PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].T != cold.T || batch[i].P != cold.P || batch[i].Overhead != cold.Overhead {
			t.Errorf("cell %d: cold mode differs: (%v, %v, %v) vs (%v, %v, %v)",
				i, batch[i].T, batch[i].P, batch[i].Overhead, cold.T, cold.P, cold.Overhead)
		}
		if batch[i].Warm {
			t.Errorf("cell %d: cold mode flagged warm", i)
		}
	}
}

// TestSweepSolverRejectsBadOptions holds warm mode to OptimalPattern's
// option contract: an invalid search box errors instead of silently
// producing out-of-contract optima.
func TestSweepSolverRejectsBadOptions(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	for _, opts := range []PatternOptions{
		{PMin: 5, PMax: 2},    // inverted box
		{PMin: 0.5},           // processor bound below 1
		{TMin: 10, TMax: 0.1}, // inverted period box
	} {
		s := NewSweepSolver(SweepOptions{PatternOptions: opts})
		if _, err := s.Solve(m); err == nil {
			t.Errorf("options %+v accepted by warm solver", opts)
		}
	}
}

// TestBatchAmortizesEvals is the measurable-win property: across a dense
// axis the warm chain must spend far fewer kernel evaluations than
// per-cell cold solves (the ≥5× amortized per-cell budget of the sweep
// solver design).
func TestBatchAmortizesEvals(t *testing.T) {
	models := make([]core.Model, 0, 17)
	for _, lambda := range lambdaAxis(17) {
		models = append(models, modelWithLambda(t, costmodel.Scenario3, 0.1, lambda))
	}
	batch, err := BatchOptimalPattern(models, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warmEvals := 0
	for _, r := range batch {
		warmEvals += r.Evals
	}
	coldEvals := 0
	for _, m := range models {
		cold, err := OptimalPattern(m, PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		coldEvals += cold.Evals
	}
	if warmEvals*5 > coldEvals {
		t.Errorf("warm chain used %d evals vs %d cold: less than the 5× amortization target",
			warmEvals, coldEvals)
	}
	warmCells := 0
	for _, r := range batch {
		if r.Warm {
			warmCells++
		}
	}
	if warmCells < len(models)-2 {
		t.Errorf("only %d/%d cells warm-started on a smooth axis", warmCells, len(models))
	}
	if math.IsNaN(batch[0].Overhead) {
		t.Fatal("NaN overhead")
	}
}
