package optimize

import (
	"errors"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
)

// SweepOptions tunes the warm-start batch solver. The zero value selects
// defaults suitable for every sweep in the paper's figures.
type SweepOptions struct {
	// PatternOptions bounds the search box exactly as for OptimalPattern;
	// a warm solve never leaves it, and every fallback runs inside it.
	PatternOptions
	// BracketFactor is the half-width of the warm bracket: cell i searches
	// P in [P*_{i-1}/BracketFactor, P*_{i-1}·BracketFactor] (default 32,
	// generous for every per-cell drift in Figs. 4–7, where P* moves by at
	// most a few × between adjacent sweep coordinates).
	BracketFactor float64
	// WarmGridP and WarmGridT are the grid resolutions inside the warm
	// brackets (defaults 10 and 10). They only need to localize the
	// minimum for the Brent polish, not survive a cold multi-decade scan.
	WarmGridP, WarmGridT int
	// Cold disables warm-starting entirely: every cell runs the reference
	// OptimalPattern grid scan (the -warm=false escape hatch; results are
	// then bit-identical to per-cell OptimalPattern calls).
	Cold bool
}

func (o SweepOptions) withDefaults() SweepOptions {
	o.PatternOptions = o.PatternOptions.withDefaults()
	if o.BracketFactor == 0 {
		o.BracketFactor = 32
	}
	if o.WarmGridP == 0 {
		o.WarmGridP = 10
	}
	if o.WarmGridT == 0 {
		o.WarmGridT = 10
	}
	return o
}

// coldScanGridP is the outer grid of a chain-restart scan: coarser than
// OptimalPattern's 96 (the Brent polish converges from a coarser
// localization at equal tolerance), still dense enough to not skip the
// feasible band of any Table II/III configuration (~2 points per decade
// over the default 13-decade box).
const coldScanGridP = 64

// SweepStats counts how a solver spent its cells: the measurable record
// of what warm-starting bought a sweep.
type SweepStats struct {
	// WarmSolves counts cells solved inside the warm bracket.
	WarmSolves int
	// ColdSolves counts cells solved by a full-box scan (first cell of a
	// chain, an objective-class change, or Cold mode).
	ColdSolves int
	// Fallbacks counts warm attempts that were rejected (optimum pinned
	// to a warm bracket edge, or an infeasible bracket) and re-solved on
	// the full box; they are also counted in ColdSolves.
	Fallbacks int
	// Evals totals exact-formula evaluations across all cells.
	Evals int
}

// SweepSolver solves a sequence of related pattern optimizations — the
// cells of one figure axis, ordered so that (T*, P*) varies smoothly —
// by warm-starting each cell from the previous optimum.
//
// The paper's sweep figures are continuous curves: along any one axis
// (α, λ_ind, D, platform) the optimum moves by at most a few × per cell.
// A warm cell therefore brackets the outer P search a factor
// BracketFactor around the previous P*, localizes the minimum on a short
// log-grid, and polishes with bounded Brent; the inner u = log T
// minimization runs the same short-grid-plus-Brent scheme around the
// Theorem 1 seed. A warm solve whose optimum lands on a warm bracket
// edge (the axis jumped), whose bracket is infeasible, or whose
// objective class changed since the previous cell falls back to the full
// cold box — warm-starting is an accelerator, never a different answer
// beyond the refinement tolerance (the sweep property tests pin warm
// against per-cell OptimalPattern within Tol-derived bounds).
//
// A solver is stateful (the previous optimum and a reusable per-P probe
// memo) and must not be shared between goroutines; run one solver per
// chain. The memo is keyed by P and valid only within one cell — the
// model changes between cells — so only its allocation is reused.
type SweepSolver struct {
	opts SweepOptions

	havePrev    bool
	prevP       float64
	prevAtBound bool
	prevClass   costmodel.Class

	memo  map[float64]innerProbe
	stats SweepStats
}

// NewSweepSolver builds a solver for one chain of related models.
func NewSweepSolver(opts SweepOptions) *SweepSolver {
	opts = opts.withDefaults()
	return &SweepSolver{
		opts: opts,
		memo: make(map[float64]innerProbe, opts.GridP+8),
	}
}

// Stats returns the per-chain solve counters accumulated so far.
func (s *SweepSolver) Stats() SweepStats { return s.stats }

// Observe primes the warm-start state from an externally obtained
// optimum for m (e.g. a cache hit for the cell), so the chain stays warm
// across cells the solver did not compute itself.
func (s *SweepSolver) Observe(m core.Model, res PatternResult) {
	s.havePrev = true
	s.prevP = res.P
	s.prevAtBound = res.AtPBound
	s.prevClass = m.Res.Classify().Class
}

// Solve returns the numerical optimum for the next cell of the chain.
// The first cell (and any cell whose warm solve is rejected) pays a full
// cold scan; subsequent cells typically cost an order of magnitude less.
func (s *SweepSolver) Solve(m core.Model) (PatternResult, error) {
	// Hold warm mode to the same option contract as OptimalPattern: a
	// bad search box must fail loudly here, not surface as an
	// out-of-bounds optimum or a misleading infeasibility error.
	if err := s.opts.validate(); err != nil {
		return PatternResult{}, err
	}
	if err := m.Validate(); err != nil {
		return PatternResult{}, err
	}
	class := m.Res.Classify().Class
	if s.opts.Cold || !s.havePrev || class != s.prevClass {
		return s.solveCold(m, class, false)
	}
	res, ok, err := s.solveWarm(m)
	if err != nil {
		return PatternResult{}, err
	}
	if !ok {
		return s.solveCold(m, class, true)
	}
	s.stats.WarmSolves++
	s.stats.Evals += res.Evals
	s.Observe(m, res)
	return res, nil
}

// solveCold runs the full-box solve and records it as the new warm seed.
// In Cold mode it is the reference OptimalPattern (bit-identical to a
// per-cell call); otherwise it keeps the fast Brent-polished inner
// minimizer so even chain restarts stay ~2–3× under the reference cost.
func (s *SweepSolver) solveCold(m core.Model, class costmodel.Class, fallback bool) (PatternResult, error) {
	if fallback {
		s.stats.Fallbacks++
	}
	s.stats.ColdSolves++
	var (
		res PatternResult
		err error
	)
	if s.opts.Cold {
		res, err = OptimalPattern(m, s.opts.PatternOptions)
	} else {
		res, err = s.scan(m, s.opts.PMin, s.opts.PMax, min(coldScanGridP, s.opts.GridP), false)
	}
	if err != nil {
		return PatternResult{}, err
	}
	s.stats.Evals += res.Evals
	s.Observe(m, res)
	return res, nil
}

// solveWarm attempts the narrow-bracket solve. ok = false requests a
// cold fallback (infeasible bracket, or the optimum pinned to a warm
// edge that is not a global bound).
func (s *SweepSolver) solveWarm(m core.Model) (res PatternResult, ok bool, err error) {
	opts := s.opts
	pLo := math.Max(opts.PMin, s.prevP/opts.BracketFactor)
	pHi := math.Min(opts.PMax, s.prevP*opts.BracketFactor)
	if s.prevAtBound {
		// An unbounded-allocation neighbour: the optimum may still sit at
		// PMax, so the warm bracket must include it.
		pHi = opts.PMax
	}
	if !(pHi > pLo) {
		return PatternResult{}, false, nil
	}
	res, err = s.scan(m, pLo, pHi, opts.WarmGridP, true)
	if err != nil {
		// An infeasible or unsolvable warm bracket is a fallback trigger,
		// not a sweep failure: the cold box may still contain an optimum.
		return PatternResult{}, false, nil
	}
	// Reject an optimum pinned against a warm-only edge: the true optimum
	// drifted further than the bracket, so the narrow solve localized the
	// wrong basin. Global bounds are legitimate resting points.
	const edgeMargin = 0.02
	uLo, uHi, uX := math.Log(pLo), math.Log(pHi), math.Log(res.P)
	margin := edgeMargin * (uHi - uLo)
	if (uX-uLo < margin && pLo > opts.PMin*(1+1e-12)) ||
		(uHi-uX < margin && pHi < opts.PMax*(1-1e-12)) {
		return PatternResult{}, false, nil
	}
	res.Warm = true
	return res, true, nil
}

// scan is the shared outer solve over [pLo, pHi]: a log-grid localization
// of g(P) = min_T H(T, P) followed by a bounded-Brent polish, with the
// same per-P probe memoization as OptimalPattern. warm selects the short
// inner minimizer (grid + Brent around the Theorem 1 seed); the cold
// restart keeps it too — only Cold mode routes to OptimalPattern.
func (s *SweepSolver) scan(m core.Model, pLo, pHi float64, gridP int, warm bool) (PatternResult, error) {
	opts := s.opts
	evals := 0
	clear(s.memo)
	probe := func(p float64) innerProbe {
		if pr, ok := s.memo[p]; ok {
			return pr
		}
		fz := m.Freeze(p)
		res, err := minimizeTBrent(&fz, opts.PatternOptions, opts.WarmGridT)
		evals += res.Evals
		pr := innerProbe{res: res, err: err}
		s.memo[p] = pr
		return pr
	}
	g := func(p float64) float64 {
		pr := probe(p)
		if pr.err != nil {
			return math.Inf(1)
		}
		return pr.res.F
	}

	outer, err := GridBrentLog(g, pLo, pHi, gridP, opts.Tol)
	if err != nil {
		if warm {
			return PatternResult{}, err
		}
		return PatternResult{}, errors.New("optimize: no feasible pattern in the search box")
	}

	pStar := outer.X
	atBound := pStar >= opts.PMax*(1-1e-6)
	if opts.IntegerP && !atBound {
		pStar = BetterInteger(g, pStar, opts.PMin, opts.PMax)
	}
	inner := probe(pStar)
	if inner.err != nil {
		return PatternResult{}, inner.err
	}
	return PatternResult{
		Solution: core.Solution{
			T:        inner.res.X,
			P:        pStar,
			Overhead: inner.res.F,
			Method:   "numerical",
			Class:    m.Res.Classify().Class,
		},
		AtPBound: atBound,
		Evals:    evals,
	}, nil
}

// innerProbe is the memoized outcome of one inner period minimization.
type innerProbe struct {
	res Result
	err error
}

// BatchOptimalPattern solves every model of an ordered sweep axis with
// one warm-start chain, returning one result per model. It is the batch
// counterpart of per-cell OptimalPattern calls: same answers within the
// refinement tolerance, at a fraction of the evaluations (each
// PatternResult carries its own Evals count and Warm flag).
func BatchOptimalPattern(models []core.Model, opts SweepOptions) ([]PatternResult, error) {
	s := NewSweepSolver(opts)
	out := make([]PatternResult, len(models))
	for i, m := range models {
		res, err := s.Solve(m)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// minimizeTBrent is the warm-path inner period minimizer: the same
// Theorem 1 seed bracket as minimizeT, localized on a short u = log T
// grid and polished with bounded Brent instead of the cold path's
// 48-point grid plus golden refinement (~3× fewer kernel calls at equal
// tolerance). Any failure — no finite seed, empty bracket, an
// all-infeasible grid — falls back to the robust cold minimizeT.
func minimizeTBrent(fz *core.Frozen, opts PatternOptions, gridT int) (Result, error) {
	seed := fz.OptimalPeriod()
	if math.IsInf(seed, 0) || !(seed > 0) {
		return minimizeT(fz, opts)
	}
	lo := math.Max(opts.TMin, seed/1e3)
	hi := math.Min(opts.TMax, seed*1e3)
	if !(hi > lo) {
		return minimizeT(fz, opts)
	}
	res, err := gridBrentFrozen(fz, math.Log(lo), math.Log(hi), gridT, opts.Tol)
	if err != nil {
		return minimizeT(fz, opts)
	}
	res.X = math.Exp(res.X)
	return res, nil
}

// gridBrentFrozen localizes the frozen overhead kernel's minimum on a
// short u-grid and polishes the best bracket with bounded Brent. It
// keeps gridRefineFrozen's monotone infeasible-grid rejection: an
// overflow at the low edge proves the whole bracket infeasible after a
// single probe.
func gridBrentFrozen(fz *core.Frozen, uLo, uHi float64, points int, tol float64) (Result, error) {
	if !(uHi > uLo) {
		return Result{}, errGridBounds
	}
	if points < 3 {
		return Result{}, errGridPoints
	}
	if fz.OverflowsBeyond(uLo) {
		return Result{}, errGridAllInf
	}
	step := (uHi - uLo) / float64(points-1)
	gridPoint := func(i int) float64 {
		if i == points-1 {
			return uHi
		}
		return uLo + float64(i)*step
	}
	bestI, bestF := 0, math.Inf(1)
	for i := 0; i < points; i++ {
		if v := fz.OverheadLog(gridPoint(i)); v < bestF {
			bestI, bestF = i, v
		}
	}
	if math.IsInf(bestF, 1) {
		return Result{}, errGridAllInf
	}
	a := gridPoint(max(bestI-1, 0))
	b := gridPoint(min(bestI+1, points-1))
	res := BrentMin(fz.OverheadLog, a, b, tol, 0)
	res.Evals += points
	// The grid best might still beat the polished point on plateaus.
	if bestF < res.F {
		res.X, res.F = gridPoint(bestI), bestF
	}
	return res, nil
}

// GridBrentLog is the outer-loop counterpart on an arbitrary objective:
// a geometric grid over [lo, hi] followed by bounded Brent in u = log x
// coordinates. The returned X is in natural (not log) coordinates.
// Exported as the shared warm-bracket outer solve (the two-level sweep
// solver in internal/multilevel runs the same scheme).
func GridBrentLog(f Func, lo, hi float64, points int, tol float64) (Result, error) {
	if !(hi > lo) || lo <= 0 {
		return Result{}, errGridBounds
	}
	if points < 3 {
		return Result{}, errGridPoints
	}
	obj := func(u float64) float64 { return f(math.Exp(u)) }
	uLo, uHi := math.Log(lo), math.Log(hi)
	step := (uHi - uLo) / float64(points-1)
	gridPoint := func(i int) float64 {
		if i == points-1 {
			return uHi
		}
		return uLo + float64(i)*step
	}
	bestI, bestF := 0, math.Inf(1)
	for i := 0; i < points; i++ {
		if v := obj(gridPoint(i)); v < bestF {
			bestI, bestF = i, v
		}
	}
	if math.IsInf(bestF, 1) {
		return Result{}, errGridAllInf
	}
	a := gridPoint(max(bestI-1, 0))
	b := gridPoint(min(bestI+1, points-1))
	res := BrentMin(obj, a, b, tol, 0)
	res.Evals += points
	if bestF < res.F {
		res.X, res.F = gridPoint(bestI), bestF
	}
	res.X = math.Exp(res.X)
	return res, nil
}
