package optimize

import (
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

func TestSemiAnalyticMatchesTheoremsForAmdahl(t *testing.T) {
	// Deep in the validity regime the semi-analytic optimum over the
	// Theorem 1 curve must coincide with Theorems 2 and 3.
	for _, sc := range []costmodel.Scenario{costmodel.Scenario1, costmodel.Scenario3} {
		m := heraModel(t, sc, 0.1)
		m.LambdaInd = 1e-11
		sa, err := SemiAnalyticOptimum(m, PatternOptions{})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		fo, err := m.FirstOrder()
		if err != nil {
			t.Fatal(err)
		}
		if xmath.RelDiff(sa.P, fo.P) > 0.05 {
			t.Errorf("%v: semi-analytic P=%g vs theorem P=%g", sc, sa.P, fo.P)
		}
		if xmath.RelDiff(sa.Overhead, fo.Overhead) > 0.01 {
			t.Errorf("%v: semi-analytic H=%g vs theorem H=%g", sc, sa.Overhead, fo.Overhead)
		}
		if sa.Method != "semi-analytic" {
			t.Errorf("method = %q", sa.Method)
		}
	}
}

func TestSemiAnalyticGustafson(t *testing.T) {
	// No closed form exists for Gustafson profiles; the semi-analytic
	// solution must still be a local minimum of the Theorem 1 curve and
	// be priced sensibly by the exact model.
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.Profile = speedup.Gustafson{Alpha: 0.1}
	sa, err := SemiAnalyticOptimum(m, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h0 := m.OverheadAtOptimalPeriod(sa.P)
	for _, f := range []float64{0.8, 1.25} {
		if h := m.OverheadAtOptimalPeriod(sa.P * f); h < h0-1e-12 {
			t.Errorf("curve value %g at %g·P* below optimum %g", h, f, h0)
		}
	}
	// Gustafson speedup keeps growing with P, so its optimum enrolls far
	// more processors than Amdahl with the same α.
	am, err := heraModelSolution(t)
	if err != nil {
		t.Fatal(err)
	}
	if sa.P <= am.P {
		t.Errorf("Gustafson P*=%g should exceed Amdahl P*=%g", sa.P, am.P)
	}
}

func heraModelSolution(t *testing.T) (core.Solution, error) {
	t.Helper()
	m := heraModel(t, costmodel.Scenario1, 0.1)
	return m.FirstOrder()
}

func TestSemiAnalyticPowerLaw(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.Profile = speedup.PowerLaw{Gamma: 0.8}
	sa, err := SemiAnalyticOptimum(m, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sa.P < 1 || sa.T <= 0 || sa.Overhead <= 0 {
		t.Errorf("degenerate solution %+v", sa)
	}
	// Exact-model pricing at the semi-analytic point should sit near the
	// first-order value in the validity regime.
	exact := m.Overhead(sa.T, sa.P)
	if xmath.RelDiff(exact, sa.Overhead) > 0.05 {
		t.Errorf("first-order %g vs exact %g at the semi-analytic point", sa.Overhead, exact)
	}
}

func TestSemiAnalyticValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	bad := m
	bad.LambdaInd = -5
	if _, err := SemiAnalyticOptimum(bad, PatternOptions{}); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := SemiAnalyticOptimum(m, PatternOptions{PMin: 5, PMax: 2}); err == nil {
		t.Error("invalid bounds accepted")
	}
	// Error-free model: period diverges, must error out cleanly.
	free := m
	free.LambdaInd = 0
	if _, err := SemiAnalyticOptimum(free, PatternOptions{}); err == nil {
		t.Error("zero-rate model should fail (no finite period)")
	}
}
