// Package optimize provides the numerical-optimization substrate used to
// compute the paper's "optimal (numerical)" curves: derivative-free scalar
// minimization (golden section and bounded Brent), root finding (bisection
// and Brent–Dekker), grid-scan-plus-refine for robustly non-unimodal
// objectives, and the nested two-dimensional optimizer over (T, P) built
// on the exact overhead formula of Proposition 1.
package optimize

import (
	"errors"
	"math"
)

// Func is a scalar objective. It may return +Inf to reject a point, which
// the comparison-based minimizers treat as "worse than everything".
type Func func(float64) float64

// Result reports a scalar minimization outcome.
type Result struct {
	// X is the minimizer found.
	X float64
	// F is the objective value at X.
	F float64
	// Evals counts objective evaluations.
	Evals int
	// Converged reports whether the interval shrank below tolerance
	// before the iteration budget ran out.
	Converged bool
}

const invPhi = 0.6180339887498949 // (√5 − 1)/2

// Golden minimizes f on [a, b] by golden-section search. It assumes f is
// unimodal on the interval; with a non-unimodal f it still returns a local
// minimum. tol is the absolute interval tolerance on x.
func Golden(f Func, a, b, tol float64, maxIter int) Result {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	evals := 2
	converged := false
	for i := 0; i < maxIter; i++ {
		if b-a <= tol*(1+math.Abs(a)+math.Abs(b)) {
			converged = true
			break
		}
		if f1 <= f2 { // keep [a, x2]
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else { // keep [x1, b]
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
		evals++
	}
	if f1 <= f2 {
		return Result{X: x1, F: f1, Evals: evals, Converged: converged}
	}
	return Result{X: x2, F: f2, Evals: evals, Converged: converged}
}

// BrentMin minimizes f on [a, b] with Brent's method (parabolic
// interpolation with golden-section fallback), the bounded variant used by
// scipy's fminbound. tol is the relative x tolerance.
func BrentMin(f Func, a, b, tol float64, maxIter int) Result {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-11
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	const tiny = 1e-21
	cg := 1 - invPhi // 0.381966…

	x := a + cg*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	evals := 1
	var deltaX, rat float64
	converged := false

	for i := 0; i < maxIter; i++ {
		mid := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + tiny
		tol2 := 2 * tol1
		if math.Abs(x-mid) <= tol2-0.5*(b-a) {
			converged = true
			break
		}
		useGolden := true
		if math.Abs(deltaX) > tol1 {
			// Fit a parabola through (v, fv), (w, fw), (x, fx).
			tmp1 := (x - w) * (fx - fv)
			tmp2 := (x - v) * (fx - fw)
			p := (x-v)*tmp2 - (x-w)*tmp1
			tmp2 = 2 * (tmp2 - tmp1)
			if tmp2 > 0 {
				p = -p
			}
			tmp2 = math.Abs(tmp2)
			dxTemp := deltaX
			deltaX = rat
			// Accept the parabolic step only if it is inside the
			// bounds and shrinks faster than the previous step.
			if p > tmp2*(a-x) && p < tmp2*(b-x) && math.Abs(p) < math.Abs(0.5*tmp2*dxTemp) {
				rat = p / tmp2
				u := x + rat
				if (u-a) < tol2 || (b-u) < tol2 {
					rat = math.Copysign(tol1, mid-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= mid {
				deltaX = a - x
			} else {
				deltaX = b - x
			}
			rat = cg * deltaX
		}
		var u float64
		if math.Abs(rat) >= tol1 {
			u = x + rat
		} else {
			u = x + math.Copysign(tol1, rat)
		}
		fu := f(u)
		evals++
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return Result{X: x, F: fx, Evals: evals, Converged: converged}
}

// GridRefine scans points samples of f over [lo, hi] (geometrically spaced
// when logAxis is true), then refines the best bracket with golden-section
// search. It is robust to objectives that are not globally unimodal, at
// the cost of the initial sweep. The returned Result is the refined
// minimum; ties prefer the smaller x.
func GridRefine(f Func, lo, hi float64, points int, logAxis bool, tol float64) (Result, error) {
	if !(hi > lo) {
		return Result{}, errors.New("optimize: GridRefine needs hi > lo")
	}
	if points < 3 {
		return Result{}, errors.New("optimize: GridRefine needs at least 3 grid points")
	}
	if logAxis && lo <= 0 {
		return Result{}, errors.New("optimize: log-axis grid needs lo > 0")
	}

	// In log-axis mode the grid lives in u = log x coordinates and the
	// exp transform is fused into a single objective wrapper; otherwise
	// the objective is probed directly, with no transform indirection.
	obj := f
	uLo, uHi := lo, hi
	if logAxis {
		obj = func(u float64) float64 { return f(math.Exp(u)) }
		uLo, uHi = math.Log(lo), math.Log(hi)
	}
	step := (uHi - uLo) / float64(points-1)

	// gridPoint recomputes the i-th grid coordinate instead of storing the
	// whole grid: only the best point and its two neighbours are ever
	// needed again, which keeps the scan allocation-free.
	gridPoint := func(i int) float64 {
		if i == points-1 {
			return uHi
		}
		return uLo + float64(i)*step
	}

	bestI, bestF := 0, math.Inf(1)
	for i := 0; i < points; i++ {
		if v := obj(gridPoint(i)); v < bestF {
			bestI, bestF = i, v
		}
	}
	if math.IsInf(bestF, 1) {
		return Result{}, errors.New("optimize: objective is +Inf over the whole grid")
	}

	// Refine within the bracket around the best grid point.
	a := gridPoint(max(bestI-1, 0))
	b := gridPoint(min(bestI+1, points-1))
	res := Golden(obj, a, b, tol, 0)
	res.Evals += points
	// The grid best might still beat the refined point on plateaus.
	if bestF < res.F {
		res.X, res.F = gridPoint(bestI), bestF
	}
	if logAxis {
		res.X = math.Exp(res.X)
	}
	return res, nil
}
