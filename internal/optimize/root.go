package optimize

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when the supplied interval does not bracket a
// sign change of the function.
var ErrNoBracket = errors.New("optimize: interval does not bracket a root")

// Bisect finds a root of f on [a, b] by bisection. f(a) and f(b) must have
// opposite signs. tol is the absolute x tolerance.
func Bisect(f Func, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol*(1+math.Abs(m)) {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// BrentRoot finds a root of f on [a, b] with the Brent–Dekker method:
// inverse quadratic interpolation, secant steps, and bisection fallback.
// f(a) and f(b) must have opposite signs.
func BrentRoot(f Func, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-13
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	// Ensure |f(b)| <= |f(a)| so b is the best guess.
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64

	for i := 0; i < maxIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol*(1+math.Abs(b)) {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b) // bisection fallback
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	return b, nil
}
