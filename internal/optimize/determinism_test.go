package optimize

import (
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/speedup"
)

// The (T*, P*, H) solutions of the pre-frozen-engine optimizer on the four
// Table II platforms at α = 0.1, D = 3600 s, printed at full float64
// precision. The frozen evaluation engine, the probe memo, the u-space
// refinement and the infeasible-grid rejection are all required to
// reproduce these bit-for-bit: any divergence means the "compiled kernel"
// no longer evaluates Proposition 1 exactly like the reference Model path.
var numericalOptimumGoldens = []struct {
	platform string
	scenario costmodel.Scenario
	t, p, h  float64
}{
	{"Hera", costmodel.Scenario1, 6554.8578901077153, 207.21388658728677, 0.10903714666640313},
	{"Hera", costmodel.Scenario3, 9241.4855645954667, 237.22450671815807, 0.11133239179670219},
	{"Hera", costmodel.Scenario5, 4558.0799564505351, 707.37065741259676, 0.11288296011137561},
	{"Atlas", costmodel.Scenario1, 5411.2982600439909, 227.9977671225889, 0.10816583383988657},
	{"Atlas", costmodel.Scenario3, 11191.70861925268, 219.17951596634396, 0.1126304637679427},
	{"Atlas", costmodel.Scenario5, 3978.9729204300734, 1305.9727281995026, 0.11959376429642787},
	{"Coastal", costmodel.Scenario1, 15560.027115370243, 360.45500501779782, 0.10505791825469991},
	{"Coastal", costmodel.Scenario3, 38614.807730708606, 321.20823398591079, 0.10852991054057874},
	{"Coastal", costmodel.Scenario5, 12708.508623350788, 2415.0327963951645, 0.11529437228572942},
	{"CoastalSSD", costmodel.Scenario1, 29074.375223898573, 287.6811835089469, 0.10696421761265978},
	{"CoastalSSD", costmodel.Scenario3, 71506.240019118137, 235.50668133997331, 0.11175114020514071},
	{"CoastalSSD", costmodel.Scenario5, 34900.236013341186, 1357.9077291396209, 0.12466478759098573},
}

// TestOptimalPatternBitIdentical verifies OptimalPattern returns
// bit-identical solutions to the pre-refactor optimizer on all four
// Table II platforms.
func TestOptimalPatternBitIdentical(t *testing.T) {
	for _, g := range numericalOptimumGoldens {
		pl, err := platform.Lookup(g.platform)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Resilience(g.scenario, 3600)
		if err != nil {
			t.Fatal(err)
		}
		m := core.Model{
			LambdaInd:    pl.LambdaInd,
			FailStopFrac: pl.FailStopFraction,
			SilentFrac:   pl.SilentFraction,
			Res:          res,
			Profile:      speedup.Amdahl{Alpha: 0.1},
		}
		sol, err := OptimalPattern(m, PatternOptions{})
		if err != nil {
			t.Fatalf("%s/%v: %v", g.platform, g.scenario, err)
		}
		if sol.T != g.t || sol.P != g.p || sol.Overhead != g.h {
			t.Errorf("%s/%v drifted from the pre-refactor optimizer:\n got  T=%.17g P=%.17g H=%.17g\n want T=%.17g P=%.17g H=%.17g",
				g.platform, g.scenario, sol.T, sol.P, sol.Overhead, g.t, g.p, g.h)
		}
	}
}
