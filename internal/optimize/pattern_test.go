package optimize

import (
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

func heraModel(t *testing.T, sc costmodel.Scenario, alpha float64) core.Model {
	t.Helper()
	res, err := sc.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	var profile speedup.Profile = speedup.Amdahl{Alpha: alpha}
	if alpha == 0 {
		profile = speedup.PerfectlyParallel{}
	}
	return core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      profile,
	}
}

func TestOptimalPeriodNearFirstOrder(t *testing.T) {
	// For valid first-order regimes the exact numerical T* must sit close
	// to Theorem 1's period (the paper's Fig. 3(c): within 0.2%
	// in overhead, which translates to a few percent in T).
	for _, sc := range costmodel.AllScenarios {
		m := heraModel(t, sc, 0.1)
		for _, p := range []float64{256, 512, 1024} {
			tStar, h, err := OptimalPeriod(m, p, PatternOptions{})
			if err != nil {
				t.Fatalf("%v P=%g: %v", sc, p, err)
			}
			fo := m.OptimalPeriodFixedP(p)
			if xmath.RelDiff(tStar, fo) > 0.25 {
				t.Errorf("%v P=%g: numerical T*=%g vs first-order %g", sc, p, tStar, fo)
			}
			// Numerical optimum can only improve on the first-order point.
			if h > m.Overhead(fo, p)+1e-12 {
				t.Errorf("%v P=%g: numerical overhead %g worse than first-order point %g",
					sc, p, h, m.Overhead(fo, p))
			}
		}
	}
}

func TestOptimalPeriodIsTrueMinimum(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tStar, h, err := OptimalPeriod(m, 512, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []float64{0.9, 0.99, 1.01, 1.1} {
		if hh := m.Overhead(tStar*factor, 512); hh < h-1e-12 {
			t.Errorf("overhead %g at %g×T* below optimum %g", hh, factor, h)
		}
	}
}

func TestOptimalPatternScenario1MatchesTheorem2(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	num, err := OptimalPattern(m, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := m.FirstOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 (Hera): first-order and numerical optima nearly coincide in
	// scenario 1. Allow 15% in parameters, 1% in overhead.
	if xmath.RelDiff(num.P, fo.P) > 0.15 {
		t.Errorf("P*: numerical %g vs first-order %g", num.P, fo.P)
	}
	if xmath.RelDiff(num.T, fo.T) > 0.15 {
		t.Errorf("T*: numerical %g vs first-order %g", num.T, fo.T)
	}
	if xmath.RelDiff(num.Overhead, fo.Overhead) > 0.01 {
		t.Errorf("H*: numerical %g vs first-order %g", num.Overhead, fo.Overhead)
	}
	if num.AtPBound {
		t.Error("scenario 1 optimum flagged at bound")
	}
	if num.Method != "numerical" {
		t.Errorf("method = %q", num.Method)
	}
}

func TestOptimalPatternScenario3MatchesTheorem3(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	num, err := OptimalPattern(m, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := m.FirstOrder()
	if err != nil {
		t.Fatal(err)
	}
	if xmath.RelDiff(num.P, fo.P) > 0.2 {
		t.Errorf("P*: numerical %g vs first-order %g", num.P, fo.P)
	}
	if xmath.RelDiff(num.Overhead, fo.Overhead) > 0.01 {
		t.Errorf("H*: numerical %g vs first-order %g", num.Overhead, fo.Overhead)
	}
}

func TestOptimalPatternIsLocalMinimum2D(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	num, err := OptimalPattern(m, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h0 := m.Overhead(num.T, num.P)
	for _, dT := range []float64{0.9, 1.1} {
		for _, dP := range []float64{0.9, 1.1} {
			if h := m.Overhead(num.T*dT, num.P*dP); h < h0-1e-10 {
				t.Errorf("overhead %g at (%g·T*, %g·P*) below optimum %g", h, dT, dP, h0)
			}
		}
	}
}

func TestOptimalPatternScenario6LargerPSmallerT(t *testing.T) {
	// Fig. 2: scenario 6 (both costs ∝ 1/P) has higher P* and smaller T*
	// than scenario 5.
	m5 := heraModel(t, costmodel.Scenario5, 0.1)
	m6 := heraModel(t, costmodel.Scenario6, 0.1)
	r5, err := OptimalPattern(m5, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := OptimalPattern(m6, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r6.P <= r5.P {
		t.Errorf("P*(sc6) = %g should exceed P*(sc5) = %g", r6.P, r5.P)
	}
	if r6.T >= r5.T {
		t.Errorf("T*(sc6) = %g should be below T*(sc5) = %g", r6.T, r5.T)
	}
}

func TestOptimalPatternPerfectlyParallelScenario5Unbounded(t *testing.T) {
	// α = 0 with constant-ish costs: P* grows like λ^-1 (Fig. 6); with
	// the default bound of 1e13 and λ = 1.69e-8 it is bounded (~1e8-ish),
	// but with scenario 6 (h/P costs) the allocation is unbounded and
	// must hit the search bound.
	m := heraModel(t, costmodel.Scenario6, 0)
	res, err := OptimalPattern(m, PatternOptions{PMax: 1e10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AtPBound {
		t.Errorf("scenario 6 with α=0 should be unbounded, got P*=%g", res.P)
	}
}

func TestOptimalPatternIntegerP(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	res, err := OptimalPattern(m, PatternOptions{IntegerP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != math.Trunc(res.P) {
		t.Errorf("IntegerP returned fractional P = %g", res.P)
	}
	// Still near the continuous optimum.
	cont, _ := OptimalPattern(m, PatternOptions{})
	if math.Abs(res.P-cont.P) > 1.5 {
		t.Errorf("integer P = %g far from continuous %g", res.P, cont.P)
	}
}

func TestOptionValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if _, err := OptimalPattern(m, PatternOptions{PMin: 10, PMax: 5}); err == nil {
		t.Error("inverted P bounds accepted")
	}
	if _, err := OptimalPattern(m, PatternOptions{TMin: -1, TMax: 5}); err == nil {
		t.Error("negative TMin accepted")
	}
	if _, _, err := OptimalPeriod(m, 512, PatternOptions{TMin: 5, TMax: 5}); err == nil {
		t.Error("empty T interval accepted")
	}
	bad := m
	bad.LambdaInd = -1
	if _, err := OptimalPattern(bad, PatternOptions{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestOptimalPatternDowntimeSensitivity(t *testing.T) {
	// Fig. 7: the numerical P* decreases as downtime grows; the
	// first-order P* does not depend on D at all.
	m0 := heraModel(t, costmodel.Scenario1, 0.1)
	m3 := m0
	m3.Res.Downtime = 3 * 3600
	r0, err := OptimalPattern(m0, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := OptimalPattern(m3, PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.P >= r0.P {
		t.Errorf("P* should shrink with downtime: D=1h → %g, D=3h → %g", r0.P, r3.P)
	}
	fo0, _ := m0.FirstOrder()
	fo3, _ := m3.FirstOrder()
	if fo0.P != fo3.P {
		t.Error("first-order P* must not depend on D")
	}
}
