package optimize_test

import (
	"fmt"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/speedup"
)

// Minimize a/x + b·x over twelve decades with a log-axis grid scan plus
// golden refinement; the analytic optimum is sqrt(a/b) = 1e6.
func ExampleGridRefine() {
	f := func(x float64) float64 { return 1e6/x + 1e-6*x }
	res, err := optimize.GridRefine(f, 1, 1e12, 80, true, 1e-12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("x* = %.4g, f(x*) = %.4g\n", res.X, res.F)
	// Output:
	// x* = 1e+06, f(x*) = 2
}

// The paper's "optimal (numerical)" solution: joint minimization of the
// exact overhead over period and processor count.
func ExampleOptimalPattern() {
	res, _ := costmodel.Scenario1.Calibrate(512, 300, 15.4, 3600)
	m := core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	sol, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("P* = %.0f, T* = %.0f s, overhead = %.4f\n", sol.P, sol.T, sol.Overhead)
	// Output:
	// P* = 207, T* = 6555 s, overhead = 0.1090
}
