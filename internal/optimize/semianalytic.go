package optimize

import (
	"errors"
	"math"

	"amdahlyd/internal/core"
)

// SemiAnalyticOptimum minimizes Theorem 1's first-order overhead curve
//
//	H(T*_P, P) = H(P) · (1 + 2·sqrt((λf_P/2 + λs_P)·(V_P + C_P)))
//
// over the processor count numerically, then returns Theorem 1's period
// at the optimum. This extends the paper's first-order analysis to
// arbitrary speedup profiles (Gustafson, power-law, …) for which no
// closed-form P* exists — the "different speedup profiles" direction of
// the paper's Section V. For Amdahl profiles in the validity regime it
// agrees with Theorems 2 and 3 (a property the tests check).
func SemiAnalyticOptimum(m core.Model, opts PatternOptions) (core.Solution, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return core.Solution{}, err
	}
	if err := m.Validate(); err != nil {
		return core.Solution{}, err
	}
	// The Theorem 1 objective is closed-form but still pays a cost-model
	// and profile evaluation per probe; the memo keeps the grid scan and
	// the golden refinement from re-pricing the same P (bracket endpoints
	// and the final reported optimum are always revisited).
	memo := make(map[float64]float64, opts.GridP+8)
	obj := func(p float64) float64 {
		if h, ok := memo[p]; ok {
			return h
		}
		h := m.OverheadAtOptimalPeriod(p)
		memo[p] = h
		return h
	}
	res, err := GridRefine(obj, opts.PMin, opts.PMax, opts.GridP, true, opts.Tol)
	if err != nil {
		return core.Solution{}, errors.New("optimize: semi-analytic objective infeasible")
	}
	p := res.X
	t := m.OptimalPeriodFixedP(p)
	if math.IsInf(t, 0) || !(t > 0) {
		return core.Solution{}, errors.New("optimize: degenerate period at semi-analytic optimum")
	}
	return core.Solution{
		T:        t,
		P:        p,
		Overhead: res.F,
		Method:   "semi-analytic",
		Class:    m.Res.Classify().Class,
	}, nil
}
