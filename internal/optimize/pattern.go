package optimize

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/core"
)

// PatternOptions tunes the nested (T, P) optimization. The zero value
// selects defaults suitable for every experiment in the paper.
type PatternOptions struct {
	// PMin and PMax bound the processor search (defaults 1 and 1e13; the
	// α = 0 sweeps of Fig. 6 reach P* ≈ λ^−1 = 1e12).
	PMin, PMax float64
	// TMin and TMax bound the period search in seconds (defaults 1e-6
	// and 1e12; the low default matters in the unbounded-allocation
	// regimes, where the optimal period shrinks like 1/P and a coarse
	// lower bound would fabricate an interior optimum).
	TMin, TMax float64
	// GridP and GridT are the coarse log-grid resolutions (defaults 96
	// and 48).
	GridP, GridT int
	// Tol is the relative tolerance of the golden refinements
	// (default 1e-10).
	Tol float64
	// IntegerP rounds the processor allocation to the better of
	// floor/ceil after the continuous optimization.
	IntegerP bool
}

func (o PatternOptions) withDefaults() PatternOptions {
	if o.PMin == 0 {
		o.PMin = 1
	}
	if o.PMax == 0 {
		o.PMax = 1e13
	}
	if o.TMin == 0 {
		o.TMin = 1e-6
	}
	if o.TMax == 0 {
		o.TMax = 1e12
	}
	if o.GridP == 0 {
		o.GridP = 96
	}
	if o.GridT == 0 {
		o.GridT = 48
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

func (o PatternOptions) validate() error {
	if !(o.PMax > o.PMin) || o.PMin < 1 {
		return fmt.Errorf("optimize: bad processor bounds [%g, %g]", o.PMin, o.PMax)
	}
	if !(o.TMax > o.TMin) || o.TMin <= 0 {
		return fmt.Errorf("optimize: bad period bounds [%g, %g]", o.TMin, o.TMax)
	}
	return nil
}

// PatternResult is the numerical optimum of the exact overhead
// H(T, P) = E(PATTERN)/(T·S(P)) from Proposition 1.
type PatternResult struct {
	core.Solution
	// AtPBound reports that the optimizer stopped at PMax: the overhead
	// was still decreasing, so the true optimum lies beyond the search
	// bound (this happens by design in scenario 6 with α = 0, where the
	// paper finds the allocation unbounded).
	AtPBound bool
	// Evals counts exact-formula evaluations.
	Evals int
	// Warm reports that the result was produced by a SweepSolver
	// warm-start solve (narrow bracket around the previous cell's
	// optimum) rather than the full cold grid scan.
	Warm bool
}

// OptimalPeriod minimizes the exact overhead over T for a fixed processor
// count and returns (T*, H(T*, P)). It seeds the search with the
// first-order Theorem 1 period when it is finite and inside bounds.
func OptimalPeriod(m core.Model, p float64, opts PatternOptions) (float64, float64, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return 0, 0, err
	}
	fz := m.Freeze(p)
	res, err := minimizeT(&fz, opts)
	if err != nil {
		return 0, 0, err
	}
	return res.X, res.F, nil
}

// minimizeT solves the inner period problem min_T H(T, P) on a compiled
// evaluator, so the ~50–100 objective evaluations of the grid scan and the
// golden refinement pay only the frozen per-call cost (no Rates, cost-model
// or exponential recomputation).
//
// The search runs natively in u = log T coordinates with the exp transform
// fused into the frozen kernel (OverheadLog), through gridRefineFrozen —
// a statically dispatched replica of GridRefine+Golden. The grid points,
// probes and refinement are bit-identical to GridRefine's log-axis mode.
func minimizeT(fz *core.Frozen, opts PatternOptions) (Result, error) {
	lo, hi := opts.TMin, opts.TMax
	// Tighten the bracket around the first-order seed: the exact optimum
	// sits within a small factor of Theorem 1's T*_P whenever the
	// approximation is anywhere near valid.
	if seed := fz.OptimalPeriod(); !math.IsInf(seed, 0) && seed > 0 {
		lo = math.Max(opts.TMin, seed/1e3)
		hi = math.Min(opts.TMax, seed*1e3)
		if !(hi > lo) {
			lo, hi = opts.TMin, opts.TMax
		}
	}
	res, err := gridRefineFrozen(fz, math.Log(lo), math.Log(hi), opts.GridT, opts.Tol)
	if err != nil {
		// Fall back to the full range (the seed bracket may have missed).
		res, err = gridRefineFrozen(fz, math.Log(opts.TMin), math.Log(opts.TMax), opts.GridT*2, opts.Tol)
		if err != nil {
			return res, err
		}
	}
	res.X = math.Exp(res.X)
	return res, nil
}

// gridRefineFrozen is GridRefine (linear axis) followed by Golden,
// specialized to the frozen overhead kernel: every objective evaluation is
// a static call to Frozen.OverheadLog instead of two closure dispatches,
// which is worth ~10% of the whole nested optimization at the ~10⁴
// evaluations a single OptimalPattern performs. The probe sequence, the
// tie-breaking and the convergence tests replicate GridRefine and Golden
// exactly (the determinism tests pin the equivalence).
func gridRefineFrozen(fz *core.Frozen, uLo, uHi float64, points int, tol float64) (Result, error) {
	if !(uHi > uLo) {
		return Result{}, errGridBounds
	}
	if points < 3 {
		return Result{}, errGridPoints
	}
	// The overhead's overflow exponent is monotone in the period, so an
	// overflow at the grid's low edge proves every grid point is +Inf:
	// reject the whole bracket after one probe instead of points+refine
	// evaluations (this is what the P-grid's deep failure-dominated tail
	// costs otherwise).
	if fz.OverflowsBeyond(uLo) {
		return Result{}, errGridAllInf
	}
	step := (uHi - uLo) / float64(points-1)
	gridPoint := func(i int) float64 {
		if i == points-1 {
			return uHi
		}
		return uLo + float64(i)*step
	}

	bestI, bestF := 0, math.Inf(1)
	for i := 0; i < points; i++ {
		if v := fz.OverheadLog(gridPoint(i)); v < bestF {
			bestI, bestF = i, v
		}
	}
	if math.IsInf(bestF, 1) {
		return Result{}, errGridAllInf
	}

	// Golden-section refinement within the bracket around the best grid
	// point (tol and iteration budget as Golden's defaults).
	a := gridPoint(max(bestI-1, 0))
	b := gridPoint(min(bestI+1, points-1))
	if tol <= 0 {
		tol = 1e-10
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := fz.OverheadLog(x1), fz.OverheadLog(x2)
	evals := 2
	converged := false
	for i := 0; i < 200; i++ {
		if b-a <= tol*(1+math.Abs(a)+math.Abs(b)) {
			converged = true
			break
		}
		if f1 <= f2 { // keep [a, x2]
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = fz.OverheadLog(x1)
		} else { // keep [x1, b]
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = fz.OverheadLog(x2)
		}
		evals++
	}
	res := Result{X: x1, F: f1, Evals: evals, Converged: converged}
	if f1 > f2 {
		res.X, res.F = x2, f2
	}
	res.Evals += points
	// The grid best might still beat the refined point on plateaus.
	if bestF < res.F {
		res.X, res.F = gridPoint(bestI), bestF
	}
	return res, nil
}

// OptimalPattern minimizes the exact overhead jointly over T and P by a
// log-grid scan over P with golden refinement, solving the inner period
// problem exactly at each probe. This is the reproduction of the paper's
// "Optimal (numerical)" solution (the role played by the iterative method
// of Jin et al. [14] in the paper's comparison).
func OptimalPattern(m core.Model, opts PatternOptions) (PatternResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return PatternResult{}, err
	}
	if err := m.Validate(); err != nil {
		return PatternResult{}, err
	}

	evals := 0
	// probe solves the inner period problem at P exactly once: the outer
	// grid scan, the golden refinement and the integer rounding all
	// re-visit grid points and bracket endpoints, and the memo guarantees
	// each distinct P is compiled (Freeze) and minimized a single time.
	type innerProbe struct {
		res Result
		err error
	}
	memo := make(map[float64]innerProbe, opts.GridP+8)
	probe := func(p float64) innerProbe {
		if pr, ok := memo[p]; ok {
			return pr
		}
		fz := m.Freeze(p)
		res, err := minimizeT(&fz, opts)
		evals += res.Evals
		pr := innerProbe{res: res, err: err}
		memo[p] = pr
		return pr
	}
	// g(P) = min_T H(T, P); +Inf marks an inner failure.
	g := func(p float64) float64 {
		pr := probe(p)
		if pr.err != nil {
			return math.Inf(1)
		}
		return pr.res.F
	}

	outer, err := GridRefine(g, opts.PMin, opts.PMax, opts.GridP, true, opts.Tol)
	if err != nil {
		return PatternResult{}, errors.New("optimize: no feasible pattern in the search box")
	}

	pStar := outer.X
	atBound := pStar >= opts.PMax*(1-1e-6)
	if opts.IntegerP && !atBound {
		pStar = BetterInteger(g, pStar, opts.PMin, opts.PMax)
	}
	inner := probe(pStar)
	if inner.err != nil {
		return PatternResult{}, inner.err
	}

	return PatternResult{
		Solution: core.Solution{
			T:        inner.res.X,
			P:        pStar,
			Overhead: inner.res.F,
			Method:   "numerical",
			Class:    m.Res.Classify().Class,
		},
		AtPBound: atBound,
		Evals:    evals,
	}, nil
}

// Shared error values of the frozen grid refinement (allocated once; the
// infeasible-grid rejection fires on every deep-tail P probe).
var (
	errGridBounds = errors.New("optimize: GridRefine needs hi > lo")
	errGridPoints = errors.New("optimize: GridRefine needs at least 3 grid points")
	errGridAllInf = errors.New("optimize: objective is +Inf over the whole grid")
)

// BetterInteger picks the best integer processor count adjacent to the
// continuous optimum (exported for the outer P rounding of every joint
// optimizer, including the two-level one in internal/multilevel).
func BetterInteger(g Func, p, pMin, pMax float64) float64 {
	lo := math.Max(pMin, math.Floor(p))
	hi := math.Min(pMax, math.Ceil(p))
	if lo == hi {
		return lo
	}
	if g(lo) <= g(hi) {
		return lo
	}
	return hi
}
