package optimize

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/core"
)

// PatternOptions tunes the nested (T, P) optimization. The zero value
// selects defaults suitable for every experiment in the paper.
type PatternOptions struct {
	// PMin and PMax bound the processor search (defaults 1 and 1e13; the
	// α = 0 sweeps of Fig. 6 reach P* ≈ λ^−1 = 1e12).
	PMin, PMax float64
	// TMin and TMax bound the period search in seconds (defaults 1e-6
	// and 1e12; the low default matters in the unbounded-allocation
	// regimes, where the optimal period shrinks like 1/P and a coarse
	// lower bound would fabricate an interior optimum).
	TMin, TMax float64
	// GridP and GridT are the coarse log-grid resolutions (defaults 96
	// and 48).
	GridP, GridT int
	// Tol is the relative tolerance of the golden refinements
	// (default 1e-10).
	Tol float64
	// IntegerP rounds the processor allocation to the better of
	// floor/ceil after the continuous optimization.
	IntegerP bool
}

func (o PatternOptions) withDefaults() PatternOptions {
	if o.PMin == 0 {
		o.PMin = 1
	}
	if o.PMax == 0 {
		o.PMax = 1e13
	}
	if o.TMin == 0 {
		o.TMin = 1e-6
	}
	if o.TMax == 0 {
		o.TMax = 1e12
	}
	if o.GridP == 0 {
		o.GridP = 96
	}
	if o.GridT == 0 {
		o.GridT = 48
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

func (o PatternOptions) validate() error {
	if !(o.PMax > o.PMin) || o.PMin < 1 {
		return fmt.Errorf("optimize: bad processor bounds [%g, %g]", o.PMin, o.PMax)
	}
	if !(o.TMax > o.TMin) || o.TMin <= 0 {
		return fmt.Errorf("optimize: bad period bounds [%g, %g]", o.TMin, o.TMax)
	}
	return nil
}

// PatternResult is the numerical optimum of the exact overhead
// H(T, P) = E(PATTERN)/(T·S(P)) from Proposition 1.
type PatternResult struct {
	core.Solution
	// AtPBound reports that the optimizer stopped at PMax: the overhead
	// was still decreasing, so the true optimum lies beyond the search
	// bound (this happens by design in scenario 6 with α = 0, where the
	// paper finds the allocation unbounded).
	AtPBound bool
	// Evals counts exact-formula evaluations.
	Evals int
}

// OptimalPeriod minimizes the exact overhead over T for a fixed processor
// count and returns (T*, H(T*, P)). It seeds the search with the
// first-order Theorem 1 period when it is finite and inside bounds.
func OptimalPeriod(m core.Model, p float64, opts PatternOptions) (float64, float64, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return 0, 0, err
	}
	res, err := minimizeT(m, p, opts)
	if err != nil {
		return 0, 0, err
	}
	return res.X, res.F, nil
}

func minimizeT(m core.Model, p float64, opts PatternOptions) (Result, error) {
	obj := func(t float64) float64 { return m.Overhead(t, p) }

	lo, hi := opts.TMin, opts.TMax
	// Tighten the bracket around the first-order seed: the exact optimum
	// sits within a small factor of Theorem 1's T*_P whenever the
	// approximation is anywhere near valid.
	if seed := m.OptimalPeriodFixedP(p); !math.IsInf(seed, 0) && seed > 0 {
		lo = math.Max(opts.TMin, seed/1e3)
		hi = math.Min(opts.TMax, seed*1e3)
		if !(hi > lo) {
			lo, hi = opts.TMin, opts.TMax
		}
	}
	res, err := GridRefine(obj, lo, hi, opts.GridT, true, opts.Tol)
	if err != nil {
		// Fall back to the full range (the seed bracket may have missed).
		res, err = GridRefine(obj, opts.TMin, opts.TMax, opts.GridT*2, true, opts.Tol)
	}
	return res, err
}

// OptimalPattern minimizes the exact overhead jointly over T and P by a
// log-grid scan over P with golden refinement, solving the inner period
// problem exactly at each probe. This is the reproduction of the paper's
// "Optimal (numerical)" solution (the role played by the iterative method
// of Jin et al. [14] in the paper's comparison).
func OptimalPattern(m core.Model, opts PatternOptions) (PatternResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return PatternResult{}, err
	}
	if err := m.Validate(); err != nil {
		return PatternResult{}, err
	}

	evals := 0
	// g(P) = min_T H(T, P); +Inf marks an inner failure.
	g := func(p float64) float64 {
		res, err := minimizeT(m, p, opts)
		evals += res.Evals
		if err != nil {
			return math.Inf(1)
		}
		return res.F
	}

	outer, err := GridRefine(g, opts.PMin, opts.PMax, opts.GridP, true, opts.Tol)
	if err != nil {
		return PatternResult{}, errors.New("optimize: no feasible pattern in the search box")
	}

	pStar := outer.X
	atBound := pStar >= opts.PMax*(1-1e-6)
	if opts.IntegerP && !atBound {
		pStar = betterInteger(g, pStar, opts.PMin, opts.PMax)
	}
	inner, err := minimizeT(m, pStar, opts)
	if err != nil {
		return PatternResult{}, err
	}
	evals += inner.Evals

	return PatternResult{
		Solution: core.Solution{
			T:        inner.X,
			P:        pStar,
			Overhead: inner.F,
			Method:   "numerical",
			Class:    m.Res.Classify().Class,
		},
		AtPBound: atBound,
		Evals:    evals,
	}, nil
}

// betterInteger picks the best integer processor count adjacent to the
// continuous optimum.
func betterInteger(g Func, p, pMin, pMax float64) float64 {
	lo := math.Max(pMin, math.Floor(p))
	hi := math.Min(pMax, math.Ceil(p))
	if lo == hi {
		return lo
	}
	if g(lo) <= g(hi) {
		return lo
	}
	return hi
}
