package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Error("zero seed produced repeated values suspiciously fast")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Error("adjacent split children start identically")
	}
	// Splitting does not consume the parent stream.
	p1 := New(7)
	_ = p1.Split(0)
	p2 := New(7)
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("Split consumed parent state")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(99).Split(12345)
	b := New(99).Split(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

func TestSplitStringDistinct(t *testing.T) {
	r := New(5)
	a := r.SplitString("failstop")
	b := r.SplitString("silent")
	c := r.SplitString("failstop")
	if a.Uint64() == b.Uint64() {
		t.Error("different labels produced same stream start")
	}
	a2 := New(5).SplitString("failstop")
	a2v := a2.Uint64()
	cv := c.Uint64()
	if a2v != cv {
		t.Error("same label not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", u)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64Open()
		if u <= 0 || u >= 1 {
			t.Fatalf("Float64Open out of (0,1): %g", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 2_000_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sumSq += u * u
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 2e-3 {
		t.Errorf("uniform mean = %g, want 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 2e-3 {
		t.Errorf("uniform variance = %g, want %g", variance, 1.0/12)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, buckets = 600000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.02 {
			t.Errorf("bucket %d count %d deviates >2%% from %g", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := New(23)
	rate := 2.5
	const n = 1_000_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1/rate)/(1/rate) > 0.01 {
		t.Errorf("exp mean = %g, want %g", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate))/(1/(rate*rate)) > 0.02 {
		t.Errorf("exp variance = %g, want %g", variance, 1/(rate*rate))
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	New(1).Exp(0)
}

// Memorylessness: P(X > s+t | X > s) = P(X > t). Compare tail frequencies.
func TestExpMemoryless(t *testing.T) {
	r := New(29)
	rate, s, tt := 1.0, 0.7, 1.1
	const n = 1_000_000
	var beyondS, beyondST, beyondT int
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x > s {
			beyondS++
			if x > s+tt {
				beyondST++
			}
		}
		if x > tt {
			beyondT++
		}
	}
	condTail := float64(beyondST) / float64(beyondS)
	tail := float64(beyondT) / float64(n)
	if math.Abs(condTail-tail) > 5e-3 {
		t.Errorf("memorylessness violated: conditional %g vs marginal %g", condTail, tail)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(31)
	const n = 1_000_000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
		sumCube += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 5e-3 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 1e-2 {
		t.Errorf("normal variance = %g", variance)
	}
	if math.Abs(skew) > 2e-2 {
		t.Errorf("normal third moment = %g, want ~0", skew)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(37)
	for _, mean := range []float64{0.5, 3, 12, 30, 80, 400} {
		const n = 300000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(mean))
			if k < 0 {
				t.Fatal("negative Poisson variate")
			}
			sum += k
			sumSq += k * k
		}
		m := sum / n
		v := sumSq/n - m*m
		if math.Abs(m-mean)/mean > 0.02 {
			t.Errorf("Poisson(%g) mean = %g", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.05 {
			t.Errorf("Poisson(%g) variance = %g", mean, v)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Poisson(-1) should panic")
		}
	}()
	New(1).Poisson(-1)
}

// Property: split children with distinct indices never share their first
// few outputs (collision would break run independence).
func TestSplitChildrenDistinctProperty(t *testing.T) {
	parent := New(1234)
	f := func(i, j uint16) bool {
		if i == j {
			return true
		}
		a := parent.Split(uint64(i))
		b := parent.Split(uint64(j))
		return a.Uint64() != b.Uint64() || a.Uint64() != b.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1e-5)
	}
	_ = sink
}

func BenchmarkPoissonLargeMean(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(500)
	}
	_ = sink
}
