package rng

import (
	"math"
	"testing"
)

// moments draws n variates and returns the sample mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestWeibullMoments(t *testing.T) {
	r := New(31)
	shape, scale := 0.7, 1000.0
	g1 := math.Gamma(1 + 1/shape)
	g2 := math.Gamma(1 + 2/shape)
	wantMean := scale * g1
	wantVar := scale * scale * (g2 - g1*g1)
	mean, variance := moments(1_000_000, func() float64 {
		x := r.Weibull(shape, scale)
		if x < 0 {
			t.Fatal("negative Weibull variate")
		}
		return x
	})
	if math.Abs(mean-wantMean)/wantMean > 0.01 {
		t.Errorf("weibull mean = %g, want %g", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Errorf("weibull variance = %g, want %g", variance, wantVar)
	}
}

// A shape-1 Weibull must walk the same sample path as the exponential
// inversion sampler: same single uniform per draw, and Pow(x, 1) = x.
func TestWeibullShape1MatchesExpInv(t *testing.T) {
	r1, r2 := New(57), New(57)
	scale := 3.75e6
	for i := 0; i < 10000; i++ {
		w := r1.Weibull(1, scale)
		e := r2.ExpInv(scale)
		if w != e {
			t.Fatalf("draw %d: Weibull(1, %g) = %x, ExpInv = %x", i, scale, w, e)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(33)
	mu, sigma := 2.0, 0.5
	wantMean := math.Exp(mu + sigma*sigma/2)
	wantVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	mean, variance := moments(1_000_000, func() float64 {
		x := r.LogNormal(mu, sigma)
		if x <= 0 {
			t.Fatal("non-positive LogNormal variate")
		}
		return x
	})
	if math.Abs(mean-wantMean)/wantMean > 0.01 {
		t.Errorf("lognormal mean = %g, want %g", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Errorf("lognormal variance = %g, want %g", variance, wantVar)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5, 30} {
		r := New(35)
		scale := 400.0
		wantMean := shape * scale
		wantVar := shape * scale * scale
		mean, variance := moments(500_000, func() float64 {
			x := r.Gamma(shape, scale)
			if x < 0 {
				t.Fatal("negative Gamma variate")
			}
			return x
		})
		if math.Abs(mean-wantMean)/wantMean > 0.01 {
			t.Errorf("gamma(k=%g) mean = %g, want %g", shape, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.05 {
			t.Errorf("gamma(k=%g) variance = %g, want %g", shape, variance, wantVar)
		}
	}
}

func TestDistPanicsOnBadParameters(t *testing.T) {
	r := New(1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"weibull shape 0", func() { r.Weibull(0, 1) }},
		{"weibull scale -1", func() { r.Weibull(1, -1) }},
		{"weibull shape NaN", func() { r.Weibull(math.NaN(), 1) }},
		{"lognormal sigma 0", func() { r.LogNormal(0, 0) }},
		{"lognormal sigma NaN", func() { r.LogNormal(0, math.NaN()) }},
		{"gamma shape 0", func() { r.Gamma(0, 1) }},
		{"gamma scale 0", func() { r.Gamma(1, 0) }},
		{"gamma scale NaN", func() { r.Gamma(1, math.NaN()) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestDistDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Weibull(0.6, 2) != b.Weibull(0.6, 2) {
			t.Fatal("Weibull not deterministic")
		}
		if a.LogNormal(1, 0.3) != b.LogNormal(1, 0.3) {
			t.Fatal("LogNormal not deterministic")
		}
		if a.Gamma(1.7, 5) != b.Gamma(1.7, 5) {
			t.Fatal("Gamma not deterministic")
		}
	}
}
