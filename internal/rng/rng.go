// Package rng provides the deterministic random-number substrate used by
// the Monte-Carlo simulator and the synthetic trace generator.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// SplitMix64, which gives high-quality 64-bit streams from any seed,
// including 0. Streams can be split deterministically by name or index, so
// every simulation run in a parallel experiment has its own independent,
// reproducible stream: running the same experiment twice — on any machine,
// with any GOMAXPROCS — produces bit-identical results.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances the SplitMix64 state and returns the next value.
// It is used only for seeding and stream derivation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. It is not safe for concurrent use; use
// Split to derive independent per-goroutine streams instead of sharing.
type Rand struct {
	s        [4]uint64
	spare    float64 // cached second variate for Normal
	hasSpare bool
}

// New returns a generator seeded from the given seed. Any seed, including
// zero, yields a well-mixed state.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; SplitMix64 cannot produce
	// four zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives a new independent generator from this one, keyed by index.
// Splitting is deterministic: the same parent seed and index always produce
// the same child stream, and the parent's own sequence is not consumed.
func (r *Rand) Split(index uint64) *Rand {
	// Mix the parent state with the index through SplitMix64. Using all
	// four words makes child streams distinct even for adjacent indices.
	sm := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ bits.RotateLeft64(r.s[2], 27) ^
		bits.RotateLeft64(r.s[3], 41) ^ (index * 0xD1B54A32D192ED03)
	var child Rand
	for i := range child.s {
		child.s[i] = splitmix64(&sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return &child
}

// SplitString derives a child stream keyed by a string label, for named
// experiment sub-streams ("failstop", "silent", …).
func (r *Rand) SplitString(label string) *Rand {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return r.Split(h)
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in the open interval (0, 1),
// suitable for inversion sampling where log(0) must be avoided.
func (r *Rand) Float64Open() float64 {
	for {
		u := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if u > 0 && u < 1 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate),
// via inversion: −log(U)/rate. It panics for non-positive rates.
func (r *Rand) Exp(rate float64) float64 {
	if !(rate > 0) {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// ExpInv returns an exponential variate with mean invRate = 1/rate, for
// hot loops that have hoisted the rate inversion out of the draw:
// −log(U)·invRate costs one multiply where Exp pays a divide. The result
// may differ from Exp(1/invRate) in the last ulp (multiplication by the
// rounded reciprocal is not the same rounding as division), so a caller
// switching between the two changes its sampled stream.
func (r *Rand) ExpInv(invRate float64) float64 {
	return -math.Log(r.Float64Open()) * invRate
}

// Weibull returns a Weibull variate with the given shape k and scale λ,
// via inversion: λ·(−ln U)^{1/k}. Shape 1 degenerates to an exponential
// with mean λ; because Pow(x, 1) = x exactly and the draw consumes the
// same single uniform as Exp, a shape-1 Weibull walks the identical
// sample path as ExpInv(λ) — calibrated callers fall back bit-identically
// whenever the scale is an exact reciprocal of the rate (e.g. dyadic
// rates), and in distribution always. It panics for non-positive
// parameters.
func (r *Rand) Weibull(shape, scale float64) float64 {
	// !(x > 0) also catches NaN, honouring the fail-fast contract.
	if !(shape > 0) || !(scale > 0) {
		panic("rng: Weibull with non-positive shape or scale")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// LogNormal returns a variate whose logarithm is Normal(mu, sigma):
// exp(μ + σ·Z). It panics for non-positive sigma. Note that the draw
// consumes a variable number of uniforms (polar rejection) and caches a
// spare normal, so it is not stream-compatible with Exp.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	if !(sigma > 0) {
		panic("rng: LogNormal with non-positive sigma")
	}
	return math.Exp(mu + sigma*r.Normal())
}

// Gamma returns a Gamma(shape k, scale θ) variate (mean k·θ) using the
// Marsaglia–Tsang squeeze method, with the U^{1/k} boost for shape < 1.
// It panics for non-positive parameters.
func (r *Rand) Gamma(shape, scale float64) float64 {
	if !(shape > 0) || !(scale > 0) {
		panic("rng: Gamma with non-positive shape or scale")
	}
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) · U^{1/k}  (Marsaglia & Tsang, 2000).
		return r.Gamma(shape+1, scale) * math.Pow(r.Float64Open(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Normal returns a standard normal variate using the Marsaglia polar
// method. The spare variate is cached across calls.
func (r *Rand) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means
// it uses Knuth multiplication; for large means it uses the PTRS
// transformed-rejection method of Hörmann (1993).
func (r *Rand) Poisson(mean float64) int64 {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic("rng: Poisson with negative mean")
	case mean == 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

func (r *Rand) poissonKnuth(mean float64) int64 {
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= r.Float64Open()
		if p <= l {
			return k
		}
		k++
	}
}

func (r *Rand) poissonPTRS(mean float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := r.Float64() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int64(k)
		}
	}
}
