package speedup

import (
	"fmt"
	"math"
)

// AmdahlComm is the communication-aware member of the Amdahl family used
// by heterogeneous platform groups: Amdahl's law scaled by a per-processor
// speed factor σ, plus a communication term that grows linearly with the
// allocation,
//
//	H(P) = (α + (1−α)/P)/σ + κ·(P−1).
//
// σ models a group whose processors are faster (σ > 1) or slower (σ < 1)
// than the topology's baseline; κ is the per-processor communication
// coefficient (overhead per unit of sequential work) a group pays when its
// allocation participates in cross-group exchange — the linear-cost term
// of the Amdahl-meets-Divisible-Load analysis. With κ > 0 the overhead has
// an interior minimum: unlike pure Amdahl, throwing processors at the job
// eventually loses to the communication bill.
//
// AmdahlComm{α, 1, 0} evaluates bit-identically to Amdahl{α} (dividing by
// 1.0 and adding κ·(P−1) = +0.0 are exact), but callers that want cache-key
// and kernel identity with today's single-group models should construct a
// plain Amdahl in that case — the hetero compiler does.
//
// Note that the package-level Validate probe rejects κ > 0 profiles by
// design: it enforces a non-decreasing S(P) over six decades, and a
// communication term makes S(P) eventually decrease. That decrease is the
// point. Construct through NewAmdahlComm for parameter validation instead.
type AmdahlComm struct {
	// Alpha is the sequential fraction α ∈ [0, 1].
	Alpha float64
	// Speed is the per-processor speed factor σ > 0 (1 = baseline).
	Speed float64
	// Comm is the communication coefficient κ ≥ 0 per allocated processor.
	Comm float64
}

// NewAmdahlComm validates (α, σ, κ) and returns the profile.
func NewAmdahlComm(alpha, speed, comm float64) (AmdahlComm, error) {
	if !(alpha >= 0 && alpha <= 1) {
		return AmdahlComm{}, fmt.Errorf("speedup: sequential fraction α = %g outside [0,1]", alpha)
	}
	if !(speed > 0) || math.IsInf(speed, 0) {
		return AmdahlComm{}, fmt.Errorf("speedup: speed factor σ = %g must be positive and finite", speed)
	}
	if !(comm >= 0) || math.IsInf(comm, 0) {
		return AmdahlComm{}, fmt.Errorf("speedup: communication coefficient κ = %g must be non-negative and finite", comm)
	}
	return AmdahlComm{Alpha: alpha, Speed: speed, Comm: comm}, nil
}

// Overhead returns H(P) = (α + (1−α)/P)/σ + κ·(P−1).
func (a AmdahlComm) Overhead(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return (a.Alpha+(1-a.Alpha)/p)/a.Speed + a.Comm*(p-1)
}

// Speedup returns 1/H(P).
func (a AmdahlComm) Speedup(p float64) float64 { return 1 / a.Overhead(p) }

// Name implements Profile.
func (a AmdahlComm) Name() string {
	return fmt.Sprintf("amdahl-comm(α=%g,σ=%g,κ=%g)", a.Alpha, a.Speed, a.Comm)
}

// OptimalAllocation returns the error-free optimal allocation
// P† = sqrt((1−α)/(σ·κ)) that balances the parallel gain against the
// communication bill (+Inf when κ = 0: the classical unbounded regime).
// The error-aware optimizer starts near it but lands elsewhere — failures
// push the optimum down.
func (a AmdahlComm) OptimalAllocation() float64 {
	if a.Comm == 0 {
		return math.Inf(1)
	}
	return math.Sqrt((1 - a.Alpha) / (a.Speed * a.Comm))
}
