package speedup

import (
	"math"
	"testing"
)

func TestAmdahlCommDegeneratesToAmdahl(t *testing.T) {
	// σ = 1, κ = 0 must evaluate bit-identically to plain Amdahl: the
	// hetero degeneracy chain depends on it.
	am, err := NewAmdahl(0.1)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAmdahlComm(0.1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1, 2, 7, 64, 512, 1e6, 1e12} {
		if ac.Overhead(p) != am.Overhead(p) {
			t.Errorf("H(%g): comm %v != amdahl %v", p, ac.Overhead(p), am.Overhead(p))
		}
		if ac.Speedup(p) != am.Speedup(p) {
			t.Errorf("S(%g): comm %v != amdahl %v", p, ac.Speedup(p), am.Speedup(p))
		}
	}
}

func TestAmdahlCommShape(t *testing.T) {
	ac, err := NewAmdahlComm(0.05, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead at the error-free optimal allocation beats both sides:
	// the comm term gives an interior minimum.
	pOpt := ac.OptimalAllocation()
	if want := math.Sqrt((1 - 0.05) / (4 * 1e-6)); pOpt != want {
		t.Errorf("OptimalAllocation = %g, want %g", pOpt, want)
	}
	hOpt := ac.Overhead(pOpt)
	if ac.Overhead(pOpt/10) <= hOpt || ac.Overhead(pOpt*10) <= hOpt {
		t.Errorf("H not interior-minimal at P† = %g: H(P†)=%g H(P†/10)=%g H(10P†)=%g",
			pOpt, hOpt, ac.Overhead(pOpt/10), ac.Overhead(pOpt*10))
	}
	// A speed factor divides the Amdahl part only.
	slow, _ := NewAmdahlComm(0.05, 1, 0)
	fast, _ := NewAmdahlComm(0.05, 4, 0)
	if got := fast.Overhead(64); got != slow.Overhead(64)/4 {
		t.Errorf("σ=4 overhead %g, want %g", got, slow.Overhead(64)/4)
	}
	// P < 1 clamps.
	if ac.Overhead(0.5) != ac.Overhead(1) {
		t.Error("P < 1 not clamped")
	}
	// κ = 0 keeps the classical unbounded regime.
	if !math.IsInf(fast.OptimalAllocation(), 1) {
		t.Error("κ = 0 should give an infinite error-free optimal allocation")
	}
}

func TestNewAmdahlCommRejectsBadParameters(t *testing.T) {
	nan := math.NaN()
	cases := []struct{ alpha, speed, comm float64 }{
		{-0.1, 1, 0}, {1.1, 1, 0}, {nan, 1, 0},
		{0.1, 0, 0}, {0.1, -1, 0}, {0.1, nan, 0}, {0.1, math.Inf(1), 0},
		{0.1, 1, -1e-9}, {0.1, 1, nan}, {0.1, 1, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := NewAmdahlComm(c.alpha, c.speed, c.comm); err == nil {
			t.Errorf("NewAmdahlComm(%g, %g, %g) accepted", c.alpha, c.speed, c.comm)
		}
	}
}
