package speedup

import (
	"math"
	"testing"
)

func TestNewGustafsonValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.5, 2, math.NaN()} {
		if _, err := NewGustafson(bad); err == nil {
			t.Errorf("NewGustafson(%g) accepted", bad)
		}
	}
	for _, ok := range []float64{0, 0.1, 0.5, 1} {
		g, err := NewGustafson(ok)
		if err != nil {
			t.Errorf("NewGustafson(%g) rejected: %v", ok, err)
			continue
		}
		if err := Validate(g); err != nil {
			t.Errorf("valid Gustafson fails Validate: %v", err)
		}
	}
	// The bug the constructor guards: α = 2 is a decreasing profile that
	// Validate also catches.
	if err := Validate(Gustafson{Alpha: 2}); err == nil {
		t.Error("Validate missed decreasing Gustafson{Alpha: 2}")
	}
}

func TestNewPowerLawValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.1, math.NaN()} {
		if _, err := NewPowerLaw(bad); err == nil {
			t.Errorf("NewPowerLaw(%g) accepted", bad)
		}
	}
	for _, ok := range []float64{0.1, 0.7, 1} {
		w, err := NewPowerLaw(ok)
		if err != nil {
			t.Errorf("NewPowerLaw(%g) rejected: %v", ok, err)
			continue
		}
		if err := Validate(w); err != nil {
			t.Errorf("valid PowerLaw fails Validate: %v", err)
		}
	}
	// γ = 0 is the silent flat profile: S(P) = 1 for every P. Validate
	// accepts it as non-decreasing, which is exactly why the constructor
	// must reject it.
	flat := PowerLaw{Gamma: 0}
	if s := flat.Speedup(1024); s != 1 {
		t.Fatalf("flat profile S(1024) = %g", s)
	}
}
