package speedup

import (
	"math"
	"testing"
	"testing/quick"

	"amdahlyd/internal/xmath"
)

func TestAmdahlKnownValues(t *testing.T) {
	a := Amdahl{Alpha: 0.1}
	// S(1) = 1, S(∞) → 10.
	if !xmath.EqualWithin(a.Speedup(1), 1, 1e-12, 0) {
		t.Errorf("S(1) = %g", a.Speedup(1))
	}
	if !xmath.EqualWithin(a.Speedup(1e12), 10, 1e-6, 0) {
		t.Errorf("S(1e12) = %g, want ≈10", a.Speedup(1e12))
	}
	if a.MaxSpeedup() != 10 {
		t.Errorf("MaxSpeedup = %g", a.MaxSpeedup())
	}
	// H(P) = α + (1−α)/P: H(9) = 0.2 for α = 0.1.
	if !xmath.EqualWithin(a.Overhead(9), 0.2, 1e-12, 0) {
		t.Errorf("H(9) = %g, want 0.2", a.Overhead(9))
	}
}

func TestAmdahlAlphaZeroIsLinear(t *testing.T) {
	a := Amdahl{Alpha: 0}
	pp := PerfectlyParallel{}
	for _, p := range []float64{1, 7, 1000, 1e9} {
		if !xmath.EqualWithin(a.Speedup(p), pp.Speedup(p), 1e-12, 0) {
			t.Errorf("α=0 Amdahl differs from PerfectlyParallel at P=%g", p)
		}
	}
	if !math.IsInf(a.MaxSpeedup(), 1) {
		t.Error("α=0 MaxSpeedup should be +Inf")
	}
}

func TestAmdahlAlphaOneIsSequential(t *testing.T) {
	a := Amdahl{Alpha: 1}
	for _, p := range []float64{1, 100, 1e6} {
		if !xmath.EqualWithin(a.Speedup(p), 1, 1e-12, 0) {
			t.Errorf("α=1 should never speed up, got S(%g)=%g", p, a.Speedup(p))
		}
	}
}

func TestNewAmdahlValidation(t *testing.T) {
	if _, err := NewAmdahl(0.3); err != nil {
		t.Errorf("valid α rejected: %v", err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewAmdahl(bad); err == nil {
			t.Errorf("α = %g accepted", bad)
		}
	}
}

func TestSubUnitProcessorsClampedToOne(t *testing.T) {
	profiles := []Profile{Amdahl{0.2}, PerfectlyParallel{}, Gustafson{0.2}, PowerLaw{0.8}}
	for _, pr := range profiles {
		if pr.Speedup(0.5) != pr.Speedup(1) {
			t.Errorf("%s: P<1 not clamped", pr.Name())
		}
	}
}

// Property: speedup is non-decreasing in P and overhead is its reciprocal,
// for every profile.
func TestProfileInvariants(t *testing.T) {
	profiles := []Profile{
		Amdahl{0}, Amdahl{0.001}, Amdahl{0.1}, Amdahl{0.9},
		PerfectlyParallel{},
		Gustafson{0.1}, Gustafson{0.5},
		PowerLaw{0.5}, PowerLaw{0.9}, PowerLaw{1},
	}
	f := func(rawP1, rawP2 uint32) bool {
		p1 := 1 + float64(rawP1%1000000)
		p2 := p1 + float64(rawP2%1000000)
		for _, pr := range profiles {
			s1, s2 := pr.Speedup(p1), pr.Speedup(p2)
			if s2+1e-9 < s1 {
				return false
			}
			if math.Abs(s1*pr.Overhead(p1)-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateAcceptsAllBuiltins(t *testing.T) {
	for _, pr := range []Profile{
		Amdahl{0.1}, PerfectlyParallel{}, Gustafson{0.3}, PowerLaw{0.7},
	} {
		if err := Validate(pr); err != nil {
			t.Errorf("Validate(%s): %v", pr.Name(), err)
		}
	}
}

type brokenProfile struct{}

func (brokenProfile) Speedup(p float64) float64  { return -p }
func (brokenProfile) Overhead(p float64) float64 { return -1 / p }
func (brokenProfile) Name() string               { return "broken" }

type inconsistentProfile struct{}

func (inconsistentProfile) Speedup(p float64) float64  { return p }
func (inconsistentProfile) Overhead(p float64) float64 { return 1 } // ≠ 1/S
func (inconsistentProfile) Name() string               { return "inconsistent" }

func TestValidateRejectsBroken(t *testing.T) {
	if err := Validate(brokenProfile{}); err == nil {
		t.Error("negative speedup accepted")
	}
	if err := Validate(inconsistentProfile{}); err == nil {
		t.Error("H ≠ 1/S accepted")
	}
}

func TestGustafsonLinearInP(t *testing.T) {
	g := Gustafson{Alpha: 0.25}
	if !xmath.EqualWithin(g.Speedup(100), 0.25+0.75*100, 1e-12, 0) {
		t.Errorf("Gustafson S(100) = %g", g.Speedup(100))
	}
}

func TestPowerLawGammaOneIsLinear(t *testing.T) {
	w := PowerLaw{Gamma: 1}
	for _, p := range []float64{1, 10, 1e6} {
		if !xmath.EqualWithin(w.Speedup(p), p, 1e-12, 0) {
			t.Errorf("γ=1 power law S(%g) = %g", p, w.Speedup(p))
		}
	}
}

func TestNamesAreDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, pr := range []Profile{
		Amdahl{0.1}, Amdahl{0.2}, PerfectlyParallel{}, Gustafson{0.1}, PowerLaw{0.5},
	} {
		if names[pr.Name()] {
			t.Errorf("duplicate profile name %q", pr.Name())
		}
		names[pr.Name()] = true
	}
}
