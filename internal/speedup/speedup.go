// Package speedup models application speedup profiles S(P) and their
// execution overheads H(P) = 1/S(P).
//
// The paper's analysis (Eq. (1)) is for Amdahl's law with sequential
// fraction α: S(P) = 1/(α + (1−α)/P). The perfectly parallel profile
// (α = 0, Section III-D.4) is provided as a distinct type, and Gustafson
// and power-law profiles are included for the "different speedup profiles"
// direction the paper lists as future work (they are exercised by the
// numerical optimizer, not by the closed-form theorems).
//
// P is a float64 everywhere: the optimization problem treats the processor
// count as continuous, exactly as the paper's numerical solution does, and
// integer refinement happens in internal/optimize.
package speedup

import (
	"fmt"
	"math"
)

// Profile describes a speedup model. Implementations must satisfy
// S(P) > 0 for P >= 1 and H(P) = 1/S(P).
type Profile interface {
	// Speedup returns S(P), the factor by which P processors divide the
	// sequential execution time, ignoring failures.
	Speedup(p float64) float64
	// Overhead returns H(P) = 1/S(P), the error-free execution overhead:
	// the time per unit of sequential work.
	Overhead(p float64) float64
	// Name identifies the profile in reports.
	Name() string
}

// Amdahl is the paper's speedup profile (Eq. (1)): a fraction Alpha of the
// work is inherently sequential, the rest is perfectly parallel.
type Amdahl struct {
	// Alpha is the sequential fraction α ∈ [0, 1]. Alpha = 0 degenerates
	// to the perfectly parallel profile; prefer PerfectlyParallel for that
	// case so the case-4 analysis is dispatched correctly.
	Alpha float64
}

// NewAmdahl validates α and returns the profile.
func NewAmdahl(alpha float64) (Amdahl, error) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return Amdahl{}, fmt.Errorf("speedup: sequential fraction α = %g outside [0,1]", alpha)
	}
	return Amdahl{Alpha: alpha}, nil
}

// Speedup returns 1/(α + (1−α)/P).
func (a Amdahl) Speedup(p float64) float64 { return 1 / a.Overhead(p) }

// Overhead returns H(P) = α + (1−α)/P.
func (a Amdahl) Overhead(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return a.Alpha + (1-a.Alpha)/p
}

// Name implements Profile.
func (a Amdahl) Name() string { return fmt.Sprintf("amdahl(α=%g)", a.Alpha) }

// MaxSpeedup returns the asymptotic speedup bound 1/α (infinite for α = 0).
func (a Amdahl) MaxSpeedup() float64 {
	if a.Alpha == 0 {
		return math.Inf(1)
	}
	return 1 / a.Alpha
}

// PerfectlyParallel is the H(P) = 1/P profile of Section III-D.4.
type PerfectlyParallel struct{}

// Speedup returns P.
func (PerfectlyParallel) Speedup(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return p
}

// Overhead returns 1/P.
func (PerfectlyParallel) Overhead(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return 1 / p
}

// Name implements Profile.
func (PerfectlyParallel) Name() string { return "perfectly-parallel" }

// Gustafson models scaled speedup S(P) = α + (1−α)·P (weak scaling):
// the parallel part grows with the machine. Extension beyond the paper.
// Construct via NewGustafson: α outside [0, 1] silently yields a
// decreasing (α > 1) or super-linear (α < 0) S(P).
type Gustafson struct {
	Alpha float64 // sequential fraction of the scaled workload
}

// NewGustafson validates α ∈ [0, 1] and returns the profile.
func NewGustafson(alpha float64) (Gustafson, error) {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		return Gustafson{}, fmt.Errorf("speedup: gustafson sequential fraction α = %g outside [0,1]", alpha)
	}
	return Gustafson{Alpha: alpha}, nil
}

// Speedup returns α + (1−α)P.
func (g Gustafson) Speedup(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return g.Alpha + (1-g.Alpha)*p
}

// Overhead returns 1/S(P).
func (g Gustafson) Overhead(p float64) float64 { return 1 / g.Speedup(p) }

// Name implements Profile.
func (g Gustafson) Name() string { return fmt.Sprintf("gustafson(α=%g)", g.Alpha) }

// PowerLaw models sublinear scaling S(P) = P^Gamma with 0 < Gamma <= 1,
// a common empirical fit for communication-bound codes. Extension beyond
// the paper. Construct via NewPowerLaw: Gamma = 0 silently yields a flat
// S(P) = 1 (processors do nothing) and Gamma > 1 super-linear scaling.
type PowerLaw struct {
	Gamma float64
}

// NewPowerLaw validates γ ∈ (0, 1] and returns the profile.
func NewPowerLaw(gamma float64) (PowerLaw, error) {
	if !(gamma > 0) || gamma > 1 || math.IsNaN(gamma) {
		return PowerLaw{}, fmt.Errorf("speedup: power-law exponent γ = %g outside (0,1]", gamma)
	}
	return PowerLaw{Gamma: gamma}, nil
}

// Speedup returns P^γ.
func (w PowerLaw) Speedup(p float64) float64 {
	if p < 1 {
		p = 1
	}
	return math.Pow(p, w.Gamma)
}

// Overhead returns P^−γ.
func (w PowerLaw) Overhead(p float64) float64 { return 1 / w.Speedup(p) }

// Name implements Profile.
func (w PowerLaw) Name() string { return fmt.Sprintf("powerlaw(γ=%g)", w.Gamma) }

// Validate checks basic sanity of any profile over a probe range and
// returns a descriptive error for broken implementations. It is used by
// tests and by the CLI when loading user-defined profiles.
func Validate(pr Profile) error {
	prev := 0.0
	for _, p := range []float64{1, 2, 8, 64, 1024, 1 << 20} {
		s := pr.Speedup(p)
		h := pr.Overhead(p)
		if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
			return fmt.Errorf("speedup: %s gives S(%g) = %g", pr.Name(), p, s)
		}
		if math.Abs(s*h-1) > 1e-9 {
			return fmt.Errorf("speedup: %s has H(%g) ≠ 1/S(%g)", pr.Name(), p, p)
		}
		if !(s+1e-12 >= prev) {
			return fmt.Errorf("speedup: %s is decreasing at P = %g", pr.Name(), p)
		}
		prev = s
	}
	if s1 := pr.Speedup(1); math.Abs(s1-1) > 0.5 {
		return fmt.Errorf("speedup: %s has S(1) = %g, expected ≈1", pr.Name(), s1)
	}
	return nil
}
