package failures

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

func TestKindString(t *testing.T) {
	if FailStop.String() != "fail-stop" || Silent.String() != "silent" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind String wrong")
	}
}

func TestNewSourceValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewSource(-1, r); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewSource(math.Inf(1), r); err == nil {
		t.Error("infinite rate accepted")
	}
	if _, err := NewSource(1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	s, err := NewSource(2.5, r)
	if err != nil || s.Rate() != 2.5 {
		t.Errorf("valid source rejected: %v", err)
	}
}

func TestZeroRateNeverArrives(t *testing.T) {
	s, _ := NewSource(0, rng.New(1))
	if !math.IsInf(s.Next(), 1) {
		t.Error("zero-rate Next should be +Inf")
	}
	if _, struck := s.FirstInWindow(1e12); struck {
		t.Error("zero-rate source struck")
	}
}

func TestSourceInterArrivalsAreExponential(t *testing.T) {
	rate := 1e-5
	s, _ := NewSource(rate, rng.New(42))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = s.Next()
	}
	res, err := stats.KSTestExponential(xs, rate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("inter-arrivals rejected as Exp(%g): D=%g p=%g", rate, res.Statistic, res.PValue)
	}
}

func TestFirstInWindowProbability(t *testing.T) {
	// P(strike in window) = 1 − e^{−λW}.
	rate, window := 1e-4, 5000.0
	s, _ := NewSource(rate, rng.New(7))
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if off, struck := s.FirstInWindow(window); struck {
			hits++
			if off < 0 || off >= window {
				t.Fatalf("offset %g outside window", off)
			}
		}
	}
	want := -math.Expm1(-rate * window)
	got := float64(hits) / n
	if math.Abs(got-want) > 0.005 {
		t.Errorf("strike probability = %g, want %g", got, want)
	}
}

func TestFirstInWindowConditionalDensity(t *testing.T) {
	// Conditioned on striking, the offset follows the truncated
	// exponential; its mean is E_lost(W) = 1/λ − W/(e^{λW}−1).
	rate, window := 2e-4, 8000.0
	s, _ := NewSource(rate, rng.New(9))
	var acc stats.Welford
	for i := 0; i < 400000; i++ {
		if off, struck := s.FirstInWindow(window); struck {
			acc.Add(off)
		}
	}
	want := 1/rate - window/math.Expm1(rate*window)
	if math.Abs(acc.Mean()-want)/want > 0.01 {
		t.Errorf("conditional mean offset = %g, want %g", acc.Mean(), want)
	}
}

func TestNewEnvironment(t *testing.T) {
	r := rng.New(3)
	env, err := NewEnvironment(1.69e-8, 0.2188, 0.7812, 512, r)
	if err != nil {
		t.Fatal(err)
	}
	wantF := 0.2188 * 1.69e-8 * 512
	wantS := 0.7812 * 1.69e-8 * 512
	if math.Abs(env.FailStop().Rate()-wantF) > 1e-18 {
		t.Errorf("fail-stop rate = %g, want %g", env.FailStop().Rate(), wantF)
	}
	if math.Abs(env.Silent().Rate()-wantS) > 1e-18 {
		t.Errorf("silent rate = %g, want %g", env.Silent().Rate(), wantS)
	}
}

func TestNewEnvironmentValidation(t *testing.T) {
	r := rng.New(3)
	if _, err := NewEnvironment(-1, 0.5, 0.5, 10, r); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := NewEnvironment(1e-8, 0.5, 0.2, 10, r); err == nil {
		t.Error("f+s != 1 accepted")
	}
	if _, err := NewEnvironment(1e-8, 0.5, 0.5, 0, r); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := NewEnvironment(1e-8, 0.5, 0.5, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestEnvironmentStreamsIndependent(t *testing.T) {
	// Identical parent seeds must give identical environments; the two
	// sub-streams must differ from each other.
	e1, _ := NewEnvironment(1e-6, 0.5, 0.5, 100, rng.New(5))
	e2, _ := NewEnvironment(1e-6, 0.5, 0.5, 100, rng.New(5))
	if e1.FailStop().Next() != e2.FailStop().Next() {
		t.Error("environment not deterministic")
	}
	e3, _ := NewEnvironment(1e-6, 0.5, 0.5, 100, rng.New(6))
	a := e3.FailStop().Next()
	b := e3.Silent().Next()
	if a == b {
		t.Error("fail-stop and silent streams identical")
	}
}

func TestGenerateTraceSuperposition(t *testing.T) {
	// The merged stream of P independent Exp(λ_ind) processes must be
	// Exp(P·λ_ind): Proposition 1.2 of the fault-tolerance book [13].
	lambda, procs := 1e-6, 64
	horizon := 2e8 // expect ~12800 events
	tr, err := GenerateTrace(lambda, 0.3, procs, horizon, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	inter := tr.InterArrivals()
	if len(inter) < 5000 {
		t.Fatalf("trace too sparse for the test: %d events", len(inter))
	}
	res, err := stats.KSTestExponential(inter, lambda*float64(procs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("superposed stream rejected as Exp(Pλ): D=%g p=%g", res.Statistic, res.PValue)
	}
}

func TestGenerateTraceKindFractions(t *testing.T) {
	f := 0.2188
	tr, err := GenerateTrace(1e-6, f, 32, 5e8, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	total := len(tr.Events)
	fs := tr.Count(FailStop)
	if total < 1000 {
		t.Fatalf("trace too sparse: %d", total)
	}
	got := float64(fs) / float64(total)
	if math.Abs(got-f) > 0.02 {
		t.Errorf("fail-stop fraction = %g, want %g", got, f)
	}
	if fs+tr.Count(Silent) != total {
		t.Error("kinds do not partition the trace")
	}
}

func TestGenerateTraceOrderingAndHorizon(t *testing.T) {
	tr, err := GenerateTrace(1e-5, 0.5, 16, 1e7, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(tr.Events, func(i, j int) bool {
		return tr.Events[i].Time < tr.Events[j].Time
	}) {
		t.Error("trace not time-ordered")
	}
	for _, e := range tr.Events {
		if e.Time >= tr.Horizon {
			t.Errorf("event at %g beyond horizon %g", e.Time, tr.Horizon)
		}
		if e.Proc < 0 || e.Proc >= 16 {
			t.Errorf("event on invalid processor %d", e.Proc)
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := GenerateTrace(-1, 0.5, 4, 100, r); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := GenerateTrace(1e-6, 1.5, 4, 100, r); err == nil {
		t.Error("f > 1 accepted")
	}
	if _, err := GenerateTrace(1e-6, 0.5, 0, 100, r); err == nil {
		t.Error("0 processors accepted")
	}
	if _, err := GenerateTrace(1e-6, 0.5, 4, 0, r); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := GenerateTrace(1e-6, 0.5, 4, 100, nil); err == nil {
		t.Error("nil rng accepted")
	}
	// Zero rate: valid, empty trace.
	tr, err := GenerateTrace(0, 0.5, 4, 100, r)
	if err != nil || len(tr.Events) != 0 {
		t.Error("zero-rate trace should be empty and valid")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(1e-5, 0.4, 8, 1e6, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != back.Events[i] {
			t.Fatalf("event %d changed: %+v vs %+v", i, tr.Events[i], back.Events[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"time,kind,proc\nnot-a-number,silent,0\n",
		"time,kind,proc\n1.5,meteor,0\n",
		"time,kind,proc\n1.5,silent,zero\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}

func TestReplay(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 1, Kind: Silent, Proc: 0},
		{Time: 2, Kind: FailStop, Proc: 1},
		{Time: 5, Kind: Silent, Proc: 2},
	}, Horizon: 10}
	rp := NewReplay(tr)
	if e, ok := rp.Peek(); !ok || e.Time != 1 {
		t.Error("Peek failed")
	}
	if e, ok := rp.Next(); !ok || e.Time != 1 {
		t.Error("first Next wrong")
	}
	rp.SkipTo(5)
	if e, ok := rp.Next(); !ok || e.Time != 5 {
		t.Errorf("SkipTo landed wrong: %+v", e)
	}
	if _, ok := rp.Next(); ok {
		t.Error("exhausted replay returned an event")
	}
	rp.Rewind()
	if e, ok := rp.Next(); !ok || e.Time != 1 {
		t.Error("Rewind failed")
	}
}

func TestInterArrivalsEmpty(t *testing.T) {
	tr := &Trace{}
	if tr.InterArrivals() != nil {
		t.Error("empty trace should have nil inter-arrivals")
	}
}

// The number of events in fixed windows of a Poisson process of rate
// P·λ_ind must be Poisson(P·λ_ind·W): chi-square goodness of fit on the
// generated trace, the distributional companion of the KS test above.
func TestTraceWindowCountsArePoisson(t *testing.T) {
	lambda, procs := 1e-6, 32
	horizon := 4e8
	tr, err := GenerateTrace(lambda, 0.3, procs, horizon, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	window := 2e6 // expect mean 64 events... use larger windows: mean = P·λ·W = 64
	nWindows := int(horizon / window)
	counts := make([]int64, nWindows)
	for _, e := range tr.Events {
		w := int(e.Time / window)
		if w >= nWindows {
			w = nWindows - 1
		}
		counts[w]++
	}
	mean := lambda * float64(procs) * window
	res, err := stats.ChiSquarePoisson(counts, mean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("window counts rejected as Poisson(%g): χ²=%g df=%d p=%g",
			mean, res.Statistic, res.DF, res.PValue)
	}
}
