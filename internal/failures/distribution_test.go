package failures

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

func TestDistributionCalibration(t *testing.T) {
	mtbf := 5.9171e7 // Hera's 1/λ_ind
	w, err := NewWeibullMTBF(0.7, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLogNormalMTBF(1.2, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGammaMTBF(0.5, mtbf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExponential(1 / mtbf)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Distribution{w, l, g, e} {
		if math.Abs(d.Mean()-mtbf)/mtbf > 1e-12 {
			t.Errorf("%s mean = %g, want MTBF %g", d.Name(), d.Mean(), mtbf)
		}
		// The CDF must be a valid distribution function over a broad range.
		prev := 0.0
		for _, x := range []float64{0, 1, mtbf / 100, mtbf, 10 * mtbf, 1e4 * mtbf} {
			c := d.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				t.Errorf("%s CDF(%g) = %g not monotone in [0,1]", d.Name(), x, c)
			}
			prev = c
		}
		if c := d.CDF(1e6 * mtbf); c < 0.999 {
			t.Errorf("%s CDF far right = %g, want ≈1", d.Name(), c)
		}
	}
}

func TestDistributionConstructorValidation(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("zero-rate exponential accepted")
	}
	if _, err := NewWeibullMTBF(0, 100); err == nil {
		t.Error("zero-shape weibull accepted")
	}
	if _, err := NewWeibullMTBF(0.7, -1); err == nil {
		t.Error("negative-MTBF weibull accepted")
	}
	if _, err := NewLogNormalMTBF(0, 100); err == nil {
		t.Error("zero-sigma lognormal accepted")
	}
	if _, err := NewGammaMTBF(math.Inf(1), 100); err == nil {
		t.Error("infinite-shape gamma accepted")
	}
	// Degenerate shapes must fail at construction, not stall generation
	// or livelock the simulator with underflowing samples: the
	// calibrated constructors bound their shape parameters.
	for _, bad := range []float64{0.005, 0.09, 11, 1e300, math.NaN()} {
		if _, err := NewWeibullMTBF(bad, 1e6); err == nil {
			t.Errorf("weibull shape %g outside [0.1,10] accepted", bad)
		}
	}
	for _, bad := range []float64{4.1, 50, 1e200, math.NaN()} {
		if _, err := NewLogNormalMTBF(bad, 1e6); err == nil {
			t.Errorf("lognormal sigma %g outside (0,4] accepted", bad)
		}
	}
	for _, bad := range []float64{0.05, 1001, 1e308, math.NaN()} {
		if _, err := NewGammaMTBF(bad, 1e6); err == nil {
			t.Errorf("gamma shape %g outside [0.1,1000] accepted", bad)
		}
	}
}

// A degenerate law slipped past the constructors (direct struct use)
// must be caught by the generation-loop guards rather than hanging.
func TestGenerateTraceDistStallGuard(t *testing.T) {
	// σ = 50 ⇒ μ ≈ ln(1e6) − 1250: every sample underflows to 0 and the
	// trace clock never advances.
	frozen := LogNormal{Mu: math.Log(1e6) - 50*50/2, Sigma: 50}
	if _, err := GenerateTraceDist(frozen, 0.3, 2, 1e6, rng.New(3)); err == nil {
		t.Error("underflowing law generated a trace instead of erroring")
	}
}

func TestParseDistribution(t *testing.T) {
	rate := 1.69e-8
	for _, name := range []string{"exponential", "exp", ""} {
		d, err := ParseDistribution(name, 0.7, rate)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := d.(Exponential)
		if !ok || e.Rate != rate {
			// The rate must pass through verbatim, not via 1/(1/rate).
			t.Errorf("ParseDistribution(%q) = %#v, want Exponential{%g}", name, d, rate)
		}
	}
	for _, name := range []string{"weibull", "lognormal", "gamma"} {
		d, err := ParseDistribution(name, 0.7, rate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.Mean()-1/rate)*rate > 1e-12 {
			t.Errorf("%s not calibrated: mean %g, want %g", name, d.Mean(), 1/rate)
		}
	}
	if _, err := ParseDistribution("cauchy", 1, rate); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := ParseDistribution("weibull", 0.7, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := ParseDistribution("weibull", -1, rate); err == nil {
		t.Error("negative shape accepted")
	}
}

// Per-processor inter-arrivals of a renewal trace must follow the
// generating law: KS goodness-of-fit for each new distribution.
func TestTraceDistInterArrivalsKS(t *testing.T) {
	lambda := 1e-6
	mtbf := 1 / lambda
	mk := func(d Distribution, err error) Distribution {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dists := []Distribution{
		mk(NewWeibullMTBF(0.7, mtbf)),
		mk(NewWeibullMTBF(0.5, mtbf)),
		mk(NewLogNormalMTBF(1.0, mtbf)),
		mk(NewGammaMTBF(0.5, mtbf)),
		mk(NewGammaMTBF(2.0, mtbf)),
	}
	for i, d := range dists {
		tr, err := GenerateTraceDist(d, 0.3, 32, 2.5e8, rng.New(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		inter := tr.ProcInterArrivals()
		if len(inter) < 3000 {
			t.Fatalf("%s: trace too sparse for KS: %d gaps", d.Name(), len(inter))
		}
		res, err := stats.KSTest(inter, d.CDF)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.01) {
			t.Errorf("%s: per-proc inter-arrivals rejected: D=%g p=%g n=%d",
				d.Name(), res.Statistic, res.PValue, res.N)
		}
	}
}

// The superposition property is exponential-only: a Weibull k=0.5 merged
// stream must NOT look like Exp(P·λ) — the discriminating power of the
// KS oracle, and the reason the robustness study exists at all.
func TestWeibullMergedStreamIsNotExponential(t *testing.T) {
	lambda := 1e-6
	d, err := NewWeibullMTBF(0.5, 1/lambda)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTraceDist(d, 0.3, 64, 2e8, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	inter := tr.InterArrivals()
	if len(inter) < 5000 {
		t.Fatalf("trace too sparse: %d", len(inter))
	}
	res, err := stats.KSTestExponential(inter, lambda*64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("bursty Weibull merged stream passed as exponential: D=%g p=%g",
			res.Statistic, res.PValue)
	}
}

// Weibull with shape 1 must reproduce the exponential trace
// bit-identically when the calibrated scale is an exact reciprocal of
// the rate (dyadic rates): same uniforms, exact power-of-two scaling.
func TestWeibullShape1TraceBitIdentical(t *testing.T) {
	lambda := math.Exp2(-20) // dyadic: 1/λ and λ·x round exactly
	w, err := NewWeibullMTBF(1, 1/lambda)
	if err != nil {
		t.Fatal(err)
	}
	if w.Scale != 1/lambda {
		t.Fatalf("shape-1 calibration: scale %g, want %g", w.Scale, 1/lambda)
	}
	exp, err := GenerateTrace(lambda, 0.3, 16, 3e7, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	wei, err := GenerateTraceDist(w, 0.3, 16, 3e7, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Events) == 0 {
		t.Fatal("empty exponential trace")
	}
	if len(exp.Events) != len(wei.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(exp.Events), len(wei.Events))
	}
	for i := range exp.Events {
		if exp.Events[i] != wei.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, exp.Events[i], wei.Events[i])
		}
	}
	if exp.Horizon != wei.Horizon {
		t.Error("horizons differ")
	}
}

// For non-dyadic rates the shape-1 path may differ in the last ulp per
// draw; it must still be statistically exponential.
func TestWeibullShape1TraceStatisticallyExponential(t *testing.T) {
	lambda := 1e-6
	w, err := NewWeibullMTBF(1, 1/lambda)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTraceDist(w, 0.3, 64, 2e8, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	inter := tr.InterArrivals()
	res, err := stats.KSTestExponential(inter, lambda*64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("shape-1 Weibull merged stream rejected as Exp(Pλ): D=%g p=%g",
			res.Statistic, res.PValue)
	}
}

// Golden pin of the exponential generator: these fingerprints were
// captured from the pre-Distribution GenerateTrace; the refactored path
// must reproduce them bit-identically for the same seed.
func TestGenerateTraceGoldenPinned(t *testing.T) {
	tr, err := GenerateTrace(1e-6, 0.3, 64, 2e8, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 12673 {
		t.Fatalf("event count = %d, want 12673", len(tr.Events))
	}
	if fs := tr.Count(FailStop); fs != 3775 {
		t.Errorf("fail-stop count = %d, want 3775", fs)
	}
	var sum float64
	for _, e := range tr.Events {
		sum += e.Time * float64(1+int(e.Kind)) * float64(1+e.Proc)
	}
	if got := math.Float64bits(sum); got != math.Float64bits(0x1.0149692cfc5c4p+46) {
		t.Errorf("event checksum = %x, want %x", sum, 0x1.0149692cfc5c4p+46)
	}
	if got := math.Float64bits(tr.Events[0].Time); got != math.Float64bits(0x1.780da56500a67p+14) {
		t.Errorf("first event time = %x, want %x", tr.Events[0].Time, 0x1.780da56500a67p+14)
	}
	if p := tr.Events[len(tr.Events)-1].Proc; p != 40 {
		t.Errorf("last event proc = %d, want 40", p)
	}
}

// Regression test for the unstable-sort bug: equal-time events from
// different processors must land in (Time, Proc) order regardless of
// input permutation, or replay is platform-dependent.
func TestSortEventsDeterministicTieBreak(t *testing.T) {
	events := []Event{
		{Time: 7, Kind: Silent, Proc: 3},
		{Time: 5, Kind: FailStop, Proc: 9},
		{Time: 5, Kind: Silent, Proc: 2},
		{Time: 5, Kind: Silent, Proc: 7},
		{Time: 1, Kind: FailStop, Proc: 4},
		{Time: 5, Kind: FailStop, Proc: 0},
	}
	want := []Event{
		{Time: 1, Kind: FailStop, Proc: 4},
		{Time: 5, Kind: FailStop, Proc: 0},
		{Time: 5, Kind: Silent, Proc: 2},
		{Time: 5, Kind: Silent, Proc: 7},
		{Time: 5, Kind: FailStop, Proc: 9},
		{Time: 7, Kind: Silent, Proc: 3},
	}
	// Every rotation of the input must sort to the same order.
	for rot := 0; rot < len(events); rot++ {
		in := append(append([]Event(nil), events[rot:]...), events[:rot]...)
		SortEvents(in)
		for i := range want {
			if in[i] != want[i] {
				t.Fatalf("rotation %d: position %d = %+v, want %+v", rot, i, in[i], want[i])
			}
		}
	}
}

func TestTraceCSVPersistsHorizon(t *testing.T) {
	tr, err := GenerateTrace(1e-5, 0.4, 8, 1e6, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# horizon=") {
		t.Fatalf("missing horizon header:\n%.80s", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Horizon != tr.Horizon {
		t.Errorf("horizon round trip: %g, want %g", back.Horizon, tr.Horizon)
	}
}

func TestReadCSVBackwardCompatWithoutHorizon(t *testing.T) {
	// A legacy file (no comment line) restores the horizon as the last
	// event time.
	in := "time,kind,proc\n100,silent,0\n250,fail-stop,1\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 250 {
		t.Errorf("legacy horizon = %g, want 250", tr.Horizon)
	}
	if len(tr.Events) != 2 {
		t.Errorf("legacy events = %d, want 2", len(tr.Events))
	}
}

// A legacy (headerless) trace restores its horizon as the last event
// time; re-saving writes that horizon, so the re-load sees an event at
// exactly the declared horizon — which must be accepted, or legacy
// traces can never survive a read→write→read round trip.
func TestLegacyTraceSurvivesResaveRoundTrip(t *testing.T) {
	legacy := "time,kind,proc\n100,silent,0\n250,fail-stop,1\n"
	tr, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("re-saved legacy trace unreadable: %v", err)
	}
	if back.Horizon != tr.Horizon || len(back.Events) != len(tr.Events) {
		t.Errorf("round trip changed the trace: horizon %g→%g, %d→%d events",
			tr.Horizon, back.Horizon, len(tr.Events), len(back.Events))
	}
}

// Converted real logs may carry extra comment lines; ReadCSV must skip
// them anywhere in the file (only the first line is probed for the
// horizon header).
func TestReadCSVSkipsExtraComments(t *testing.T) {
	in := "# horizon=500\n# source: converted SCR log\ntime,kind,proc\n" +
		"100,silent,0\n# mid-file note\n250,fail-stop,1\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 500 || len(tr.Events) != 2 {
		t.Errorf("comments mishandled: horizon %g, %d events", tr.Horizon, len(tr.Events))
	}
}

// An out-of-order converted log must be sorted on load: the replay
// cursor needs a monotone trace, the legacy horizon fallback needs the
// true maximum event time, and an event past the declared horizon must
// be caught even when it is not the last row.
func TestReadCSVSortsOutOfOrderLogs(t *testing.T) {
	in := "time,kind,proc\n5e6,silent,0\n1e6,fail-stop,1\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Time != 1e6 || tr.Events[1].Time != 5e6 {
		t.Errorf("events not sorted: %+v", tr.Events)
	}
	if tr.Horizon != 5e6 {
		t.Errorf("legacy horizon = %g, want max event time 5e6", tr.Horizon)
	}
	bad := "# horizon=2e6\ntime,kind,proc\n5e6,silent,0\n1e6,fail-stop,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("mid-file event beyond declared horizon accepted")
	}
}

func TestReadCSVRejectsBadHorizon(t *testing.T) {
	cases := []string{
		"# horizon=zero\ntime,kind,proc\n1,silent,0\n",
		"# horizon=-5\ntime,kind,proc\n1,silent,0\n",
		"# horizon=2\ntime,kind,proc\n3,silent,0\n",     // event beyond horizon
		"time,kind,proc\nNaN,fail-stop,3\n",             // NaN defeats sort + horizon checks
		"time,kind,proc\n+Inf,silent,0\n",               // ditto
		"# horizon=5\ntime,kind,proc\n-1,fail-stop,0\n", // negative exposure time
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad horizon accepted", i)
		}
	}
}

func TestNewSourceDist(t *testing.T) {
	d, err := NewWeibullMTBF(0.7, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSourceDist(d, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-1e-5)/1e-5 > 1e-12 {
		t.Errorf("source rate = %g, want 1e-5", s.Rate())
	}
	if s.Dist() != Distribution(d) {
		t.Error("Dist() does not expose the law")
	}
	for i := 0; i < 100; i++ {
		if x := s.Next(); !(x > 0) {
			t.Fatalf("non-positive draw %g", x)
		}
	}
	if _, err := NewSourceDist(nil, rng.New(1)); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := NewSourceDist(d, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// Source.Next for the exponential law must sample the identical stream
// as before the Distribution refactor: r.Exp(rate) draws.
func TestSourceExponentialBitCompatible(t *testing.T) {
	s, err := NewSource(2.5e-7, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	ref := rng.New(77)
	for i := 0; i < 1000; i++ {
		if got, want := s.Next(), ref.Exp(2.5e-7); got != want {
			t.Fatalf("draw %d: %x, want %x", i, got, want)
		}
	}
}

// CacheKey must separate the built-in laws structurally, even where the
// human-readable Name would round parameters together.
func TestDistributionCacheKey(t *testing.T) {
	w1, err := NewWeibullMTBF(0.7, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWeibullMTBF(0.7, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(w1) != CacheKey(w2) {
		t.Error("identical Weibulls keyed differently")
	}
	// A last-ulp scale change is invisible to the %.6g Name but must not
	// be invisible to the key.
	w3 := w1
	w3.Scale = math.Nextafter(w3.Scale, math.Inf(1))
	if CacheKey(w1) == CacheKey(w3) {
		t.Error("ulp-perturbed Weibull shares a key")
	}
	g, err := NewGammaMTBF(0.7, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{
		CacheKey(nil):                  "nil",
		CacheKey(Exponential{Rate: 1}): "exp",
		CacheKey(w1):                   "weibull",
		CacheKey(g):                    "gamma",
	}
	ln, err := NewLogNormalMTBF(1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	keys[CacheKey(ln)] = "lognormal"
	if len(keys) != 5 {
		t.Errorf("law keys collide: %v", keys)
	}
}
