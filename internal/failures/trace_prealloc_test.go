package failures

import (
	"strings"
	"testing"

	"amdahlyd/internal/rng"
)

// stallingDist is a degenerate law whose mean implies an event estimate
// far beyond the integer range while its samples never advance the
// clock: it exercises the preallocation clamp and the stall guard.
type stallingDist struct{}

func (stallingDist) Sample(*rng.Rand) float64 { return 0 }
func (stallingDist) Mean() float64            { return 1e-30 }
func (stallingDist) CDF(x float64) float64 {
	if x >= 0 {
		return 1
	}
	return 0
}
func (stallingDist) Name() string { return "stalling-test" }

// TestGenerateTraceDistOverflowingEstimate pins the preallocation
// guard: an event estimate beyond the integer range must clamp (not
// convert to a negative cap and panic makeslice) and generation must
// still fail through its own named guards.
func TestGenerateTraceDistOverflowingEstimate(t *testing.T) {
	_, err := GenerateTraceDist(stallingDist{}, 0.5, 1<<20, 1e9, rng.New(1))
	if err == nil {
		t.Fatal("degenerate law generated a trace")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("want the stall guard error, got: %v", err)
	}
}

// TestGenerateTracePreallocMatchesDensity checks the common case: the
// buffer is sized from procs × horizon/MTBF so a realistic trace fits
// its first allocation.
func TestGenerateTracePreallocMatchesDensity(t *testing.T) {
	tr, err := GenerateTrace(1e-6, 0.3, 16, 1e8, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Events)
	if n == 0 {
		t.Fatal("empty trace")
	}
	if c := cap(tr.Events); c < n {
		t.Fatalf("cap %d < len %d", c, n)
	} else if c > 4*n+64 {
		t.Fatalf("cap %d is far beyond the %d events generated — estimate off", c, n)
	}
}
