// Package failures implements the error-process substrate of Section II:
// exponential fail-stop and silent error arrivals, the platform-level
// superposition of P per-processor processes (λ_P = P·λ_ind), thinning of
// a combined stream into fail-stop (fraction f) and silent (fraction s)
// sub-streams, and synthetic failure traces with CSV persistence.
//
// Substitution note: the paper parameterizes its simulator with error
// rates measured from SCR platform logs that are not public. The traces
// generated here are exponential with exactly those published rates, which
// is the same distributional assumption the paper's own simulator makes,
// so every downstream code path (injection, rollback, statistics) is
// exercised identically.
package failures

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"amdahlyd/internal/rng"
)

// Kind distinguishes the two error sources of the model.
type Kind int

const (
	// FailStop errors interrupt the application immediately.
	FailStop Kind = iota
	// Silent errors corrupt data and are detected only by a verification.
	Silent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FailStop:
		return "fail-stop"
	case Silent:
		return "silent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Source draws exponential inter-arrival times for one error stream.
// It is a thin, allocation-free wrapper over an rng stream.
type Source struct {
	rate float64
	r    *rng.Rand
}

// NewSource returns a Source with the given arrival rate (1/s). A zero
// rate is allowed and never produces an arrival.
func NewSource(rate float64, r *rng.Rand) (*Source, error) {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("failures: invalid rate %g", rate)
	}
	if r == nil {
		return nil, errors.New("failures: nil rng")
	}
	return &Source{rate: rate, r: r}, nil
}

// Rate returns the arrival rate.
func (s *Source) Rate() float64 { return s.rate }

// Next returns the time to the next arrival (+Inf when the rate is 0).
func (s *Source) Next() float64 {
	if s.rate == 0 {
		return math.Inf(1)
	}
	return s.r.Exp(s.rate)
}

// FirstInWindow samples whether an arrival occurs within a window of the
// given length, and if so at what offset. Thanks to memorylessness this
// is exactly one exponential draw truncated to the window.
func (s *Source) FirstInWindow(window float64) (offset float64, struck bool) {
	if window <= 0 || s.rate == 0 {
		return 0, false
	}
	t := s.r.Exp(s.rate)
	if t < window {
		return t, true
	}
	return 0, false
}

// Environment bundles the two platform-level error streams for a job on P
// processors, with independent sub-streams for each source as in the
// paper's simulator ("two independent Poisson processes", Section IV-A).
type Environment struct {
	failStop *Source
	silent   *Source
}

// NewEnvironment builds the platform-level environment: fail-stop rate
// f·λ_ind·P and silent rate s·λ_ind·P, each with its own deterministic
// rng sub-stream split from parent.
func NewEnvironment(lambdaInd, f, s, procs float64, parent *rng.Rand) (*Environment, error) {
	if lambdaInd < 0 || procs < 1 {
		return nil, fmt.Errorf("failures: invalid λ_ind=%g or P=%g", lambdaInd, procs)
	}
	if f < 0 || s < 0 || math.Abs(f+s-1) > 1e-3 {
		return nil, fmt.Errorf("failures: fractions f=%g, s=%g must sum to 1", f, s)
	}
	if parent == nil {
		return nil, errors.New("failures: nil rng")
	}
	fs, err := NewSource(f*lambdaInd*procs, parent.SplitString("failstop"))
	if err != nil {
		return nil, err
	}
	ss, err := NewSource(s*lambdaInd*procs, parent.SplitString("silent"))
	if err != nil {
		return nil, err
	}
	return &Environment{failStop: fs, silent: ss}, nil
}

// FailStop returns the fail-stop stream.
func (e *Environment) FailStop() *Source { return e.failStop }

// Silent returns the silent stream.
func (e *Environment) Silent() *Source { return e.silent }

// Event is one failure in a trace.
type Event struct {
	// Time is the absolute occurrence time in seconds.
	Time float64
	// Kind is the error source.
	Kind Kind
	// Proc is the processor index the error struck (machine-level traces;
	// -1 for platform-level traces).
	Proc int
}

// Trace is a time-ordered failure record.
type Trace struct {
	Events []Event
	// Horizon is the trace duration: the generator guarantees no events
	// beyond it, and replay treats it as the end of knowledge.
	Horizon float64
}

// GenerateTrace builds a synthetic machine-level trace: each of procs
// processors suffers errors at rate λ_ind, each error independently
// fail-stop with probability f. Events are merged and time-ordered.
func GenerateTrace(lambdaInd, f float64, procs int, horizon float64, r *rng.Rand) (*Trace, error) {
	if lambdaInd < 0 || procs < 1 || horizon <= 0 {
		return nil, fmt.Errorf("failures: invalid trace parameters λ=%g P=%d horizon=%g",
			lambdaInd, procs, horizon)
	}
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("failures: fail-stop fraction %g outside [0,1]", f)
	}
	if r == nil {
		return nil, errors.New("failures: nil rng")
	}
	tr := &Trace{Horizon: horizon}
	if lambdaInd == 0 {
		return tr, nil
	}
	for p := 0; p < procs; p++ {
		pr := r.Split(uint64(p))
		for t := pr.Exp(lambdaInd); t < horizon; t += pr.Exp(lambdaInd) {
			kind := Silent
			if pr.Float64() < f {
				kind = FailStop
			}
			tr.Events = append(tr.Events, Event{Time: t, Kind: kind, Proc: p})
		}
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Time < tr.Events[j].Time })
	return tr, nil
}

// Count returns the number of events of the given kind.
func (tr *Trace) Count(kind Kind) int {
	n := 0
	for _, e := range tr.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// InterArrivals returns the merged-stream inter-arrival times, the
// quantity whose distribution must be Exp(P·λ_ind) by the superposition
// property (Proposition 1.2 of [13]); tests verify this with a KS test.
func (tr *Trace) InterArrivals() []float64 {
	if len(tr.Events) == 0 {
		return nil
	}
	out := make([]float64, 0, len(tr.Events))
	prev := 0.0
	for _, e := range tr.Events {
		out = append(out, e.Time-prev)
		prev = e.Time
	}
	return out
}

// WriteCSV persists the trace as "time,kind,proc" rows with a header.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "proc"}); err != nil {
		return err
	}
	for _, e := range tr.Events {
		rec := []string{
			strconv.FormatFloat(e.Time, 'g', 17, 64),
			e.Kind.String(),
			strconv.Itoa(e.Proc),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a trace written by WriteCSV. The horizon is restored as
// the last event time (the file format does not carry it separately).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("failures: reading trace CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("failures: empty trace file")
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("failures: row %d has %d fields, want 3", i+2, len(row))
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("failures: row %d time: %w", i+2, err)
		}
		var kind Kind
		switch row[1] {
		case "fail-stop":
			kind = FailStop
		case "silent":
			kind = Silent
		default:
			return nil, fmt.Errorf("failures: row %d unknown kind %q", i+2, row[1])
		}
		proc, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("failures: row %d proc: %w", i+2, err)
		}
		tr.Events = append(tr.Events, Event{Time: t, Kind: kind, Proc: proc})
	}
	if n := len(tr.Events); n > 0 {
		tr.Horizon = tr.Events[n-1].Time
	}
	return tr, nil
}

// Replay iterates over a trace in time order.
type Replay struct {
	trace *Trace
	pos   int
}

// NewReplay returns a cursor at the beginning of the trace.
func NewReplay(tr *Trace) *Replay { return &Replay{trace: tr} }

// Next returns the next event, or ok = false when exhausted.
func (rp *Replay) Next() (Event, bool) {
	if rp.pos >= len(rp.trace.Events) {
		return Event{}, false
	}
	e := rp.trace.Events[rp.pos]
	rp.pos++
	return e, true
}

// Peek returns the next event without consuming it.
func (rp *Replay) Peek() (Event, bool) {
	if rp.pos >= len(rp.trace.Events) {
		return Event{}, false
	}
	return rp.trace.Events[rp.pos], true
}

// SkipTo advances the cursor past every event strictly before t.
func (rp *Replay) SkipTo(t float64) {
	for rp.pos < len(rp.trace.Events) && rp.trace.Events[rp.pos].Time < t {
		rp.pos++
	}
}

// Rewind resets the cursor to the start.
func (rp *Replay) Rewind() { rp.pos = 0 }
