// Package failures implements the error-process substrate of Section II:
// fail-stop and silent error arrivals, the platform-level superposition
// of P per-processor processes (λ_P = P·λ_ind), thinning of a combined
// stream into fail-stop (fraction f) and silent (fraction s) sub-streams,
// and synthetic failure traces with CSV persistence.
//
// The paper's model is exponential everywhere; the Distribution interface
// generalizes the inter-arrival law to Weibull, log-normal and Gamma
// renewal processes — each calibrated to a target MTBF so rates stay
// comparable — for the robustness studies that stress the
// exponential-optimal (T*, P*) under non-memoryless failures (see
// DESIGN.md). The exponential paths sample bit-identically to the
// pre-Distribution code for fixed seeds.
//
// Substitution note: the paper parameterizes its simulator with error
// rates measured from SCR platform logs that are not public. The traces
// generated here are synthetic with exactly those published rates —
// exponential by default, the same distributional assumption the paper's
// own simulator makes — so every downstream code path (injection,
// rollback, statistics) is exercised identically.
package failures

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"amdahlyd/internal/rng"
)

// Kind distinguishes the two error sources of the model.
type Kind int

const (
	// FailStop errors interrupt the application immediately.
	FailStop Kind = iota
	// Silent errors corrupt data and are detected only by a verification.
	Silent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FailStop:
		return "fail-stop"
	case Silent:
		return "silent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Source draws inter-arrival times for one error stream. The default
// (NewSource) law is exponential — a thin, allocation-free wrapper over
// an rng stream — and NewSourceDist generalizes it to any Distribution.
type Source struct {
	rate float64
	dist Distribution // nil for the zero-rate never-arriving source
	r    *rng.Rand
}

// NewSource returns an exponential Source with the given arrival rate
// (1/s). A zero rate is allowed and never produces an arrival.
func NewSource(rate float64, r *rng.Rand) (*Source, error) {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("failures: invalid rate %g", rate)
	}
	if r == nil {
		return nil, errors.New("failures: nil rng")
	}
	s := &Source{rate: rate, r: r}
	if rate > 0 {
		s.dist = Exponential{Rate: rate}
	}
	return s, nil
}

// NewSourceDist returns a Source drawing from an arbitrary inter-arrival
// law. The source's nominal rate is 1/dist.Mean().
func NewSourceDist(dist Distribution, r *rng.Rand) (*Source, error) {
	if dist == nil {
		return nil, errors.New("failures: nil distribution")
	}
	if r == nil {
		return nil, errors.New("failures: nil rng")
	}
	if err := ValidateMean(dist); err != nil {
		return nil, err
	}
	return &Source{rate: 1 / dist.Mean(), dist: dist, r: r}, nil
}

// Rate returns the nominal arrival rate (the reciprocal mean).
func (s *Source) Rate() float64 { return s.rate }

// Dist returns the inter-arrival law (nil for a zero-rate source).
func (s *Source) Dist() Distribution { return s.dist }

// Next returns the time to the next arrival (+Inf when the rate is 0).
func (s *Source) Next() float64 {
	if s.dist == nil {
		return math.Inf(1)
	}
	return s.dist.Sample(s.r)
}

// FirstInWindow samples whether an arrival occurs within a window of the
// given length, and if so at what offset. For the exponential law,
// memorylessness makes this exactly one draw truncated to the window —
// the age of the renewal process is irrelevant. For any other law the
// draw is a fresh (age-zero) renewal interval: correct immediately after
// an arrival or a protocol reset, an approximation mid-stream; callers
// that need exact non-memoryless arrivals must track absolute next-event
// clocks (as the machine-level simulator does) instead.
func (s *Source) FirstInWindow(window float64) (offset float64, struck bool) {
	if window <= 0 || s.dist == nil {
		return 0, false
	}
	t := s.dist.Sample(s.r)
	if t < window {
		return t, true
	}
	return 0, false
}

// Environment bundles the two platform-level error streams for a job on P
// processors, with independent sub-streams for each source as in the
// paper's simulator ("two independent Poisson processes", Section IV-A).
type Environment struct {
	failStop *Source
	silent   *Source
}

// NewEnvironment builds the platform-level environment: fail-stop rate
// f·λ_ind·P and silent rate s·λ_ind·P, each with its own deterministic
// rng sub-stream split from parent.
func NewEnvironment(lambdaInd, f, s, procs float64, parent *rng.Rand) (*Environment, error) {
	if !(lambdaInd >= 0) || !(procs >= 1) {
		return nil, fmt.Errorf("failures: invalid λ_ind=%g or P=%g", lambdaInd, procs)
	}
	if !(f >= 0) || !(s >= 0) || math.Abs(f+s-1) > 1e-3 {
		return nil, fmt.Errorf("failures: fractions f=%g, s=%g must sum to 1", f, s)
	}
	if parent == nil {
		return nil, errors.New("failures: nil rng")
	}
	fs, err := NewSource(f*lambdaInd*procs, parent.SplitString("failstop"))
	if err != nil {
		return nil, err
	}
	ss, err := NewSource(s*lambdaInd*procs, parent.SplitString("silent"))
	if err != nil {
		return nil, err
	}
	return &Environment{failStop: fs, silent: ss}, nil
}

// FailStop returns the fail-stop stream.
func (e *Environment) FailStop() *Source { return e.failStop }

// Silent returns the silent stream.
func (e *Environment) Silent() *Source { return e.silent }

// Event is one failure in a trace.
type Event struct {
	// Time is the absolute occurrence time in seconds.
	Time float64
	// Kind is the error source.
	Kind Kind
	// Proc is the processor index the error struck (machine-level traces;
	// -1 for platform-level traces).
	Proc int
}

// Trace is a time-ordered failure record.
type Trace struct {
	Events []Event
	// Horizon is the trace duration: the generator guarantees no events
	// beyond it, and replay treats it as the end of knowledge.
	Horizon float64
}

// GenerateTrace builds a synthetic machine-level trace: each of procs
// processors suffers errors at rate λ_ind, each error independently
// fail-stop with probability f. Events are merged and time-ordered.
// Arrivals are exponential; GenerateTraceDist generalizes the law.
func GenerateTrace(lambdaInd, f float64, procs int, horizon float64, r *rng.Rand) (*Trace, error) {
	if lambdaInd < 0 || math.IsNaN(lambdaInd) || math.IsInf(lambdaInd, 0) {
		return nil, fmt.Errorf("failures: invalid trace rate λ=%g", lambdaInd)
	}
	if lambdaInd == 0 {
		// Valid degenerate case: an empty trace of the full horizon.
		if err := validateTraceParams(f, procs, horizon, r); err != nil {
			return nil, err
		}
		return &Trace{Horizon: horizon}, nil
	}
	return GenerateTraceDist(Exponential{Rate: lambdaInd}, f, procs, horizon, r)
}

// validateTraceParams holds the parameter checks shared by both
// generator entry points, so a tightened rule cannot miss one of them.
func validateTraceParams(f float64, procs int, horizon float64, r *rng.Rand) error {
	// !(horizon > 0) also catches NaN, which would yield a silently
	// empty, headerless trace.
	if procs < 1 || !(horizon > 0) || math.IsInf(horizon, 0) {
		return fmt.Errorf("failures: invalid trace parameters P=%d horizon=%g", procs, horizon)
	}
	// !(f >= 0) also catches NaN, which would silently generate an
	// all-Silent trace ("< f" is false for every draw).
	if !(f >= 0) || f > 1 {
		return fmt.Errorf("failures: fail-stop fraction %g outside [0,1]", f)
	}
	if r == nil {
		return errors.New("failures: nil rng")
	}
	return nil
}

// GenerateTraceDist builds a synthetic machine-level trace whose
// per-processor inter-arrival times follow an arbitrary Distribution:
// each processor is an independent renewal process of the given law,
// each arrival independently fail-stop with probability f. Events are
// merged and ordered by (Time, Proc).
//
// For the exponential law this samples the identical stream as the
// historical generator (one uniform per arrival from the per-processor
// child stream, then one for the kind), so exponential traces stay
// bit-identical for fixed seeds.
func GenerateTraceDist(dist Distribution, f float64, procs int, horizon float64, r *rng.Rand) (*Trace, error) {
	if dist == nil {
		return nil, errors.New("failures: nil distribution")
	}
	if err := validateTraceParams(f, procs, horizon, r); err != nil {
		return nil, err
	}
	tr := &Trace{Horizon: horizon}
	// Preallocate the event buffer from the renewal-density estimate
	// procs × horizon/MTBF (plus a ~4σ Poisson margin): the generator's
	// dominant cost was regrowing this slice through the doubling
	// schedule, ~3× the final buffer in wasted copies and garbage.
	if mean := dist.Mean(); mean > 0 && !math.IsInf(mean, 0) {
		est := float64(procs) * horizon / mean
		// Clamp in float space: int(est) is implementation-defined once
		// est exceeds the integer range, and a negative hint would panic
		// makeslice where the generator's own event cap reports a clean
		// error. Estimates beyond maxTracePrealloc (~50 MB of events)
		// start from that cap and grow the honest way — preallocating
		// the full 16M-event ceiling up front would cost ~400 MB on what
		// is usually a parameterization error.
		hint := maxTracePrealloc
		if bound := est + 4*math.Sqrt(est) + 16; bound < maxTracePrealloc {
			hint = int(bound)
		}
		tr.Events = make([]Event, 0, hint)
	}
	for p := 0; p < procs; p++ {
		pr := r.Split(uint64(p))
		stalls := 0
		for t := dist.Sample(pr); t < horizon; {
			kind := Silent
			if pr.Float64() < f {
				kind = FailStop
			}
			tr.Events = append(tr.Events, Event{Time: t, Kind: kind, Proc: p})
			if len(tr.Events) > maxTraceEvents {
				return nil, fmt.Errorf("failures: trace exceeds %d events (distribution %s too bursty for horizon %g)",
					maxTraceEvents, dist.Name(), horizon)
			}
			// A draw below one ulp of t leaves the clock unchanged; a
			// degenerate law (underflowing samples) would otherwise spin
			// here forever appending equal-time events.
			next := t + dist.Sample(pr)
			if next > t {
				stalls = 0
			} else if stalls++; stalls > maxStalledDraws {
				return nil, fmt.Errorf("failures: distribution %s stalled trace time at %g (samples underflow)",
					dist.Name(), t)
			}
			t = next
		}
	}
	SortEvents(tr.Events)
	return tr, nil
}

// maxTraceEvents bounds a generated trace's memory footprint (~400 MB
// of events); a heavier trace is a parameterization error, not a
// workload.
const maxTraceEvents = 16 << 20

// maxStalledDraws bounds consecutive draws that fail to advance the
// trace clock before generation gives up on a degenerate law.
const maxStalledDraws = 1000

// maxTracePrealloc bounds the event-buffer preallocation hint (~2M
// events, ~50 MB); denser traces grow through append's doubling.
const maxTracePrealloc = 1 << 21

// SortEvents orders a merged event slice by (Time, Proc), stably. The
// tie-break matters: continuous draws make cross-processor time
// collisions rare but not impossible (a rounded-away increment can land
// two processors on the same float), and an unstable time-only sort then
// leaves equal-time events in platform-dependent order, breaking replay
// determinism.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Proc < events[j].Proc
	})
}

// Count returns the number of events of the given kind.
func (tr *Trace) Count(kind Kind) int {
	n := 0
	for _, e := range tr.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// InterArrivals returns the merged-stream inter-arrival times, the
// quantity whose distribution must be Exp(P·λ_ind) by the superposition
// property (Proposition 1.2 of [13]); tests verify this with a KS test.
func (tr *Trace) InterArrivals() []float64 {
	if len(tr.Events) == 0 {
		return nil
	}
	out := make([]float64, 0, len(tr.Events))
	prev := 0.0
	for _, e := range tr.Events {
		out = append(out, e.Time-prev)
		prev = e.Time
	}
	return out
}

// ProcInterArrivals returns the per-processor inter-arrival times,
// pooled across processors: for each processor the gaps between its own
// consecutive events. The gap from t = 0 to a processor's first event is
// excluded — it is only a renewal draw when the observation window
// starts at age zero, and a trace converted from a real log typically
// starts mid-stream, where that interval follows the residual-life
// distribution instead. The gaps returned are iid draws of the
// generating Distribution for any renewal trace — the quantity the
// per-law KS goodness-of-fit tests check — whereas the merged-stream
// InterArrivals only follow the source law in the exponential
// (superposition-closed) case.
func (tr *Trace) ProcInterArrivals() []float64 {
	if len(tr.Events) == 0 {
		return nil
	}
	last := make(map[int]float64)
	out := make([]float64, 0, len(tr.Events))
	for _, e := range tr.Events {
		if prev, seen := last[e.Proc]; seen {
			out = append(out, e.Time-prev)
		}
		last[e.Proc] = e.Time
	}
	return out
}

// WriteCSV persists the trace as "time,kind,proc" rows with a header,
// preceded by a "# horizon=<g17>" comment line. The horizon must travel
// with the file: restoring it as the last event time (the historical
// fallback) makes a saved-then-replayed trace exhaust one partial
// pattern earlier than the in-memory one.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if tr.Horizon > 0 {
		if _, err := fmt.Fprintf(w, "# horizon=%s\n",
			strconv.FormatFloat(tr.Horizon, 'g', 17, 64)); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "proc"}); err != nil {
		return err
	}
	for _, e := range tr.Events {
		rec := []string{
			strconv.FormatFloat(e.Time, 'g', 17, 64),
			e.Kind.String(),
			strconv.Itoa(e.Proc),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a trace written by WriteCSV. The horizon is restored
// from the "# horizon=" comment line; files predating the horizon line
// fall back to the last event time (the historical lossy behaviour,
// kept for compatibility with already-saved traces and converted real
// logs).
func ReadCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	horizon := math.NaN()
	if peek, err := br.Peek(1); err == nil && peek[0] == '#' {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("failures: reading trace header: %w", err)
		}
		line = strings.TrimSpace(strings.TrimPrefix(line, "#"))
		if rest, ok := strings.CutPrefix(line, "horizon="); ok {
			h, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return nil, fmt.Errorf("failures: trace header horizon: %w", err)
			}
			if !(h > 0) || math.IsInf(h, 0) {
				return nil, fmt.Errorf("failures: trace header horizon %g must be positive and finite", h)
			}
			horizon = h
		}
	}
	cr := csv.NewReader(br)
	// Skip any further comment lines (provenance notes in converted real
	// logs); only the first line is recognized as the horizon header.
	cr.Comment = '#'
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("failures: reading trace CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("failures: empty trace file")
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("failures: row %d has %d fields, want 3", i+2, len(row))
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("failures: row %d time: %w", i+2, err)
		}
		// NaN compares false everywhere, silently defeating both the
		// (Time, Proc) sort and the horizon validation below.
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return nil, fmt.Errorf("failures: row %d time %g must be finite and non-negative", i+2, t)
		}
		var kind Kind
		switch row[1] {
		case "fail-stop":
			kind = FailStop
		case "silent":
			kind = Silent
		default:
			return nil, fmt.Errorf("failures: row %d unknown kind %q", i+2, row[1])
		}
		proc, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("failures: row %d proc: %w", i+2, err)
		}
		tr.Events = append(tr.Events, Event{Time: t, Kind: kind, Proc: proc})
	}
	// Hand-converted real logs may arrive out of time order; the replay
	// cursor needs a monotone trace, and the horizon checks below need
	// the last event to be the latest one.
	SortEvents(tr.Events)
	if !math.IsNaN(horizon) {
		// Strictly beyond only: a legacy trace whose horizon fell back to
		// its last event time must survive a re-save/re-load round trip.
		if n := len(tr.Events); n > 0 && !(tr.Events[n-1].Time <= horizon) {
			return nil, fmt.Errorf("failures: event at %g beyond declared horizon %g",
				tr.Events[n-1].Time, horizon)
		}
		tr.Horizon = horizon
	} else if n := len(tr.Events); n > 0 {
		tr.Horizon = tr.Events[n-1].Time
	}
	return tr, nil
}

// Replay iterates over a trace in time order.
type Replay struct {
	trace *Trace
	pos   int
}

// NewReplay returns a cursor at the beginning of the trace.
func NewReplay(tr *Trace) *Replay { return &Replay{trace: tr} }

// Next returns the next event, or ok = false when exhausted.
func (rp *Replay) Next() (Event, bool) {
	if rp.pos >= len(rp.trace.Events) {
		return Event{}, false
	}
	e := rp.trace.Events[rp.pos]
	rp.pos++
	return e, true
}

// Peek returns the next event without consuming it.
func (rp *Replay) Peek() (Event, bool) {
	if rp.pos >= len(rp.trace.Events) {
		return Event{}, false
	}
	return rp.trace.Events[rp.pos], true
}

// SkipTo advances the cursor past every event strictly before t.
func (rp *Replay) SkipTo(t float64) {
	for rp.pos < len(rp.trace.Events) && rp.trace.Events[rp.pos].Time < t {
		rp.pos++
	}
}

// Rewind resets the cursor to the start.
func (rp *Replay) Rewind() { rp.pos = 0 }
