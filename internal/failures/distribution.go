package failures

import (
	"fmt"
	"math"

	"amdahlyd/internal/rng"
	"amdahlyd/internal/xmath"
)

// Distribution is an inter-arrival time law for one error source: the
// generalization of the hard-coded exponential that Section IV-A's
// simulator assumes. Real SCR-style platform logs are famously Weibull
// with shape < 1 (decreasing hazard: failures cluster), so the robustness
// of the exponential-optimal (T*, P*) under non-memoryless arrivals is
// the natural stress test of the Young/Daly-type formulas.
//
// Implementations are calibrated to a target MTBF so that rates stay
// comparable across laws: every distribution below can be constructed to
// have mean exactly 1/λ_ind, which keeps the platform-level pressure
// P·λ_ind fixed while the higher moments vary.
//
// A Distribution must be usable as a value (the simulators copy it) and
// must be safe for concurrent Sample calls on distinct rng streams.
type Distribution interface {
	// Sample draws one inter-arrival time using r.
	Sample(r *rng.Rand) float64
	// Mean returns the expected inter-arrival time (the MTBF).
	Mean() float64
	// CDF evaluates the cumulative distribution at x, the oracle the KS
	// goodness-of-fit tests run against.
	CDF(x float64) float64
	// Name identifies the law in reports and CLIs.
	Name() string
}

// Exponential is the memoryless law of the paper's model: the only
// Distribution for which the superposition of P per-processor sources is
// again of the same family (rate P·λ), and the one every fast path keeps
// bit-identical.
type Exponential struct {
	// Rate is λ, the arrival rate (1/s).
	Rate float64
}

// NewExponential validates the rate and returns the law.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("failures: exponential rate %g must be positive and finite", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws −ln(U)/λ — the exact call the pre-Distribution trace
// generator made, so exponential traces are bit-identical across the
// refactor.
func (e Exponential) Sample(r *rng.Rand) float64 { return r.Exp(e.Rate) }

// Mean returns 1/λ.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// CDF returns 1 − e^{−λx}.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Name implements Distribution.
func (e Exponential) Name() string { return fmt.Sprintf("exponential(λ=%g)", e.Rate) }

// Weibull is the classic fit for HPC failure logs (Schroeder & Gibson):
// shape k < 1 gives a decreasing hazard — long quiet stretches punctuated
// by bursts — which is exactly the regime where memoryless tuning is
// questioned. Shape 1 degenerates to Exponential(1/Scale) on the same
// sampling path.
type Weibull struct {
	// Shape is k > 0; Scale is λ > 0 (seconds).
	Shape, Scale float64
}

// NewWeibullMTBF returns the Weibull law with the given shape whose mean
// is exactly the target MTBF: scale = MTBF / Γ(1 + 1/k). The shape is
// bounded to [0.1, 10]: platform-log fits live in [0.4, 1], and far
// outside that range the draws degenerate (underflow to zero /
// overflow), which can stall trace generation and livelock the
// event-driven simulator.
func NewWeibullMTBF(shape, mtbf float64) (Weibull, error) {
	if !(shape >= 0.1) || shape > 10 {
		return Weibull{}, fmt.Errorf("failures: weibull shape %g outside [0.1, 10]", shape)
	}
	if !(mtbf > 0) || math.IsInf(mtbf, 0) {
		return Weibull{}, fmt.Errorf("failures: weibull MTBF %g must be positive and finite", mtbf)
	}
	// Γ(1+1/k) overflows for extreme shapes (k below ~0.006), collapsing
	// the calibrated scale to zero; reject rather than panic on Sample.
	scale := mtbf / math.Gamma(1+1/shape)
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Weibull{}, fmt.Errorf("failures: weibull shape %g yields unusable scale %g at MTBF %g",
			shape, scale, mtbf)
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// Sample draws Scale·(−ln U)^{1/k} by inversion: one uniform per draw,
// the same consumption as the exponential sampler.
func (w Weibull) Sample(r *rng.Rand) float64 { return r.Weibull(w.Shape, w.Scale) }

// Mean returns Scale·Γ(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// CDF returns 1 − e^{−(x/λ)^k}.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Name implements Distribution.
func (w Weibull) Name() string { return fmt.Sprintf("weibull(k=%g, λ=%.6g)", w.Shape, w.Scale) }

// LogNormal models heavy-tailed inter-arrivals whose logarithm is
// Normal(Mu, Sigma); larger Sigma means heavier clustering at both ends.
type LogNormal struct {
	Mu, Sigma float64
}

// NewLogNormalMTBF returns the log-normal law with the given log-space
// standard deviation whose mean is exactly the target MTBF:
// μ = ln(MTBF) − σ²/2. Sigma is bounded to (0, 4]: beyond that the
// calibrated law is so heavy-tailed that nearly every draw underflows
// toward zero (the mean lives in a tail a finite trace never samples),
// stalling generation and exploding finite-window event counts.
func NewLogNormalMTBF(sigma, mtbf float64) (LogNormal, error) {
	if !(sigma > 0) || sigma > 4 {
		return LogNormal{}, fmt.Errorf("failures: lognormal sigma %g outside (0, 4]", sigma)
	}
	if !(mtbf > 0) || math.IsInf(mtbf, 0) {
		return LogNormal{}, fmt.Errorf("failures: lognormal MTBF %g must be positive and finite", mtbf)
	}
	mu := math.Log(mtbf) - sigma*sigma/2
	if math.IsInf(mu, 0) {
		return LogNormal{}, fmt.Errorf("failures: lognormal sigma %g yields unusable μ at MTBF %g",
			sigma, mtbf)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws e^{μ + σZ}.
func (l LogNormal) Sample(r *rng.Rand) float64 { return r.LogNormal(l.Mu, l.Sigma) }

// Mean returns e^{μ + σ²/2}.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// CDF returns Φ((ln x − μ)/σ).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return xmath.NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Name implements Distribution.
func (l LogNormal) Name() string { return fmt.Sprintf("lognormal(μ=%.6g, σ=%g)", l.Mu, l.Sigma) }

// Gamma interpolates between the bursty (shape < 1) and the regular
// (shape > 1) regimes; shape 1 is exponential in distribution (though not
// on the same sampling path — Gamma uses rejection sampling).
type Gamma struct {
	// Shape is k > 0; Scale is θ > 0 (seconds).
	Shape, Scale float64
}

// NewGammaMTBF returns the Gamma law with the given shape whose mean is
// exactly the target MTBF: scale = MTBF/k. The shape is bounded to
// [0.1, 1000] for the same degeneracy reasons as the Weibull bound.
func NewGammaMTBF(shape, mtbf float64) (Gamma, error) {
	if !(shape >= 0.1) || shape > 1000 {
		return Gamma{}, fmt.Errorf("failures: gamma shape %g outside [0.1, 1000]", shape)
	}
	if !(mtbf > 0) || math.IsInf(mtbf, 0) {
		return Gamma{}, fmt.Errorf("failures: gamma MTBF %g must be positive and finite", mtbf)
	}
	scale := mtbf / shape
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Gamma{}, fmt.Errorf("failures: gamma shape %g yields unusable scale %g at MTBF %g",
			shape, scale, mtbf)
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// Sample draws by Marsaglia–Tsang.
func (g Gamma) Sample(r *rng.Rand) float64 { return r.Gamma(g.Shape, g.Scale) }

// Mean returns k·θ.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// CDF returns the regularized lower incomplete gamma P(k, x/θ).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return xmath.RegularizedGammaP(g.Shape, x/g.Scale)
}

// Name implements Distribution.
func (g Gamma) Name() string { return fmt.Sprintf("gamma(k=%g, θ=%.6g)", g.Shape, g.Scale) }

// CacheKey returns a canonical identity token for a distribution,
// following the same rules as core.Model.CacheKey: the four built-in
// laws are keyed structurally with exact hexadecimal parameters
// (xmath.FloatKey, the shared canonical encoding), a custom law may
// implement interface{ CacheKey() string }, and anything else falls
// back to its display Name (safe only when Name is injective). A nil
// distribution — the exponential fast path of the simulators — keys as
// "exp-fast".
func CacheKey(dist Distribution) string {
	switch d := dist.(type) {
	case nil:
		return "exp-fast"
	case Exponential:
		return "exp:" + xmath.FloatKey(d.Rate)
	case Weibull:
		return "weibull:" + xmath.FloatKey(d.Shape) + ":" + xmath.FloatKey(d.Scale)
	case LogNormal:
		return "lognormal:" + xmath.FloatKey(d.Mu) + ":" + xmath.FloatKey(d.Sigma)
	case Gamma:
		return "gamma:" + xmath.FloatKey(d.Shape) + ":" + xmath.FloatKey(d.Scale)
	}
	if k, ok := dist.(interface{ CacheKey() string }); ok {
		return "custom:" + k.CacheKey()
	}
	return "named:" + dist.Name()
}

// ValidateMean rejects a distribution whose mean is non-positive,
// non-finite or NaN — the shared gate for every consumer that derives a
// rate or an error-pressure bound from 1/mean (Source, the machine
// simulator).
func ValidateMean(dist Distribution) error {
	mean := dist.Mean()
	if !(mean > 0) || math.IsInf(mean, 0) {
		return fmt.Errorf("failures: distribution %s has invalid mean %g", dist.Name(), mean)
	}
	return nil
}

// IsExponentialName reports whether a CLI-style distribution name
// denotes the exponential law ("" defaults to it). The exponential is
// the only shapeless law, so CLIs use this single predicate to pair
// -dist with -shape without duplicating the alias set.
func IsExponentialName(name string) bool {
	return name == "exponential" || name == "exp" || name == ""
}

// ParseDistribution builds a Distribution from a CLI-style name, a shape
// parameter and the per-processor error rate λ_ind. The shape parameter
// is the Weibull shape k, the Gamma shape k, or the log-normal σ
// (ignored for "exponential"). Non-exponential laws are calibrated so
// their mean is the exponential's MTBF 1/λ_ind.
//
// "exponential" carries the rate through verbatim — not via a double
// reciprocal — so the default CLI path samples bit-identically to the
// historical generator.
func ParseDistribution(name string, shape, rate float64) (Distribution, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("failures: rate %g must be positive and finite", rate)
	}
	if IsExponentialName(name) {
		return NewExponential(rate)
	}
	switch name {
	case "weibull":
		return NewWeibullMTBF(shape, 1/rate)
	case "lognormal":
		return NewLogNormalMTBF(shape, 1/rate)
	case "gamma":
		return NewGammaMTBF(shape, 1/rate)
	default:
		return nil, fmt.Errorf("failures: unknown distribution %q (want exponential, weibull, lognormal or gamma)", name)
	}
}
