package service

import (
	"sync"
	"sync/atomic"
)

// lruShards is the fixed shard count of every cache. Sixteen shards keep
// lock contention negligible at the request rates the service targets
// (requests touch a cache for well under a microsecond) without bloating
// the per-cache footprint.
const lruShards = 16

// CacheStats is a point-in-time counter snapshot of one cache.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// lruCache is a sharded, mutex-per-shard LRU map from canonical request
// keys to values. Keys are hashed with FNV-1a onto shards; each shard
// keeps an intrusive doubly-linked recency list, so Get and Add are O(1)
// under the shard lock. Values are stored as given — callers share them
// across goroutines, so they must be immutable once inserted (compiled
// core.Frozen evaluators, optimizer results and campaign results all
// are).
type lruCache[V any] struct {
	shards   [lruShards]lruShard[V]
	capacity int // total across shards

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type lruShard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*lruEntry[V]
	head     *lruEntry[V] // most recently used
	tail     *lruEntry[V] // least recently used
	capacity int
}

type lruEntry[V any] struct {
	key        string
	val        V
	prev, next *lruEntry[V]
}

// newLRU returns a cache bounded to capacity entries in total (rounded up
// to a multiple of the shard count; minimum one entry per shard).
func newLRU[V any](capacity int) *lruCache[V] {
	perShard := (capacity + lruShards - 1) / lruShards
	if perShard < 1 {
		perShard = 1
	}
	c := &lruCache[V]{capacity: perShard * lruShards}
	for i := range c.shards {
		c.shards[i] = lruShard[V]{
			entries:  make(map[string]*lruEntry[V]),
			capacity: perShard,
		}
	}
	return c
}

// fnv1a hashes a key for shard selection.
func fnv1a(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *lruCache[V]) shard(key string) *lruShard[V] {
	return &c.shards[fnv1a(key)%lruShards]
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Add inserts (or refreshes) a value, evicting the shard's least recently
// used entry when full.
func (c *lruCache[V]) Add(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.val = v
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	e := &lruEntry[V]{key: key, val: v}
	s.entries[key] = e
	s.pushFront(e)
	var evicted bool
	if len(s.entries) > s.capacity {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Hot returns up to max (key, value) pairs in roughly most-recently-used
// order: each shard is walked from its recency head and the shards are
// interleaved round-robin, so the result is a fair "hottest entries"
// sample without a global recency list. Reading does not touch recency.
// It is the export side of peer warm-fill: a joining fleet replica pulls
// these entries from its neighbour instead of cold-solving them.
func (c *lruCache[V]) Hot(max int) (keys []string, vals []V) {
	if max <= 0 {
		return nil, nil
	}
	perShard := make([][]*lruEntry[V], lruShards)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head; e != nil && len(perShard[i]) < max; e = e.next {
			perShard[i] = append(perShard[i], e)
		}
		// Copy key/value out under the lock; entries are immutable once
		// inserted, so the values themselves are safe to share.
		copied := make([]*lruEntry[V], len(perShard[i]))
		for j, e := range perShard[i] {
			copied[j] = &lruEntry[V]{key: e.key, val: e.val}
		}
		perShard[i] = copied
		s.mu.Unlock()
	}
	for depth := 0; len(keys) < max; depth++ {
		advanced := false
		for i := 0; i < lruShards && len(keys) < max; i++ {
			if depth < len(perShard[i]) {
				keys = append(keys, perShard[i][depth].key)
				vals = append(vals, perShard[i][depth].val)
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return keys, vals
}

// Len returns the current number of cached entries.
func (c *lruCache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *lruCache[V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.capacity,
	}
}

// --- intrusive recency list (callers hold the shard lock) ---

func (s *lruShard[V]) pushFront(e *lruEntry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *lruShard[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *lruShard[V]) moveToFront(e *lruEntry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
