package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/platform"
)

const testFrac = 20.0 / 300

// TestMultilevelOptimizeMatchesLibrary is the acceptance criterion: the
// endpoint must return bit-identical numbers to the library path
// (float64 survives a JSON round-trip exactly).
func TestMultilevelOptimizeMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario3, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	want, err := multilevel.OptimalPattern(m, multilevel.InMemoryFraction(m, testFrac), multilevel.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	frac := testFrac
	req := MultilevelOptimizeRequest{
		Model:         ModelSpec{Platform: "hera", Scenario: 3},
		InMemFraction: &frac,
	}
	got, code := post[MultilevelOptimizeResponse](t, ts, "/v1/multilevel/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.T != want.T || got.K != want.K || got.P != want.P || got.Overhead != want.PredictedH {
		t.Errorf("endpoint diverges from the library:\n got %+v\nwant %+v", got, want)
	}
	if got.Cached {
		t.Error("first request reported cached")
	}
	// The repeat request must be served from the ml1| cache, bit-equal.
	again, code := post[MultilevelOptimizeResponse](t, ts, "/v1/multilevel/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !again.Cached {
		t.Error("repeat request not served from cache")
	}
	if again.T != got.T || again.K != got.K || again.P != got.P || again.Overhead != got.Overhead {
		t.Errorf("cache replay differs: %+v vs %+v", again, got)
	}
}

// TestMultilevelSimulateMatchesLibrary: the campaign endpoint must be
// bit-identical to Simulator.SimulateContext with the same derivation.
func TestMultilevelSimulateMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario3, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	p := pl.Processors
	costs, err := multilevel.SingleLevelCosts(m, p, testFrac)
	if err != nil {
		t.Fatal(err)
	}
	lf, ls := m.Rates(p)
	pat := multilevel.Pattern{T: 5000, K: 3}
	sim, err := multilevel.NewSimulator(costs, pat, lf, ls)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.SimulateContext(context.Background(), multilevel.CampaignConfig{
		Runs: 40, Patterns: 30, Seed: 9, Workers: 1, HOfP: m.Profile.Overhead(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := testFrac
	got, code := post[MultilevelSimulateResponse](t, ts, "/v1/multilevel/simulate", MultilevelSimulateRequest{
		Model:         ModelSpec{Platform: "hera", Scenario: 3},
		InMemFraction: &frac,
		T:             5000, K: 3,
		Runs: 40, Patterns: 30, Seed: 9,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Overhead.Mean != want.Overhead.Mean ||
		*got.Overhead.CI95 != want.Overhead.CI95 ||
		got.FailStops != want.FailStops ||
		got.SilentDetections != want.SilentDetections ||
		got.DiskRecoveries != want.DiskRecoveries ||
		got.MemRecoveries != want.MemRecoveries {
		t.Errorf("endpoint diverges from the library:\n got %+v\nwant %+v", got, want)
	}
	if got.P != p || got.K != 3 || got.T != 5000 {
		t.Errorf("pattern echo wrong: %+v", got)
	}
	// Repeat: bit-identical cache replay.
	again, code := post[MultilevelSimulateResponse](t, ts, "/v1/multilevel/simulate", MultilevelSimulateRequest{
		Model:         ModelSpec{Platform: "hera", Scenario: 3},
		InMemFraction: &frac,
		T:             5000, K: 3,
		Runs: 40, Patterns: 30, Seed: 9,
	})
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("repeat campaign status %d cached=%t", code, again.Cached)
	}
	if again.Overhead.Mean != got.Overhead.Mean {
		t.Error("cache replay differs")
	}
}

// TestMultilevelSimulateDefaultsPattern: zero-valued T/K/P must default
// from the first-order optimum at the deployed processor count.
func TestMultilevelSimulateDefaultsPattern(t *testing.T) {
	_, ts := newTestServer(t)
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario3, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := multilevel.SingleLevelCosts(m, pl.Processors, defaultInMemFraction)
	if err != nil {
		t.Fatal(err)
	}
	lf, ls := m.Rates(pl.Processors)
	plan, err := multilevel.FirstOrder(costs, lf, ls, m.Profile.Overhead(pl.Processors))
	if err != nil {
		t.Fatal(err)
	}
	got, code := post[MultilevelSimulateResponse](t, ts, "/v1/multilevel/simulate", MultilevelSimulateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 3},
		Runs:  10, Patterns: 10, Seed: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.T != plan.T || got.K != plan.K || got.P != pl.Processors {
		t.Errorf("defaults diverge from FirstOrder at deployed P: got (%g, %d, %g), want (%g, %d, %g)",
			got.T, got.K, got.P, plan.T, plan.K, pl.Processors)
	}
}

// TestMultilevelSimulateBudgetCap: the per-request pattern budget
// applies to two-level campaigns exactly as to single-level ones.
func TestMultilevelSimulateBudgetCap(t *testing.T) {
	_, ts := newTestServer(t)
	_, code := post[MultilevelSimulateResponse](t, ts, "/v1/multilevel/simulate", MultilevelSimulateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 3},
		Runs:  1 << 20, Patterns: 1 << 20,
	})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("oversized campaign status %d, want 422", code)
	}
}

// TestModelSpecRejectsNegativeLambda is the regression for the silent
// "overrides when positive" fallback: an explicit negative override must
// be a 400 with a self-explanatory body, not the platform rate.
func TestModelSpecRejectsNegativeLambda(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/evaluate", "/v1/optimize", "/v1/multilevel/optimize"} {
		buf, _ := json.Marshal(map[string]any{
			"model": map[string]any{"platform": "hera", "scenario": 1, "lambda": -1e-8},
		})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: negative lambda status %d, want 400", path, resp.StatusCode)
		}
		var apiErr apiError
		if err := json.Unmarshal(body.Bytes(), &apiErr); err != nil {
			t.Fatalf("%s: error body not JSON: %v\n%s", path, err, body)
		}
		if !strings.Contains(apiErr.Error, "lambda override -1e-08") ||
			!strings.Contains(apiErr.Error, "must be positive") {
			t.Errorf("%s: uninformative error body %q", path, apiErr.Error)
		}
	}
}

// postNDJSON posts a sweep request and decodes the NDJSON rows.
func postNDJSON(t *testing.T, url string, body any) ([]SweepRow, int) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var rows []SweepRow
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON row: %v\n%s", err, sc.Text())
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, resp.StatusCode
}

// TestMultilevelSweepAxis: the multilevel axis on /v1/sweep must solve
// the chain, carry K on every row, and (in cold mode) be bit-identical
// to per-cell /v1/multilevel/optimize — sharing its cache entries.
func TestMultilevelSweepAxis(t *testing.T) {
	_, ts := newTestServer(t)
	frac := testFrac
	req := SweepRequest{
		Model:      ModelSpec{Platform: "hera", Scenario: 3},
		Axis:       "lambda",
		Values:     []float64{1e-9, 2e-9, 4e-9, 8e-9},
		Cold:       true,
		Multilevel: &MultilevelSweepSpec{InMemFraction: &frac},
	}
	rows, code := postNDJSON(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(rows) != len(req.Values) {
		t.Fatalf("%d rows for %d values", len(rows), len(req.Values))
	}
	for i, row := range rows {
		if row.K < 1 {
			t.Errorf("row %d: missing segment count: %+v", i, row)
		}
		if row.Method != "multilevel" {
			t.Errorf("row %d: method %q", i, row.Method)
		}
		// Cold cells are bit-identical to the per-cell endpoint…
		opt, code := post[MultilevelOptimizeResponse](t, ts, "/v1/multilevel/optimize", MultilevelOptimizeRequest{
			Model:         ModelSpec{Platform: "hera", Scenario: 3, Lambda: req.Values[i]},
			InMemFraction: &frac,
		})
		if code != http.StatusOK {
			t.Fatalf("optimize status %d", code)
		}
		if opt.T != row.T || opt.K != row.K || opt.P != row.P || opt.Overhead != row.Overhead {
			t.Errorf("row %d: cold sweep differs from /v1/multilevel/optimize:\n row %+v\n opt %+v", i, row, opt)
		}
		// …and share cache entries bidirectionally.
		if !opt.Cached {
			t.Errorf("row %d: cold sweep cell did not prime the optimize cache", i)
		}
	}

	// The warm chain agrees with cold within the refinement tolerance and
	// reports warm cells.
	warmReq := req
	warmReq.Cold = false
	warmRows, code := postNDJSON(t, ts.URL, warmReq)
	if code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	warmCells := 0
	for i, wr := range warmRows {
		if wr.Warm {
			warmCells++
		}
		if relDiffF(wr.Overhead, rows[i].Overhead) > 1e-8 {
			t.Errorf("cell %d: warm overhead %g vs cold %g", i, wr.Overhead, rows[i].Overhead)
		}
	}
	if warmCells == 0 {
		t.Error("no warm cells on a smooth λ axis")
	}

	// A second identical warm sweep replays every cell from cache.
	again, code := postNDJSON(t, ts.URL, warmReq)
	if code != http.StatusOK {
		t.Fatalf("replay status %d", code)
	}
	for i, row := range again {
		if !row.Cached {
			t.Errorf("replay cell %d not cached", i)
		}
		if row.T != warmRows[i].T || row.K != warmRows[i].K || row.P != warmRows[i].P {
			t.Errorf("replay cell %d differs", i)
		}
	}
}

// TestMultilevelSweepRejectsPeriodBounds: period search bounds have no
// meaning for the closed-form segment length and must error loudly.
func TestMultilevelSweepRejectsPeriodBounds(t *testing.T) {
	_, ts := newTestServer(t)
	frac := 0.1
	_, code := postNDJSON(t, ts.URL, SweepRequest{
		Model:      ModelSpec{Platform: "hera", Scenario: 3},
		Axis:       "lambda",
		Values:     []float64{1e-9},
		Options:    OptimizeOptions{TMin: 10, TMax: 100},
		Multilevel: &MultilevelSweepSpec{InMemFraction: &frac},
	})
	if code != http.StatusBadRequest {
		t.Errorf("t bounds on a multilevel sweep: status %d, want 400", code)
	}
}

func relDiffF(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}
