package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewEngine(Options{}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func post[T any](t *testing.T, ts *httptest.Server, path string, body any) (T, int) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out T
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", path, err, raw)
		}
	}
	return out, resp.StatusCode
}

// The acceptance criterion of the service layer: the HTTP surface returns
// byte-identical results to the equivalent CLI/library invocation for
// fixed seeds. float64 values survive a JSON round-trip exactly
// (encoding/json emits the shortest form that parses back to the same
// bits), so exact equality of the decoded fields is the right check.
func TestServeMatchesCLIInvocation(t *testing.T) {
	_, ts := newTestServer(t)

	// The library-side reference: exactly what cmd/amdahl-sim does.
	pl := platform.Hera()
	m, err := experiments.BuildModel(pl, costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}

	// evaluate ≡ the exact formulas amdahl-opt/amdahl-sim print.
	ev, code := post[EvaluateResponse](t, ts, "/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 1},
		T:     6240, P: 219,
	})
	if code != http.StatusOK {
		t.Fatalf("evaluate status %d", code)
	}
	if ev.Overhead != m.Overhead(6240, 219) || ev.PatternTime != m.ExactPatternTime(6240, 219) {
		t.Errorf("evaluate diverges from the library: %+v", ev)
	}

	// optimize ≡ optimize.OptimalPattern with default options.
	want, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, code := post[OptimizeResponse](t, ts, "/v1/optimize", OptimizeRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 1},
	})
	if code != http.StatusOK {
		t.Fatalf("optimize status %d", code)
	}
	if opt.T != want.T || opt.P != want.P || opt.Overhead != want.Overhead {
		t.Errorf("optimize diverges from the library:\n got %+v\nwant %+v", opt, want)
	}

	// simulate ≡ sim.Simulate at the CLI defaults for a fixed seed.
	cfg := sim.RunConfig{Runs: 50, Patterns: 50, Seed: 7, Workers: 1}
	wantSim, err := sim.Simulate(m, 6240, 219, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotSim, code := post[SimulateResponse](t, ts, "/v1/simulate", SimulateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 1},
		T:     6240, P: 219, Runs: 50, Patterns: 50, Seed: 7,
	})
	if code != http.StatusOK {
		t.Fatalf("simulate status %d", code)
	}
	if gotSim.Overhead.Mean != wantSim.Overhead.Mean ||
		*gotSim.Overhead.CI95 != wantSim.Overhead.CI95 ||
		gotSim.MeanPatternTime.Mean != wantSim.MeanPatternTime.Mean ||
		gotSim.FailStops != wantSim.FailStops ||
		gotSim.SilentDetections != wantSim.SilentDetections ||
		gotSim.Recoveries != wantSim.Recoveries {
		t.Errorf("simulate diverges from the library:\n got %+v\nwant %+v", gotSim, wantSim)
	}

	// T/P defaulting mirrors amdahl-sim's flags: P=0 → deployed count,
	// T=0 → Theorem 1 period.
	evDef, code := post[EvaluateResponse](t, ts, "/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 1},
	})
	if code != http.StatusOK {
		t.Fatalf("evaluate (defaults) status %d", code)
	}
	wantT := m.OptimalPeriodFixedP(pl.Processors)
	if evDef.P != pl.Processors || evDef.T != wantT {
		t.Errorf("T/P defaulting: got (%g, %g), want (%g, %g)", evDef.T, evDef.P, wantT, pl.Processors)
	}
}

// A repeated identical optimize over HTTP must be served from the cache
// and say so.
func TestServeOptimizeCached(t *testing.T) {
	_, ts := newTestServer(t)
	req := OptimizeRequest{Model: ModelSpec{Platform: "atlas", Scenario: 3}}
	first, code := post[OptimizeResponse](t, ts, "/v1/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Cached {
		t.Error("cold request reported cached")
	}
	second, _ := post[OptimizeResponse](t, ts, "/v1/optimize", req)
	if !second.Cached {
		t.Error("warm request not served from cache")
	}
	if second.T != first.T || second.P != first.P || second.Overhead != first.Overhead {
		t.Error("cached response differs")
	}
}

// The machine-level simulator plus a -dist law over HTTP matches the
// direct library call.
func TestServeSimulateMachineDist(t *testing.T) {
	_, ts := newTestServer(t)
	got, code := post[SimulateResponse](t, ts, "/v1/simulate", SimulateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 1},
		T:     6240, P: 219, Runs: 5, Patterns: 10, Seed: 3,
		Machine: true, Dist: "weibull", Shape: 0.7,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	m, err := experiments.BuildModel(platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := failuresWeibull(m.LambdaInd, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Simulate(m, 6240, 219, sim.RunConfig{
		Runs: 5, Patterns: 10, Seed: 3, Machine: true, Dist: dist, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Overhead.Mean != want.Overhead.Mean || got.FailStops != want.FailStops {
		t.Errorf("machine+dist simulate diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestServeErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		path string
		body any
		want int
	}{
		{"/v1/evaluate", EvaluateRequest{Model: ModelSpec{Platform: "nonesuch"}}, http.StatusBadRequest},
		{"/v1/evaluate", EvaluateRequest{Model: ModelSpec{Scenario: 9}}, http.StatusBadRequest},
		{"/v1/evaluate", EvaluateRequest{Model: ModelSpec{}, T: -5, P: 10}, http.StatusBadRequest},
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Dist: "weibull", Shape: 0.7}, http.StatusBadRequest}, // dist without machine
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Machine: true, P: 219.5}, http.StatusBadRequest},
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Dist: "cauchy", Machine: true}, http.StatusBadRequest},
		// CLI parity: a shape with the exponential law is rejected (the
		// robustness CLI pins the same refusal), never silently dropped.
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Shape: 0.7, Runs: 2, Patterns: 2}, http.StatusBadRequest},
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Dist: "exponential", Shape: 0.7, Machine: true}, http.StatusBadRequest},
		// A period so deep in the failure-dominated regime that the exact
		// overhead is +Inf: not representable in JSON, must be reported as
		// unprocessable rather than a 200 with a truncated body.
		{"/v1/evaluate", EvaluateRequest{Model: ModelSpec{}, T: 1e300, P: 219}, http.StatusUnprocessableEntity},
		// Denial-of-service guards: a patient client must not be able to
		// pin a scheduler slot for hours or OOM the machine simulator.
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Runs: 2000000000, Patterns: 2000000000}, http.StatusUnprocessableEntity},
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Runs: -1}, http.StatusBadRequest},
		{"/v1/simulate", SimulateRequest{Model: ModelSpec{}, Machine: true, P: 1 << 20, Runs: 2, Patterns: 2}, http.StatusUnprocessableEntity},
	} {
		_, code := post[apiError](t, ts, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %+v: status %d, want %d", tc.path, tc.body, code, tc.want)
		}
	}

	// Unknown fields are rejected (catches silently misspelled knobs).
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader([]byte(`{"model":{"platform":"hera"},"sceario":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}

	// Method discipline: GET on a POST endpoint is rejected by the mux.
	getResp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/optimize: %d, want 405", getResp.StatusCode)
	}
}

func TestServeHealthAndStats(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Exercise the engine once, then read the counters back.
	_, code := post[EvaluateResponse](t, ts, "/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{Platform: "hera"}, T: 6240, P: 219,
	})
	if code != http.StatusOK {
		t.Fatalf("evaluate status %d", code)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Evaluations == 0 || st.MaxConcurrent == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if srv.Engine().Stats().Evaluations != st.Evaluations {
		t.Error("HTTP stats disagree with the engine")
	}
}

// An in-flight campaign must abort when the HTTP client hangs up.
func TestServeSimulateCancellableViaRequestContext(t *testing.T) {
	srv, ts := newTestServer(t)
	body, err := json.Marshal(SimulateRequest{
		Model: ModelSpec{Platform: "hera", Scenario: 1},
		T:     6240, P: 219, Runs: 200000, Patterns: 500, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the campaign start
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client saw a response despite cancelling")
	}
	// The engine must notice the abandonment promptly (the campaign
	// checks its context between runs).
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Engine().Stats()
		if st.InFlight == 0 && st.Cancelled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still in flight after client hang-up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// failuresWeibull mirrors what the handler builds from (dist, shape).
func failuresWeibull(lambdaInd, shape float64) (failures.Distribution, error) {
	return failures.ParseDistribution("weibull", shape, lambdaInd)
}

// A saturated scheduler surfaces as 503 with a Retry-After header, and
// the shed request never blocks behind the backlog.
func TestServeSaturationReturns503(t *testing.T) {
	srv := NewServer(NewEngine(Options{MaxConcurrent: 1, MaxQueued: 1}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	e := srv.Engine()

	// Occupy the only executing slot, then park a waiter in the one queue
	// slot so the next request finds the scheduler full.
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.release()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiter := make(chan error, 1)
	go func() { waiter <- e.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	buf, _ := json.Marshal(OptimizeRequest{Model: ModelSpec{Platform: "hera", Scenario: 1}})
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 carries no Retry-After header")
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Error == "" {
		t.Error("503 carries no error body")
	}
	if st := e.Stats(); st.Saturated == 0 {
		t.Errorf("saturation not counted: %+v", st)
	}

	// Stats must expose the queue configuration for operators.
	if st := e.Stats(); st.MaxQueued != 1 || st.Queued != 1 {
		t.Errorf("MaxQueued/Queued = %d/%d, want 1/1", st.MaxQueued, st.Queued)
	}
	cancel()
	<-waiter
}
