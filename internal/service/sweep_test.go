package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/xmath"
)

func sweepModels(t *testing.T, lambdas []float64) []core.Model {
	t.Helper()
	models := make([]core.Model, len(lambdas))
	for i, l := range lambdas {
		m, err := experiments.BuildModel(platform.Hera().WithLambda(l), costmodel.Scenario3, 0.1, 3600)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	return models
}

var sweepLambdas = []float64{1e-10, 2e-10, 4e-10, 8e-10, 1.6e-9}

// TestEngineSweepColdBitIdenticalToOptimize pins the cold-mode contract:
// every cell equals a per-cell Optimize result bitwise, and the two
// paths share cache entries in both directions.
func TestEngineSweepColdBitIdenticalToOptimize(t *testing.T) {
	e := NewEngine(Options{})
	ctx := context.Background()
	models := sweepModels(t, sweepLambdas)
	cells, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		res, cached, err := e.Optimize(ctx, m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Errorf("cell %d: cold sweep did not warm the optimize cache", i)
		}
		if res != cells[i].Result {
			t.Errorf("cell %d: sweep %+v != optimize %+v", i, cells[i].Result, res)
		}
	}
}

// TestEngineSweepWarmWithinTolAndIsolated checks the warm mode: cells
// agree with per-cell OptimalPattern within the refinement tolerance,
// the per-cell cache serves a repeat sweep, and the /v1/optimize cache
// is NOT polluted (bit-exactness of optimize survives a warm sweep).
func TestEngineSweepWarmWithinTolAndIsolated(t *testing.T) {
	e := NewEngine(Options{})
	ctx := context.Background()
	models := sweepModels(t, sweepLambdas)
	cells, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		cold, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d := xmath.RelDiff(cells[i].Result.Overhead, cold.Overhead); d > 1e-8 {
			t.Errorf("cell %d: overhead off by %.3g", i, d)
		}
		if d := xmath.RelDiff(cells[i].Result.P, cold.P); d > 1e-4 {
			t.Errorf("cell %d: P* off by %.3g", i, d)
		}
		res, cached, err := e.Optimize(ctx, m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cached && i == 0 {
			// The first optimize after a warm sweep must be a genuine
			// solve, not a warm-sweep cache hit.
			t.Error("warm sweep polluted the optimize cache")
		}
		if res.T != cold.T || res.P != cold.P {
			t.Errorf("cell %d: optimize after warm sweep is not bit-identical to OptimalPattern", i)
		}
	}
	again, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cached {
			t.Errorf("cell %d: repeat sweep missed the per-cell cache", i)
		}
		if again[i].Result != cells[i].Result {
			t.Errorf("cell %d: repeat sweep returned different bits", i)
		}
	}
	if st := e.Stats(); st.SweepCalls != 2 {
		t.Errorf("SweepCalls = %d, want 2", st.SweepCalls)
	}
}

// TestSweepHTTPStreamsNDJSON drives the endpoint end to end: one NDJSON
// row per axis value, in order, with warm flags and cache provenance.
func TestSweepHTTPStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t)
	body := map[string]any{
		"model":  map[string]any{"platform": "hera", "scenario": 3},
		"axis":   "lambda",
		"values": sweepLambdas,
	}
	fetch := func() []SweepRow {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		var rows []SweepRow
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var row SweepRow
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Fatalf("bad row %q: %v", sc.Text(), err)
			}
			rows = append(rows, row)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	rows := fetch()
	if len(rows) != len(sweepLambdas) {
		t.Fatalf("got %d rows, want %d", len(rows), len(sweepLambdas))
	}
	warm := 0
	for i, row := range rows {
		if row.X != sweepLambdas[i] {
			t.Errorf("row %d: x = %g, want %g", i, row.X, sweepLambdas[i])
		}
		if !(row.Overhead > 0) || math.IsInf(row.Overhead, 0) {
			t.Errorf("row %d: overhead %g", i, row.Overhead)
		}
		if row.Cached {
			t.Errorf("row %d: first sweep reported cached", i)
		}
		if row.Warm {
			warm++
		}
	}
	if warm == 0 {
		t.Error("no cell warm-started on a smooth axis")
	}
	for i, row := range fetch() {
		if !row.Cached {
			t.Errorf("row %d: repeat sweep not served from cache", i)
		}
	}
}

// TestSweepHTTPValidation covers the request guards.
func TestSweepHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"bad axis", map[string]any{"model": map[string]any{}, "axis": "procs", "values": []float64{1}}, http.StatusBadRequest},
		{"no values", map[string]any{"model": map[string]any{}, "axis": "alpha"}, http.StatusBadRequest},
		{"negative lambda", map[string]any{"model": map[string]any{}, "axis": "lambda", "values": []float64{-1}}, http.StatusBadRequest},
		{"too many cells", map[string]any{"model": map[string]any{}, "axis": "alpha", "values": make([]float64, maxRequestSweepCells+1)}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		buf, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
