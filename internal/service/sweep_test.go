package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/xmath"
)

func sweepModels(t *testing.T, lambdas []float64) []core.Model {
	t.Helper()
	models := make([]core.Model, len(lambdas))
	for i, l := range lambdas {
		m, err := experiments.BuildModel(platform.Hera().WithLambda(l), costmodel.Scenario3, 0.1, 3600)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	return models
}

var sweepLambdas = []float64{1e-10, 2e-10, 4e-10, 8e-10, 1.6e-9}

// TestEngineSweepColdBitIdenticalToOptimize pins the cold-mode contract:
// every cell equals a per-cell Optimize result bitwise, and the two
// paths share cache entries in both directions.
func TestEngineSweepColdBitIdenticalToOptimize(t *testing.T) {
	e := NewEngine(Options{})
	ctx := context.Background()
	models := sweepModels(t, sweepLambdas)
	cells, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		res, cached, err := e.Optimize(ctx, m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Errorf("cell %d: cold sweep did not warm the optimize cache", i)
		}
		if res != cells[i].Result {
			t.Errorf("cell %d: sweep %+v != optimize %+v", i, cells[i].Result, res)
		}
	}
}

// TestEngineSweepWarmWithinTolAndIsolated checks the warm mode: cells
// agree with per-cell OptimalPattern within the refinement tolerance,
// the per-cell cache serves a repeat sweep, and the /v1/optimize cache
// is NOT polluted (bit-exactness of optimize survives a warm sweep).
func TestEngineSweepWarmWithinTolAndIsolated(t *testing.T) {
	e := NewEngine(Options{})
	ctx := context.Background()
	models := sweepModels(t, sweepLambdas)
	cells, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range models {
		cold, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if d := xmath.RelDiff(cells[i].Result.Overhead, cold.Overhead); d > 1e-8 {
			t.Errorf("cell %d: overhead off by %.3g", i, d)
		}
		if d := xmath.RelDiff(cells[i].Result.P, cold.P); d > 1e-4 {
			t.Errorf("cell %d: P* off by %.3g", i, d)
		}
		res, cached, err := e.Optimize(ctx, m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cached && i == 0 {
			// The first optimize after a warm sweep must be a genuine
			// solve, not a warm-sweep cache hit.
			t.Error("warm sweep polluted the optimize cache")
		}
		if res.T != cold.T || res.P != cold.P {
			t.Errorf("cell %d: optimize after warm sweep is not bit-identical to OptimalPattern", i)
		}
	}
	again, _, err := e.Sweep(ctx, models, optimize.PatternOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Cached {
			t.Errorf("cell %d: repeat sweep missed the per-cell cache", i)
		}
		if again[i].Result != cells[i].Result {
			t.Errorf("cell %d: repeat sweep returned different bits", i)
		}
	}
	if st := e.Stats(); st.SweepCalls != 2 {
		t.Errorf("SweepCalls = %d, want 2", st.SweepCalls)
	}
}

// TestSweepHTTPStreamsNDJSON drives the endpoint end to end: one NDJSON
// row per axis value, in order, with warm flags and cache provenance.
func TestSweepHTTPStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t)
	body := map[string]any{
		"model":  map[string]any{"platform": "hera", "scenario": 3},
		"axis":   "lambda",
		"values": sweepLambdas,
	}
	fetch := func() []SweepRow {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		var rows []SweepRow
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var row SweepRow
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Fatalf("bad row %q: %v", sc.Text(), err)
			}
			rows = append(rows, row)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	rows := fetch()
	if len(rows) != len(sweepLambdas) {
		t.Fatalf("got %d rows, want %d", len(rows), len(sweepLambdas))
	}
	warm := 0
	for i, row := range rows {
		if row.X != sweepLambdas[i] {
			t.Errorf("row %d: x = %g, want %g", i, row.X, sweepLambdas[i])
		}
		if !(row.Overhead > 0) || math.IsInf(row.Overhead, 0) {
			t.Errorf("row %d: overhead %g", i, row.Overhead)
		}
		if row.Cached {
			t.Errorf("row %d: first sweep reported cached", i)
		}
		if row.Warm {
			warm++
		}
	}
	if warm == 0 {
		t.Error("no cell warm-started on a smooth axis")
	}
	for i, row := range fetch() {
		if !row.Cached {
			t.Errorf("row %d: repeat sweep not served from cache", i)
		}
	}
}

// TestSweepHTTPValidation covers the request guards.
func TestSweepHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"bad axis", map[string]any{"model": map[string]any{}, "axis": "procs", "values": []float64{1}}, http.StatusBadRequest},
		{"no values", map[string]any{"model": map[string]any{}, "axis": "alpha"}, http.StatusBadRequest},
		{"negative lambda", map[string]any{"model": map[string]any{}, "axis": "lambda", "values": []float64{-1}}, http.StatusBadRequest},
		{"too many cells", map[string]any{"model": map[string]any{}, "axis": "alpha", "values": make([]float64, maxRequestSweepCells+1)}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		buf, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// waitNoExtraGoroutines polls until the goroutine count returns to its
// baseline (plus scheduler slack): a hand-rolled leak check — transport,
// handler and sweep-chain goroutines must all wind down.
func waitNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepHTTPClientHangUpMidStream pins the streaming contract: a
// client that reads a few NDJSON rows and hangs up stops the solver
// chain promptly — the remaining cells are never solved — and no
// goroutines are left behind.
func TestSweepHTTPClientHangUpMidStream(t *testing.T) {
	srv := NewServer(NewEngine(Options{}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	before := runtime.NumGoroutine()

	const cells = 512
	values := make([]float64, cells)
	for i := range values {
		values[i] = 1e-11 * (1 + float64(i)/cells)
	}
	body := map[string]any{
		"model":  map[string]any{"platform": "hera", "scenario": 3},
		"axis":   "lambda",
		"values": values,
		// Cold cells pay the full grid scan, making the chain slow enough
		// that the hang-up demonstrably lands mid-axis.
		"cold": true,
	}
	buf, _ := json.Marshal(body)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// The first rows arrive while the chain is still solving the rest —
	// that they can be read at all before completion is the streaming
	// behaviour under test.
	sc := bufio.NewScanner(resp.Body)
	rows := 0
	for rows < 2 && sc.Scan() {
		var row SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad row %q: %v", sc.Text(), err)
		}
		rows++
	}
	if rows != 2 {
		t.Fatalf("stream ended after %d rows: %v", rows, sc.Err())
	}
	cancel() // hang up mid-stream
	resp.Body.Close()

	// The engine must notice and drain promptly.
	e := srv.Engine()
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep still in flight after hang-up: %+v", e.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The chain stopped short of the axis, and stays stopped: every solved
	// cold cell is one optimize-cache entry.
	solved := e.Stats().OptimizeCache.Entries
	if solved >= cells {
		t.Errorf("all %d cells solved despite the hang-up", cells)
	}
	time.Sleep(50 * time.Millisecond)
	if after := e.Stats().OptimizeCache.Entries; after != solved {
		t.Errorf("cells kept solving after the drain: %d -> %d", solved, after)
	}

	client.CloseIdleConnections()
	ts.Close()
	waitNoExtraGoroutines(t, before)
}
