package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent work by canonical key: while a
// computation for a key is in flight, further requests for the same key
// wait for its result instead of recomputing it. This is what turns a
// thundering herd of identical optimize/simulate requests into exactly
// one solve.
//
// Unlike the textbook single-flight, the computation does not run on the
// first caller's goroutine with the first caller's context: it runs on
// its own goroutine under a context that is cancelled only when every
// waiter has abandoned it. A leader hanging up therefore never poisons
// the followers with a cancellation they did not ask for, and a shared
// computation keeps running as long as anyone still wants the answer.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall

	// deduped counts requests that attached to an existing flight — the
	// observable "solved once" metric.
	deduped atomic.Uint64
}

type flightCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters int32 // guarded by the group mutex
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do returns the result of fn for the key, sharing one execution among
// all concurrent callers. shared reports whether this caller attached to
// a flight someone else started. If ctx is done before the flight
// completes, do returns ctx.Err() immediately — the flight itself keeps
// running for the remaining waiters (and is cancelled once none remain).
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		g.deduped.Add(1)
		return g.wait(ctx, key, c, true)
	}
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		v, err := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = v, err
		// An abandoned flight already removed itself (and the key may by
		// now belong to a fresh call); only retire the map entry if it is
		// still ours.
		if g.m[key] == c {
			delete(g.m, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel() // release the context's resources; the result is in
	}()
	return g.wait(ctx, key, c, false)
}

// wait blocks until the flight completes or the caller's ctx is done,
// maintaining the waiter count that keeps the flight's context alive.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall, shared bool) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, shared, c.err
	case <-ctx.Done():
	}
	// The caller is gone; if it was the last one, abort the flight. The
	// completion path may have closed done concurrently — prefer the
	// result in that case, it is already paid for.
	select {
	case <-c.done:
		return c.val, shared, c.err
	default:
	}
	g.mu.Lock()
	c.waiters--
	abandon := c.waiters == 0
	if abandon && g.m[key] == c {
		// Unpublish the dying call in the same critical section as the
		// last decrement: a later request for this key must start a fresh
		// flight rather than attach to one that is about to be cancelled
		// and inherit a context.Canceled it never asked for.
		delete(g.m, key)
	}
	g.mu.Unlock()
	if abandon {
		c.cancel()
	}
	return nil, shared, ctx.Err()
}

// Deduped returns the number of requests that were answered by attaching
// to an in-flight computation.
func (g *flightGroup) Deduped() uint64 { return g.deduped.Load() }
