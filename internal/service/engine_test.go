package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
	"amdahlyd/internal/speedup"
)

func heraModel(t testing.TB) core.Model {
	t.Helper()
	m, err := experiments.BuildModel(platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The engine must be a pure accelerator: results bit-identical to the
// direct library calls the CLIs make.
func TestEngineMatchesDirectCalls(t *testing.T) {
	e := NewEngine(Options{})
	m := heraModel(t)

	ev, err := e.Evaluate(m, 6240, 219)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Overhead != m.Overhead(6240, 219) {
		t.Errorf("evaluate overhead %v != model %v", ev.Overhead, m.Overhead(6240, 219))
	}
	if ev.PatternTime != m.ExactPatternTime(6240, 219) {
		t.Errorf("evaluate pattern time diverges from Proposition 1")
	}
	if ev.OptimalPeriodFixedP != m.OptimalPeriodFixedP(219) {
		t.Errorf("evaluate T*_P diverges from Theorem 1")
	}

	want, err := optimize.OptimalPattern(m, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, cached, err := e.Optimize(context.Background(), m, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first optimize reported cached")
	}
	if got != want {
		t.Errorf("optimize result %+v != direct %+v", got, want)
	}

	cfg := sim.RunConfig{Runs: 20, Patterns: 20, Seed: 7, Workers: 1}
	wantSim, err := sim.Simulate(m, 6240, 219, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotSim, cached, err := e.Simulate(context.Background(), m, 6240, 219, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first simulate reported cached")
	}
	if gotSim.Overhead != wantSim.Overhead || gotSim.MeanPatternTime != wantSim.MeanPatternTime ||
		gotSim.FailStops != wantSim.FailStops || gotSim.Recoveries != wantSim.Recoveries {
		t.Errorf("simulate result diverges from direct call:\n got %+v\nwant %+v", gotSim, wantSim)
	}
}

// A repeated identical optimize must hit the cache, and the cached value
// must be the original result.
func TestEngineOptimizeCacheHit(t *testing.T) {
	e := NewEngine(Options{})
	m := heraModel(t)
	first, cached, err := e.Optimize(context.Background(), m, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cold request reported cached")
	}
	second, cached, err := e.Optimize(context.Background(), m, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("warm request missed the cache")
	}
	if second != first {
		t.Errorf("cache returned a different result:\n got %+v\nwant %+v", second, first)
	}
	st := e.Stats()
	if st.OptimizeCache.Hits == 0 {
		t.Errorf("stats report no optimize-cache hits: %+v", st.OptimizeCache)
	}
	// A different model must not share the entry.
	m2 := m
	m2.LambdaInd *= 2
	_, cached, err = e.Optimize(context.Background(), m2, optimize.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("different model hit the cache")
	}
	// Different options must not share the entry either.
	_, cached, err = e.Optimize(context.Background(), m, optimize.PatternOptions{IntegerP: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("different options hit the cache")
	}
}

// Identical sim campaigns replay from the cache bit-exactly.
func TestEngineSimulateCacheHit(t *testing.T) {
	e := NewEngine(Options{})
	m := heraModel(t)
	cfg := sim.RunConfig{Runs: 10, Patterns: 10, Seed: 3}
	first, _, err := e.Simulate(context.Background(), m, 6240, 219, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, cached, err := e.Simulate(context.Background(), m, 6240, 219, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("identical campaign missed the cache")
	}
	if second.Overhead != first.Overhead || second.FailStops != first.FailStops {
		t.Error("cached campaign differs from the original")
	}
	// A different seed is a different campaign.
	cfg.Seed = 4
	_, cached, err = e.Simulate(context.Background(), m, 6240, 219, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("different seed hit the cache")
	}
}

// slowProfile wraps Amdahl with a deliberate per-call delay (and an
// optional per-call hook) so a solve is slow enough to observe
// concurrency effects deterministically.
type slowProfile struct {
	speedup.Amdahl
	delay  time.Duration
	calls  *atomic.Int64
	onCall func()
}

func (s slowProfile) Overhead(p float64) float64 {
	s.calls.Add(1)
	if s.onCall != nil {
		s.onCall()
	}
	time.Sleep(s.delay)
	return s.Amdahl.Overhead(p)
}

func (s slowProfile) CacheKey() string { return fmt.Sprintf("slow-amdahl:%g", s.Alpha) }

// Concurrent identical optimize requests must solve exactly once.
func TestEngineSingleFlightDedup(t *testing.T) {
	e := NewEngine(Options{MaxConcurrent: 8})
	m := heraModel(t)
	var freezes atomic.Int64
	m.Profile = slowProfile{Amdahl: speedup.Amdahl{Alpha: 0.1}, delay: 200 * time.Microsecond, calls: &freezes}

	const requests = 16
	var wg sync.WaitGroup
	results := make([]optimize.PatternResult, requests)
	cachedFlags := make([]bool, requests)
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], cachedFlags[i], errs[i] = e.Optimize(context.Background(), m, optimize.PatternOptions{})
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("request %d got a different result", i)
		}
	}
	st := e.Stats()
	// All requests raced in before a result was cached, so every one of
	// them either led the single flight or attached to it; exactly one
	// solve ran. (A request arriving after completion would hit the LRU
	// instead — also fine, also counted as cached.)
	solves := 0
	for _, c := range cachedFlags {
		if !c {
			solves++
		}
	}
	if solves != 1 {
		t.Errorf("%d requests paid for a solve, want exactly 1 (dedup=%d)", solves, st.Deduplicated)
	}
	if st.Deduplicated+st.OptimizeCache.Hits != requests-1 {
		t.Errorf("dedup (%d) + cache hits (%d) should cover the other %d requests",
			st.Deduplicated, st.OptimizeCache.Hits, requests-1)
	}
}

// A cancelled request context aborts an in-flight campaign (once no other
// request wants it) and surfaces context.Canceled.
func TestEngineSimulateCancellation(t *testing.T) {
	e := NewEngine(Options{MaxConcurrent: 2})
	m := heraModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A campaign big enough (≈10⁸ patterns) to outlive the
		// cancellation below by a wide margin.
		_, _, err := e.Simulate(ctx, m, 6240, 219, sim.RunConfig{
			Runs: 200000, Patterns: 500, Seed: 1,
		})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled campaign did not abort")
	}
	if e.Stats().Cancelled == 0 {
		t.Error("cancellation not counted")
	}
}

// The scheduler bound must hold: no more than MaxConcurrent jobs execute
// at once, later jobs queue and still complete. The jobs sample the
// engine's own in-flight gauge from inside their solve, so the
// observation is deterministic (every running job sees at least itself).
func TestEngineSchedulerBound(t *testing.T) {
	const bound = 2
	e := NewEngine(Options{MaxConcurrent: bound})

	var peak atomic.Int64
	observe := func() {
		n := e.Stats().InFlight
		if n > bound {
			t.Errorf("in-flight %d exceeds bound %d", n, bound)
		}
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				return
			}
		}
	}

	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct α per request defeats dedup and caching, so every
			// job occupies a scheduler slot of its own.
			m := heraModel(t)
			m.Profile = slowProfile{
				Amdahl: speedup.Amdahl{Alpha: 0.1 + float64(i)/1000},
				delay:  50 * time.Microsecond,
				calls:  &calls,
				onCall: observe,
			}
			if _, _, err := e.Optimize(context.Background(), m, optimize.PatternOptions{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() < 1 {
		t.Error("gauge never observed a running job")
	}
}

// A full wait queue sheds load immediately with ErrSaturated instead of
// queueing without bound; draining the queue restores admission.
func TestEngineSaturationShedsLoad(t *testing.T) {
	e := NewEngine(Options{MaxConcurrent: 1, MaxQueued: 1})

	// Occupy the only executing slot.
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Fill the one queue slot with a waiter parked on the scheduler.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiter := make(chan error, 1)
	go func() { waiter <- e.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Queue full: the next job must be rejected at once, not block.
	if err := e.acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire on a full queue returned %v, want ErrSaturated", err)
	}
	st := e.Stats()
	if st.Saturated != 1 {
		t.Errorf("Saturated = %d, want 1", st.Saturated)
	}
	if st.Queued != 1 || st.InFlight != 1 {
		t.Errorf("Queued/InFlight = %d/%d, want 1/1", st.Queued, st.InFlight)
	}
	if st.MaxQueued != 1 {
		t.Errorf("MaxQueued = %d, want 1", st.MaxQueued)
	}

	// Freeing the slot admits the queued waiter...
	e.release()
	if err := <-waiter; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
	// ...and with the queue drained, admission works again.
	e.release()
	if err := e.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after drain failed: %v", err)
	}
	e.release()
}

// A negative MaxQueued disables shedding: waiters queue without bound
// (the historical behaviour) and leave when their context is cancelled.
func TestEngineUnboundedQueue(t *testing.T) {
	e := NewEngine(Options{MaxConcurrent: 1, MaxQueued: -1})
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() { errs <- e.acquire(ctx) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Queued < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters queued", e.Stats().Queued, waiters)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if n := e.Stats().Saturated; n != 0 {
		t.Errorf("unbounded queue shed %d jobs", n)
	}
	cancel()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter returned %v", err)
		}
	}
	e.release()
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU[int](lruShards) // one entry per shard
	// Fill one shard's slot then displace it.
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("missing fresh entry")
	}
	// Find a key landing on the same shard as "a" to force an eviction.
	target := fnv1a("a") % lruShards
	victim := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if k != "a" && fnv1a(k)%lruShards == target {
			victim = k
			break
		}
	}
	c.Add(victim, 2)
	if _, ok := c.Get("a"); ok {
		t.Error("LRU kept the displaced entry")
	}
	if v, ok := c.Get(victim); !ok || v != 2 {
		t.Error("newest entry evicted instead")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

// A NaN or infinite processor count must be rejected, not cached under a
// NaN key as an all-NaN evaluator.
func TestEngineRejectsNonFiniteP(t *testing.T) {
	e := NewEngine(Options{})
	m := heraModel(t)
	for _, p := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := e.Evaluate(m, 6240, p); err == nil {
			t.Errorf("P=%g accepted", p)
		}
	}
	if n := e.Stats().FrozenCache.Entries; n != 0 {
		t.Errorf("rejected requests left %d cache entries", n)
	}
}

// A zero-valued campaign config and one spelling out the defaults are
// the same campaign and must share one cache entry.
func TestEngineSimulateKeyNormalized(t *testing.T) {
	e := NewEngine(Options{})
	m := heraModel(t)
	// Tiny budget via explicit values equal to what RunConfig.WithDefaults
	// would fill in for the zero value... the defaults are 500×500, too
	// slow for a unit test, so exercise the equivalence the other way:
	// Workers must not split the cache (it is normalized out).
	first, _, err := e.Simulate(context.Background(), m, 6240, 219,
		sim.RunConfig{Runs: 10, Patterns: 10, Seed: 5, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	second, cached, err := e.Simulate(context.Background(), m, 6240, 219,
		sim.RunConfig{Runs: 10, Patterns: 10, Seed: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("campaigns differing only in Workers did not share a cache entry")
	}
	if second.Overhead != first.Overhead {
		t.Error("shared entry returned different stats")
	}
}

func TestFlightGroupAbandonCancelsWork(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	aborted := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _, _ = g.do(ctx, "k", func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			close(aborted)
			return nil, ctx.Err()
		})
	}()
	<-started
	cancel() // last (only) waiter hangs up → the flight must be cancelled
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned flight kept running")
	}
}

// A request arriving after the last waiter abandoned a flight must start
// a fresh one, not attach to the dying call and inherit its
// context.Canceled.
func TestFlightGroupAbandonedKeyRestarts(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	go func() {
		_, _, _ = g.do(ctxA, "k", func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			// Linger before returning: the dying call must not be
			// re-attachable (nor clobber a fresh call's map entry) while
			// it winds down.
			<-release
			return nil, ctx.Err()
		})
	}()
	<-started
	cancelA()
	// Wait until the abandoned flight is unpublished.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		_, present := g.m["k"]
		g.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight never unpublished its key")
		}
		time.Sleep(100 * time.Microsecond)
	}
	done := make(chan struct{})
	go func() {
		v, _, err := g.do(context.Background(), "k", func(ctx context.Context) (any, error) {
			return 42, nil
		})
		if err != nil {
			t.Errorf("fresh flight inherited an error: %v", err)
		} else if v != 42 {
			t.Errorf("fresh flight returned %v, want 42", v)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fresh flight blocked behind the dying one")
	}
	close(release) // let the old goroutine finish; its guarded delete must be a no-op
}
