package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
)

// --- /readyz: readiness split from liveness ---

func TestReadyzReportsSaturationBeforeRequestsFail(t *testing.T) {
	e := NewEngine(Options{MaxConcurrent: 1, MaxQueued: 1})
	srv := NewServer(e)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("idle readyz = %d, want 200", got)
	}
	// Occupy the one executing slot and the one queue slot: the next job
	// would be shed, so readiness must already be false — while liveness
	// stays green.
	e.sem <- struct{}{}
	e.queue <- struct{}{}
	if e.Ready() {
		t.Fatal("engine with full slot and queue reports Ready")
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during saturation = %d, want 200 (liveness is not readiness)", got)
	}
	<-e.queue
	<-e.sem
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after slots freed = %d, want 200", got)
	}
}

func TestReadyzDuringDrain(t *testing.T) {
	srv := NewServer(NewEngine(Options{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	srv.StartDrain(time.Hour) // grace irrelevant: readiness must flip now
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz missing Retry-After")
	}
}

// --- graceful drain of in-flight sweep streams ---

func TestSweepStreamDrainsCleanlyMidStream(t *testing.T) {
	srv := NewServer(NewEngine(Options{}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const cells = 2048
	values := make([]float64, cells)
	for i := range values {
		values[i] = 1e-9 * (1 + float64(i)/cells)
	}
	req := SweepRequest{
		Model:  ModelSpec{Platform: "hera", Scenario: 1},
		Axis:   "lambda",
		Values: values,
		Cold:   true,
	}
	buf, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows, sawDrainLine := 0, false
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line %d is not complete JSON (mid-row cut): %q", rows, line)
		}
		if msg, ok := probe["error"].(string); ok {
			if !strings.Contains(msg, "draining") {
				t.Fatalf("trailing error line %q does not name the drain", msg)
			}
			sawDrainLine = true
			break
		}
		rows++
		if rows == 1 {
			// First row is out: the stream is live; now pull the rug.
			srv.StartDrain(20 * time.Millisecond)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawDrainLine {
		t.Fatalf("stream of %d rows ended without a drain error line (drain never cut it)", rows)
	}
	if rows == 0 || rows >= cells {
		t.Fatalf("drain cut nothing: %d of %d rows arrived", rows, cells)
	}
}

// --- RetryClient: the client side of load-shedding ---

func TestRetryClientConvergesOn503(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer ts.Close()

	rc := &RetryClient{MaxAttempts: 5, Base: time.Millisecond, Seed: 1}
	resp, err := rc.Post(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly 3 (2 shed + 1 success) — no storm, no give-up", got)
	}
}

func TestRetryClientDoesNotRetryRequestErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer ts.Close()
	rc := &RetryClient{MaxAttempts: 5, Base: time.Millisecond, Seed: 1}
	resp, err := rc.Post(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want the 400 surfaced", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a non-transient 400, want 1", got)
	}
}

func TestRetryClientBoundedAttemptsSurfaceFinal503(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	rc := &RetryClient{MaxAttempts: 3, Base: time.Millisecond, Seed: 1}
	resp, err := rc.Post(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("final status %d, want the last 503 surfaced with its Retry-After", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", got)
	}
}

func TestRetryClientHonoursRetryAfterFloor(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1") // 1 s, far above the backoff base
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{}`)
	}))
	defer ts.Close()
	// MaxDelay caps the honoured Retry-After at 30 ms: the wait must land
	// between the cap and well under the server's full second.
	rc := &RetryClient{MaxAttempts: 3, Base: time.Millisecond, MaxDelay: 30 * time.Millisecond, Seed: 1}
	start := time.Now()
	resp, err := rc.Post(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Fatalf("retried after %v, before the capped Retry-After floor of 30ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("retried after %v: MaxDelay cap on Retry-After not applied", elapsed)
	}
}

// --- peer warm-fill: export/import round trip ---

func warmFillModels(t *testing.T, n int) []ModelSpec {
	t.Helper()
	specs := make([]ModelSpec, n)
	for i := range specs {
		alpha := 0.05 + 0.01*float64(i)
		specs[i] = ModelSpec{Platform: "hera", Scenario: 1 + i%6, Alpha: &alpha}
	}
	return specs
}

func TestWarmFillRoundTripBitIdentical(t *testing.T) {
	donor := NewEngine(Options{})
	joiner := NewEngine(Options{})

	specs := warmFillModels(t, 6)
	want := make([]optimize.PatternResult, len(specs))
	for i, spec := range specs {
		m, _, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		r, _, err := donor.Optimize(context.Background(), m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	entries := donor.ExportHot(0)
	if len(entries) < len(specs) {
		t.Fatalf("exported %d entries, want at least %d", len(entries), len(specs))
	}
	raw, err := json.Marshal(entries)
	if err != nil {
		t.Fatal(err)
	}
	// The fill crosses a JSON hop exactly as it would between replicas.
	var wire []CacheEntry
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	n, err := joiner.ImportHot(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) {
		t.Fatalf("imported %d of %d entries", n, len(entries))
	}

	for i, spec := range specs {
		m, _, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		got, cached, err := joiner.Optimize(context.Background(), m, optimize.PatternOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("spec %d: joiner solved despite warm-fill", i)
		}
		if got != want[i] {
			t.Fatalf("spec %d: filled result differs from donor's:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if fills := joiner.Stats().CacheFills; fills != uint64(n) {
		t.Fatalf("cache_fills = %d, want %d", fills, n)
	}
}

func TestWarmFillHTTPEndpoints(t *testing.T) {
	donorSrv := NewServer(NewEngine(Options{}))
	donorTS := httptest.NewServer(donorSrv)
	defer donorTS.Close()
	joinerSrv := NewServer(NewEngine(Options{}))
	joinerTS := httptest.NewServer(joinerSrv)
	defer joinerTS.Close()

	// Prime the donor over HTTP.
	for _, spec := range warmFillModels(t, 3) {
		body, _ := json.Marshal(OptimizeRequest{Model: spec})
		resp, err := http.Post(donorTS.URL+"/v1/optimize", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prime status %d", resp.StatusCode)
		}
	}
	hot, err := http.Get(donorTS.URL + "/v1/cache/hot?limit=16")
	if err != nil {
		t.Fatal(err)
	}
	defer hot.Body.Close()
	var entries []CacheEntry
	if err := json.NewDecoder(hot.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("hot export returned %d entries, want 3", len(entries))
	}
	body, _ := json.Marshal(entries)
	resp, err := http.Post(joinerTS.URL+"/v1/cache/fill", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fill FillResponse
	if err := json.NewDecoder(resp.Body).Decode(&fill); err != nil {
		t.Fatal(err)
	}
	if fill.Accepted != 3 || fill.Offered != 3 {
		t.Fatalf("fill accepted %d/%d, want 3/3", fill.Accepted, fill.Offered)
	}

	// The joiner now serves a filled key from cache, bit-identical to the
	// donor's answer.
	spec := warmFillModels(t, 3)[0]
	reqBody, _ := json.Marshal(OptimizeRequest{Model: spec})
	var answers [2]OptimizeResponse
	for i, base := range []string{donorTS.URL, joinerTS.URL} {
		resp, err := http.Post(base+"/v1/optimize", "application/json", strings.NewReader(string(reqBody)))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&answers[i]); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !answers[i].Cached {
			t.Fatalf("server %d did not serve from cache", i)
		}
	}
	if answers[0].T != answers[1].T || answers[0].P != answers[1].P || answers[0].Overhead != answers[1].Overhead {
		t.Fatalf("filled answer differs: %+v vs %+v", answers[0], answers[1])
	}
}

// --- ImportHot rejects garbage without aborting the fill ---

func TestImportHotRejectsMalformedEntriesIndividually(t *testing.T) {
	donor := NewEngine(Options{})
	pl, err := platform.Lookup("hera")
	if err != nil {
		t.Fatal(err)
	}
	m, err := experiments.BuildModel(pl, costmodel.Scenario(1), 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := donor.Optimize(context.Background(), m, optimize.PatternOptions{}); err != nil {
		t.Fatal(err)
	}
	good := donor.ExportHot(1)
	if len(good) != 1 {
		t.Fatalf("want 1 exported entry, got %d", len(good))
	}
	joiner := NewEngine(Options{})
	n, err := joiner.ImportHot([]CacheEntry{
		{Kind: "nonsense", Key: "a#b", Value: json.RawMessage(`{}`)},
		{Kind: KindOptimize, Key: "no-namespace", Value: json.RawMessage(`{}`)},
		{Kind: KindOptimize, Key: "a#opt#x", Value: json.RawMessage(`"not an object"`)},
		good[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("accepted %d entries, want exactly the 1 valid one", n)
	}
}
