package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"amdahlyd/internal/hetero"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/sim"
)

// Peer warm-fill: when a fleet replica joins (or rejoins) the ring, it
// is cold — every request it now owns would pay a full solve that its
// neighbour already paid. The router closes that gap by pulling the
// neighbour's hottest result-cache entries (GET /v1/cache/hot) and
// pushing them into the joiner (POST /v1/cache/fill).
//
// This is sound because every cached value is a pure function of its
// canonical key (solves are deterministic, campaigns are seeded), so a
// transferred entry is bit-identical to what the joiner would have
// solved itself, and float64 fields survive the JSON hop exactly
// (encoding/json emits the shortest representation that parses back to
// the same bits). Compiled core.Frozen kernels are deliberately not
// transferred: they are microseconds to rebuild and carry unexported
// state.

// Cache-entry kinds, one per transferable result cache.
const (
	KindOptimize           = "opt"
	KindMultilevelOptimize = "mlopt"
	KindHeteroOptimize     = "hgopt"
	KindSimulate           = "sim"
	KindMultilevelSimulate = "mlsim"
	KindHeteroSimulate     = "hgsim"
)

// CacheEntry is one transferable cache entry: the canonical key, the
// cache it lives in, and the typed value as raw JSON.
type CacheEntry struct {
	Kind  string          `json:"kind"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// defaultHotLimit bounds a /v1/cache/hot response when the request does
// not say; maxHotLimit bounds it regardless (a fill is a warm-up aid,
// not a full cache dump).
const (
	defaultHotLimit = 256
	maxHotLimit     = 4096
)

// ExportHot snapshots up to limit hot cache entries across the result
// caches, optimizer results first (they are the expensive solves a cold
// replica feels most), then campaign results with the remaining budget.
func (e *Engine) ExportHot(limit int) []CacheEntry {
	if limit <= 0 {
		limit = defaultHotLimit
	}
	if limit > maxHotLimit {
		limit = maxHotLimit
	}
	out := make([]CacheEntry, 0, limit)
	appendEntries := func(kind string, keys []string, marshal func(i int) (json.RawMessage, error)) {
		for i := range keys {
			if len(out) >= limit {
				return
			}
			raw, err := marshal(i)
			if err != nil {
				continue // an unrepresentable value is skipped, not fatal
			}
			out = append(out, CacheEntry{Kind: kind, Key: keys[i], Value: raw})
		}
	}
	marshalAt := func(vals any) func(i int) (json.RawMessage, error) {
		return func(i int) (json.RawMessage, error) {
			switch vs := vals.(type) {
			case []optimize.PatternResult:
				return json.Marshal(vs[i])
			case []multilevel.PatternResult:
				return json.Marshal(vs[i])
			case []hetero.PatternResult:
				return json.Marshal(vs[i])
			case []sim.RunResult:
				return json.Marshal(vs[i])
			case []multilevel.CampaignResult:
				return json.Marshal(vs[i])
			case []sim.HeteroRunResult:
				return json.Marshal(vs[i])
			}
			return nil, fmt.Errorf("service: unknown hot-entry type %T", vals)
		}
	}
	ok, ov := e.optimizes.Hot(limit)
	appendEntries(KindOptimize, ok, marshalAt(ov))
	mk, mv := e.mlOptimizes.Hot(limit - len(out))
	appendEntries(KindMultilevelOptimize, mk, marshalAt(mv))
	hk, hv := e.hgOptimizes.Hot(limit - len(out))
	appendEntries(KindHeteroOptimize, hk, marshalAt(hv))
	sk, sv := e.sims.Hot(limit - len(out))
	appendEntries(KindSimulate, sk, marshalAt(sv))
	msk, msv := e.mlSims.Hot(limit - len(out))
	appendEntries(KindMultilevelSimulate, msk, marshalAt(msv))
	hsk, hsv := e.hgSims.Hot(limit - len(out))
	appendEntries(KindHeteroSimulate, hsk, marshalAt(hsv))
	return out
}

// ImportHot inserts transferred entries into the matching result caches,
// returning how many were accepted. Entries with an unknown kind, a key
// that does not carry a service namespace, or a value that does not
// decode as the kind's result type are rejected individually — one bad
// entry must not abort a fill. Fills never count as solves: optimize and
// simulate call counters are untouched, only the cache_fills stat moves.
func (e *Engine) ImportHot(entries []CacheEntry) (int, error) {
	accepted := 0
	for _, en := range entries {
		// Every legitimate key is "<versioned model key>#<namespace>#…":
		// keys are opaque to the fleet, but a missing namespace marker means
		// the entry cannot have come from ExportHot.
		if en.Key == "" || !strings.Contains(en.Key, "#") {
			continue
		}
		switch en.Kind {
		case KindOptimize:
			var v optimize.PatternResult
			if json.Unmarshal(en.Value, &v) == nil {
				e.optimizes.Add(en.Key, v)
				accepted++
			}
		case KindMultilevelOptimize:
			var v multilevel.PatternResult
			if json.Unmarshal(en.Value, &v) == nil {
				e.mlOptimizes.Add(en.Key, v)
				accepted++
			}
		case KindHeteroOptimize:
			var v hetero.PatternResult
			if json.Unmarshal(en.Value, &v) == nil {
				e.hgOptimizes.Add(en.Key, v)
				accepted++
			}
		case KindSimulate:
			var v sim.RunResult
			if json.Unmarshal(en.Value, &v) == nil {
				e.sims.Add(en.Key, v)
				accepted++
			}
		case KindMultilevelSimulate:
			var v multilevel.CampaignResult
			if json.Unmarshal(en.Value, &v) == nil {
				e.mlSims.Add(en.Key, v)
				accepted++
			}
		case KindHeteroSimulate:
			var v sim.HeteroRunResult
			if json.Unmarshal(en.Value, &v) == nil {
				e.hgSims.Add(en.Key, v)
				accepted++
			}
		}
	}
	e.cacheFills.Add(uint64(accepted))
	return accepted, nil
}

// handleCacheHot serves the warm-fill export: GET /v1/cache/hot?limit=N.
func (s *Server) handleCacheHot(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, s.engine.ExportHot(limit))
}

// FillResponse reports how much of a warm-fill was accepted.
type FillResponse struct {
	Accepted int `json:"accepted"`
	Offered  int `json:"offered"`
}

// handleCacheFill serves the warm-fill import: POST /v1/cache/fill with
// the /v1/cache/hot entry array as body.
func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	// Fills can legitimately exceed the normal request bound (hundreds of
	// result entries); still bound the body — maxHotLimit entries of
	// modest results fit comfortably in 8 MiB.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	var entries []CacheEntry
	if err := dec.Decode(&entries); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad fill body: %w", err))
		return
	}
	if len(entries) > maxHotLimit {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"fill of %d entries exceeds the %d-entry limit", len(entries), maxHotLimit))
		return
	}
	n, err := s.engine.ImportHot(entries)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, FillResponse{Accepted: n, Offered: len(entries)})
}
