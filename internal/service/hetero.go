package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
)

// Heterogeneous results need no service-side version prefix: the model
// key itself is versioned at the core layer (HeteroModel.CacheKey opens
// with "hg1|"), so a layout change bumps every derived cache and flight
// key at once. The service only appends its per-operation namespaces.

// hgOptionsKey canonically encodes the joint heterogeneous optimizer
// options (every field is observable in the result).
func hgOptionsKey(o hetero.PatternOptions) string {
	return optionsKey(o.PatternOptions) + fmt.Sprintf(",maxg=%d", o.MaxGroups)
}

// HeteroOptimize returns the joint heterogeneous optimum (active set,
// work split, per-group patterns) for the compiled topology, memoizing by
// canonical (model, options) key and deduplicating concurrent identical
// requests. The result is bit-identical to hetero.OptimalPattern — the
// engine only adds reuse.
func (e *Engine) HeteroOptimize(ctx context.Context, hm core.HeteroModel, opts hetero.PatternOptions) (res hetero.PatternResult, cached bool, err error) {
	e.hgOptCalls.Add(1)
	hmk, err := hm.CacheKey()
	if err != nil {
		return hetero.PatternResult{}, false, err
	}
	key := hmk + "#opt#" + hgOptionsKey(opts)
	if r, ok := e.hgOptimizes.Get(key); ok {
		return r, true, nil
	}
	v, shared, err := e.flight.do(ctx, key, func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		r, err := hetero.OptimalPattern(hm, opts)
		if err != nil {
			return nil, err
		}
		e.hgOptimizes.Add(key, r)
		return r, nil
	})
	if err != nil {
		e.countCancelled(err)
		return hetero.PatternResult{}, false, err
	}
	return v.(hetero.PatternResult), shared, nil
}

// hgSimKey canonically encodes a heterogeneous campaign request: the
// model key (which pins every group's model, size and the comm term), the
// per-group plan in plan order, and the campaign shape. Workers is
// deliberately excluded — per-run and per-group streams make results
// worker-count independent (pinned by the sim hetero tests).
func hgSimKey(hmk string, plan []hetero.GroupPlan, cfg sim.RunConfig) string {
	var b strings.Builder
	b.WriteString(hmk)
	b.WriteString("#sim#")
	for _, gp := range plan {
		fmt.Fprintf(&b, "%d:%s:%s:%s;", gp.Group,
			core.FormatFloatKey(gp.T), core.FormatFloatKey(gp.P),
			core.FormatFloatKey(gp.Fraction))
	}
	fmt.Fprintf(&b, "%d,%d,%d", cfg.Runs, cfg.Patterns, cfg.Seed)
	return b.String()
}

// validatePlan holds a request-supplied plan to the cache-key standard
// and to the sim layer's preconditions: in-range distinct group indices,
// finite positive T and P, fractions in (0, 1].
func validatePlan(hm core.HeteroModel, plan []hetero.GroupPlan) error {
	if len(plan) == 0 {
		return errors.New("service: heterogeneous plan with no groups")
	}
	if len(plan) > len(hm.Groups) {
		return fmt.Errorf("service: plan with %d entries for %d groups", len(plan), len(hm.Groups))
	}
	seen := make(map[int]bool, len(plan))
	for i, gp := range plan {
		if gp.Group < 0 || gp.Group >= len(hm.Groups) {
			return fmt.Errorf("service: plan entry %d: group index %d outside [0, %d)", i, gp.Group, len(hm.Groups))
		}
		if seen[gp.Group] {
			return fmt.Errorf("service: plan entry %d: duplicate group %d", i, gp.Group)
		}
		seen[gp.Group] = true
		if !(gp.T > 0) || math.IsInf(gp.T, 0) {
			return fmt.Errorf("service: plan entry %d: period T = %g must be positive and finite", i, gp.T)
		}
		if !(gp.P >= 1) || math.IsInf(gp.P, 0) {
			return fmt.Errorf("service: plan entry %d: allocation P = %g must be >= 1 and finite", i, gp.P)
		}
		if !(gp.Fraction > 0 && gp.Fraction <= 1) {
			return fmt.Errorf("service: plan entry %d: work fraction %g outside (0,1]", i, gp.Fraction)
		}
	}
	return nil
}

// heteroRuns lowers a plan to the sim layer: each entry's comm-charged
// model at the plan's active count — exactly the derivation the
// experiments layer uses, so service campaigns are bit-identical to
// library ones.
func heteroRuns(hm core.HeteroModel, plan []hetero.GroupPlan) ([]sim.HeteroGroupRun, error) {
	runs := make([]sim.HeteroGroupRun, len(plan))
	for i, gp := range plan {
		m, err := hm.ActiveModel(gp.Group, len(plan))
		if err != nil {
			return nil, err
		}
		runs[i] = sim.HeteroGroupRun{Model: m, T: gp.T, P: gp.P, Fraction: gp.Fraction}
	}
	return runs, nil
}

// HeteroSimulate runs (or replays from cache) a seeded heterogeneous
// Monte-Carlo campaign for the given per-group plan. Results are
// bit-identical to sim.SimulateHetero on the same plan; concurrent
// identical campaigns run once.
func (e *Engine) HeteroSimulate(ctx context.Context, hm core.HeteroModel, plan []hetero.GroupPlan, runs, patterns int, seed uint64) (res sim.HeteroRunResult, cached bool, err error) {
	e.hgSimCalls.Add(1)
	hmk, err := hm.CacheKey()
	if err != nil {
		return sim.HeteroRunResult{}, false, err
	}
	if err := validatePlan(hm, plan); err != nil {
		return sim.HeteroRunResult{}, false, err
	}
	cfg := sim.RunConfig{Runs: runs, Patterns: patterns, Seed: seed}.WithDefaults()
	cfg.Workers = e.opts.SimWorkers
	key := hgSimKey(hmk, plan, cfg)
	if r, ok := e.hgSims.Get(key); ok {
		return r, true, nil
	}
	v, shared, err := e.flight.do(ctx, key, func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		groups, err := heteroRuns(hm, plan)
		if err != nil {
			return nil, err
		}
		r, err := sim.SimulateHeteroContext(ctx, groups, cfg)
		if err != nil {
			return nil, err
		}
		e.hgSims.Add(key, r)
		return r, nil
	})
	if err != nil {
		e.countCancelled(err)
		return sim.HeteroRunResult{}, false, err
	}
	return v.(sim.HeteroRunResult), shared, nil
}

// HeteroSweepCell is one solved cell of a batched heterogeneous sweep.
type HeteroSweepCell struct {
	Result hetero.PatternResult
	Cached bool
}

// HeteroSweepStream solves an ordered axis of related heterogeneous
// models as one warm-start chain (hetero.SweepSolver) under a single
// scheduler slot, handing each cell to emit as soon as it is solved —
// the same contract as SweepStream. Cold-mode cells are bit-identical to
// HeteroOptimize and share its cache entries in both directions;
// warm-mode cells live under a separate per-cell namespace.
func (e *Engine) HeteroSweepStream(ctx context.Context, models []core.HeteroModel, opts hetero.PatternOptions, cold bool, emit func(i int, c HeteroSweepCell) error) error {
	e.hgSweepCalls.Add(1)
	if len(models) == 0 {
		return errors.New("service: sweep needs at least one cell")
	}
	if len(models) > maxSweepKeyModels {
		return fmt.Errorf("service: sweep of %d cells exceeds the %d-cell limit", len(models), maxSweepKeyModels)
	}
	ns := "#swopt#"
	if cold {
		ns = "#opt#"
	}
	ok := hgOptionsKey(opts)
	keys := make([]string, len(models))
	for i, hm := range models {
		hmk, err := hm.CacheKey()
		if err != nil {
			return err
		}
		keys[i] = hmk + ns + ok
	}
	if err := e.acquire(ctx); err != nil {
		e.countCancelled(err)
		return err
	}
	defer e.release()
	solver := hetero.NewSweepSolver(hetero.SweepOptions{PatternOptions: opts, Cold: cold})
	for i, hm := range models {
		if err := ctx.Err(); err != nil {
			e.countCancelled(err)
			return err
		}
		var cell HeteroSweepCell
		if r, ok := e.hgOptimizes.Get(keys[i]); ok {
			solver.Observe(hm, r)
			cell = HeteroSweepCell{Result: r, Cached: true}
		} else {
			r, err := solver.Solve(hm)
			if err != nil {
				return fmt.Errorf("service: hetero sweep cell %d: %w", i, err)
			}
			e.hgOptimizes.Add(keys[i], r)
			cell = HeteroSweepCell{Result: r}
		}
		if err := emit(i, cell); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// HTTP surface.
// ---------------------------------------------------------------------

// TopologySpec selects a heterogeneous platform the way the experiment
// tools do: inline groups (the platform.Group JSON shape) coupled by a
// comm coefficient, compiled at a Table III scenario with the usual
// alpha/downtime defaults (0.1 and 3600 s, as for ModelSpec). A request
// with the same groups, scenario and calibration parameters compiles the
// identical core.HeteroModel the library would — and therefore returns
// bit-identical numbers.
type TopologySpec struct {
	// Name labels the topology; defaults to "request".
	Name string `json:"name,omitempty"`
	// Comm is the inter-group communication coefficient κ ≥ 0.
	Comm float64 `json:"comm,omitempty"`
	// Groups lists the tiles in topology order (order is meaningful:
	// group indices identify groups in plans and results).
	Groups []platform.Group `json:"groups"`
	// Scenario is the Table III cost scenario (default 1).
	Scenario int `json:"scenario,omitempty"`
	// Alpha is the sequential fraction; null/omitted means 0.1.
	Alpha *float64 `json:"alpha,omitempty"`
	// Downtime D in seconds; null/omitted means 3600.
	Downtime *float64 `json:"downtime,omitempty"`
}

// Build compiles the spec through the library path
// (platform.Topology.Validate → hetero.CompileTopology).
func (s TopologySpec) Build() (core.HeteroModel, platform.Topology, error) {
	name := s.Name
	if name == "" {
		name = "request"
	}
	tp := platform.Topology{Name: name, Comm: s.Comm, Groups: s.Groups}
	scenario := s.Scenario
	if scenario == 0 {
		scenario = 1
	}
	sc := costmodel.Scenario(scenario)
	if !sc.Valid() {
		return core.HeteroModel{}, platform.Topology{}, fmt.Errorf("scenario %d outside 1-6", scenario)
	}
	alpha := 0.1
	if s.Alpha != nil {
		alpha = *s.Alpha
	}
	downtime := 3600.0
	if s.Downtime != nil {
		downtime = *s.Downtime
	}
	hm, err := hetero.CompileTopology(tp, sc, alpha, downtime)
	if err != nil {
		return core.HeteroModel{}, platform.Topology{}, err
	}
	return hm, tp, nil
}

// withComm returns the spec with the comm coefficient replaced by v (the
// hetero sweep's "comm" axis).
func (s TopologySpec) withComm(v float64) TopologySpec {
	s.Comm = v
	return s
}

// HeteroOptions is the JSON shape of hetero.PatternOptions: the shared
// per-group search box plus the active-group cap.
type HeteroOptions struct {
	OptimizeOptions
	MaxGroups int `json:"max_groups,omitempty"`
}

func (o HeteroOptions) pattern() hetero.PatternOptions {
	return hetero.PatternOptions{
		PatternOptions: o.OptimizeOptions.pattern(),
		MaxGroups:      o.MaxGroups,
	}
}

// HeteroOptimizeRequest computes the joint heterogeneous optimum.
type HeteroOptimizeRequest struct {
	Topology TopologySpec  `json:"topology"`
	Options  HeteroOptions `json:"options,omitempty"`
}

// HeteroGroupPlanJSON is one active group's share of the joint optimum.
type HeteroGroupPlanJSON struct {
	Group    int     `json:"group"`
	Name     string  `json:"name,omitempty"`
	Fraction float64 `json:"fraction"`
	T        float64 `json:"t"`
	P        float64 `json:"p"`
	// Overhead is the group's effective overhead A_g (including the comm
	// charge of the active count) per unit of its own work.
	Overhead float64 `json:"overhead"`
	AtPBound bool    `json:"at_p_bound,omitempty"`
}

func groupPlansJSON(tp platform.Topology, plans []hetero.GroupPlan) []HeteroGroupPlanJSON {
	out := make([]HeteroGroupPlanJSON, len(plans))
	for i, gp := range plans {
		out[i] = HeteroGroupPlanJSON{
			Group:    gp.Group,
			Fraction: gp.Fraction,
			T:        gp.T,
			P:        gp.P,
			Overhead: gp.GroupOverhead,
			AtPBound: gp.AtPBound,
		}
		if gp.Group >= 0 && gp.Group < len(tp.Groups) {
			out[i].Name = tp.Groups[gp.Group].Name
		}
	}
	return out
}

// HeteroOptimizeResponse is the solved joint plan.
type HeteroOptimizeResponse struct {
	Overhead float64               `json:"overhead"`
	Active   int                   `json:"active"`
	Groups   []HeteroGroupPlanJSON `json:"groups"`
	Evals    int                   `json:"evals"`
	Cached   bool                  `json:"cached"`
}

// HeteroPlanGroup fixes one group's share of a simulated plan.
type HeteroPlanGroup struct {
	Group    int     `json:"group"`
	T        float64 `json:"t"`
	P        float64 `json:"p"`
	Fraction float64 `json:"fraction"`
}

// HeteroSimulateRequest runs a seeded heterogeneous Monte-Carlo
// campaign. An omitted plan simulates the joint optimum for the topology
// (solved through the same cache as /v1/hetero/optimize) — the
// heterogeneous analogue of amdahl-sim's Theorem 1 defaulting.
type HeteroSimulateRequest struct {
	Topology TopologySpec      `json:"topology"`
	Plan     []HeteroPlanGroup `json:"plan,omitempty"`
	// Options tunes the optimum solved for an omitted plan; ignored when
	// an explicit plan is given.
	Options  HeteroOptions `json:"options,omitempty"`
	Runs     int           `json:"runs,omitempty"`
	Patterns int           `json:"patterns,omitempty"`
	Seed     uint64        `json:"seed,omitempty"`
}

// HeteroGroupSimJSON is one group's simulated share.
type HeteroGroupSimJSON struct {
	Group    int     `json:"group"`
	Name     string  `json:"name,omitempty"`
	Fraction float64 `json:"fraction"`
	T        float64 `json:"t"`
	P        float64 `json:"p"`
	// Overhead summarizes the group's own simulated overhead H_g (per
	// unit of the group's work, before the fraction scaling).
	Overhead SummaryJSON `json:"overhead"`
	// PredictedH is the group's exact-formula overhead at its pattern.
	PredictedH float64 `json:"predicted_overhead"`
}

// HeteroSimulateResponse mirrors sim.HeteroRunResult plus the per-group
// exact-formula predictions for the simulated plan.
type HeteroSimulateResponse struct {
	// Overhead summarizes the per-run makespan overhead max_g x_g·H_g.
	Overhead SummaryJSON          `json:"overhead"`
	Groups   []HeteroGroupSimJSON `json:"groups"`
	// PredictedH is the exact-formula makespan overhead of the plan:
	// max_g x_g·H_g(T_g, P_g).
	PredictedH       float64 `json:"predicted_overhead"`
	FailStops        int64   `json:"fail_stops"`
	SilentDetections int64   `json:"silent_detections"`
	Recoveries       int64   `json:"recoveries"`
	Runs             int     `json:"runs"`
	Patterns         int     `json:"patterns"`
	Cached           bool    `json:"cached"`
}

// HeteroSweepSpec selects the heterogeneous protocol for a sweep axis:
// every cell is solved as a joint (active set, split, T_g, P_g) optimum
// by the heterogeneous warm-start chain, and rows carry the active count
// and per-group plans. The axis must be "comm" — the topology's coupling
// coefficient is the smooth axis of the heterogeneous analysis.
type HeteroSweepSpec struct {
	Topology  TopologySpec `json:"topology"`
	MaxGroups int          `json:"max_groups,omitempty"`
}

func (s *Server) handleHeteroOptimize(w http.ResponseWriter, r *http.Request) {
	var req HeteroOptimizeRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	hm, tp, err := req.Topology.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, cached, err := s.engine.HeteroOptimize(r.Context(), hm, req.Options.pattern())
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, HeteroOptimizeResponse{
		Overhead: res.Overhead,
		Active:   res.Active,
		Groups:   groupPlansJSON(tp, res.Groups),
		Evals:    res.Evals,
		Cached:   cached,
	})
}

func (s *Server) handleHeteroSimulate(w http.ResponseWriter, r *http.Request) {
	var req HeteroSimulateRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	hm, tp, err := req.Topology.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Runs < 0 || req.Patterns < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("runs and patterns must be non-negative"))
		return
	}
	eff := sim.RunConfig{Runs: req.Runs, Patterns: req.Patterns}.WithDefaults()
	// Every group plays its own pattern stream, so the request's work is
	// groups × runs × patterns — budget accordingly.
	groups := len(req.Plan)
	if groups == 0 {
		groups = len(hm.Groups)
	}
	if budget := float64(eff.Runs) * float64(eff.Patterns) * float64(groups); budget > maxRequestPatternBudget {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"campaign budget %d×%d×%d exceeds the per-request limit of %g patterns",
			groups, eff.Runs, eff.Patterns, float64(maxRequestPatternBudget)))
		return
	}
	var plan []hetero.GroupPlan
	if len(req.Plan) == 0 {
		// Default the plan from the joint optimum, through the optimize
		// cache (a prior /v1/hetero/optimize primes this request).
		res, _, err := s.engine.HeteroOptimize(r.Context(), hm, req.Options.pattern())
		if err != nil {
			writeErr(w, statusFor(r.Context(), err), err)
			return
		}
		plan = res.Groups
	} else {
		plan = make([]hetero.GroupPlan, len(req.Plan))
		for i, pg := range req.Plan {
			plan[i] = hetero.GroupPlan{Group: pg.Group, T: pg.T, P: pg.P, Fraction: pg.Fraction}
		}
	}
	res, cached, err := s.engine.HeteroSimulate(r.Context(), hm, plan, req.Runs, req.Patterns, req.Seed)
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	runs, err := heteroRuns(hm, plan)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	gout := make([]HeteroGroupSimJSON, len(plan))
	predicted := 0.0
	for i, gp := range plan {
		//lint:allow frozenloop response assembly: one probe per group, each on its own per-group model
		h := runs[i].Model.Overhead(gp.T, gp.P)
		if gh := gp.Fraction * h; gh > predicted {
			predicted = gh
		}
		gout[i] = HeteroGroupSimJSON{
			Group:      gp.Group,
			Fraction:   gp.Fraction,
			T:          gp.T,
			P:          gp.P,
			Overhead:   summaryJSON(res.GroupOverheads[i]),
			PredictedH: h,
		}
		if gp.Group >= 0 && gp.Group < len(tp.Groups) {
			gout[i].Name = tp.Groups[gp.Group].Name
		}
	}
	writeJSON(w, http.StatusOK, HeteroSimulateResponse{
		Overhead:         summaryJSON(res.Overhead),
		Groups:           gout,
		PredictedH:       predicted,
		FailStops:        res.FailStops,
		SilentDetections: res.SilentDetections,
		Recoveries:       res.Recoveries,
		Runs:             res.Config.Runs,
		Patterns:         res.Config.Patterns,
		Cached:           cached,
	})
}
