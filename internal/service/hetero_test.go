package service

import (
	"net/http"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
)

// testTopologySpec is the request-side fixture: Hera's CPU tile plus a
// small fast low-reliability accelerator group, coupled by comm.
func testTopologySpec(comm float64) TopologySpec {
	pl := platform.Hera()
	cpu := platform.SingleGroup(pl).Groups[0]
	accel := platform.Group{
		Name:             "accel",
		LambdaInd:        50 * pl.LambdaInd,
		FailStopFraction: pl.FailStopFraction,
		SilentFraction:   pl.SilentFraction,
		Size:             128,
		Speed:            8,
		CheckpointCost:   pl.CheckpointCost / 5,
		VerificationCost: pl.VerificationCost / 4,
	}
	return TopologySpec{
		Name:     "hera+accel",
		Comm:     comm,
		Groups:   []platform.Group{cpu, accel},
		Scenario: 1,
	}
}

// TestHeteroOptimizeMatchesLibrary is the acceptance criterion: the
// endpoint must return bit-identical numbers to hetero.OptimalPattern
// (float64 survives a JSON round-trip exactly).
func TestHeteroOptimizeMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	spec := testTopologySpec(1e-6)
	tp := platform.Topology{Name: spec.Name, Comm: spec.Comm, Groups: spec.Groups}
	hm, err := hetero.CompileTopology(tp, costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hetero.OptimalPattern(hm, hetero.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req := HeteroOptimizeRequest{Topology: spec}
	got, code := post[HeteroOptimizeResponse](t, ts, "/v1/hetero/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Overhead != want.Overhead || got.Active != want.Active || len(got.Groups) != len(want.Groups) {
		t.Fatalf("endpoint diverges from the library:\n got %+v\nwant %+v", got, want)
	}
	for i, gp := range want.Groups {
		rg := got.Groups[i]
		if rg.Group != gp.Group || rg.T != gp.T || rg.P != gp.P ||
			rg.Fraction != gp.Fraction || rg.Overhead != gp.GroupOverhead {
			t.Errorf("group %d diverges:\n got %+v\nwant %+v", i, rg, gp)
		}
	}
	if got.Cached {
		t.Error("first request reported cached")
	}
	// The repeat request must be served from the cache, bit-equal.
	again, code := post[HeteroOptimizeResponse](t, ts, "/v1/hetero/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !again.Cached {
		t.Error("repeat request not served from cache")
	}
	if again.Overhead != got.Overhead || again.Active != got.Active {
		t.Errorf("cache replay differs: %+v vs %+v", again, got)
	}
}

// TestHeteroSimulateMatchesLibrary: the campaign endpoint must be
// bit-identical to sim.SimulateHetero on the same plan.
func TestHeteroSimulateMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	spec := testTopologySpec(1e-6)
	tp := platform.Topology{Name: spec.Name, Comm: spec.Comm, Groups: spec.Groups}
	hm, err := hetero.CompileTopology(tp, costmodel.Scenario1, 0.1, 3600)
	if err != nil {
		t.Fatal(err)
	}
	plan := []HeteroPlanGroup{
		{Group: 0, T: 5000, P: 4096, Fraction: 0.7},
		{Group: 1, T: 2000, P: 128, Fraction: 0.3},
	}
	groups := make([]sim.HeteroGroupRun, len(plan))
	for i, pg := range plan {
		m, err := hm.ActiveModel(pg.Group, len(plan))
		if err != nil {
			t.Fatal(err)
		}
		groups[i] = sim.HeteroGroupRun{Model: m, T: pg.T, P: pg.P, Fraction: pg.Fraction}
	}
	want, err := sim.SimulateHetero(groups, sim.RunConfig{Runs: 40, Patterns: 30, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := HeteroSimulateRequest{
		Topology: spec, Plan: plan,
		Runs: 40, Patterns: 30, Seed: 9,
	}
	got, code := post[HeteroSimulateResponse](t, ts, "/v1/hetero/simulate", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Overhead.Mean != want.Overhead.Mean ||
		*got.Overhead.CI95 != want.Overhead.CI95 ||
		got.FailStops != want.FailStops ||
		got.SilentDetections != want.SilentDetections ||
		got.Recoveries != want.Recoveries {
		t.Errorf("endpoint diverges from the library:\n got %+v\nwant %+v", got, want)
	}
	for g := range groups {
		if got.Groups[g].Overhead.Mean != want.GroupOverheads[g].Mean {
			t.Errorf("group %d summary diverges", g)
		}
	}
	// Repeat: bit-identical cache replay.
	again, code := post[HeteroSimulateResponse](t, ts, "/v1/hetero/simulate", req)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("repeat campaign status %d cached=%t", code, again.Cached)
	}
	if again.Overhead.Mean != got.Overhead.Mean {
		t.Error("cache replay differs")
	}
}

// TestHeteroSimulateDefaultsPlan: an omitted plan must simulate the
// joint optimum — the same campaign an explicit optimal plan would run.
func TestHeteroSimulateDefaultsPlan(t *testing.T) {
	_, ts := newTestServer(t)
	spec := testTopologySpec(1e-6)
	opt, code := post[HeteroOptimizeResponse](t, ts, "/v1/hetero/optimize", HeteroOptimizeRequest{Topology: spec})
	if code != http.StatusOK {
		t.Fatalf("optimize status %d", code)
	}
	plan := make([]HeteroPlanGroup, len(opt.Groups))
	for i, g := range opt.Groups {
		plan[i] = HeteroPlanGroup{Group: g.Group, T: g.T, P: g.P, Fraction: g.Fraction}
	}
	explicit, code := post[HeteroSimulateResponse](t, ts, "/v1/hetero/simulate", HeteroSimulateRequest{
		Topology: spec, Plan: plan, Runs: 20, Patterns: 20, Seed: 4,
	})
	if code != http.StatusOK {
		t.Fatalf("explicit-plan status %d", code)
	}
	defaulted, code := post[HeteroSimulateResponse](t, ts, "/v1/hetero/simulate", HeteroSimulateRequest{
		Topology: spec, Runs: 20, Patterns: 20, Seed: 4,
	})
	if code != http.StatusOK {
		t.Fatalf("defaulted-plan status %d", code)
	}
	if defaulted.Overhead.Mean != explicit.Overhead.Mean || !defaulted.Cached {
		t.Errorf("defaulted plan diverges from the explicit optimum (cached=%t):\n got %+v\nwant %+v",
			defaulted.Cached, defaulted.Overhead, explicit.Overhead)
	}
}

// TestHeteroSimulateRejectsBadPlans: request validation fails before
// anything is keyed or scheduled.
func TestHeteroSimulateRejectsBadPlans(t *testing.T) {
	_, ts := newTestServer(t)
	spec := testTopologySpec(0)
	bad := []HeteroSimulateRequest{
		{Topology: spec, Plan: []HeteroPlanGroup{{Group: 5, T: 100, P: 2, Fraction: 1}}},
		{Topology: spec, Plan: []HeteroPlanGroup{
			{Group: 0, T: 100, P: 2, Fraction: 0.5},
			{Group: 0, T: 100, P: 2, Fraction: 0.5},
		}},
		{Topology: spec, Plan: []HeteroPlanGroup{{Group: 0, T: -1, P: 2, Fraction: 1}}},
		{Topology: spec, Plan: []HeteroPlanGroup{{Group: 0, T: 100, P: 2, Fraction: 1.5}}},
	}
	for i, req := range bad {
		req.Runs, req.Patterns = 5, 5
		if _, code := post[HeteroSimulateResponse](t, ts, "/v1/hetero/simulate", req); code != http.StatusBadRequest {
			t.Errorf("bad plan %d: status %d, want 400", i, code)
		}
	}
	// The per-request budget scales with the group count.
	big := HeteroSimulateRequest{Topology: spec, Runs: 1 << 18, Patterns: 1 << 12}
	if _, code := post[HeteroSimulateResponse](t, ts, "/v1/hetero/simulate", big); code != http.StatusUnprocessableEntity {
		t.Errorf("oversized campaign not capped")
	}
}

// TestHeteroSweepAxis: the hetero switch on /v1/sweep must solve the
// comm-axis chain, carry the active count and per-group plans on every
// row, and (in cold mode) be bit-identical to per-cell
// /v1/hetero/optimize — sharing its cache entries.
func TestHeteroSweepAxis(t *testing.T) {
	_, ts := newTestServer(t)
	spec := testTopologySpec(0)
	req := SweepRequest{
		Axis:   "comm",
		Values: []float64{0, 1e-6, 4e-6, 1e-5},
		Cold:   true,
		Hetero: &HeteroSweepSpec{Topology: spec},
	}
	rows, code := postNDJSON(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(rows) != len(req.Values) {
		t.Fatalf("%d rows for %d values", len(rows), len(req.Values))
	}
	for i, row := range rows {
		if row.Method != "hetero" {
			t.Errorf("row %d: method %q", i, row.Method)
		}
		if row.G < 1 || len(row.Groups) != row.G {
			t.Errorf("row %d: malformed plan: G=%d groups=%d", i, row.G, len(row.Groups))
		}
		// Cold cells are bit-identical to the per-cell endpoint…
		cellSpec := spec
		cellSpec.Comm = req.Values[i]
		opt, code := post[HeteroOptimizeResponse](t, ts, "/v1/hetero/optimize", HeteroOptimizeRequest{Topology: cellSpec})
		if code != http.StatusOK {
			t.Fatalf("optimize status %d", code)
		}
		if opt.Overhead != row.Overhead || opt.Active != row.G {
			t.Errorf("row %d: cold sweep differs from /v1/hetero/optimize:\n row %+v\n opt %+v", i, row, opt)
		}
		// …and share cache entries bidirectionally.
		if !opt.Cached {
			t.Errorf("row %d: cold sweep cell did not prime the optimize cache", i)
		}
	}

	// The warm chain agrees with cold within the refinement tolerance.
	warmReq := req
	warmReq.Cold = false
	warmRows, code := postNDJSON(t, ts.URL, warmReq)
	if code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	for i, wr := range warmRows {
		if !wr.Warm {
			t.Errorf("warm cell %d not flagged warm", i)
		}
		if relDiffF(wr.Overhead, rows[i].Overhead) > 1e-8 {
			t.Errorf("cell %d: warm overhead %g vs cold %g", i, wr.Overhead, rows[i].Overhead)
		}
	}

	// A second identical warm sweep replays every cell from cache.
	again, code := postNDJSON(t, ts.URL, warmReq)
	if code != http.StatusOK {
		t.Fatalf("replay status %d", code)
	}
	for i, row := range again {
		if !row.Cached {
			t.Errorf("replay cell %d not cached", i)
		}
		if row.Overhead != warmRows[i].Overhead || row.G != warmRows[i].G {
			t.Errorf("replay cell %d differs", i)
		}
	}
}

// TestHeteroSweepRejectsForeignAxes: only the comm axis recompiles a
// topology; model axes must error loudly instead of sweeping nothing.
func TestHeteroSweepRejectsForeignAxes(t *testing.T) {
	_, ts := newTestServer(t)
	_, code := postNDJSON(t, ts.URL, SweepRequest{
		Axis:   "lambda",
		Values: []float64{1e-9},
		Hetero: &HeteroSweepSpec{Topology: testTopologySpec(0)},
	})
	if code != http.StatusBadRequest {
		t.Errorf("lambda axis on a hetero sweep: status %d, want 400", code)
	}
	// Hetero and multilevel are mutually exclusive protocols.
	frac := 0.1
	_, code = postNDJSON(t, ts.URL, SweepRequest{
		Axis:       "comm",
		Values:     []float64{0},
		Hetero:     &HeteroSweepSpec{Topology: testTopologySpec(0)},
		Multilevel: &MultilevelSweepSpec{InMemFraction: &frac},
	})
	if code != http.StatusBadRequest {
		t.Errorf("hetero+multilevel sweep: status %d, want 400", code)
	}
}
