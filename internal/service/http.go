package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/experiments"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
	"amdahlyd/internal/stats"
)

// maxRequestBody bounds request bodies; every valid request is a small
// JSON object.
const maxRequestBody = 1 << 20

// Campaign budget caps for untrusted requests. The library accepts any
// budget, but over HTTP a single patient client could otherwise pin a
// scheduler slot for hours ({"runs":2e9,"patterns":2e9}) or OOM the
// machine simulator with a billion per-processor clocks. The pattern
// budget allows 4000× the paper's standard 500×500 campaign; the machine
// cap matches the robustness study's own maxMachineProcs.
const (
	maxRequestPatternBudget = 1e9     // runs × patterns per request
	maxRequestMachineProcs  = 1 << 16 // machine-level P per request
	maxRequestSweepCells    = 4096    // axis values per sweep request
)

// ModelSpec selects a model the same way the CLI tools do: a Table II
// platform, a Table III scenario, the sequential fraction, the downtime,
// and an optional λ_ind override. Defaults mirror the CLI flags
// (alpha 0.1, downtime 3600 s), so an amdahl-serve request with the same
// parameters as an amdahl-opt/amdahl-sim invocation builds the identical
// core.Model — and therefore returns bit-identical numbers.
type ModelSpec struct {
	Platform string `json:"platform"`
	Scenario int    `json:"scenario"`
	// Alpha is the sequential fraction; null/omitted means the CLI
	// default 0.1, an explicit 0 selects the perfectly parallel profile
	// (exactly like the -alpha flag).
	Alpha *float64 `json:"alpha,omitempty"`
	// Downtime D in seconds; null/omitted means the CLI default 3600.
	Downtime *float64 `json:"downtime,omitempty"`
	// Lambda overrides the platform's λ_ind when positive (the -lambda
	// flag). Zero (or omitted) keeps the platform rate; a negative or
	// non-finite value is a request error, not a silent fallback.
	Lambda float64 `json:"lambda,omitempty"`
}

// Build resolves the spec into a model plus its platform, following the
// CLI code path (platform.Lookup → WithLambda → experiments.BuildModel).
func (s ModelSpec) Build() (core.Model, platform.Platform, error) {
	name := s.Platform
	if name == "" {
		name = "hera"
	}
	pl, err := platform.Lookup(name)
	if err != nil {
		return core.Model{}, platform.Platform{}, err
	}
	// "Overrides when positive" used to silently ignore a negative (or
	// NaN/Inf) override and serve the platform rate as if the request had
	// been honoured; an explicit bad override must be a request error.
	if s.Lambda < 0 || math.IsNaN(s.Lambda) || math.IsInf(s.Lambda, 0) {
		return core.Model{}, platform.Platform{}, fmt.Errorf(
			"lambda override %g must be positive (omit or zero to keep the platform rate)", s.Lambda)
	}
	if s.Lambda > 0 {
		pl = pl.WithLambda(s.Lambda)
	}
	scenario := s.Scenario
	if scenario == 0 {
		scenario = 1
	}
	sc := costmodel.Scenario(scenario)
	if !sc.Valid() {
		return core.Model{}, platform.Platform{}, fmt.Errorf("scenario %d outside 1-6", scenario)
	}
	alpha := 0.1
	if s.Alpha != nil {
		alpha = *s.Alpha
	}
	downtime := 3600.0
	if s.Downtime != nil {
		downtime = *s.Downtime
	}
	m, err := experiments.BuildModel(pl, sc, alpha, downtime)
	if err != nil {
		return core.Model{}, platform.Platform{}, err
	}
	return m, pl, nil
}

// EvaluateRequest prices PATTERN(T, P). T = 0 selects the Theorem 1
// optimal period at P, P = 0 the platform's deployed processor count —
// the same defaulting as amdahl-sim's -T/-P flags.
type EvaluateRequest struct {
	Model ModelSpec `json:"model"`
	T     float64   `json:"t,omitempty"`
	P     float64   `json:"p,omitempty"`
}

// EvaluateResponse carries the evaluation and cache provenance.
type EvaluateResponse struct {
	Evaluation
	Platform string `json:"platform"`
}

// OptimizeRequest computes the numerical optimum (T*, P*).
type OptimizeRequest struct {
	Model ModelSpec `json:"model"`
	// Options tunes the search box; zero values select the defaults used
	// by every experiment in the paper.
	Options OptimizeOptions `json:"options,omitempty"`
}

// OptimizeOptions is the JSON shape of optimize.PatternOptions.
type OptimizeOptions struct {
	PMin     float64 `json:"p_min,omitempty"`
	PMax     float64 `json:"p_max,omitempty"`
	TMin     float64 `json:"t_min,omitempty"`
	TMax     float64 `json:"t_max,omitempty"`
	IntegerP bool    `json:"integer_p,omitempty"`
}

func (o OptimizeOptions) pattern() optimize.PatternOptions {
	return optimize.PatternOptions{
		PMin: o.PMin, PMax: o.PMax,
		TMin: o.TMin, TMax: o.TMax,
		IntegerP: o.IntegerP,
	}
}

// OptimizeResponse is the solved pattern.
type OptimizeResponse struct {
	T        float64 `json:"t"`
	P        float64 `json:"p"`
	Overhead float64 `json:"overhead"`
	Method   string  `json:"method"`
	Class    string  `json:"class,omitempty"`
	AtPBound bool    `json:"at_p_bound,omitempty"`
	Evals    int     `json:"evals"`
	Cached   bool    `json:"cached"`
}

// SweepRequest solves a whole sweep axis in one request: the base model
// with one parameter — the axis — replaced by each value in turn, the
// cells solved as a single warm-start chain on the engine (one scheduler
// slot, single-flight on the axis, one cache entry per cell). The
// response is NDJSON: one SweepRow per value, streamed in order.
type SweepRequest struct {
	Model ModelSpec `json:"model"`
	// Axis names the swept parameter: "alpha", "lambda" or "downtime"
	// (the Fig. 4/5–6/7 axes).
	Axis string `json:"axis"`
	// Values are the axis coordinates, in sweep order. Adjacent values
	// warm-start each other, so order affects performance — and, at the
	// last-digit level, which refinement path each warm cell takes:
	// warm rows are reproducible only within the documented tolerance
	// of the per-cell optimum, not bitwise across request histories.
	// Use Cold for bitwise reproducibility.
	Values []float64 `json:"values"`
	// Options tunes the search box, as for /v1/optimize.
	Options OptimizeOptions `json:"options,omitempty"`
	// Cold disables warm-starting: every cell pays the full grid scan and
	// is bit-identical to (and shares cache entries with) /v1/optimize
	// (or /v1/multilevel/optimize for a multilevel sweep).
	Cold bool `json:"cold,omitempty"`
	// Multilevel switches the axis to the two-level protocol: every cell
	// is solved as a joint (T, K, P) optimum by the multilevel warm-start
	// chain, and rows carry the segment count K.
	Multilevel *MultilevelSweepSpec `json:"multilevel,omitempty"`
	// Hetero switches the axis to the heterogeneous protocol: the base
	// model is the spec's topology (Model is ignored), the axis must be
	// "comm", and every cell is solved as a joint (active set, split,
	// T_g, P_g) optimum by the heterogeneous warm-start chain. Rows carry
	// the active count G and the per-group plans.
	Hetero *HeteroSweepSpec `json:"hetero,omitempty"`
}

// MultilevelSweepSpec selects the two-level protocol for a sweep axis.
type MultilevelSweepSpec struct {
	// InMemFraction prices the in-memory level at frac·C_P; null/omitted
	// selects the default 1/15 (as for /v1/multilevel/optimize).
	InMemFraction *float64 `json:"in_mem_fraction,omitempty"`
}

func (s *MultilevelSweepSpec) fraction() float64 {
	if s.InMemFraction != nil {
		return *s.InMemFraction
	}
	return defaultInMemFraction
}

// withAxis returns the spec with the axis parameter replaced by v.
func (s ModelSpec) withAxis(axis string, v float64) (ModelSpec, error) {
	switch axis {
	case "alpha":
		s.Alpha = &v
	case "lambda":
		if !(v > 0) {
			return s, fmt.Errorf("lambda axis value %g must be positive", v)
		}
		s.Lambda = v
	case "downtime":
		s.Downtime = &v
	default:
		return s, fmt.Errorf("unknown sweep axis %q (want alpha, lambda or downtime)", axis)
	}
	return s, nil
}

// SweepRow is one NDJSON line of a sweep response.
type SweepRow struct {
	X float64 `json:"x"`
	T float64 `json:"t"`
	// K is the two-level segment count; present only on multilevel
	// sweeps (single-level patterns have no segment structure).
	K        int     `json:"k,omitempty"`
	P        float64 `json:"p"`
	Overhead float64 `json:"overhead"`
	Method   string  `json:"method"`
	Class    string  `json:"class,omitempty"`
	AtPBound bool    `json:"at_p_bound,omitempty"`
	Evals    int     `json:"evals"`
	// G is the active group count and Groups the per-group plans; present
	// only on heterogeneous sweeps (T and P are per-group there, so the
	// scalar fields are left zero).
	G      int                   `json:"g,omitempty"`
	Groups []HeteroGroupPlanJSON `json:"groups,omitempty"`
	// Warm reports that the cell was solved in the warm bracket of its
	// neighbour; Cached that it was served from the per-cell cache.
	Warm   bool `json:"warm"`
	Cached bool `json:"cached"`
}

// SimulateRequest runs a Monte-Carlo campaign; zero-valued fields take
// the same defaults as amdahl-sim's flags (500 runs × 500 patterns,
// T/P defaulting as in EvaluateRequest).
type SimulateRequest struct {
	Model    ModelSpec `json:"model"`
	T        float64   `json:"t,omitempty"`
	P        float64   `json:"p,omitempty"`
	Runs     int       `json:"runs,omitempty"`
	Patterns int       `json:"patterns,omitempty"`
	Seed     uint64    `json:"seed,omitempty"`
	Machine  bool      `json:"machine,omitempty"`
	// Dist names a non-exponential per-processor law (weibull, lognormal,
	// gamma) with Shape as its parameter; requires Machine, exactly like
	// the amdahl-trace/amdahl-exp -dist flags.
	Dist  string  `json:"dist,omitempty"`
	Shape float64 `json:"shape,omitempty"`
}

// SimulateResponse mirrors sim.RunResult.
type SimulateResponse struct {
	T                float64     `json:"t"`
	P                float64     `json:"p"`
	Overhead         SummaryJSON `json:"overhead"`
	MeanPatternTime  SummaryJSON `json:"mean_pattern_time"`
	PredictedH       float64     `json:"predicted_overhead"`
	ExactPatternTime float64     `json:"exact_pattern_time"`
	FailStops        int64       `json:"fail_stops"`
	SilentDetections int64       `json:"silent_detections"`
	Recoveries       int64       `json:"recoveries"`
	Runs             int         `json:"runs"`
	Patterns         int         `json:"patterns"`
	Cached           bool        `json:"cached"`
}

// SummaryJSON is the JSON shape of stats.Summary. NaN spread fields
// (single-run campaigns) marshal as null, which is JSON's honest "-".
type SummaryJSON struct {
	N      int64    `json:"n"`
	Mean   float64  `json:"mean"`
	StdDev *float64 `json:"stddev"`
	StdErr *float64 `json:"stderr"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	CI95   *float64 `json:"ci95"`
}

// summaryJSON converts a stats.Summary, mapping NaN spread fields (which
// encoding/json refuses to marshal) to null.
func summaryJSON(s stats.Summary) SummaryJSON {
	ptr := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return SummaryJSON{
		N:      s.N,
		Mean:   s.Mean,
		StdDev: ptr(s.StdDev),
		StdErr: ptr(s.StdErr),
		Min:    s.Min,
		Max:    s.Max,
		CI95:   ptr(s.CI95),
	}
}

// Server exposes the engine over HTTP with JSON request/response bodies.
type Server struct {
	engine *Engine
	mux    *http.ServeMux

	// draining flips once StartDrain is called: /readyz starts answering
	// 503 immediately (routers stop sending new work), while in-flight
	// requests keep running until the drain grace expires.
	draining atomic.Bool
	// drainCtx is cancelled when the drain grace expires; long-lived
	// streams (sweeps) watch it so they terminate cleanly — whole rows
	// plus a trailing error line — instead of being cut mid-row by the
	// http.Server teardown.
	drainCtx    context.Context
	drainCancel context.CancelFunc
}

// NewServer wires the endpoints onto a fresh mux.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/multilevel/optimize", s.handleMultilevelOptimize)
	s.mux.HandleFunc("POST /v1/multilevel/simulate", s.handleMultilevelSimulate)
	s.mux.HandleFunc("POST /v1/hetero/optimize", s.handleHeteroOptimize)
	s.mux.HandleFunc("POST /v1/hetero/simulate", s.handleHeteroSimulate)
	s.mux.HandleFunc("GET /v1/cache/hot", s.handleCacheHot)
	s.mux.HandleFunc("POST /v1/cache/fill", s.handleCacheFill)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// StartDrain begins a graceful drain: /readyz flips to 503 at once (so a
// fleet router or health checker stops routing here before requests
// start failing), and after grace the drain context is cancelled, which
// cleanly terminates in-flight sweep streams at the next row boundary.
// Call it before http.Server.Shutdown with a grace inside the shutdown
// timeout; calling it again is a no-op.
func (s *Server) StartDrain(grace time.Duration) {
	if s.draining.Swap(true) {
		return
	}
	if grace <= 0 {
		s.drainCancel()
		return
	}
	time.AfterFunc(grace, s.drainCancel)
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Engine returns the underlying engine (for stats and tests).
func (s *Server) Engine() *Engine { return s.engine }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the ResponseWriter: once WriteHeader runs,
	// an encode failure could only produce a 200 with a truncated body.
	// The realistic failure is a non-finite float (e.g. an overhead of
	// +Inf deep in the failure-dominated regime), which encoding/json
	// refuses to marshal; report it as an unprocessable result rather
	// than silently emitting garbage.
	buf, err := json.Marshal(v)
	if err != nil {
		status = http.StatusUnprocessableEntity
		buf, _ = json.Marshal(apiError{Error: fmt.Sprintf(
			"result not representable in JSON (non-finite values — the pattern is likely infeasible at these parameters): %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	buf = append(buf, '\n')
	_, _ = w.Write(buf) // a client gone mid-write has its own error
}

func writeErr(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		// Saturation is transient by construction (the queue drains at
		// MaxConcurrent jobs at a time); tell well-behaved clients when to
		// come back instead of leaving them to guess a backoff.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// statusFor maps engine errors onto HTTP statuses: cancelled requests map
// to 499 (client closed request, nginx convention — the client is gone
// anyway), a saturated scheduler to 503 (retry later — the request was
// fine, the server is full), patterns too failure-dominated to simulate
// to 422, and everything else to 400: every remaining error the engine
// returns is parameter-driven (bad model, search box, campaign config) —
// internal invariant violations would surface as panics, not errors.
func statusFor(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		return 499
	case errors.Is(err, ErrSaturated):
		return http.StatusServiceUnavailable
	case errors.Is(err, sim.ErrErrorPressure):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func decode[T any](w http.ResponseWriter, r *http.Request, into *T) error {
	// MaxBytesReader (not a bare LimitReader) so an oversized body yields
	// a clear "request body too large" error and the connection is
	// protected instead of left mid-body.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// defaultTP resolves the T = 0 / P = 0 conventions shared by evaluate and
// simulate: P defaults to the platform's deployed count, T to the
// Theorem 1 optimum at P — the same lines amdahl-sim runs.
func defaultTP(m core.Model, pl platform.Platform, t, p float64) (float64, float64) {
	if p == 0 {
		p = pl.Processors
	}
	if t == 0 {
		t = m.OptimalPeriodFixedP(p)
	}
	return t, p
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, pl, err := req.Model.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t, p := defaultTP(m, pl, req.T, req.P)
	ev, err := s.engine.Evaluate(m, t, p)
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{Evaluation: ev, Platform: pl.Name})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, _, err := req.Model.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, cached, err := s.engine.Optimize(r.Context(), m, req.Options.pattern())
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, OptimizeResponse{
		T:        res.T,
		P:        res.P,
		Overhead: res.Overhead,
		Method:   res.Method,
		Class:    res.Class.String(),
		AtPBound: res.AtPBound,
		Evals:    res.Evals,
		Cached:   cached,
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, pl, err := req.Model.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t, p := defaultTP(m, pl, req.T, req.P)
	cfg := sim.RunConfig{
		Runs:     req.Runs,
		Patterns: req.Patterns,
		Seed:     req.Seed,
		Machine:  req.Machine,
	}
	if req.Runs < 0 || req.Patterns < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("runs and patterns must be non-negative"))
		return
	}
	eff := cfg.WithDefaults()
	if budget := float64(eff.Runs) * float64(eff.Patterns); budget > maxRequestPatternBudget {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"campaign budget %d×%d exceeds the per-request limit of %g patterns",
			eff.Runs, eff.Patterns, float64(maxRequestPatternBudget)))
		return
	}
	if req.Machine && p > maxRequestMachineProcs {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"machine-level P = %g exceeds the per-request limit of %d processors", p, maxRequestMachineProcs))
		return
	}
	if failures.IsExponentialName(req.Dist) {
		// Parity with the CLI (amdahl-exp robustness): a shape with the
		// exponential law would silently misstate the campaign that ran.
		if req.Shape != 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("shape has no effect with an exponential dist"))
			return
		}
	} else {
		dist, err := failures.ParseDistribution(req.Dist, req.Shape, m.LambdaInd)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cfg.Dist = dist
	}
	res, cached, err := s.engine.Simulate(r.Context(), m, t, p, cfg)
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		T:                t,
		P:                p,
		Overhead:         summaryJSON(res.Overhead),
		MeanPatternTime:  summaryJSON(res.MeanPatternTime),
		PredictedH:       m.Overhead(t, p),
		ExactPatternTime: m.ExactPatternTime(t, p),
		FailStops:        res.FailStops,
		SilentDetections: res.SilentDetections,
		Recoveries:       res.Recoveries,
		Runs:             res.Config.Runs,
		Patterns:         res.Config.Patterns,
		Cached:           cached,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Values) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("sweep needs at least one axis value"))
		return
	}
	if len(req.Values) > maxRequestSweepCells {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"sweep of %d cells exceeds the per-request limit of %d", len(req.Values), maxRequestSweepCells))
		return
	}
	if req.Hetero != nil && req.Multilevel != nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("multilevel and hetero select different protocols; pick one"))
		return
	}
	for i, x := range req.Values {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("axis value %d is not finite", i))
			return
		}
	}
	var models []core.Model
	var heteroModels []core.HeteroModel
	if req.Hetero != nil {
		// The heterogeneous axis sweeps the topology's coupling term: each
		// cell recompiles the topology at the axis value of κ.
		if req.Axis != "comm" {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("unknown hetero sweep axis %q (want comm)", req.Axis))
			return
		}
		heteroModels = make([]core.HeteroModel, len(req.Values))
		for i, x := range req.Values {
			hm, _, err := req.Hetero.Topology.withComm(x).Build()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("comm=%g: %w", x, err))
				return
			}
			heteroModels[i] = hm
		}
	} else {
		models = make([]core.Model, len(req.Values))
		for i, x := range req.Values {
			spec, err := req.Model.withAxis(req.Axis, x)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			m, _, err := spec.Build()
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("%s=%g: %w", req.Axis, x, err))
				return
			}
			models[i] = m
		}
	}
	// Streams also answer to the drain lifecycle: once the server's drain
	// grace expires the chain is cancelled at the next row boundary, and
	// the client sees whole rows plus a trailing "draining" error line —
	// never a row cut in half by process teardown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.drainCtx, cancel)
	defer stopAfter()
	// True streaming: each NDJSON row is written (and flushed) the moment
	// its cell is solved, so the first row of a long axis reaches the
	// client while the chain is still running, and a mid-stream hang-up
	// stops the chain instead of solving the rest for nobody. Rows are
	// marshalled individually so one unrepresentable value (a non-finite
	// overhead) degrades that row to an error line instead of truncating
	// the stream silently.
	flusher, _ := w.(http.Flusher)
	wrote := false
	writeRow := func(i int, row SweepRow) error {
		buf, err := json.Marshal(row)
		if err != nil {
			buf, _ = json.Marshal(apiError{Error: fmt.Sprintf("cell %d not representable in JSON: %v", i, err)})
		}
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return errClientGone
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	var err error
	if req.Hetero != nil {
		hOpts := HeteroOptions{OptimizeOptions: req.Options, MaxGroups: req.Hetero.MaxGroups}
		_, tp, berr := req.Hetero.Topology.Build()
		if berr != nil {
			writeErr(w, http.StatusBadRequest, berr)
			return
		}
		err = s.engine.HeteroSweepStream(ctx, heteroModels, hOpts.pattern(), req.Cold,
			func(i int, c HeteroSweepCell) error {
				return writeRow(i, SweepRow{
					X:        req.Values[i],
					Overhead: c.Result.Overhead,
					Method:   "hetero",
					Evals:    c.Result.Evals,
					G:        c.Result.Active,
					Groups:   groupPlansJSON(tp, c.Result.Groups),
					Warm:     c.Result.Warm,
					Cached:   c.Cached,
				})
			})
	} else if req.Multilevel != nil {
		// The two-level axis: the segment length is closed-form at every
		// (K, P), so period search bounds have no meaning here — reject
		// them loudly instead of silently ignoring half the options.
		if req.Options.TMin != 0 || req.Options.TMax != 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("t_min/t_max have no effect on a multilevel sweep (the segment length is closed-form)"))
			return
		}
		mlOpts := multilevel.PatternOptions{
			PMin: req.Options.PMin, PMax: req.Options.PMax, IntegerP: req.Options.IntegerP,
		}
		err = s.engine.MultilevelSweepStream(ctx, models, req.Multilevel.fraction(), mlOpts, req.Cold,
			func(i int, c MultilevelSweepCell) error {
				return writeRow(i, SweepRow{
					X:        req.Values[i],
					T:        c.Result.T,
					K:        c.Result.K,
					P:        c.Result.P,
					Overhead: c.Result.PredictedH,
					Method:   "multilevel",
					AtPBound: c.Result.AtPBound,
					Evals:    c.Result.Evals,
					Warm:     c.Result.Warm,
					Cached:   c.Cached,
				})
			})
	} else {
		err = s.engine.SweepStream(ctx, models, req.Options.pattern(), req.Cold,
			func(i int, c SweepCell) error {
				return writeRow(i, SweepRow{
					X:        req.Values[i],
					T:        c.Result.T,
					P:        c.Result.P,
					Overhead: c.Result.Overhead,
					Method:   c.Result.Method,
					Class:    c.Result.Class.String(),
					AtPBound: c.Result.AtPBound,
					Evals:    c.Result.Evals,
					Warm:     c.Result.Warm,
					Cached:   c.Cached,
				})
			})
	}
	if err != nil {
		if errors.Is(err, errClientGone) {
			return // nobody left to tell
		}
		// A drain-expiry cancellation is the server's doing, not the
		// client's: report it as such (503 before any rows, a clean
		// trailing error line after) so the client can retry elsewhere.
		if errors.Is(err, context.Canceled) && s.drainCtx.Err() != nil && r.Context().Err() == nil {
			err = errDraining
		}
		if !wrote {
			status := statusFor(r.Context(), err)
			if errors.Is(err, errDraining) {
				w.Header().Set("Retry-After", "1")
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		// Rows already went out, so the status line is spent; degrade to a
		// trailing error line so the client sees why the stream is short.
		buf, _ := json.Marshal(apiError{Error: err.Error()})
		_, _ = w.Write(append(buf, '\n'))
	}
}

// errDraining marks a stream terminated by the server's own drain
// deadline rather than by the client.
var errDraining = errors.New("service: server draining, stream terminated early")

// errClientGone marks a response write that failed because the client
// hung up mid-stream: the sweep chain stops, and there is no one left to
// send an error to.
var errClientGone = errors.New("service: client hung up mid-stream")

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// ReadyResponse is the /readyz body: readiness plus the reason when not.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// handleReady is readiness as distinct from liveness: 503 while the
// scheduler is saturated or the server is draining, so a router or
// health checker stops routing to this replica *before* requests start
// coming back 503 — /healthz keeps reporting liveness regardless.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Reason: "draining"})
	case !s.engine.Ready():
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Reason: "scheduler saturated"})
	default:
		writeJSON(w, http.StatusOK, ReadyResponse{Ready: true})
	}
}
