package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"

	"amdahlyd/internal/core"
	"amdahlyd/internal/multilevel"
)

// Two-level results live under a versioned key extension so a layout
// change in the multilevel result types can never alias the single-level
// namespaces: every multilevel cache and flight key embeds mlKeyVersion.
const mlKeyVersion = "ml1|"

// mlOptionsKey canonically encodes the joint-optimizer options (every
// field is observable in the result).
func mlOptionsKey(o multilevel.PatternOptions) string {
	return fmt.Sprintf("%s,%s,%d,%s,%t",
		core.FormatFloatKey(o.PMin), core.FormatFloatKey(o.PMax),
		o.GridP, core.FormatFloatKey(o.Tol), o.IntegerP)
}

// validateFraction holds the request-supplied in-memory fraction to the
// cache-key standard before it is keyed: NaN never compares equal, so a
// NaN-keyed entry could never be hit or evicted by a repeat request.
func validateFraction(frac float64) error {
	if math.IsNaN(frac) || math.IsInf(frac, 0) {
		return fmt.Errorf("service: in-memory fraction %g must be finite", frac)
	}
	return nil
}

// MultilevelOptimize returns the joint two-level (T*, K*, P*) optimum
// for the model with an in-memory level at frac·C_P, memoizing by
// canonical (model, fraction, options) key under the ml1| namespace and
// deduplicating concurrent identical requests. The result is
// bit-identical to multilevel.OptimalPattern — the engine only adds
// reuse.
func (e *Engine) MultilevelOptimize(ctx context.Context, m core.Model, frac float64, opts multilevel.PatternOptions) (res multilevel.PatternResult, cached bool, err error) {
	e.mlOptCalls.Add(1)
	if err := validateFraction(frac); err != nil {
		return multilevel.PatternResult{}, false, err
	}
	mk, err := m.CacheKey()
	if err != nil {
		return multilevel.PatternResult{}, false, err
	}
	key := mk + "#" + mlKeyVersion + "opt#" + core.FormatFloatKey(frac) + "#" + mlOptionsKey(opts)
	if r, ok := e.mlOptimizes.Get(key); ok {
		return r, true, nil
	}
	v, shared, err := e.flight.do(ctx, key, func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		r, err := multilevel.OptimalPattern(m, multilevel.InMemoryFraction(m, frac), opts)
		if err != nil {
			return nil, err
		}
		e.mlOptimizes.Add(key, r)
		return r, nil
	})
	if err != nil {
		e.countCancelled(err)
		return multilevel.PatternResult{}, false, err
	}
	return v.(multilevel.PatternResult), shared, nil
}

// mlSimKey canonically encodes a two-level campaign request. Workers and
// HOfP are deliberately excluded: per-run streams make results
// worker-count independent, and H(P) is derived from the model and P,
// both already in the key.
func mlSimKey(mk string, frac float64, pat multilevel.Pattern, p float64, cfg multilevel.CampaignConfig) string {
	return fmt.Sprintf("%s#%ssim#%s,%s,%d,%s,%d,%d,%d",
		mk, mlKeyVersion, core.FormatFloatKey(frac),
		core.FormatFloatKey(pat.T), pat.K, core.FormatFloatKey(p),
		cfg.Runs, cfg.Patterns, cfg.Seed)
}

// MultilevelSimulate runs (or replays from cache) a seeded two-level
// Monte-Carlo campaign for PATTERN(T, K) at P processors, with costs
// derived from the model (multilevel.SingleLevelCosts at frac). Results
// are bit-identical to the library path (Simulator.SimulateContext);
// concurrent identical campaigns run once.
func (e *Engine) MultilevelSimulate(ctx context.Context, m core.Model, frac float64, pat multilevel.Pattern, p float64, runs, patterns int, seed uint64) (res multilevel.CampaignResult, cached bool, err error) {
	e.mlSimCalls.Add(1)
	if err := validateFraction(frac); err != nil {
		return multilevel.CampaignResult{}, false, err
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return multilevel.CampaignResult{}, false, fmt.Errorf("service: processor count P = %g must be finite", p)
	}
	mk, err := m.CacheKey()
	if err != nil {
		return multilevel.CampaignResult{}, false, err
	}
	cfg := multilevel.CampaignConfig{
		Runs: runs, Patterns: patterns, Seed: seed,
		HOfP: m.Profile.Overhead(p),
	}.WithDefaults()
	cfg.Workers = e.opts.SimWorkers
	key := mlSimKey(mk, frac, pat, p, cfg)
	if r, ok := e.mlSims.Get(key); ok {
		return r, true, nil
	}
	v, shared, err := e.flight.do(ctx, key, func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		costs, err := multilevel.SingleLevelCosts(m, p, frac)
		if err != nil {
			return nil, err
		}
		lf, ls := m.Rates(p)
		s, err := multilevel.NewSimulator(costs, pat, lf, ls)
		if err != nil {
			return nil, err
		}
		r, err := s.SimulateContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		e.mlSims.Add(key, r)
		return r, nil
	})
	if err != nil {
		e.countCancelled(err)
		return multilevel.CampaignResult{}, false, err
	}
	return v.(multilevel.CampaignResult), shared, nil
}

// MultilevelSweepCell is one solved cell of a batched two-level sweep.
type MultilevelSweepCell struct {
	Result multilevel.PatternResult
	Cached bool
}

// MultilevelSweep solves an ordered axis of related models as one
// two-level warm-start chain (multilevel.SweepSolver): a single
// scheduler slot, single-flight on the whole-axis key, one ml1| cache
// entry per cell. Cold-mode cells are bit-identical to
// MultilevelOptimize and share its cache entries in both directions;
// warm-mode cells live under a separate per-cell namespace, exactly as
// for the single-level sweep.
func (e *Engine) MultilevelSweep(ctx context.Context, models []core.Model, frac float64, opts multilevel.PatternOptions, cold bool) (res []MultilevelSweepCell, shared bool, err error) {
	e.mlSweepCalls.Add(1)
	if len(models) == 0 {
		return nil, false, errors.New("service: sweep needs at least one cell")
	}
	if len(models) > maxSweepKeyModels {
		return nil, false, fmt.Errorf("service: sweep of %d cells exceeds the %d-cell limit", len(models), maxSweepKeyModels)
	}
	if err := validateFraction(frac); err != nil {
		return nil, false, err
	}
	ns := "#" + mlKeyVersion + "swopt#"
	if cold {
		ns = "#" + mlKeyVersion + "opt#"
	}
	fk := core.FormatFloatKey(frac)
	ok := mlOptionsKey(opts)
	keys := make([]string, len(models))
	var flightKey strings.Builder
	flightKey.WriteString(mlKeyVersion)
	flightKey.WriteString("sweep#")
	if cold {
		flightKey.WriteString("cold#")
	}
	flightKey.WriteString(fk)
	flightKey.WriteString("#")
	flightKey.WriteString(ok)
	for i, m := range models {
		mk, err := m.CacheKey()
		if err != nil {
			return nil, false, err
		}
		keys[i] = mk + ns + fk + "#" + ok
		flightKey.WriteString("|")
		flightKey.WriteString(mk)
	}
	v, shared, err := e.flight.do(ctx, flightKey.String(), func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		solver := multilevel.NewSweepSolver(multilevel.SweepOptions{PatternOptions: opts, Cold: cold})
		out := make([]MultilevelSweepCell, len(models))
		for i, m := range models {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if r, ok := e.mlOptimizes.Get(keys[i]); ok {
				solver.Observe(r)
				out[i] = MultilevelSweepCell{Result: r, Cached: true}
				continue
			}
			r, err := solver.Solve(m, multilevel.InMemoryFraction(m, frac))
			if err != nil {
				return nil, fmt.Errorf("service: multilevel sweep cell %d: %w", i, err)
			}
			e.mlOptimizes.Add(keys[i], r)
			out[i] = MultilevelSweepCell{Result: r}
		}
		return out, nil
	})
	if err != nil {
		e.countCancelled(err)
		return nil, false, err
	}
	return v.([]MultilevelSweepCell), shared, nil
}

// MultilevelSweepStream is the streaming counterpart of MultilevelSweep,
// with the same contract as SweepStream: each cell reaches emit as soon
// as the two-level chain solves it, a cancelled ctx or emit error stops
// the chain at the next cell, cache namespaces are shared with the batch
// path, and there is no single-flight.
func (e *Engine) MultilevelSweepStream(ctx context.Context, models []core.Model, frac float64, opts multilevel.PatternOptions, cold bool, emit func(i int, c MultilevelSweepCell) error) error {
	e.mlSweepCalls.Add(1)
	if len(models) == 0 {
		return errors.New("service: sweep needs at least one cell")
	}
	if len(models) > maxSweepKeyModels {
		return fmt.Errorf("service: sweep of %d cells exceeds the %d-cell limit", len(models), maxSweepKeyModels)
	}
	if err := validateFraction(frac); err != nil {
		return err
	}
	ns := "#" + mlKeyVersion + "swopt#"
	if cold {
		ns = "#" + mlKeyVersion + "opt#"
	}
	fk := core.FormatFloatKey(frac)
	ok := mlOptionsKey(opts)
	keys := make([]string, len(models))
	for i, m := range models {
		mk, err := m.CacheKey()
		if err != nil {
			return err
		}
		keys[i] = mk + ns + fk + "#" + ok
	}
	if err := e.acquire(ctx); err != nil {
		e.countCancelled(err)
		return err
	}
	defer e.release()
	solver := multilevel.NewSweepSolver(multilevel.SweepOptions{PatternOptions: opts, Cold: cold})
	for i, m := range models {
		if err := ctx.Err(); err != nil {
			e.countCancelled(err)
			return err
		}
		var cell MultilevelSweepCell
		if r, ok := e.mlOptimizes.Get(keys[i]); ok {
			solver.Observe(r)
			cell = MultilevelSweepCell{Result: r, Cached: true}
		} else {
			r, err := solver.Solve(m, multilevel.InMemoryFraction(m, frac))
			if err != nil {
				return fmt.Errorf("service: multilevel sweep cell %d: %w", i, err)
			}
			e.mlOptimizes.Add(keys[i], r)
			cell = MultilevelSweepCell{Result: r}
		}
		if err := emit(i, cell); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// HTTP surface.
// ---------------------------------------------------------------------

// defaultInMemFraction is the in-memory checkpoint cost as a fraction of
// the disk checkpoint when the request omits it: 1/15, the 20 s-on-300 s
// ratio of the multilevel example study.
const defaultInMemFraction = 1.0 / 15

// MultilevelOptions is the JSON shape of multilevel.PatternOptions. The
// segment length has no search bounds: it is closed-form at every
// (K, P).
type MultilevelOptions struct {
	PMin     float64 `json:"p_min,omitempty"`
	PMax     float64 `json:"p_max,omitempty"`
	IntegerP bool    `json:"integer_p,omitempty"`
}

func (o MultilevelOptions) pattern() multilevel.PatternOptions {
	return multilevel.PatternOptions{PMin: o.PMin, PMax: o.PMax, IntegerP: o.IntegerP}
}

// MultilevelOptimizeRequest computes the joint two-level optimum
// (T*, K*, P*).
type MultilevelOptimizeRequest struct {
	Model ModelSpec `json:"model"`
	// InMemFraction prices the in-memory level at frac·C_P; null/omitted
	// selects the default 1/15, an explicit 0 a free in-memory level.
	InMemFraction *float64          `json:"in_mem_fraction,omitempty"`
	Options       MultilevelOptions `json:"options,omitempty"`
}

func (r MultilevelOptimizeRequest) fraction() float64 {
	if r.InMemFraction != nil {
		return *r.InMemFraction
	}
	return defaultInMemFraction
}

// MultilevelOptimizeResponse is the solved two-level pattern.
type MultilevelOptimizeResponse struct {
	T             float64 `json:"t"`
	K             int     `json:"k"`
	P             float64 `json:"p"`
	Overhead      float64 `json:"overhead"`
	InMemFraction float64 `json:"in_mem_fraction"`
	AtPBound      bool    `json:"at_p_bound,omitempty"`
	Evals         int     `json:"evals"`
	Cached        bool    `json:"cached"`
}

// MultilevelSimulateRequest runs a seeded two-level Monte-Carlo
// campaign. Zero-valued pattern fields default from the model: P to the
// platform's deployed count, K and T to the first-order optimum at that
// P (the two-level analogue of amdahl-sim's Theorem 1 defaulting).
type MultilevelSimulateRequest struct {
	Model         ModelSpec `json:"model"`
	InMemFraction *float64  `json:"in_mem_fraction,omitempty"`
	T             float64   `json:"t,omitempty"`
	K             int       `json:"k,omitempty"`
	P             float64   `json:"p,omitempty"`
	Runs          int       `json:"runs,omitempty"`
	Patterns      int       `json:"patterns,omitempty"`
	Seed          uint64    `json:"seed,omitempty"`
}

func (r MultilevelSimulateRequest) fraction() float64 {
	if r.InMemFraction != nil {
		return *r.InMemFraction
	}
	return defaultInMemFraction
}

// MultilevelSimulateResponse mirrors multilevel.CampaignResult plus the
// first-order prediction for the simulated pattern.
type MultilevelSimulateResponse struct {
	T                float64     `json:"t"`
	K                int         `json:"k"`
	P                float64     `json:"p"`
	InMemFraction    float64     `json:"in_mem_fraction"`
	Overhead         SummaryJSON `json:"overhead"`
	PredictedH       float64     `json:"predicted_overhead"`
	FailStops        int64       `json:"fail_stops"`
	SilentDetections int64       `json:"silent_detections"`
	DiskRecoveries   int64       `json:"disk_recoveries"`
	MemRecoveries    int64       `json:"mem_recoveries"`
	Runs             int         `json:"runs"`
	Patterns         int         `json:"patterns"`
	Cached           bool        `json:"cached"`
}

func (s *Server) handleMultilevelOptimize(w http.ResponseWriter, r *http.Request) {
	var req MultilevelOptimizeRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, _, err := req.Model.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, cached, err := s.engine.MultilevelOptimize(r.Context(), m, req.fraction(), req.Options.pattern())
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, MultilevelOptimizeResponse{
		T:             res.T,
		K:             res.K,
		P:             res.P,
		Overhead:      res.PredictedH,
		InMemFraction: req.fraction(),
		AtPBound:      res.AtPBound,
		Evals:         res.Evals,
		Cached:        cached,
	})
}

func (s *Server) handleMultilevelSimulate(w http.ResponseWriter, r *http.Request) {
	var req MultilevelSimulateRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, pl, err := req.Model.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Runs < 0 || req.Patterns < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("runs and patterns must be non-negative"))
		return
	}
	eff := multilevel.CampaignConfig{Runs: req.Runs, Patterns: req.Patterns}.WithDefaults()
	if budget := float64(eff.Runs) * float64(eff.Patterns); budget > maxRequestPatternBudget {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf(
			"campaign budget %d×%d exceeds the per-request limit of %g patterns",
			eff.Runs, eff.Patterns, float64(maxRequestPatternBudget)))
		return
	}
	frac := req.fraction()
	p := req.P
	if p == 0 {
		p = pl.Processors
	}
	// One cost/rate derivation serves the pattern defaulting and the
	// first-order prediction below (the engine re-derives inside its
	// flight from the same inputs, bit-identically).
	costs, err := multilevel.SingleLevelCosts(m, p, frac)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	lf, ls := m.Rates(p)
	pat := multilevel.Pattern{T: req.T, K: req.K}
	if pat.K == 0 {
		// Default the pattern from the first-order optimum at P, exactly
		// the library sequence a CLI user would run; a given K with an
		// omitted T re-optimizes the segment length for that K.
		plan, err := multilevel.FirstOrder(costs, lf, ls, m.Profile.Overhead(p))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		pat.K = plan.K
		if pat.T == 0 {
			pat.T = plan.T
		}
	}
	if pat.T == 0 {
		pat.T = multilevel.OptimalSegmentLength(costs, pat.K, lf, ls)
	}
	res, cached, err := s.engine.MultilevelSimulate(r.Context(), m, frac, pat, p, req.Runs, req.Patterns, req.Seed)
	if err != nil {
		writeErr(w, statusFor(r.Context(), err), err)
		return
	}
	writeJSON(w, http.StatusOK, MultilevelSimulateResponse{
		T:                pat.T,
		K:                pat.K,
		P:                p,
		InMemFraction:    frac,
		Overhead:         summaryJSON(res.Overhead),
		PredictedH:       multilevel.Overhead(costs, pat, lf, ls, m.Profile.Overhead(p)),
		FailStops:        res.FailStops,
		SilentDetections: res.SilentDetections,
		DiskRecoveries:   res.DiskRecoveries,
		MemRecoveries:    res.MemRecoveries,
		Runs:             res.Config.Runs,
		Patterns:         res.Config.Patterns,
		Cached:           cached,
	})
}
