// Package service is the long-running evaluation layer on top of the
// reproduction: one process that amortizes repeated Amdahl/Young-Daly
// analyses across requests instead of paying a full cold solve per CLI
// invocation.
//
// The engine combines four mechanisms (DESIGN.md, "Service layer"):
//
//   - canonical request keys — core.Model.CacheKey plus exact parameter
//     encodings identify a request independent of representation;
//   - a sharded LRU of compiled core.Frozen evaluators, memoized
//     optimizer results and Monte-Carlo campaign results (all are pure
//     functions of their key: campaigns are seeded, so even simulation
//     results are cacheable bit-exactly);
//   - single-flight deduplication — concurrent identical requests solve
//     once and share the result;
//   - a bounded job scheduler with context cancellation threaded into
//     sim.SimulateContext, so a request hang-up aborts its campaign
//     instead of burning the worker pool.
//
// Every result is bit-identical to the equivalent direct library call
// (and hence to the CLI tools): the service only adds reuse, never a
// different code path.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"

	"amdahlyd/internal/core"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/hetero"
	"amdahlyd/internal/multilevel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/sim"
)

// Options tunes the engine. The zero value serves with sensible bounds.
type Options struct {
	// FrozenCacheSize bounds the compiled-evaluator cache (default 4096
	// entries; a Frozen is ~200 bytes, so the default is well under a
	// megabyte).
	FrozenCacheSize int
	// ResultCacheSize bounds each of the optimizer- and campaign-result
	// caches (default 1024 entries).
	ResultCacheSize int
	// MaxConcurrent bounds the number of optimize/simulate jobs executing
	// at once (default GOMAXPROCS); further requests queue on the
	// scheduler until a slot frees or their context is cancelled.
	// Evaluate requests are never queued — a cached-kernel evaluation is
	// cheaper than the bookkeeping would be.
	MaxConcurrent int
	// SimWorkers is the per-campaign worker count handed to sim.RunConfig
	// (default 1: with MaxConcurrent campaigns in flight the process is
	// already saturated, and per-run streams make the setting invisible
	// in the results).
	SimWorkers int
	// MaxQueued bounds how many jobs may wait for a scheduler slot beyond
	// the MaxConcurrent executing ones. Past the bound the engine sheds
	// load immediately with ErrSaturated (HTTP 503 + Retry-After) instead
	// of accepting an unbounded backlog whose tail would time out anyway.
	// Zero selects the default 8×MaxConcurrent; negative means unbounded
	// (the historical behaviour).
	MaxQueued int
}

func (o Options) withDefaults() Options {
	if o.FrozenCacheSize == 0 {
		o.FrozenCacheSize = 4096
	}
	if o.ResultCacheSize == 0 {
		o.ResultCacheSize = 1024
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.SimWorkers == 0 {
		o.SimWorkers = 1
	}
	if o.MaxQueued == 0 {
		o.MaxQueued = 8 * o.MaxConcurrent
	}
	return o
}

// ErrSaturated reports that the scheduler's wait queue is full: the job
// was rejected without queueing. Clients should retry after a short
// backoff (the HTTP layer maps this to 503 with a Retry-After header).
var ErrSaturated = errors.New("service: scheduler saturated, retry later")

// Engine is the shared evaluation engine. It is safe for concurrent use;
// construct it once per process with NewEngine.
type Engine struct {
	opts Options

	frozen    *lruCache[*core.Frozen]
	optimizes *lruCache[optimize.PatternResult]
	sims      *lruCache[sim.RunResult]
	// mlOptimizes and mlSims are the two-level counterparts, living in
	// their own LRUs under the versioned ml1| key extension (see
	// multilevel.go): two-level results never alias single-level entries.
	mlOptimizes *lruCache[multilevel.PatternResult]
	mlSims      *lruCache[multilevel.CampaignResult]
	// hgOptimizes and hgSims hold the heterogeneous-topology results.
	// Their model keys already carry the hg1| version prefix
	// (core.HeteroModel.CacheKey), so a layout change in the hetero result
	// types bumps the namespace at the core layer.
	hgOptimizes *lruCache[hetero.PatternResult]
	hgSims      *lruCache[sim.HeteroRunResult]
	flight      *flightGroup

	// sem is the bounded job scheduler: one slot per executing job.
	sem chan struct{}
	// queue bounds the waiting set behind sem: a job must claim a queue
	// token before it may block on a scheduler slot, and a full queue is an
	// immediate ErrSaturated. nil means an unbounded queue (MaxQueued < 0).
	queue chan struct{}

	evals        atomic.Uint64
	optCalls     atomic.Uint64
	simCalls     atomic.Uint64
	sweepCalls   atomic.Uint64
	mlOptCalls   atomic.Uint64
	mlSimCalls   atomic.Uint64
	mlSweepCalls atomic.Uint64
	hgOptCalls   atomic.Uint64
	hgSimCalls   atomic.Uint64
	hgSweepCalls atomic.Uint64
	inFlight     atomic.Int64
	queued       atomic.Int64
	cancelled    atomic.Uint64
	saturated    atomic.Uint64
	cacheFills   atomic.Uint64
}

// NewEngine builds an engine with the given options.
func NewEngine(opts Options) *Engine {
	opts = opts.withDefaults()
	var queue chan struct{}
	if opts.MaxQueued > 0 {
		queue = make(chan struct{}, opts.MaxQueued)
	}
	return &Engine{
		queue:       queue,
		opts:        opts,
		frozen:      newLRU[*core.Frozen](opts.FrozenCacheSize),
		optimizes:   newLRU[optimize.PatternResult](opts.ResultCacheSize),
		sims:        newLRU[sim.RunResult](opts.ResultCacheSize),
		mlOptimizes: newLRU[multilevel.PatternResult](opts.ResultCacheSize),
		mlSims:      newLRU[multilevel.CampaignResult](opts.ResultCacheSize),
		hgOptimizes: newLRU[hetero.PatternResult](opts.ResultCacheSize),
		hgSims:      newLRU[sim.HeteroRunResult](opts.ResultCacheSize),
		flight:      newFlightGroup(),
		sem:         make(chan struct{}, opts.MaxConcurrent),
	}
}

// Frozen returns the compiled evaluator for the model at P, compiling at
// most once per (model, P): the per-request cost of a warm evaluate is
// one cache probe instead of a Freeze.
func (e *Engine) Frozen(m core.Model, p float64) (*core.Frozen, error) {
	// Model.CacheKey rejects NaN parameters; hold the request-supplied P
	// to the same standard instead of caching an all-NaN kernel under a
	// "#p=NaN" key (NaN never compares equal, so it could also never be
	// evicted by a repeat request).
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return nil, fmt.Errorf("service: processor count P = %g must be finite", p)
	}
	if p < 1 {
		p = 1 // Freeze clamps identically; clamp before keying so P=0.5 and P=1 share an entry
	}
	mk, err := m.CacheKey()
	if err != nil {
		return nil, err
	}
	key := mk + "#p=" + core.FormatFloatKey(p)
	if fz, ok := e.frozen.Get(key); ok {
		return fz, nil
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	fz := m.Freeze(p)
	e.frozen.Add(key, &fz)
	return &fz, nil
}

// Evaluation is the result of one evaluate request: the exact formulas of
// Proposition 1 and Theorem 1 at a fixed (T, P).
type Evaluation struct {
	T                   float64 `json:"t"`
	P                   float64 `json:"p"`
	Overhead            float64 `json:"overhead"`
	PatternTime         float64 `json:"pattern_time"`
	FirstOrderTime      float64 `json:"first_order_pattern_time"`
	ErrorFree           float64 `json:"error_free_overhead"`
	OptimalPeriodFixedP float64 `json:"optimal_period_fixed_p"`
	Speedup             float64 `json:"speedup"`
}

// Evaluate prices PATTERN(T, P) on the cached compiled evaluator. It is
// bit-identical to the corresponding Model methods (Frozen is
// bit-exact by construction, pinned by the core property tests).
func (e *Engine) Evaluate(m core.Model, t, p float64) (Evaluation, error) {
	e.evals.Add(1)
	if !(t > 0) || math.IsInf(t, 0) || math.IsNaN(t) {
		return Evaluation{}, fmt.Errorf("service: period T = %g must be positive and finite", t)
	}
	fz, err := e.Frozen(m, p)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		T:                   t,
		P:                   fz.P,
		Overhead:            fz.Overhead(t),
		PatternTime:         fz.PatternTime(t),
		FirstOrderTime:      fz.FirstOrderPatternTime(t),
		ErrorFree:           fz.ErrorFreeOverhead(t),
		OptimalPeriodFixedP: fz.OptimalPeriod(),
		Speedup:             fz.Speedup(t),
	}, nil
}

// optionsKey canonically encodes the optimizer options (every field is
// observable in the result).
func optionsKey(o optimize.PatternOptions) string {
	return fmt.Sprintf("%s,%s,%s,%s,%d,%d,%s,%t",
		core.FormatFloatKey(o.PMin), core.FormatFloatKey(o.PMax),
		core.FormatFloatKey(o.TMin), core.FormatFloatKey(o.TMax),
		o.GridP, o.GridT, core.FormatFloatKey(o.Tol), o.IntegerP)
}

// Optimize returns the numerical optimum (T*, P*) for the model,
// memoizing by canonical (model, options) key and deduplicating
// concurrent identical requests. cached reports whether the result was
// served from the cache (attaching to an in-flight solve counts: the
// request did not pay for a solve).
func (e *Engine) Optimize(ctx context.Context, m core.Model, opts optimize.PatternOptions) (res optimize.PatternResult, cached bool, err error) {
	e.optCalls.Add(1)
	mk, err := m.CacheKey()
	if err != nil {
		return optimize.PatternResult{}, false, err
	}
	key := mk + "#opt#" + optionsKey(opts)
	if r, ok := e.optimizes.Get(key); ok {
		return r, true, nil
	}
	v, shared, err := e.flight.do(ctx, key, func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		r, err := optimize.OptimalPattern(m, opts)
		if err != nil {
			return nil, err
		}
		e.optimizes.Add(key, r)
		return r, nil
	})
	if err != nil {
		e.countCancelled(err)
		return optimize.PatternResult{}, false, err
	}
	return v.(optimize.PatternResult), shared, nil
}

// SweepCell is one solved cell of a batched sweep: the optimizer result
// plus whether it was served from the per-cell cache.
type SweepCell struct {
	Result optimize.PatternResult
	Cached bool
}

// maxSweepKeyModels caps how many per-cell canonical keys the sweep
// flight key concatenates; beyond it the request is rejected upstream
// (the HTTP handler enforces a smaller cell cap anyway).
const maxSweepKeyModels = 1 << 16

// Sweep solves an ordered axis of related models as one engine job: a
// single scheduler slot, single-flight on the whole-axis key (concurrent
// identical sweeps solve once), and one optimizer-cache entry per cell.
// Cells are solved by a warm-start chain (optimize.SweepSolver) — each
// optimum brackets the next, which is what makes a cold axis ~an order
// of magnitude cheaper than per-cell /v1/optimize requests. A cached
// cell primes the chain without re-solving.
//
// Cache namespaces: cold-mode cells are bit-identical to OptimalPattern
// and share the /v1/optimize cache entries in both directions; warm-mode
// cells agree within the refinement tolerance but not bitwise, so they
// live under a separate per-cell namespace — a sweep never changes what
// /v1/optimize returns.
func (e *Engine) Sweep(ctx context.Context, models []core.Model, opts optimize.PatternOptions, cold bool) (res []SweepCell, shared bool, err error) {
	e.sweepCalls.Add(1)
	if len(models) == 0 {
		return nil, false, errors.New("service: sweep needs at least one cell")
	}
	if len(models) > maxSweepKeyModels {
		return nil, false, fmt.Errorf("service: sweep of %d cells exceeds the %d-cell limit", len(models), maxSweepKeyModels)
	}
	ns := "#swopt#"
	if cold {
		ns = "#opt#"
	}
	ok := optionsKey(opts)
	keys := make([]string, len(models))
	var flightKey strings.Builder
	flightKey.WriteString("sweep#")
	if cold {
		flightKey.WriteString("cold#")
	}
	flightKey.WriteString(ok)
	for i, m := range models {
		mk, err := m.CacheKey()
		if err != nil {
			return nil, false, err
		}
		keys[i] = mk + ns + ok
		flightKey.WriteString("|")
		flightKey.WriteString(mk)
	}
	v, shared, err := e.flight.do(ctx, flightKey.String(), func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		solver := optimize.NewSweepSolver(optimize.SweepOptions{PatternOptions: opts, Cold: cold})
		out := make([]SweepCell, len(models))
		for i, m := range models {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if r, ok := e.optimizes.Get(keys[i]); ok {
				solver.Observe(m, r)
				out[i] = SweepCell{Result: r, Cached: true}
				continue
			}
			r, err := solver.Solve(m)
			if err != nil {
				return nil, fmt.Errorf("service: sweep cell %d: %w", i, err)
			}
			e.optimizes.Add(keys[i], r)
			out[i] = SweepCell{Result: r}
		}
		return out, nil
	})
	if err != nil {
		e.countCancelled(err)
		return nil, false, err
	}
	return v.([]SweepCell), shared, nil
}

// SweepStream solves the same warm-start axis as Sweep but hands each
// cell to emit as soon as it is solved, instead of materializing the
// whole axis first: the first row of a long sweep reaches the client
// while the chain is still running, and a client hang-up (ctx cancelled
// or emit returning an error) stops the chain at the next cell instead
// of solving the rest for nobody. The per-cell cache namespaces are
// identical to Sweep's, so the two paths warm each other; there is no
// single-flight — an incremental stream has no whole-axis result for a
// second request to attach to.
//
// emit runs on the caller's goroutine while the chain holds its one
// scheduler slot; a non-nil emit error aborts the sweep and is returned
// verbatim.
func (e *Engine) SweepStream(ctx context.Context, models []core.Model, opts optimize.PatternOptions, cold bool, emit func(i int, c SweepCell) error) error {
	e.sweepCalls.Add(1)
	if len(models) == 0 {
		return errors.New("service: sweep needs at least one cell")
	}
	if len(models) > maxSweepKeyModels {
		return fmt.Errorf("service: sweep of %d cells exceeds the %d-cell limit", len(models), maxSweepKeyModels)
	}
	ns := "#swopt#"
	if cold {
		ns = "#opt#"
	}
	ok := optionsKey(opts)
	keys := make([]string, len(models))
	for i, m := range models {
		mk, err := m.CacheKey()
		if err != nil {
			return err
		}
		keys[i] = mk + ns + ok
	}
	if err := e.acquire(ctx); err != nil {
		e.countCancelled(err)
		return err
	}
	defer e.release()
	solver := optimize.NewSweepSolver(optimize.SweepOptions{PatternOptions: opts, Cold: cold})
	for i, m := range models {
		if err := ctx.Err(); err != nil {
			e.countCancelled(err)
			return err
		}
		var cell SweepCell
		if r, ok := e.optimizes.Get(keys[i]); ok {
			solver.Observe(m, r)
			cell = SweepCell{Result: r, Cached: true}
		} else {
			r, err := solver.Solve(m)
			if err != nil {
				return fmt.Errorf("service: sweep cell %d: %w", i, err)
			}
			e.optimizes.Add(keys[i], r)
			cell = SweepCell{Result: r}
		}
		if err := emit(i, cell); err != nil {
			return err
		}
	}
	return nil
}

// countCancelled maintains the operator-facing cancellation counter: only
// genuine cancellations count, not arbitrary errors that happen to race a
// client hang-up.
func (e *Engine) countCancelled(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		e.cancelled.Add(1)
	}
}

// simKey canonically encodes a campaign request. Workers is deliberately
// excluded: per-run streams make campaign results worker-count
// independent (pinned by the sim runner tests), so requests differing
// only in parallelism share a cache entry.
func simKey(mk string, t, p float64, cfg sim.RunConfig) string {
	return fmt.Sprintf("%s#sim#%s,%s,%d,%d,%d,%t,%s",
		mk, core.FormatFloatKey(t), core.FormatFloatKey(p),
		cfg.Runs, cfg.Patterns, cfg.Seed, cfg.Machine, failures.CacheKey(cfg.Dist))
}

// Simulate runs (or replays from cache) a Monte-Carlo campaign. Seeded
// campaigns are pure functions of their configuration, so a cache hit is
// bit-identical to a fresh run; concurrent identical campaigns run once.
// The request context cancels an in-flight campaign between runs once
// every requester has hung up.
func (e *Engine) Simulate(ctx context.Context, m core.Model, t, p float64, cfg sim.RunConfig) (res sim.RunResult, cached bool, err error) {
	e.simCalls.Add(1)
	mk, err := m.CacheKey()
	if err != nil {
		return sim.RunResult{}, false, err
	}
	// Normalize before keying: a zero-valued request and one spelling out
	// the 500×500 defaults are the same campaign and must share a cache
	// entry (Workers is then overridden — like the excluded Workers key
	// component, it cannot affect results).
	cfg = cfg.WithDefaults()
	cfg.Workers = e.opts.SimWorkers
	key := simKey(mk, t, p, cfg)
	if r, ok := e.sims.Get(key); ok {
		return r, true, nil
	}
	v, shared, err := e.flight.do(ctx, key, func(ctx context.Context) (any, error) {
		if err := e.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.release()
		r, err := sim.SimulateContext(ctx, m, t, p, cfg)
		if err != nil {
			return nil, err
		}
		e.sims.Add(key, r)
		return r, nil
	})
	if err != nil {
		e.countCancelled(err)
		return sim.RunResult{}, false, err
	}
	return v.(sim.RunResult), shared, nil
}

// acquire claims a scheduler slot: immediately if one is free, otherwise
// by waiting in the bounded queue until a slot frees or ctx is done. A
// full queue fails fast with ErrSaturated — under overload the honest
// answer is "retry later", not an ever-longer line whose tail times out
// after holding client connections open.
func (e *Engine) acquire(ctx context.Context) error {
	// Fast path: a free slot never touches the queue bound, so an idle
	// engine admits MaxConcurrent jobs regardless of MaxQueued.
	select {
	case e.sem <- struct{}{}:
		e.inFlight.Add(1)
		return nil
	default:
	}
	if e.queue != nil {
		select {
		case e.queue <- struct{}{}:
		default:
			e.saturated.Add(1)
			return ErrSaturated
		}
		defer func() { <-e.queue }()
	}
	e.queued.Add(1)
	defer e.queued.Add(-1)
	select {
	case e.sem <- struct{}{}:
		e.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() {
	e.inFlight.Add(-1)
	<-e.sem
}

// Ready reports whether the scheduler would admit one more job without
// shedding: a free executing slot, or room in the bounded wait queue (an
// unbounded queue is always ready). It is the readiness half of the
// health split — /readyz turns this false into a 503 so a fleet router
// stops routing to a replica *before* it starts failing requests, while
// /healthz keeps answering as long as the process lives.
func (e *Engine) Ready() bool {
	if len(e.sem) < cap(e.sem) {
		return true
	}
	return e.queue == nil || len(e.queue) < cap(e.queue)
}

// Stats is the observable state of the engine.
type Stats struct {
	Evaluations             uint64     `json:"evaluations"`
	OptimizeCalls           uint64     `json:"optimize_calls"`
	SimulateCalls           uint64     `json:"simulate_calls"`
	SweepCalls              uint64     `json:"sweep_calls"`
	MultilevelOptimizeCalls uint64     `json:"multilevel_optimize_calls"`
	MultilevelSimulateCalls uint64     `json:"multilevel_simulate_calls"`
	MultilevelSweepCalls    uint64     `json:"multilevel_sweep_calls"`
	HeteroOptimizeCalls     uint64     `json:"hetero_optimize_calls"`
	HeteroSimulateCalls     uint64     `json:"hetero_simulate_calls"`
	HeteroSweepCalls        uint64     `json:"hetero_sweep_calls"`
	Deduplicated            uint64     `json:"deduplicated"`
	Cancelled               uint64     `json:"cancelled"`
	Saturated               uint64     `json:"saturated"`
	CacheFills              uint64     `json:"cache_fills"`
	InFlight                int64      `json:"in_flight"`
	Queued                  int64      `json:"queued"`
	MaxConcurrent           int        `json:"max_concurrent"`
	MaxQueued               int        `json:"max_queued"`
	FrozenCache             CacheStats `json:"frozen_cache"`
	OptimizeCache           CacheStats `json:"optimize_cache"`
	SimulateCache           CacheStats `json:"simulate_cache"`
	MultilevelOptimizeCache CacheStats `json:"multilevel_optimize_cache"`
	MultilevelSimulateCache CacheStats `json:"multilevel_simulate_cache"`
	HeteroOptimizeCache     CacheStats `json:"hetero_optimize_cache"`
	HeteroSimulateCache     CacheStats `json:"hetero_simulate_cache"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluations:             e.evals.Load(),
		OptimizeCalls:           e.optCalls.Load(),
		SimulateCalls:           e.simCalls.Load(),
		SweepCalls:              e.sweepCalls.Load(),
		MultilevelOptimizeCalls: e.mlOptCalls.Load(),
		MultilevelSimulateCalls: e.mlSimCalls.Load(),
		MultilevelSweepCalls:    e.mlSweepCalls.Load(),
		HeteroOptimizeCalls:     e.hgOptCalls.Load(),
		HeteroSimulateCalls:     e.hgSimCalls.Load(),
		HeteroSweepCalls:        e.hgSweepCalls.Load(),
		Deduplicated:            e.flight.Deduped(),
		Cancelled:               e.cancelled.Load(),
		Saturated:               e.saturated.Load(),
		CacheFills:              e.cacheFills.Load(),
		InFlight:                e.inFlight.Load(),
		Queued:                  e.queued.Load(),
		MaxConcurrent:           e.opts.MaxConcurrent,
		MaxQueued:               e.opts.MaxQueued,
		FrozenCache:             e.frozen.Stats(),
		OptimizeCache:           e.optimizes.Stats(),
		SimulateCache:           e.sims.Stats(),
		MultilevelOptimizeCache: e.mlOptimizes.Stats(),
		MultilevelSimulateCache: e.mlSims.Stats(),
		HeteroOptimizeCache:     e.hgOptimizes.Stats(),
		HeteroSimulateCache:     e.hgSims.Stats(),
	}
}
