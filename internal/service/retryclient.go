package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"amdahlyd/internal/backoff"
)

// RetryClient is the client half of the load-shedding contract: the
// server sheds with 503 + Retry-After when its bounded queue is full,
// and this client converges on that signal — bounded attempts,
// exponential backoff with deterministic splitmix64 jitter (the shared
// internal/backoff schedule the campaign executor uses), and the
// server's Retry-After honoured as a floor — instead of hammering a
// saturated replica into a retry storm. The fleet router, the fleet
// tests and any campaign-style HTTP driver all go through it.
//
// Only transport errors and explicitly-transient statuses (503, 502,
// 504) are retried; every request in this API is idempotent (responses
// are pure functions of the request), so replaying a request that may
// have half-executed is always safe.
type RetryClient struct {
	// Client is the underlying HTTP client (default http.DefaultClient).
	Client *http.Client
	// MaxAttempts bounds total tries per call (default 4).
	MaxAttempts int
	// Base is the first backoff delay (default 50 ms); attempt n waits
	// Base·2^(n-1) plus up to 100% deterministic jitter, or the server's
	// Retry-After when that is longer.
	Base time.Duration
	// MaxDelay caps any single wait, including a server-requested
	// Retry-After (default 2 s) — a misbehaving server must not park the
	// client forever.
	MaxDelay time.Duration
	// Seed decorrelates the jitter streams of co-failing clients; a fleet
	// router seeds each peer slot differently.
	Seed uint64
}

func (c *RetryClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *RetryClient) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *RetryClient) base() time.Duration {
	if c.Base > 0 {
		return c.Base
	}
	return 50 * time.Millisecond
}

func (c *RetryClient) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 2 * time.Second
}

// RetryableStatus reports whether an HTTP status is transient by this
// API's contract: 503 is the scheduler shedding load, 502/504 are a
// dying or unreachable upstream.
func RetryableStatus(status int) bool {
	return status == http.StatusServiceUnavailable ||
		status == http.StatusBadGateway ||
		status == http.StatusGatewayTimeout
}

// RetryAfter parses a response's Retry-After header as delta-seconds,
// returning 0 when absent or unparseable (HTTP-date forms are not used
// by this API).
func RetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Do sends the request, retrying transport errors and transient statuses
// up to MaxAttempts with backoff. body is re-sent from the same bytes on
// every attempt. The returned response's Body is open exactly when err
// is nil or the final attempt ended in a non-OK status the caller wants
// to inspect; retried responses are drained and closed internally.
func (c *RetryClient) Do(ctx context.Context, method, url, contentType string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.client().Do(req)
		switch {
		case err != nil:
			lastErr = err
		case !RetryableStatus(resp.StatusCode):
			return resp, nil
		default:
			lastErr = fmt.Errorf("service: %s %s: transient status %d", method, url, resp.StatusCode)
		}
		if attempt >= c.maxAttempts() || ctx.Err() != nil {
			if resp != nil && err == nil {
				// Surface the final transient response (with its Retry-After)
				// rather than hiding it behind an error string.
				return resp, nil
			}
			return nil, fmt.Errorf("service: giving up after %d attempts: %w", attempt, lastErr)
		}
		delay := backoff.Delay(c.base(), attempt, c.Seed)
		// Honour the server's Retry-After as a floor: it knows its queue.
		if ra := RetryAfter(resp); ra > delay {
			delay = ra
		}
		if lim := c.maxDelay(); delay > lim {
			delay = lim
		}
		if resp != nil {
			drainClose(resp)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Get is Do for GET requests.
func (c *RetryClient) Get(ctx context.Context, url string) (*http.Response, error) {
	return c.Do(ctx, http.MethodGet, url, "", nil)
}

// Post is Do for JSON POST requests.
func (c *RetryClient) Post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	return c.Do(ctx, http.MethodPost, url, "application/json", body)
}

// drainClose discards a response body and closes it, keeping the
// underlying connection reusable.
func drainClose(resp *http.Response) {
	const drainLimit = 1 << 20
	buf := make([]byte, 4096)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		n += int64(k)
		if err != nil || n > drainLimit {
			break
		}
	}
	resp.Body.Close()
}
