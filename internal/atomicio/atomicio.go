// Package atomicio is the shared crash-safe file writer: every artifact
// the drivers emit (trace CSVs, figure CSVs, campaign cell results,
// reports) goes through write-temp-then-rename, so a process killed at
// any instant leaves either the previous file or the complete new one —
// never a truncated artifact that a later resume would trust.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the output of write to path atomically: the bytes go
// to a unique temp file in the same directory (rename is only atomic
// within a filesystem), are flushed and fsynced, and the temp file is
// renamed over path. On any error the temp file is removed and path is
// left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: flushing %s: %w", path, err)
	}
	// Sync before rename: without it a power loss after the rename could
	// surface the new name with missing content on some filesystems.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}

// WriteFileBytes is WriteFile for a fully materialized payload.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
