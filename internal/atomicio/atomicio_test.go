package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteFileBytes(path, []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("content %q", data)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "new" {
		t.Errorf("content %q, want new", data)
	}
}

// TestWriteFileErrorLeavesTargetUntouched is the crash-safety contract: a
// failing writer must neither clobber the existing file nor leave a temp
// file behind.
func TestWriteFileErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "intact" {
		t.Errorf("existing file clobbered: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	if err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}
