package sim

import (
	"errors"
	"fmt"

	"amdahlyd/internal/core"
	"amdahlyd/internal/rng"
)

// Machine is the machine-level discrete-event simulator: every one of the
// P processors is an independent exponential error source with rate
// λ_ind, each error independently fail-stop with probability f. The job
// runs the VC protocol on top. It validates the aggregated-rate model
// used by the analysis and by Protocol: the superposition of P
// per-processor processes is a platform process of rate P·λ_ind
// (Proposition 1.2 of [13]), and the two simulators must agree
// statistically on every observable.
//
// Model-faithful details:
//   - silent errors arriving while the job is verifying, checkpointing or
//     recovering are discarded (the paper protects I/O and verification
//     from silent corruption);
//   - no error of any kind strikes during downtime (per-processor error
//     clocks are paused);
//   - a fail-stop error anywhere aborts the pattern: downtime, recovery,
//     full re-execution.
type Machine struct {
	procs     int
	lambdaInd float64
	failFrac  float64
	// invLambdaInd caches 1/λ_ind so every per-processor arrival draw is
	// one log and one multiply (0 when λ_ind = 0, in which case no error
	// events are ever scheduled).
	invLambdaInd float64

	t          float64
	checkpoint float64
	recovery   float64
	verify     float64
	downtime   float64
}

// NewMachine builds a machine-level simulator for PATTERN(T, P) under the
// model. P must be an integer processor count.
func NewMachine(m core.Model, t float64, procs int) (*Machine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if t <= 0 || procs < 1 {
		return nil, fmt.Errorf("sim: invalid machine pattern T=%g, P=%d", t, procs)
	}
	p := float64(procs)
	lf, ls := m.Rates(p)
	if expectedIters(lf, ls, t, m.Res.Verification.At(p), m.Res.Checkpoint.At(p),
		m.Res.Recovery.At(p)) > maxSimIters {
		return nil, ErrErrorPressure
	}
	mach := &Machine{
		procs:      procs,
		lambdaInd:  m.LambdaInd,
		failFrac:   m.FailStopFrac,
		t:          t,
		checkpoint: m.Res.Checkpoint.At(p),
		recovery:   m.Res.Recovery.At(p),
		verify:     m.Res.Verification.At(p),
		downtime:   m.Res.Downtime,
	}
	if mach.lambdaInd > 0 {
		mach.invLambdaInd = 1 / mach.lambdaInd
	}
	return mach, nil
}

// machPhase enumerates the job states of the machine-level state machine.
type machPhase int

const (
	phaseComputing machPhase = iota
	phaseVerifying
	phaseCheckpointing
	phaseRecovering
)

// SimulateRun plays the requested number of patterns on the event engine
// and returns the same statistics as the pattern-level simulator.
func (mc *Machine) SimulateRun(patterns int, r *rng.Rand) (PatternStats, error) {
	if patterns < 1 {
		return PatternStats{}, errors.New("sim: need at least one pattern")
	}
	if r == nil {
		return PatternStats{}, errors.New("sim: nil rng")
	}

	var (
		eng   Engine
		st    PatternStats
		phase machPhase
		// silentPending records an undetected corruption of the current
		// pattern's computation.
		silentPending bool
		// segmentDone is the pending end-of-segment event.
		segmentDone *Scheduled
		// errEvents holds each processor's pending error event.
		errEvents = make([]*Scheduled, mc.procs)
		done      bool
	)

	// Forward declarations for the mutually recursive handlers.
	var startPattern, startSegment func()
	var onSegmentDone func()
	var failStop, detectAndRecover func()
	var scheduleProcError func(proc int, extraDelay float64)

	scheduleProcError = func(proc int, extraDelay float64) {
		if mc.lambdaInd == 0 {
			return
		}
		delay := extraDelay + r.ExpInv(mc.invLambdaInd)
		errEvents[proc] = eng.Schedule(delay, func() {
			if done {
				return
			}
			isFailStop := r.Float64() < mc.failFrac
			// Re-arm this processor's error clock first: arrivals are a
			// Poisson process per processor regardless of job state.
			p := proc
			scheduleProcError(p, 0)
			if isFailStop {
				failStop()
			} else if phase == phaseComputing {
				// Silent corruption of computation; detected later by
				// the verification.
				silentPending = true
			}
			// Silent errors during V/C/R are discarded: those phases
			// are protected (Section II, resilience model).
		})
	}

	// Because exponential arrivals are memoryless, pausing a clock for a
	// downtime and resuming it is statistically identical to discarding
	// the pending arrival and drawing a fresh one after the pause. On
	// downtime, cancel all pending arrivals and re-arm them with a fresh
	// draw delayed by the downtime ("no error strikes during downtime").
	restartClocksAfter := func(pause float64) {
		for i, ev := range errEvents {
			if ev != nil {
				ev.Cancel()
			}
			scheduleProcError(i, pause)
		}
	}

	startSegment = func() {
		var length float64
		switch phase {
		case phaseComputing:
			length = mc.t
		case phaseVerifying:
			length = mc.verify
		case phaseCheckpointing:
			length = mc.checkpoint
		case phaseRecovering:
			length = mc.recovery
		}
		segmentDone = eng.Schedule(length, onSegmentDone)
	}

	onSegmentDone = func() {
		switch phase {
		case phaseComputing:
			phase = phaseVerifying
			startSegment()
		case phaseVerifying:
			if silentPending {
				detectAndRecover()
				return
			}
			phase = phaseCheckpointing
			startSegment()
		case phaseCheckpointing:
			st.Patterns++
			if st.Patterns >= int64(patterns) {
				done = true
				for _, ev := range errEvents {
					if ev != nil {
						ev.Cancel()
					}
				}
				return
			}
			startPattern()
		case phaseRecovering:
			startPattern()
		}
	}

	failStop = func() {
		st.FailStops++
		if segmentDone != nil {
			segmentDone.Cancel()
		}
		silentPending = false
		// Downtime: errors cannot strike; re-arm clocks past it.
		restartClocksAfter(mc.downtime)
		phase = phaseRecovering
		st.Recoveries++
		segmentDone = eng.Schedule(mc.downtime+mc.recovery, onSegmentDone)
	}

	detectAndRecover = func() {
		st.SilentDetections++
		silentPending = false
		phase = phaseRecovering
		st.Recoveries++
		startSegment()
	}

	startPattern = func() {
		silentPending = false
		phase = phaseComputing
		startSegment()
	}

	for i := 0; i < mc.procs; i++ {
		scheduleProcError(i, 0)
	}
	startPattern()
	eng.Run()

	st.Elapsed = eng.Now()
	if st.Patterns != int64(patterns) {
		return st, fmt.Errorf("sim: machine run ended with %d/%d patterns", st.Patterns, patterns)
	}
	return st, nil
}

// TheoreticalPlatformRate returns P·λ_ind, the superposed error rate the
// aggregated model assumes; tests compare it against the observed rate.
func (mc *Machine) TheoreticalPlatformRate() float64 {
	return float64(mc.procs) * mc.lambdaInd
}
