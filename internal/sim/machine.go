package sim

import (
	"errors"
	"fmt"

	"amdahlyd/internal/core"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/rng"
)

// Machine is the machine-level discrete-event simulator: every one of the
// P processors is an independent error source — exponential with rate
// λ_ind by default, or any failures.Distribution renewal process via
// NewMachineDist — each error independently fail-stop with probability f.
// The job runs the VC protocol on top. In the exponential configuration
// it validates the aggregated-rate model used by the analysis and by
// Protocol: the superposition of P per-processor processes is a platform
// process of rate P·λ_ind (Proposition 1.2 of [13]), and the two
// simulators must agree statistically on every observable. In the
// non-exponential configurations it is the pricing oracle of the
// robustness studies — no aggregated fast path exists, because only the
// exponential family is closed under superposition.
//
// Model-faithful details:
//   - silent errors arriving while the job is verifying, checkpointing or
//     recovering are discarded (the paper protects I/O and verification
//     from silent corruption);
//   - no error of any kind strikes during downtime (per-processor error
//     clocks are paused);
//   - a fail-stop error anywhere aborts the pattern: downtime, recovery,
//     full re-execution.
type Machine struct {
	procs     int
	lambdaInd float64
	failFrac  float64
	// invLambdaInd caches 1/λ_ind so every per-processor arrival draw is
	// one log and one multiply (0 when λ_ind = 0, in which case no error
	// events are ever scheduled).
	invLambdaInd float64
	// dist, when non-nil, replaces the exponential law for per-processor
	// inter-arrival times. The exponential fast path keeps dist nil so
	// its draw sequence stays bit-identical to the historical simulator.
	dist failures.Distribution

	t          float64
	checkpoint float64
	recovery   float64
	verify     float64
	downtime   float64
}

// NewMachine builds a machine-level simulator for PATTERN(T, P) under the
// model, with exponential per-processor arrivals. P must be an integer
// processor count.
func NewMachine(m core.Model, t float64, procs int) (*Machine, error) {
	return newMachine(m, t, procs, nil)
}

// NewMachineDist builds a machine-level simulator whose per-processor
// inter-arrival times follow the given renewal law instead of the
// model's exponential. The distribution should be calibrated to the
// model's MTBF (mean 1/λ_ind) for the platform pressure to stay
// comparable; the error-pressure guard is recomputed from the law's
// actual mean, so a miscalibrated distribution is rejected rather than
// allowed to swamp the simulator. Passing an Exponential distribution
// is valid but takes the generic renewal path; use NewMachine for the
// bit-pinned exponential fast path.
func NewMachineDist(m core.Model, t float64, procs int, dist failures.Distribution) (*Machine, error) {
	if dist == nil {
		return nil, errors.New("sim: nil distribution (use NewMachine for the exponential fast path)")
	}
	// An invalid (e.g. infinite) mean would zero the effective rate and
	// walk straight past the error-pressure guard.
	if err := failures.ValidateMean(dist); err != nil {
		return nil, err
	}
	return newMachine(m, t, procs, dist)
}

func newMachine(m core.Model, t float64, procs int, dist failures.Distribution) (*Machine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if t <= 0 || procs < 1 {
		return nil, fmt.Errorf("sim: invalid machine pattern T=%g, P=%d", t, procs)
	}
	p := float64(procs)
	lf, ls := m.Rates(p)
	if dist != nil {
		// Guard with the law's true pressure, not the model's λ_ind: an
		// uncalibrated distribution (mean far below the MTBF) would
		// otherwise bypass the error-pressure check and the run could
		// effectively never complete a pattern. The exponential-form
		// estimate is an approximation for non-memoryless laws but the
		// mean arrival rate is the right first-order input.
		lambdaEff := 1 / dist.Mean()
		lf = m.FailStopFrac * lambdaEff * p
		ls = m.SilentFrac * lambdaEff * p
	}
	if expectedIters(lf, ls, t, m.Res.Verification.At(p), m.Res.Checkpoint.At(p),
		m.Res.Recovery.At(p)) > maxSimIters {
		return nil, ErrErrorPressure
	}
	mach := &Machine{
		procs:      procs,
		lambdaInd:  m.LambdaInd,
		failFrac:   m.FailStopFrac,
		dist:       dist,
		t:          t,
		checkpoint: m.Res.Checkpoint.At(p),
		recovery:   m.Res.Recovery.At(p),
		verify:     m.Res.Verification.At(p),
		downtime:   m.Res.Downtime,
	}
	if mach.lambdaInd > 0 {
		mach.invLambdaInd = 1 / mach.lambdaInd
	}
	return mach, nil
}

// machPhase enumerates the job states of the machine-level state machine.
type machPhase int

const (
	phaseComputing machPhase = iota
	phaseVerifying
	phaseCheckpointing
	phaseRecovering
)

// SimulateRun plays the requested number of patterns on the event engine
// and returns the same statistics as the pattern-level simulator.
func (mc *Machine) SimulateRun(patterns int, r *rng.Rand) (PatternStats, error) {
	if patterns < 1 {
		return PatternStats{}, errors.New("sim: need at least one pattern")
	}
	if r == nil {
		return PatternStats{}, errors.New("sim: nil rng")
	}

	var (
		eng   Engine
		st    PatternStats
		phase machPhase
		// silentPending records an undetected corruption of the current
		// pattern's computation.
		silentPending bool
		// segmentDone is the pending end-of-segment event.
		segmentDone *Scheduled
		// errEvents holds each processor's pending error event.
		errEvents = make([]*Scheduled, mc.procs)
		done      bool
	)

	// Forward declarations for the mutually recursive handlers.
	var startPattern, startSegment func()
	var onSegmentDone func()
	var failStop, detectAndRecover func()
	var armProc func(proc int, delay float64)

	// drawInterArrival samples the next per-processor gap: exponential on
	// the fast path (one log, one multiply — the historical simulator's
	// exact draw), the renewal law otherwise.
	drawInterArrival := func() float64 {
		if mc.dist != nil {
			return mc.dist.Sample(r)
		}
		return r.ExpInv(mc.invLambdaInd)
	}

	// armProc schedules the processor's next error at a known delay; the
	// handler draws the following gap itself, so arrivals form a renewal
	// process per processor regardless of job state.
	armProc = func(proc int, delay float64) {
		errEvents[proc] = eng.Schedule(delay, func() {
			if done {
				return
			}
			isFailStop := r.Float64() < mc.failFrac
			// Re-arm this processor's error clock first: the next renewal
			// interval starts at this arrival.
			armProc(proc, drawInterArrival())
			if isFailStop {
				failStop()
			} else if phase == phaseComputing {
				// Silent corruption of computation; detected later by
				// the verification.
				silentPending = true
			}
			// Silent errors during V/C/R are discarded: those phases
			// are protected (Section II, resilience model).
		})
	}

	scheduleProcError := func(proc int, extraDelay float64) {
		if mc.lambdaInd == 0 && mc.dist == nil {
			return
		}
		armProc(proc, extraDelay+drawInterArrival())
	}

	// Downtime pauses every per-processor error clock ("no error strikes
	// during downtime"). For the memoryless exponential, discarding the
	// pending arrival and drawing a fresh one after the pause is
	// statistically identical to pausing — and is what the historical
	// simulator did, so the fast path keeps that exact draw sequence. A
	// renewal process remembers its age, so the generic path must shift
	// the pending arrival past the pause instead of redrawing it.
	restartClocksAfter := func(pause float64) {
		for i, ev := range errEvents {
			if mc.dist == nil {
				if ev != nil {
					ev.Cancel()
				}
				scheduleProcError(i, pause)
				continue
			}
			if ev == nil {
				continue
			}
			remaining := ev.Time() - eng.Now()
			ev.Cancel()
			armProc(i, pause+remaining)
		}
	}

	startSegment = func() {
		var length float64
		switch phase {
		case phaseComputing:
			length = mc.t
		case phaseVerifying:
			length = mc.verify
		case phaseCheckpointing:
			length = mc.checkpoint
		case phaseRecovering:
			length = mc.recovery
		}
		segmentDone = eng.Schedule(length, onSegmentDone)
	}

	onSegmentDone = func() {
		switch phase {
		case phaseComputing:
			phase = phaseVerifying
			startSegment()
		case phaseVerifying:
			if silentPending {
				detectAndRecover()
				return
			}
			phase = phaseCheckpointing
			startSegment()
		case phaseCheckpointing:
			st.Patterns++
			if st.Patterns >= int64(patterns) {
				done = true
				for _, ev := range errEvents {
					if ev != nil {
						ev.Cancel()
					}
				}
				return
			}
			startPattern()
		case phaseRecovering:
			startPattern()
		}
	}

	failStop = func() {
		st.FailStops++
		if segmentDone != nil {
			segmentDone.Cancel()
		}
		silentPending = false
		// Downtime: errors cannot strike; re-arm clocks past it.
		restartClocksAfter(mc.downtime)
		phase = phaseRecovering
		st.Recoveries++
		segmentDone = eng.Schedule(mc.downtime+mc.recovery, onSegmentDone)
	}

	detectAndRecover = func() {
		st.SilentDetections++
		silentPending = false
		phase = phaseRecovering
		st.Recoveries++
		startSegment()
	}

	startPattern = func() {
		silentPending = false
		phase = phaseComputing
		startSegment()
	}

	for i := 0; i < mc.procs; i++ {
		scheduleProcError(i, 0)
	}
	startPattern()
	eng.Run()

	st.Elapsed = eng.Now()
	if st.Patterns != int64(patterns) {
		return st, fmt.Errorf("sim: machine run ended with %d/%d patterns", st.Patterns, patterns)
	}
	return st, nil
}

// TheoreticalPlatformRate returns the machine's true long-run superposed
// error rate: P·λ_ind for the exponential configuration, P/mean for a
// renewal law (which NewMachineDist allows to differ from the model
// MTBF). Tests compare it against the observed rate.
func (mc *Machine) TheoreticalPlatformRate() float64 {
	if mc.dist != nil {
		return float64(mc.procs) / mc.dist.Mean()
	}
	return float64(mc.procs) * mc.lambdaInd
}
