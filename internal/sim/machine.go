package sim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"amdahlyd/internal/core"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/rng"
)

// Machine is the machine-level discrete-event simulator: every one of the
// P processors is an independent error source — exponential with rate
// λ_ind by default, or any failures.Distribution renewal process via
// NewMachineDist — each error independently fail-stop with probability f.
// The job runs the VC protocol on top. In the exponential configuration
// it validates the aggregated-rate model used by the analysis and by
// Protocol: the superposition of P per-processor processes is a platform
// process of rate P·λ_ind (Proposition 1.2 of [13]), and the two
// simulators must agree statistically on every observable. In the
// non-exponential configurations it is the pricing oracle of the
// robustness studies — no aggregated fast path exists, because only the
// exponential family is closed under superposition.
//
// Model-faithful details:
//   - silent errors arriving while the job is verifying, checkpointing or
//     recovering are discarded (the paper protects I/O and verification
//     from silent corruption);
//   - no error of any kind strikes during downtime (per-processor error
//     clocks are paused);
//   - a fail-stop error anywhere aborts the pattern: downtime, recovery,
//     full re-execution.
type Machine struct {
	procs     int
	lambdaInd float64
	failFrac  float64
	// invLambdaInd caches 1/λ_ind so every per-processor arrival draw is
	// one log and one multiply (0 when λ_ind = 0, in which case no error
	// events are ever scheduled).
	invLambdaInd float64
	// dist, when non-nil, replaces the exponential law for per-processor
	// inter-arrival times. The exponential fast path keeps dist nil so
	// its draw sequence stays bit-identical to the historical simulator.
	dist failures.Distribution

	t          float64
	checkpoint float64
	recovery   float64
	verify     float64
	downtime   float64
}

// NewMachine builds a machine-level simulator for PATTERN(T, P) under the
// model, with exponential per-processor arrivals. P must be an integer
// processor count.
func NewMachine(m core.Model, t float64, procs int) (*Machine, error) {
	return newMachine(m, t, procs, nil)
}

// NewMachineDist builds a machine-level simulator whose per-processor
// inter-arrival times follow the given renewal law instead of the
// model's exponential. The distribution should be calibrated to the
// model's MTBF (mean 1/λ_ind) for the platform pressure to stay
// comparable; the error-pressure guard is recomputed from the law's
// actual mean, so a miscalibrated distribution is rejected rather than
// allowed to swamp the simulator. Passing an Exponential distribution
// is valid but takes the generic renewal path; use NewMachine for the
// bit-pinned exponential fast path.
func NewMachineDist(m core.Model, t float64, procs int, dist failures.Distribution) (*Machine, error) {
	if dist == nil {
		return nil, errors.New("sim: nil distribution (use NewMachine for the exponential fast path)")
	}
	// An invalid (e.g. infinite) mean would zero the effective rate and
	// walk straight past the error-pressure guard.
	if err := failures.ValidateMean(dist); err != nil {
		return nil, err
	}
	return newMachine(m, t, procs, dist)
}

func newMachine(m core.Model, t float64, procs int, dist failures.Distribution) (*Machine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !(t > 0) || math.IsInf(t, 0) || procs < 1 {
		return nil, fmt.Errorf("sim: invalid machine pattern T=%g, P=%d", t, procs)
	}
	p := float64(procs)
	lf, ls := m.Rates(p)
	if dist != nil {
		// Guard with the law's true pressure, not the model's λ_ind: an
		// uncalibrated distribution (mean far below the MTBF) would
		// otherwise bypass the error-pressure check and the run could
		// effectively never complete a pattern. The exponential-form
		// estimate is an approximation for non-memoryless laws but the
		// mean arrival rate is the right first-order input.
		lambdaEff := 1 / dist.Mean()
		lf = m.FailStopFrac * lambdaEff * p
		ls = m.SilentFrac * lambdaEff * p
	}
	if expectedIters(lf, ls, t, m.Res.Verification.At(p), m.Res.Checkpoint.At(p),
		m.Res.Recovery.At(p)) > maxSimIters {
		return nil, ErrErrorPressure
	}
	mach := &Machine{
		procs:      procs,
		lambdaInd:  m.LambdaInd,
		failFrac:   m.FailStopFrac,
		dist:       dist,
		t:          t,
		checkpoint: m.Res.Checkpoint.At(p),
		recovery:   m.Res.Recovery.At(p),
		verify:     m.Res.Verification.At(p),
		downtime:   m.Res.Downtime,
	}
	if mach.lambdaInd > 0 {
		mach.invLambdaInd = 1 / mach.lambdaInd
	}
	return mach, nil
}

// machPhase enumerates the job states of the machine-level state machine.
type machPhase int

const (
	phaseComputing machPhase = iota
	phaseVerifying
	phaseCheckpointing
	phaseRecovering
)

// Workspace holds the reusable scratch state of machine-level
// simulation: the event engine (with its arena and heap capacity), each
// processor's pending-error handle, and the per-processor event handlers
// themselves. A fresh run on a reused workspace allocates nothing in
// steady state — SimulateRun draws workspaces from an internal pool, and
// callers that manage their own reuse (benchmarks, long campaigns) can
// pass one explicitly to SimulateRunWorkspace.
//
// A Workspace serves one run at a time; concurrent runs need one
// workspace each (the pool hands every goroutine its own).
type Workspace struct {
	eng Engine

	mc       *Machine
	r        *rng.Rand
	patterns int

	st    PatternStats
	phase machPhase
	// silentPending records an undetected corruption of the current
	// pattern's computation.
	silentPending bool
	// segmentDone is the pending end-of-segment event.
	segmentDone *Scheduled
	// errEvents holds each processor's pending error event.
	errEvents []*Scheduled
	done      bool

	// procActions are the per-processor error handlers, allocated once
	// per workspace (not once per event, as the closure-based simulator
	// did — that was most of its 474 allocs per run).
	procActions []func()
	// segmentFn is the bound end-of-segment handler, allocated once.
	segmentFn func()
}

// NewWorkspace returns an empty workspace; it grows to fit the first
// run and is reused allocation-free afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// reset binds the workspace to one run and clears all run state.
func (w *Workspace) reset(mc *Machine, patterns int, r *rng.Rand) {
	w.eng.Reset()
	w.mc, w.r, w.patterns = mc, r, patterns
	w.st = PatternStats{}
	w.phase = phaseComputing
	w.silentPending = false
	w.segmentDone = nil
	w.done = false
	if len(w.procActions) < mc.procs {
		w.procActions = make([]func(), mc.procs)
		for i := range w.procActions {
			w.procActions[i] = func() { w.procError(i) }
		}
		w.errEvents = make([]*Scheduled, mc.procs)
	} else {
		w.errEvents = w.errEvents[:mc.procs]
		for i := range w.errEvents {
			w.errEvents[i] = nil
		}
	}
	if w.segmentFn == nil {
		w.segmentFn = w.onSegmentDone
	}
}

// drawInterArrival samples the next per-processor gap: exponential on
// the fast path (one log, one multiply — the historical simulator's
// exact draw), the renewal law otherwise.
func (w *Workspace) drawInterArrival() float64 {
	if w.mc.dist != nil {
		return w.mc.dist.Sample(w.r)
	}
	return w.r.ExpInv(w.mc.invLambdaInd)
}

// armProc schedules the processor's next error at a known delay; the
// handler draws the following gap itself, so arrivals form a renewal
// process per processor regardless of job state.
func (w *Workspace) armProc(proc int, delay float64) {
	w.errEvents[proc] = w.eng.Schedule(delay, w.procActions[proc])
}

// procError is the error-arrival handler of one processor.
func (w *Workspace) procError(proc int) {
	if w.done {
		return
	}
	isFailStop := w.r.Float64() < w.mc.failFrac
	// Re-arm this processor's error clock first: the next renewal
	// interval starts at this arrival.
	w.armProc(proc, w.drawInterArrival())
	if isFailStop {
		w.failStop()
	} else if w.phase == phaseComputing {
		// Silent corruption of computation; detected later by the
		// verification.
		w.silentPending = true
	}
	// Silent errors during V/C/R are discarded: those phases are
	// protected (Section II, resilience model).
}

func (w *Workspace) scheduleProcError(proc int, extraDelay float64) {
	if w.mc.lambdaInd == 0 && w.mc.dist == nil {
		return
	}
	w.armProc(proc, extraDelay+w.drawInterArrival())
}

// restartClocksAfter pauses every per-processor error clock across a
// downtime ("no error strikes during downtime"). For the memoryless
// exponential, discarding the pending arrival and drawing a fresh one
// after the pause is statistically identical to pausing — and is what
// the historical simulator did, so the fast path keeps that exact draw
// sequence. A renewal process remembers its age, so the generic path
// must shift the pending arrival past the pause instead of redrawing it.
func (w *Workspace) restartClocksAfter(pause float64) {
	for i, ev := range w.errEvents {
		if w.mc.dist == nil {
			if ev != nil {
				ev.Cancel()
			}
			w.scheduleProcError(i, pause)
			continue
		}
		if ev == nil {
			continue
		}
		remaining := ev.Time() - w.eng.Now()
		ev.Cancel()
		w.armProc(i, pause+remaining)
	}
}

func (w *Workspace) startSegment() {
	var length float64
	switch w.phase {
	case phaseComputing:
		length = w.mc.t
	case phaseVerifying:
		length = w.mc.verify
	case phaseCheckpointing:
		length = w.mc.checkpoint
	case phaseRecovering:
		length = w.mc.recovery
	}
	w.segmentDone = w.eng.Schedule(length, w.segmentFn)
}

func (w *Workspace) onSegmentDone() {
	switch w.phase {
	case phaseComputing:
		w.phase = phaseVerifying
		w.startSegment()
	case phaseVerifying:
		if w.silentPending {
			w.detectAndRecover()
			return
		}
		w.phase = phaseCheckpointing
		w.startSegment()
	case phaseCheckpointing:
		w.st.Patterns++
		if w.st.Patterns >= int64(w.patterns) {
			w.done = true
			for _, ev := range w.errEvents {
				if ev != nil {
					ev.Cancel()
				}
			}
			return
		}
		w.startPattern()
	case phaseRecovering:
		w.startPattern()
	}
}

func (w *Workspace) failStop() {
	w.st.FailStops++
	if w.segmentDone != nil {
		w.segmentDone.Cancel()
	}
	w.silentPending = false
	// Downtime: errors cannot strike; re-arm clocks past it.
	w.restartClocksAfter(w.mc.downtime)
	w.phase = phaseRecovering
	w.st.Recoveries++
	w.segmentDone = w.eng.Schedule(w.mc.downtime+w.mc.recovery, w.segmentFn)
}

func (w *Workspace) detectAndRecover() {
	w.st.SilentDetections++
	w.silentPending = false
	w.phase = phaseRecovering
	w.st.Recoveries++
	w.startSegment()
}

func (w *Workspace) startPattern() {
	w.silentPending = false
	w.phase = phaseComputing
	w.startSegment()
}

// release drops the run bindings so a pooled workspace does not pin the
// machine or the rng stream alive between runs.
func (w *Workspace) release() {
	w.mc, w.r = nil, nil
}

// workspacePool recycles workspaces across SimulateRun calls: a
// Monte-Carlo campaign reuses one workspace per worker, so every run
// after the first is allocation-free.
var workspacePool = sync.Pool{New: func() any { return NewWorkspace() }}

// SimulateRun plays the requested number of patterns on the event engine
// and returns the same statistics as the pattern-level simulator. It
// draws a reusable workspace from an internal pool; the draw sequence
// and results are bit-identical to the historical closure-based
// simulator (pinned by the machine golden tests).
func (mc *Machine) SimulateRun(patterns int, r *rng.Rand) (PatternStats, error) {
	ws := workspacePool.Get().(*Workspace)
	st, err := mc.SimulateRunWorkspace(patterns, r, ws)
	ws.release()
	workspacePool.Put(ws)
	return st, err
}

// SimulateRunWorkspace is SimulateRun on an explicit workspace, for
// callers that manage reuse themselves. A nil workspace allocates a
// fresh one.
func (mc *Machine) SimulateRunWorkspace(patterns int, r *rng.Rand, ws *Workspace) (PatternStats, error) {
	if patterns < 1 {
		return PatternStats{}, errors.New("sim: need at least one pattern")
	}
	if r == nil {
		return PatternStats{}, errors.New("sim: nil rng")
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.reset(mc, patterns, r)
	for i := 0; i < mc.procs; i++ {
		ws.scheduleProcError(i, 0)
	}
	ws.startPattern()
	ws.eng.Run()

	st := ws.st
	st.Elapsed = ws.eng.Now()
	if st.Patterns != int64(patterns) {
		return st, fmt.Errorf("sim: machine run ended with %d/%d patterns", st.Patterns, patterns)
	}
	return st, nil
}

// TheoreticalPlatformRate returns the machine's true long-run superposed
// error rate: P·λ_ind for the exponential configuration, P/mean for a
// renewal law (which NewMachineDist allows to differ from the model
// MTBF). Tests compare it against the observed rate.
func (mc *Machine) TheoreticalPlatformRate() float64 {
	if mc.dist != nil {
		return float64(mc.procs) / mc.dist.Mean()
	}
	return float64(mc.procs) * mc.lambdaInd
}
