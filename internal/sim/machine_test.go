package sim

import (
	"math"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/xmath"
)

func TestNewMachineValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if _, err := NewMachine(m, 0, 512); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewMachine(m, 100, 0); err == nil {
		t.Error("P=0 accepted")
	}
	bad := m
	bad.SilentFrac = 2
	if _, err := NewMachine(bad, 100, 512); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestMachineErrorFree(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.LambdaInd = 0
	mc, err := NewMachine(m, 6000, 512)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mc.SimulateRun(50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * (6000 + 15.4 + 300)
	if !xmath.EqualWithin(st.Elapsed, want, 1e-9, 0) {
		t.Errorf("error-free elapsed %g, want %g", st.Elapsed, want)
	}
	if st.FailStops != 0 || st.SilentDetections != 0 {
		t.Errorf("phantom errors: %+v", st)
	}
}

func TestMachineTheoreticalRate(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	mc, err := NewMachine(m, 6000, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.EqualWithin(mc.TheoreticalPlatformRate(), 512*1.69e-8, 1e-12, 0) {
		t.Errorf("platform rate = %g", mc.TheoreticalPlatformRate())
	}
}

// The central cross-validation: the machine-level simulator (P explicit
// exponential processors) and the pattern-level simulator (aggregated
// platform rate) must agree on the mean pattern time within confidence
// intervals — this is Proposition 1.2 of [13] made executable.
func TestMachineAgreesWithProtocol(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.LambdaInd = 2e-6 // frequent errors on 64 procs keep the test fast
	tt := 2000.0
	const procs = 64

	cfgM := RunConfig{Runs: 150, Patterns: 40, Seed: 21, Machine: true}
	machine, err := Simulate(m, tt, procs, cfgM)
	if err != nil {
		t.Fatal(err)
	}
	cfgP := RunConfig{Runs: 150, Patterns: 40, Seed: 22}
	proto, err := Simulate(m, tt, procs, cfgP)
	if err != nil {
		t.Fatal(err)
	}

	dm := machine.MeanPatternTime
	dp := proto.MeanPatternTime
	sep := math.Abs(dm.Mean - dp.Mean)
	if sep > 3*(dm.CI95+dp.CI95) {
		t.Errorf("machine %g ± %g vs protocol %g ± %g: simulators disagree",
			dm.Mean, dm.CI95, dp.Mean, dp.CI95)
	}

	// Both must also match the exact formula.
	exact := m.ExactPatternTime(tt, procs)
	if math.Abs(dm.Mean-exact) > 4*dm.CI95 {
		t.Errorf("machine sim %g ± %g vs Proposition 1 %g", dm.Mean, dm.CI95, exact)
	}

	// And both exercise all error paths.
	if machine.FailStops == 0 || machine.SilentDetections == 0 {
		t.Errorf("machine error paths unexercised: %+v", machine)
	}
}

func TestMachineErrorCountsScaleWithProcs(t *testing.T) {
	// With f = 1 (every arrival counted individually) and D = 0 (no
	// unexposed time), the observed fail-stop rate per unit time must
	// equal P·λ_ind, so doubling P doubles it.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 1, 0
	m.Res.Downtime = 0
	m.LambdaInd = 1e-6
	run := func(procs int) float64 {
		mc, err := NewMachine(m, 2000, procs)
		if err != nil {
			t.Fatal(err)
		}
		var events, elapsed float64
		for seed := uint64(0); seed < 40; seed++ {
			st, err := mc.SimulateRun(300, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			events += float64(st.FailStops)
			elapsed += st.Elapsed
		}
		return events / elapsed
	}
	r64 := run(64)
	r128 := run(128)
	// Each observed rate individually matches P·λ_ind (≈1800 and ≈3600
	// events aggregated: sampling σ ≈ 2.4% and 1.7%)…
	if math.Abs(r64-64e-6)/64e-6 > 0.10 {
		t.Errorf("64-proc fail-stop rate = %g, want %g", r64, 64e-6)
	}
	if math.Abs(r128-128e-6)/128e-6 > 0.10 {
		t.Errorf("128-proc fail-stop rate = %g, want %g", r128, 128e-6)
	}
	// …and the ratio is 2.
	ratio := r128 / r64
	if ratio < 1.85 || ratio > 2.15 {
		t.Errorf("error rate ratio 128/64 procs = %g, want ≈2", ratio)
	}
}

func TestMachineSilentProtectedPhases(t *testing.T) {
	// With s = 1 (no fail-stop), errors arriving during V/C/R must be
	// discarded: in a configuration where the checkpoint dwarfs the
	// computation, the number of detections per pattern must match
	// e^{λs·T} − 1, counting only computation-time exposure.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 0, 1
	m.LambdaInd = 5e-6
	// T = 300 s of work vs C = 300 s of checkpoint: exposure is halved.
	tt := 300.0
	const procs = 64
	mc, err := NewMachine(m, tt, procs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mc.SimulateRun(4000, rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	_, ls := m.Rates(procs)
	want := math.Expm1(ls * tt)
	got := float64(st.SilentDetections) / float64(st.Patterns)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("detections per pattern = %g, want %g (silent must not strike V/C)", got, want)
	}
}

func TestMachineRunValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	mc, err := NewMachine(m, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.SimulateRun(0, rng.New(1)); err == nil {
		t.Error("0 patterns accepted")
	}
	if _, err := mc.SimulateRun(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
