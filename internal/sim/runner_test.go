package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/speedup"
)

// runnerModel is a Hera-like model cheap enough for runner-level tests.
func runnerModel(t *testing.T) core.Model {
	t.Helper()
	prof, err := speedup.NewAmdahl(0.1)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Model{
		LambdaInd:    1e-9,
		FailStopFrac: 0.8,
		SilentFrac:   0.2,
		Res: costmodel.New(
			costmodel.Checkpoint{A: 120},
			costmodel.Verification{V: 20},
			3600),
		Profile: prof,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSimulateWorkerCountIndependent pins the determinism contract of the
// runner: because run i always draws from the deterministic child stream
// Split(i), the campaign statistics must be bit-identical whatever the
// worker count (including the sequential fast path). Run under -race this
// also exercises the "Split only reads the master state" claim: up to 16
// workers concurrently split one master rng.Rand.
func TestSimulateWorkerCountIndependent(t *testing.T) {
	m := runnerModel(t)
	cfg := RunConfig{Runs: 64, Patterns: 20, Seed: 42}

	var want RunResult
	for i, workers := range []int{1, 2, 3, 7, 16} {
		cfg.Workers = workers
		got, err := Simulate(m, 6240, 219, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Normalize the echoed config: only the statistics must agree.
		got.Config = RunConfig{}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d changed results:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestSplitConcurrentMatchesSequential pins rng.Rand.Split's concurrency
// contract directly: concurrent Split(i) calls from many goroutines must
// yield exactly the child streams a sequential loop yields, because Split
// never mutates the master state. The test is meaningful under -race (it
// would flag any write to the master) and self-checks the stream values.
func TestSplitConcurrentMatchesSequential(t *testing.T) {
	const streams, draws = 128, 16

	master := rng.New(99)
	want := make([][draws]uint64, streams)
	for i := range want {
		child := master.Split(uint64(i))
		for d := 0; d < draws; d++ {
			want[i][d] = child.Uint64()
		}
	}

	got := make([][draws]uint64, streams)
	var wg sync.WaitGroup
	const workers = 8
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= streams {
					return
				}
				child := master.Split(uint64(i))
				for d := 0; d < draws; d++ {
					got[i][d] = child.Uint64()
				}
			}
		}()
	}
	wg.Wait()

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream %d: concurrent Split diverged from sequential", i)
		}
	}
}

// TestForEachRunFailFast pins the fail-fast contract: an error on the
// first run must cancel outstanding chunks instead of paying for the
// whole campaign.
func TestForEachRunFailFast(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var executed atomic.Int64
		const runs = 512
		err := ForEachRun(context.Background(), runs, workers, func(i int) error {
			executed.Add(1)
			if i == 0 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, sentinel)
		}
		if !strings.Contains(err.Error(), "run 0") {
			t.Errorf("workers=%d: err %q does not name the failed run", workers, err)
		}
		// With fail-fast, at most the in-flight chunks complete; without
		// it all 512 runs would have executed.
		if n := executed.Load(); n >= runs {
			t.Errorf("workers=%d: executed %d/%d runs despite run-0 failure", workers, n, runs)
		}
	}
}

// TestForEachRunReportsLowestIndex pins deterministic error selection
// when several runs fail concurrently.
func TestForEachRunReportsLowestIndex(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEachRun(context.Background(), 64, 8, func(i int) error {
		if i%2 == 1 { // every odd run fails; 1 is the lowest
			return sentinel
		}
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if !strings.Contains(err.Error(), "run 1:") {
		t.Errorf("err %q, want the lowest failed index (run 1)", err)
	}
}

// TestSimulateContextCancelled checks that a campaign aborts promptly
// with ctx.Err() once its context is cancelled.
func TestSimulateContextCancelled(t *testing.T) {
	m := runnerModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := SimulateContext(ctx, m, 6240, 219, RunConfig{
			Runs: 10000, Patterns: 500, Seed: 1, Workers: workers,
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestSimulateMachineProcsValidation pins the machine-path processor
// validation: P below one, non-integral, absurdly large or NaN must be
// rejected with a clear error before any machine is constructed.
func TestSimulateMachineProcsValidation(t *testing.T) {
	m := runnerModel(t)
	cfg := RunConfig{Runs: 2, Patterns: 2, Seed: 1, Machine: true}
	for _, tc := range []struct {
		p    float64
		want string
	}{
		{0, "P >= 1"},
		{0.5, "P >= 1"},
		{-3, "P >= 1"},
		{math.NaN(), "P >= 1"},
		{219.5, "integral"},
		{1e18, "limit"},
		{math.Inf(1), "limit"},
	} {
		_, err := Simulate(m, 6240, tc.p, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("P=%g: err = %v, want mention of %q", tc.p, err, tc.want)
		}
	}
	// The boundary that must still work: a small integral P.
	if _, err := Simulate(m, 6240, 4, cfg); err != nil {
		t.Errorf("P=4: unexpected error %v", err)
	}
}
