package sim

import (
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/speedup"
)

func workspaceTestModel(t *testing.T) core.Model {
	t.Helper()
	res, err := costmodel.Scenario1.Calibrate(219, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Model{
		LambdaInd:    1.69e-7, // 10× Hera so a short run still sees errors
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: 0.1},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEngineResetReuse pins the arena contract: a reset engine replays a
// schedule from time zero with the same ordering, reusing its capacity.
func TestEngineResetReuse(t *testing.T) {
	var e Engine
	run := func() []int {
		var got []int
		e.Schedule(2, func() { got = append(got, 2) })
		e.Schedule(1, func() { got = append(got, 1) })
		ev := e.Schedule(1.5, func() { got = append(got, 15) })
		ev.Cancel()
		e.Run()
		return got
	}
	first := run()
	if e.Now() != 2 {
		t.Fatalf("clock = %g, want 2", e.Now())
	}
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("reset left now=%g pending=%d", e.Now(), e.Pending())
	}
	second := run()
	if len(first) != 2 || len(second) != 2 || first[0] != second[0] || first[1] != second[1] {
		t.Fatalf("replay differs: %v vs %v", first, second)
	}
}

// TestEngineArenaSurvivesChunkBoundary schedules more events than one
// arena chunk holds, across a Reset, to exercise chunk growth and reuse.
func TestEngineArenaSurvivesChunkBoundary(t *testing.T) {
	var e Engine
	for round := 0; round < 2; round++ {
		fired := 0
		for i := 0; i < 3*arenaChunk/2; i++ {
			e.Schedule(float64(i), func() { fired++ })
		}
		e.Run()
		if want := 3 * arenaChunk / 2; fired != want {
			t.Fatalf("round %d: fired %d, want %d", round, fired, want)
		}
		e.Reset()
	}
}

// TestEngineArenaCapFallsBackToHeap schedules past the arena retention
// cap in a single run: events beyond maxArenaBlocks×arenaChunk must
// heap-allocate (bounding a long run's memory at O(outstanding), as
// before the arena) while ordering and cancellation keep working.
func TestEngineArenaCapFallsBackToHeap(t *testing.T) {
	var e Engine
	total := maxArenaBlocks*arenaChunk + 2*arenaChunk
	fired := 0
	for i := 0; i < total; i++ {
		e.Schedule(float64(i), func() { fired++ })
	}
	if len(e.blocks) != maxArenaBlocks {
		t.Fatalf("arena grew to %d blocks, cap is %d", len(e.blocks), maxArenaBlocks)
	}
	// A post-cap (heap-allocated) handle must still cancel cleanly.
	ev := e.Schedule(float64(total), func() { fired++ })
	ev.Cancel()
	e.Run()
	if fired != total {
		t.Fatalf("fired %d, want %d", fired, total)
	}
	e.Reset()
	e.Schedule(1, func() { fired = -1 })
	e.Run()
	if fired != -1 {
		t.Fatal("engine unusable after capped run + Reset")
	}
}

// TestWorkspaceReuseBitIdentical pins that an explicitly reused
// workspace replays bit-identically to fresh workspaces and to the
// pooled SimulateRun path, across machines of different sizes (the
// per-processor handler slices must re-bind cleanly).
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	m := workspaceTestModel(t)
	mcBig, err := NewMachine(m, 6240, 219)
	if err != nil {
		t.Fatal(err)
	}
	mcSmall, err := NewMachine(m, 6240, 7)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	for i, mc := range []*Machine{mcBig, mcSmall, mcBig} {
		seed := uint64(100 + i)
		reused, err := mc.SimulateRunWorkspace(5, rng.New(seed), ws)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := mc.SimulateRunWorkspace(5, rng.New(seed), NewWorkspace())
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := mc.SimulateRun(5, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if reused != fresh || reused != pooled {
			t.Fatalf("run %d: reused %+v, fresh %+v, pooled %+v", i, reused, fresh, pooled)
		}
		if reused.Elapsed <= 0 || reused.Patterns != 5 {
			t.Fatalf("run %d: implausible stats %+v", i, reused)
		}
	}
}

// TestWorkspaceNilAllocatesFresh covers the nil-workspace convenience.
func TestWorkspaceNilAllocatesFresh(t *testing.T) {
	m := workspaceTestModel(t)
	mc, err := NewMachine(m, 6240, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := mc.SimulateRunWorkspace(3, rng.New(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.SimulateRun(3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nil-workspace run %+v != pooled run %+v", a, b)
	}
}
