// Package sim implements the paper's simulation study (Section IV): a
// pattern-level Monte-Carlo simulator of the VC protocol (the exact
// stochastic process of Fig. 1), an independent machine-level
// discrete-event simulator that models each of the P processors as its own
// exponential failure source, and a parallel Monte-Carlo runner that
// reproduces the paper's methodology (500 runs of at least 500 patterns,
// averaged).
//
// Having two simulators of different granularity is deliberate: the
// pattern-level simulator is the fast oracle used by the experiment
// drivers, and the machine-level simulator validates the platform-rate
// abstraction λ_P = P·λ_ind that both the analysis and the fast simulator
// rely on.
package sim

import "container/heap"

// Engine is a minimal discrete-event simulation kernel: a clock and a
// time-ordered queue of scheduled actions. Ties are broken by scheduling
// order, which keeps runs deterministic.
type Engine struct {
	now float64
	pq  eventHeap
	seq uint64

	// blocks is the event arena: Scheduled values are carved out of
	// fixed-size chunks instead of being heap-allocated one by one, and
	// Reset reclaims every chunk wholesale. This is what makes a reused
	// engine (sim.Workspace) allocation-free: a machine-level run
	// schedules hundreds of events, and with the arena none of them
	// escapes to the garbage collector after the first run.
	blocks [][]Scheduled
	block  int // chunk currently being filled
	used   int // entries used in blocks[block]
}

// arenaChunk sizes the event arena's chunks: one chunk covers a typical
// machine-level run (procs + patterns×segments), so steady-state runs
// touch a single preallocated block.
const arenaChunk = 512

// maxArenaBlocks bounds what the arena retains (and what a pooled
// workspace pins) to ~64×512 events. The arena only reclaims at Reset,
// so an unbounded arena would turn one very long run — a
// billion-pattern campaign is within the service's request budget —
// from the historical O(outstanding events) memory into O(total events
// scheduled). Beyond the cap, events fall back to individual heap
// allocations and the garbage collector reclaims them after they fire,
// exactly as before the arena existed.
const maxArenaBlocks = 64

// alloc carves the next event out of the arena, or heap-allocates once
// the arena is at capacity.
func (e *Engine) alloc() *Scheduled {
	if e.block == len(e.blocks) {
		if e.block == maxArenaBlocks {
			return &Scheduled{}
		}
		e.blocks = append(e.blocks, make([]Scheduled, arenaChunk))
	}
	ev := &e.blocks[e.block][e.used]
	e.used++
	if e.used == arenaChunk {
		e.block++
		e.used = 0
	}
	return ev
}

// Reset returns the engine to time zero with an empty queue, retaining
// the heap's and the arena's capacity for the next run. It invalidates
// every *Scheduled handle obtained before the call: the arena recycles
// their memory, so a stale Cancel could silently hit an unrelated event.
// Callers must drop all handles when they reset (sim.Workspace does).
func (e *Engine) Reset() {
	for i := range e.pq {
		e.pq[i] = nil
	}
	e.pq = e.pq[:0]
	e.now = 0
	e.seq = 0
	e.block, e.used = 0, 0
}

// Scheduled is a handle to a pending event; it can be cancelled.
type Scheduled struct {
	time    float64
	seq     uint64
	action  func()
	stopped bool
	index   int // position in the heap, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduled) Cancel() { s.stopped = true }

// Time returns the simulated time the event is scheduled for.
func (s *Scheduled) Time() float64 { return s.time }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events still queued (including cancelled
// ones not yet drained).
func (e *Engine) Pending() int { return e.pq.Len() }

// Schedule enqueues action to run after delay simulated seconds. A
// negative delay is clamped to zero (fires "now", after the current
// event). It panics on a nil action.
func (e *Engine) Schedule(delay float64, action func()) *Scheduled {
	if action == nil {
		panic("sim: Schedule with nil action")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := e.alloc()
	*ev = Scheduled{time: e.now + delay, seq: e.seq, action: action}
	heap.Push(&e.pq, ev)
	return ev
}

// Step fires the next non-cancelled event. It reports false when the
// queue is exhausted.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*Scheduled)
		if ev.stopped {
			continue
		}
		e.now = ev.time
		ev.action()
		return true
	}
	return false
}

// Run fires events until the queue empties. Actions may schedule more
// events; the caller is responsible for eventual quiescence.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= deadline, then sets the clock to the
// deadline (if it advanced that far).
func (e *Engine) RunUntil(deadline float64) {
	for e.pq.Len() > 0 {
		next := e.pq[0]
		if next.stopped {
			heap.Pop(&e.pq)
			continue
		}
		if next.time > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*Scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Scheduled)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
