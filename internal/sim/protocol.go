package sim

import (
	"errors"
	"fmt"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/rng"
)

// Protocol is the pattern-level simulator of the VC protocol: it plays
// the exact renewal process of Fig. 1 and Equations (3)–(4), drawing
// fail-stop arrivals from Exp(λf_P) and silent strikes with probability
// 1 − e^{−λs_P·T} per computation segment.
type Protocol struct {
	// T and P fix the pattern.
	T, P float64
	// Durations derived from the model at P.
	checkpoint float64
	recovery   float64
	verify     float64
	downtime   float64
	lambdaF    float64
	lambdaS    float64
	// Sampling constants hoisted out of the per-pattern loop: the
	// inversion constant 1/λf (exponential draws become one log and one
	// multiply) and the per-segment silent-strike probability
	// 1 − e^{−λs·T}, which is pattern-invariant.
	invLambdaF float64
	pSilent    float64
}

// ErrErrorPressure is returned when the requested pattern sits so deep in
// the failure-dominated regime that simulating it cannot terminate in
// practical time: the expected number of simulator iterations per pattern
// is e^{λf(T+V+C)+λsT} attempts, each failed attempt triggering a
// geometric cascade of ~e^{λf·R} recovery retries. The exact formula
// still prices such patterns (astronomically), so callers fall back to
// the model.
var ErrErrorPressure = errors.New(
	"sim: error pressure too high to simulate (expected iterations per pattern exceed the budget)")

// maxSimIters bounds the expected simulator iterations per pattern.
// Every experiment in the paper stays below ~10² even at the extreme
// points of Fig. 6; 1e4 leaves two orders of headroom while keeping a
// 500×500 campaign under a minute.
const maxSimIters = 1e4

// expectedIters estimates simulator iterations per pattern.
func expectedIters(lf, ls, t, v, c, r float64) float64 {
	attempts := math.Exp(lf*(t+v+c) + ls*t)
	recoveryTries := math.Exp(lf * r)
	return attempts * (1 + recoveryTries)
}

// NewProtocol prepares a simulator for PATTERN(T, P) under the model.
func NewProtocol(m core.Model, t, p float64) (*Protocol, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !(p >= 1) || math.IsInf(p, 0) {
		return nil, fmt.Errorf("sim: invalid pattern T=%g, P=%g", t, p)
	}
	fz := m.Freeze(p)
	return NewProtocolFrozen(&fz, t)
}

// NewProtocolFrozen prepares a simulator for PATTERN(T, fz.P) from a
// compiled evaluator, skipping model validation (the caller vouches for
// the Frozen). This is the constructor the Monte-Carlo runner uses so the
// rates and resilience costs are derived exactly once per (T, P).
func NewProtocolFrozen(fz *core.Frozen, t float64) (*Protocol, error) {
	if !(t > 0) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("sim: invalid pattern T=%g, P=%g", t, fz.P)
	}
	if expectedIters(fz.LambdaF, fz.LambdaS, t, fz.V, fz.C, fz.R) > maxSimIters {
		return nil, ErrErrorPressure
	}
	pr := &Protocol{
		T: t, P: fz.P,
		checkpoint: fz.C,
		recovery:   fz.R,
		verify:     fz.V,
		downtime:   fz.D,
		lambdaF:    fz.LambdaF,
		lambdaS:    fz.LambdaS,
	}
	if pr.lambdaF > 0 {
		pr.invLambdaF = 1 / pr.lambdaF
	}
	if pr.lambdaS > 0 {
		pr.pSilent = -math.Expm1(-pr.lambdaS * pr.T)
	}
	return pr, nil
}

// PatternStats aggregates event counts over simulated patterns.
type PatternStats struct {
	// Patterns is the number of successfully completed patterns.
	Patterns int64
	// Elapsed is total simulated wall-clock time.
	Elapsed float64
	// FailStops counts fail-stop errors (including during C and R).
	FailStops int64
	// SilentDetections counts silent errors caught by verifications.
	SilentDetections int64
	// Recoveries counts recovery executions (attempts, incl. failed).
	Recoveries int64
}

// failStopIn samples whether a fail-stop error strikes within a window of
// the given length, returning the strike offset.
func (pr *Protocol) failStopIn(window float64, r *rng.Rand) (float64, bool) {
	if pr.lambdaF == 0 {
		return 0, false
	}
	// Inversion sampling with the precomputed 1/λf: one log, one multiply.
	t := r.ExpInv(pr.invLambdaF)
	if t < window {
		return t, true
	}
	return 0, false
}

// silentStrikes samples whether at least one silent error strikes during
// a computation of length T.
func (pr *Protocol) silentStrikes(r *rng.Rand) bool {
	if pr.lambdaS == 0 {
		return false
	}
	return r.Float64() < pr.pSilent
}

// simulateRecovery plays recoveries until one completes, accumulating
// elapsed time into st. A fail-stop during a recovery costs the lost
// time, a downtime, and a retry (Section III-A, derivation of E(R)).
func (pr *Protocol) simulateRecovery(r *rng.Rand, st *PatternStats) {
	for {
		st.Recoveries++
		if lost, struck := pr.failStopIn(pr.recovery, r); struck {
			st.FailStops++
			st.Elapsed += lost + pr.downtime
			continue
		}
		st.Elapsed += pr.recovery
		return
	}
}

// SimulatePattern plays one pattern to successful completion,
// accumulating into st.
func (pr *Protocol) SimulatePattern(r *rng.Rand, st *PatternStats) {
	tv := pr.T + pr.verify
	for {
		// Phase 1: execute T + V until no fail-stop interrupts it and
		// the verification finds no silent corruption.
		if lost, struck := pr.failStopIn(tv, r); struck {
			// Fail-stop masks any silent error in the same attempt.
			st.FailStops++
			st.Elapsed += lost + pr.downtime
			pr.simulateRecovery(r, st)
			continue
		}
		if pr.silentStrikes(r) {
			// Detected by the verification at the end of the segment.
			st.SilentDetections++
			st.Elapsed += tv
			pr.simulateRecovery(r, st)
			continue
		}
		st.Elapsed += tv

		// Phase 2: checkpoint; a fail-stop here forces a downtime, a
		// recovery and a re-execution of the whole pattern.
		if lost, struck := pr.failStopIn(pr.checkpoint, r); struck {
			st.FailStops++
			st.Elapsed += lost + pr.downtime
			pr.simulateRecovery(r, st)
			continue
		}
		st.Elapsed += pr.checkpoint
		st.Patterns++
		return
	}
}

// SimulateRun plays patterns consecutive patterns and returns the stats.
func (pr *Protocol) SimulateRun(patterns int, r *rng.Rand) (PatternStats, error) {
	if patterns < 1 {
		return PatternStats{}, errors.New("sim: need at least one pattern")
	}
	if r == nil {
		return PatternStats{}, errors.New("sim: nil rng")
	}
	var st PatternStats
	for i := 0; i < patterns; i++ {
		pr.SimulatePattern(r, &st)
	}
	return st, nil
}

// MeanPatternTime returns the empirical mean time per completed pattern.
func (st PatternStats) MeanPatternTime() float64 {
	if st.Patterns == 0 {
		return math.NaN()
	}
	return st.Elapsed / float64(st.Patterns)
}

// Overhead converts a run's elapsed time into the paper's expected
// execution overhead H(T, P) = E/T · H(P), given the error-free overhead
// hOfP = H(P) of the profile at the simulated processor count.
func (st PatternStats) Overhead(t, hOfP float64) float64 {
	if st.Patterns == 0 || !(t > 0) {
		return math.NaN()
	}
	return st.MeanPatternTime() / t * hOfP
}
