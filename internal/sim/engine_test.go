package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(1, func() { order = append(order, "first") })
	e.Schedule(1, func() { order = append(order, "second") })
	e.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Errorf("tie broken wrongly: %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancel after firing is a no-op.
	ev2 := e.Schedule(1, func() {})
	e.Run()
	ev2.Cancel()
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	var e Engine
	var times []float64
	var chain func()
	n := 0
	chain = func() {
		times = append(times, e.Now())
		n++
		if n < 4 {
			e.Schedule(10, chain)
		}
	}
	e.Schedule(10, chain)
	e.Run()
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("chain times %v, want %v", times, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunUntil(3)
	if count != 3 {
		t.Errorf("fired %d events by t=3, want 3", count)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if count != 5 || e.Now() != 10 {
		t.Errorf("after RunUntil(10): count=%d now=%g", count, e.Now())
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {
		e.Schedule(-3, func() {
			if e.Now() != 5 {
				t.Errorf("negative-delay event at %g, want now (5)", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil action should panic")
		}
	}()
	var e Engine
	e.Schedule(1, nil)
}

func TestEngineStepExhausted(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine should report false")
	}
}
