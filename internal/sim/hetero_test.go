package sim

import (
	"math"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

func heteroTestGroups(t *testing.T) []HeteroGroupRun {
	t.Helper()
	cpu := heraModel(t, costmodel.Scenario1, 0.1)
	accel := cpu
	accel.LambdaInd = 20 * cpu.LambdaInd
	accel.Profile = speedup.AmdahlComm{Alpha: 0.1, Speed: 4, Comm: 1e-6}
	if err := accel.Validate(); err != nil {
		t.Fatal(err)
	}
	return []HeteroGroupRun{
		{Model: cpu, T: 5000, P: 256, Fraction: 0.6},
		{Model: accel, T: 3000, P: 128, Fraction: 0.4},
	}
}

// TestSimulateHeteroWorkerIndependence pins the bit-independence
// invariant on the heterogeneous runner: the same seed yields identical
// statistics for 1, 3 and 8 workers.
func TestSimulateHeteroWorkerIndependence(t *testing.T) {
	groups := heteroTestGroups(t)
	var ref HeteroRunResult
	for i, workers := range []int{1, 3, 8} {
		res, err := SimulateHetero(groups, RunConfig{Runs: 60, Patterns: 40, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Overhead != ref.Overhead || res.FailStops != ref.FailStops ||
			res.SilentDetections != ref.SilentDetections || res.Recoveries != ref.Recoveries {
			t.Errorf("workers=%d changed the campaign: %+v vs %+v", workers, res.Overhead, ref.Overhead)
		}
		for g := range res.GroupOverheads {
			if res.GroupOverheads[g] != ref.GroupOverheads[g] {
				t.Errorf("workers=%d changed group %d stats", workers, g)
			}
		}
	}
}

// TestSimulateHeteroGroupStreamIsolation pins the per-group grandchild
// streams: changing one group's pattern must not shift the other group's
// random draws (the event counts attributable to it stay identical in
// expectation-free, stream-exact terms when its own plan is unchanged).
func TestSimulateHeteroGroupStreamIsolation(t *testing.T) {
	groups := heteroTestGroups(t)
	base, err := SimulateHetero(groups, RunConfig{Runs: 40, Patterns: 30, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	perturbed := append([]HeteroGroupRun{}, groups...)
	perturbed[1].T = 4321
	got, err := SimulateHetero(perturbed, RunConfig{Runs: 40, Patterns: 30, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.GroupOverheads[0] != base.GroupOverheads[0] {
		t.Error("perturbing group 1's pattern shifted group 0's stream")
	}
	if got.GroupOverheads[1] == base.GroupOverheads[1] {
		t.Error("perturbing group 1's pattern left its own stats unchanged")
	}
}

// TestSimulateHeteroAgreesWithModel checks the simulator against the
// exact formula per group: each group's simulated overhead must approach
// its model overhead within Monte-Carlo tolerance, and the makespan must
// be max_g x_g·H_g of the same run.
func TestSimulateHeteroAgreesWithModel(t *testing.T) {
	groups := heteroTestGroups(t)
	res, err := SimulateHetero(groups, RunConfig{Runs: 300, Patterns: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for g, gr := range groups {
		want := gr.Model.Overhead(gr.T, gr.P)
		got := res.GroupOverheads[g].Mean
		if d := xmath.RelDiff(got, want); d > 0.05 {
			t.Errorf("group %d: simulated H = %g, model H = %g (rel %g)", g, got, want, d)
		}
	}
	if !(res.Overhead.Mean > 0) || math.IsInf(res.Overhead.Mean, 0) {
		t.Errorf("degenerate makespan summary: %+v", res.Overhead)
	}
	// The makespan mean can never undercut any single group's scaled mean
	// by more than sampling noise (max ≥ each component, run by run).
	for g := range groups {
		if res.Overhead.Mean < groups[g].Fraction*res.GroupOverheads[g].Mean*(1-1e-9) {
			t.Errorf("makespan mean %g below group %d component %g",
				res.Overhead.Mean, g, groups[g].Fraction*res.GroupOverheads[g].Mean)
		}
	}
}

// TestSimulateHeteroSingleGroupMatchesClassic pins the degeneracy on the
// sim layer: a one-group plan with fraction 1 must reproduce the
// classical Simulate campaign's overhead distribution — same per-run
// protocol draws, only the stream derivation differs by the documented
// one extra Split(0) level.
func TestSimulateHeteroSingleGroupMatchesClassic(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	one := []HeteroGroupRun{{Model: m, T: 5000, P: 256, Fraction: 1}}
	het, err := SimulateHetero(one, RunConfig{Runs: 200, Patterns: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	classic, err := Simulate(m, 5000, 256, RunConfig{Runs: 200, Patterns: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Different stream derivation ⇒ statistically identical, not
	// bit-identical: compare within Monte-Carlo tolerance.
	if d := xmath.RelDiff(het.Overhead.Mean, classic.Overhead.Mean); d > 0.05 {
		t.Errorf("single-group hetero sim drifts from classic: %g vs %g (rel %g)",
			het.Overhead.Mean, classic.Overhead.Mean, d)
	}
}

func TestSimulateHeteroRejectsBadPlans(t *testing.T) {
	groups := heteroTestGroups(t)
	if _, err := SimulateHetero(nil, RunConfig{Runs: 10, Patterns: 10}); err == nil {
		t.Error("empty plan accepted")
	}
	bad := append([]HeteroGroupRun{}, groups...)
	bad[0].Fraction = 0
	if _, err := SimulateHetero(bad, RunConfig{Runs: 10, Patterns: 10}); err == nil {
		t.Error("zero fraction accepted")
	}
	bad = append([]HeteroGroupRun{}, groups...)
	bad[0].Fraction = math.NaN()
	if _, err := SimulateHetero(bad, RunConfig{Runs: 10, Patterns: 10}); err == nil {
		t.Error("NaN fraction accepted")
	}
	if _, err := SimulateHetero(groups, RunConfig{Runs: 10, Patterns: 10, Machine: true}); err == nil {
		t.Error("machine mode accepted for heterogeneous plans")
	}
	// Error pressure propagates per group.
	hot := append([]HeteroGroupRun{}, groups...)
	hot[1].Model.LambdaInd = 1e-2
	if err := hot[1].Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateHetero(hot, RunConfig{Runs: 10, Patterns: 10}); err == nil {
		t.Error("unsimulable error pressure accepted")
	}
}
