package sim

import (
	"errors"
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/speedup"
)

// testModel builds a model from a platform row, like the experiment
// drivers do, so the goldens match fingerprints captured through
// experiments.BuildModel.
func testModel(t testing.TB, pl platform.Platform, sc costmodel.Scenario, alpha, downtime float64) core.Model {
	t.Helper()
	res, err := sc.Calibrate(pl.Processors, pl.CheckpointCost, pl.VerificationCost, downtime)
	if err != nil {
		t.Fatal(err)
	}
	return core.Model{
		LambdaInd:    pl.LambdaInd,
		FailStopFrac: pl.FailStopFraction,
		SilentFrac:   pl.SilentFraction,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: alpha},
	}
}

// Golden pin of the exponential machine simulator: fingerprints captured
// from the pre-Distribution implementation. The renewal-clock refactor
// must keep this path bit-identical ("determinism tests" of the issue).
func TestMachineExponentialGoldenPinned(t *testing.T) {
	m := testModel(t, platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	mc, err := NewMachine(m, 6240, 219)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mc.SimulateRun(400, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if st.Patterns != 400 || st.FailStops != 5 || st.SilentDetections != 5 || st.Recoveries != 10 {
		t.Errorf("counts = %+v, want patterns=400 fs=5 sd=5 rec=10", st)
	}
	if math.Float64bits(st.Elapsed) != math.Float64bits(0x1.3f7fc3996b0f1p+21) {
		t.Errorf("elapsed = %x, want %x", st.Elapsed, 0x1.3f7fc3996b0f1p+21)
	}

	// A hotter configuration exercises the downtime/recovery clock paths.
	pl := platform.Hera().WithLambda(2e-6)
	m2 := testModel(t, pl, costmodel.Scenario1, 0.1, 360)
	mc2, err := NewMachine(m2, 900, 64)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := mc2.SimulateRun(300, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Patterns != 300 || st2.FailStops != 10 || st2.SilentDetections != 25 || st2.Recoveries != 35 {
		t.Errorf("hot counts = %+v, want patterns=300 fs=10 sd=25 rec=35", st2)
	}
	if math.Float64bits(st2.Elapsed) != math.Float64bits(0x1.36b04c54c335bp+18) {
		t.Errorf("hot elapsed = %x, want %x", st2.Elapsed, 0x1.36b04c54c335bp+18)
	}
}

func TestNewMachineDistValidation(t *testing.T) {
	m := testModel(t, platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	if _, err := NewMachineDist(m, 6240, 219, nil); err == nil {
		t.Error("nil distribution accepted")
	}
	d, err := failures.NewWeibullMTBF(0.7, 1/m.LambdaInd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachineDist(m, -1, 219, d); err == nil {
		t.Error("negative T accepted")
	}
	if _, err := NewMachineDist(m, 6240, 219, d); err != nil {
		t.Errorf("valid dist machine rejected: %v", err)
	}
}

// A shape-1 Weibull is exponential in distribution, so the renewal-clock
// machine path must agree statistically with the analytic E(PATTERN) —
// the same oracle the exponential machine tests use.
func TestMachineDistWeibullShape1MatchesModel(t *testing.T) {
	pl := platform.Hera().WithLambda(2e-6)
	m := testModel(t, pl, costmodel.Scenario1, 0.1, 360)
	const tt, procs = 900.0, 64
	d, err := failures.NewWeibullMTBF(1, 1/m.LambdaInd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, tt, procs, RunConfig{
		Runs: 300, Patterns: 120, Seed: 5, Machine: true, Dist: d,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := m.ExactPatternTime(tt, procs)
	if math.Abs(res.MeanPatternTime.Mean-want) > 4*res.MeanPatternTime.CI95 {
		t.Errorf("shape-1 Weibull machine E(PATTERN) = %g ± %g, model %g",
			res.MeanPatternTime.Mean, res.MeanPatternTime.CI95, want)
	}
}

// Bursty Weibull arrivals (k < 1) with the same MTBF must change the
// picture: same platform pressure, different higher moments. The test
// pins determinism (same seed, same stats) and checks the simulated
// failure counts stay in the right ballpark (mean preserved ⇒ expected
// number of arrivals over the campaign's exposure time is comparable).
func TestMachineDistWeibullBurstyRunsDeterministically(t *testing.T) {
	pl := platform.Hera().WithLambda(2e-6)
	m := testModel(t, pl, costmodel.Scenario1, 0.1, 360)
	d, err := failures.NewWeibullMTBF(0.7, 1/m.LambdaInd)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Runs: 120, Patterns: 80, Seed: 9, Machine: true, Dist: d}
	a, err := Simulate(m, 900, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, 900, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overhead.Mean != b.Overhead.Mean || a.FailStops != b.FailStops ||
		a.SilentDetections != b.SilentDetections {
		t.Error("Weibull machine campaign not deterministic for a fixed seed")
	}
	if a.FailStops == 0 || a.SilentDetections == 0 {
		t.Errorf("no failures injected: %+v", a)
	}
	exp, err := Simulate(m, 900, 64, RunConfig{Runs: 120, Patterns: 80, Seed: 9, Machine: true})
	if err != nil {
		t.Fatal(err)
	}
	total := float64(a.FailStops + a.SilentDetections)
	totalExp := float64(exp.FailStops + exp.SilentDetections)
	if total < totalExp/3 || total > totalExp*3 {
		t.Errorf("calibration off: %g events under Weibull vs %g under exponential",
			total, totalExp)
	}
}

func TestSimulateDistRequiresMachine(t *testing.T) {
	m := testModel(t, platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	d, err := failures.NewWeibullMTBF(0.7, 1/m.LambdaInd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(m, 6240, 219, RunConfig{Runs: 2, Patterns: 2, Dist: d}); err == nil {
		t.Error("Dist without Machine accepted")
	}
}

// An uncalibrated distribution whose mean is orders of magnitude below
// the model MTBF must trip the error-pressure guard instead of letting
// SimulateRun loop effectively forever.
func TestNewMachineDistGuardsUncalibratedMean(t *testing.T) {
	m := testModel(t, platform.Hera(), costmodel.Scenario1, 0.1, 3600)
	hot := failures.Weibull{Shape: 0.7, Scale: 1} // mean ~1.3 s vs MTBF ~6e7 s
	if _, err := NewMachineDist(m, 6240, 219, hot); !errors.Is(err, ErrErrorPressure) {
		t.Errorf("uncalibrated dist not rejected: err=%v", err)
	}
}
