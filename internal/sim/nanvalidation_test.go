package sim

import (
	"math"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/failures"
)

// Non-finite pattern parameters must be rejected by every simulator
// constructor: an ordered comparison with NaN is always false, so the
// naive `t <= 0 || p < 1` form silently accepted NaN and the simulation
// looped on garbage (the bug class amdahl-lint's nanguard now flags).
func TestSimulatorsRejectNonFinitePatterns(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tr := &failures.Trace{Horizon: 1e6}
	cases := []struct {
		name string
		t, p float64
	}{
		{"NaN T", math.NaN(), 512},
		{"+Inf T", math.Inf(1), 512},
		{"-Inf T", math.Inf(-1), 512},
		{"zero T", 0, 512},
		{"NaN P", 6000, math.NaN()},
		{"+Inf P", 6000, math.Inf(1)},
		{"-Inf P", 6000, math.Inf(-1)},
		{"zero P", 6000, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewProtocol(m, tc.t, tc.p); err == nil {
				t.Errorf("NewProtocol(T=%g, P=%g) accepted", tc.t, tc.p)
			}
			if _, err := SimulateReplay(m, tc.t, tc.p, tr); err == nil {
				t.Errorf("SimulateReplay(T=%g, P=%g) accepted", tc.t, tc.p)
			}
			// The machine simulator takes an integer processor count; only
			// the float period can smuggle a NaN in.
			if _, err := NewMachine(m, tc.t, 512); err == nil && !(tc.t > 0) {
				t.Errorf("NewMachine(T=%g) accepted", tc.t)
			}
		})
	}
}

func TestReplayRejectsNonFiniteHorizon(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	for _, hor := range []float64{math.NaN(), 0, -1} {
		if _, err := SimulateReplay(m, 6000, 512, &failures.Trace{Horizon: hor}); err == nil {
			t.Errorf("trace with horizon %g accepted", hor)
		}
	}
}

func TestPatternStatsOverheadNaNPeriod(t *testing.T) {
	st := PatternStats{Patterns: 3, Elapsed: 100}
	if !math.IsNaN(st.Overhead(math.NaN(), 1.2)) {
		t.Error("NaN period should yield NaN overhead")
	}
}
