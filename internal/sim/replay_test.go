package sim

import (
	"math"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
	"amdahlyd/internal/xmath"
)

func TestSimulateReplayValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tr := &failures.Trace{Horizon: 1e6}
	if _, err := SimulateReplay(m, 0, 512, tr); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := SimulateReplay(m, 100, 0, tr); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := SimulateReplay(m, 100, 512, nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := SimulateReplay(m, 100, 512, &failures.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := m
	bad.LambdaInd = -1
	if _, err := SimulateReplay(bad, 100, 512, tr); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestReplayErrorFreeTrace(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	tr := &failures.Trace{Horizon: 1e6}
	res, err := SimulateReplay(m, 6000, 512, tr)
	if err != nil {
		t.Fatal(err)
	}
	perPattern := 6000 + 15.4 + 300.0
	wantPatterns := int64(1e6 / perPattern)
	if res.Patterns != wantPatterns {
		t.Errorf("patterns = %d, want %d", res.Patterns, wantPatterns)
	}
	if !res.TraceExhausted {
		t.Error("finite trace must eventually exhaust")
	}
	if res.FailStops != 0 || res.SilentDetections != 0 {
		t.Errorf("phantom errors: %+v", res)
	}
	if !xmath.EqualWithin(res.Elapsed, float64(wantPatterns)*perPattern, 1e-12, 0) {
		t.Errorf("elapsed = %g", res.Elapsed)
	}
}

func TestReplayHandCraftedTrace(t *testing.T) {
	// Craft a trace and verify the exact event-by-event accounting.
	// Pattern: T=1000, V=15.4... use scenario 3 so C=300, R=300, D=3600.
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.Res.Downtime = 100 // small downtime for easy arithmetic
	tr := &failures.Trace{
		Events: []failures.Event{
			// Silent error during the first computation window: detected
			// at the verification, recovery, pattern restarts.
			{Time: 500, Kind: failures.Silent, Proc: 0},
			// Fail-stop during the second attempt's computation: the
			// first attempt spans [0, 1015.4), its recovery
			// [1015.4, 1315.4), so attempt 2's computation window is
			// [1315.4, 2315.4) and the error strikes 500 s in.
			{Time: 1815.4, Kind: failures.FailStop, Proc: 1},
		},
		Horizon: 50000,
	}
	res, err := SimulateReplay(m, 1000, 512, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentDetections != 1 || res.FailStops != 1 {
		t.Fatalf("event counts wrong: %+v", res.PatternStats)
	}
	if res.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2", res.Recoveries)
	}
	if res.Patterns == 0 {
		t.Error("no pattern completed")
	}
	// Wall-clock: attempt1 T+V = 1015.4, recovery 300, 500 into attempt
	// 2 + downtime 100, recovery 300, then the pattern completes and
	// every later pattern is clean, 1315.4 each.
	wantPrefix := 1015.4 + 300 + 500 + 100 + 300
	want := wantPrefix + float64(res.Patterns)*1315.4
	if !xmath.EqualWithin(res.Elapsed, want, 1e-9, 0) {
		t.Errorf("elapsed = %g, want %g", res.Elapsed, want)
	}
}

func TestReplaySilentDuringProtectedPhaseIgnored(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	// Silent event inside the verification window [1000, 1015.4): must
	// be discarded, pattern completes cleanly.
	tr := &failures.Trace{
		Events:  []failures.Event{{Time: 1005, Kind: failures.Silent, Proc: 0}},
		Horizon: 10000,
	}
	res, err := SimulateReplay(m, 1000, 512, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentDetections != 0 {
		t.Error("silent error during verification should be discarded")
	}
	if res.Patterns < 1 {
		t.Error("pattern should have completed")
	}
}

func TestReplayFailStopMasksSilent(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.Res.Downtime = 0
	// Silent at 100, fail-stop at 200, both inside the first computation
	// window: the fail-stop masks the silent error (one rollback only).
	tr := &failures.Trace{
		Events: []failures.Event{
			{Time: 100, Kind: failures.Silent, Proc: 0},
			{Time: 200, Kind: failures.FailStop, Proc: 1},
		},
		Horizon: 20000,
	}
	res, err := SimulateReplay(m, 1000, 512, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentDetections != 0 {
		t.Error("masked silent error was detected")
	}
	if res.FailStops != 1 || res.Recoveries != 1 {
		t.Errorf("counts wrong: %+v", res.PatternStats)
	}
}

// The statistical bridge: replaying a synthetic machine-level trace must
// reproduce the Monte-Carlo protocol simulator's mean pattern time (and
// hence Proposition 1) within confidence intervals.
func TestReplayMatchesMonteCarlo(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.LambdaInd = 2e-6
	const procs = 64
	tt := 2000.0

	var acc stats.Welford
	for seed := uint64(0); seed < 60; seed++ {
		tr, err := failures.GenerateTrace(m.LambdaInd, m.FailStopFrac, procs, 3e5, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateReplay(m, tt, procs, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Patterns == 0 {
			t.Fatal("trace too short for a single pattern")
		}
		acc.Add(res.MeanPatternTime())
	}

	exact := m.ExactPatternTime(tt, procs)
	ci := acc.CI(0.95)
	if math.Abs(acc.Mean()-exact) > 4*ci {
		t.Errorf("replayed mean pattern time %g ± %g vs Proposition 1 %g",
			acc.Mean(), ci, exact)
	}
}

func TestReplayTraceExhaustionMidPattern(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	// Horizon shorter than one pattern: zero patterns, exhausted.
	tr := &failures.Trace{Horizon: 500}
	res, err := SimulateReplay(m, 1000, 512, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 0 || !res.TraceExhausted {
		t.Errorf("short trace handled wrongly: %+v", res)
	}
}
