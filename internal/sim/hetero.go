package sim

import (
	"context"
	"errors"
	"fmt"

	"amdahlyd/internal/core"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

// HeteroGroupRun is one active group's share of a heterogeneous
// simulation: the group's comm-charged model (core.HeteroModel.ActiveModel
// at the run's active count), the pattern it executes and the work
// fraction it was allocated. The optimizer's GroupPlan carries exactly
// these values; the sim layer keeps its own type so it depends only on
// core, like the single-group simulators.
type HeteroGroupRun struct {
	// Model is the group's model including the inter-group comm charge.
	Model core.Model
	// T and P fix the group's pattern.
	T, P float64
	// Fraction is the group's work share x_g ∈ (0, 1].
	Fraction float64
}

// HeteroRunResult aggregates a heterogeneous Monte-Carlo campaign.
type HeteroRunResult struct {
	// Overhead summarizes the per-run makespan overhead
	// max_g x_g·H_g^sim — the heterogeneous counterpart of
	// RunResult.Overhead, directly comparable to the optimizer's combined
	// H = 1/Σ 1/A_g.
	Overhead stats.Summary
	// GroupOverheads summarizes each group's own simulated overhead
	// H_g^sim (per unit of the group's work, before the x_g scaling), in
	// plan order — comparable to the optimizer's per-group A_g.
	GroupOverheads []stats.Summary
	// FailStops, SilentDetections and Recoveries are totals across all
	// runs and groups.
	FailStops        int64
	SilentDetections int64
	Recoveries       int64
	// Config echoes the effective configuration.
	Config RunConfig
}

// SimulateHetero runs the Monte-Carlo campaign for a heterogeneous plan:
// each run plays every group's pattern stream independently and scores
// the run by its makespan overhead max_g x_g·H_g. It is
// SimulateHeteroContext with a background context.
func SimulateHetero(groups []HeteroGroupRun, cfg RunConfig) (HeteroRunResult, error) {
	return SimulateHeteroContext(context.Background(), groups, cfg)
}

// SimulateHeteroContext simulates the heterogeneous plan on the shared
// chunked runner. Run i draws from the deterministic child stream
// Split(i) and group g within the run from the grandchild Split(g), so
// results are independent of worker count and dispatch order, and a
// group's stream does not shift when another group's plan changes.
func SimulateHeteroContext(ctx context.Context, groups []HeteroGroupRun, cfg RunConfig) (HeteroRunResult, error) {
	cfg = cfg.WithDefaults()
	if cfg.Runs < 1 || cfg.Patterns < 1 {
		return HeteroRunResult{}, fmt.Errorf("sim: invalid config %+v", cfg)
	}
	if cfg.Machine || cfg.Dist != nil {
		return HeteroRunResult{}, errors.New(
			"sim: heterogeneous simulation uses the pattern-level simulator (Machine/Dist unsupported)")
	}
	if len(groups) == 0 {
		return HeteroRunResult{}, errors.New("sim: heterogeneous plan with no groups")
	}

	// Per-group simulators and error-free profile overheads, derived once.
	prs := make([]*Protocol, len(groups))
	hOfP := make([]float64, len(groups))
	for g, gr := range groups {
		if !(gr.Fraction > 0 && gr.Fraction <= 1) {
			return HeteroRunResult{}, fmt.Errorf("sim: group %d: work fraction %g outside (0,1]", g, gr.Fraction)
		}
		pr, err := NewProtocol(gr.Model, gr.T, gr.P)
		if err != nil {
			return HeteroRunResult{}, fmt.Errorf("sim: group %d: %w", g, err)
		}
		prs[g] = pr
		hOfP[g] = gr.Model.Profile.Overhead(gr.P)
	}

	master := rng.New(cfg.Seed)
	outs := make([][]PatternStats, cfg.Runs)
	err := ForEachRun(ctx, cfg.Runs, cfg.Workers, func(i int) error {
		stream := master.Split(uint64(i))
		sts := make([]PatternStats, len(groups))
		for g, pr := range prs {
			st, err := pr.SimulateRun(cfg.Patterns, stream.Split(uint64(g)))
			if err != nil {
				return err
			}
			sts[g] = st
		}
		outs[i] = sts
		return nil
	})
	if err != nil {
		return HeteroRunResult{}, err
	}

	var makespan stats.Welford
	groupW := make([]stats.Welford, len(groups))
	res := HeteroRunResult{Config: cfg}
	for _, sts := range outs {
		runH := 0.0
		for g, st := range sts {
			h := st.Overhead(groups[g].T, hOfP[g])
			groupW[g].Add(h)
			if gh := groups[g].Fraction * h; gh > runH {
				runH = gh
			}
			res.FailStops += st.FailStops
			res.SilentDetections += st.SilentDetections
			res.Recoveries += st.Recoveries
		}
		makespan.Add(runH)
	}
	res.Overhead = makespan.Summarize()
	res.GroupOverheads = make([]stats.Summary, len(groups))
	for g := range groupW {
		res.GroupOverheads[g] = groupW[g].Summarize()
	}
	return res, nil
}
