package sim

import (
	"bytes"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/rng"
)

// A saved-then-loaded trace must replay bit-identically to the in-memory
// one. This is the regression test for the lossy CSV round trip: before
// the horizon was persisted, ReadCSV restored it as the last event time,
// so the reloaded replay exhausted earlier and counted fewer patterns.
func TestReplayCSVRoundTripBitEqual(t *testing.T) {
	pl := platform.Hera().WithLambda(1e-6)
	m := testModel(t, pl, costmodel.Scenario1, 0.1, 360)

	// A sparse trace with a long event-free tail before the horizon: the
	// patterns completed in that tail are exactly what the lossy horizon
	// used to drop.
	tr, err := failures.GenerateTrace(1e-6, pl.FailStopFraction, 8, 4e6, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}

	const tt, p = 2000.0, 8
	direct, err := SimulateReplay(m, tt, p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Patterns == 0 {
		t.Fatal("direct replay completed no patterns")
	}

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := failures.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := SimulateReplay(m, tt, p, back)
	if err != nil {
		t.Fatal(err)
	}
	if direct != reloaded {
		t.Errorf("round-trip replay diverged:\n direct   %+v\n reloaded %+v", direct, reloaded)
	}

	// The test must be discriminating: truncating the horizon to the last
	// event (the historical lossy restore) must actually change the
	// replay, otherwise this pins nothing.
	lossy := &failures.Trace{Events: back.Events, Horizon: back.Events[len(back.Events)-1].Time}
	short, err := SimulateReplay(m, tt, p, lossy)
	if err != nil {
		t.Fatal(err)
	}
	if short.Patterns >= direct.Patterns {
		t.Errorf("test not discriminating: lossy horizon still completes %d >= %d patterns",
			short.Patterns, direct.Patterns)
	}
}
