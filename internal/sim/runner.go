package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"amdahlyd/internal/core"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

// RunConfig parameterizes a Monte-Carlo campaign. The zero value plus a
// Seed reproduces the paper's methodology: 500 independent runs, each of
// at least 500 patterns (Section IV-A).
type RunConfig struct {
	// Runs is the number of independent simulation runs (default 500).
	Runs int
	// Patterns is the number of patterns per run (default 500).
	Patterns int
	// Seed fixes the campaign's master random stream; run i uses the
	// deterministic child stream Split(i), so results are independent of
	// scheduling and worker count.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Machine switches to the machine-level event simulator (P must then
	// be integral); default is the fast pattern-level simulator.
	Machine bool
	// Dist, when non-nil, replaces the exponential per-processor
	// inter-arrival law with an arbitrary renewal process (requires
	// Machine: the pattern-level simulator's closed-form thinning is
	// exponential-only). Calibrate it to the model's MTBF so the platform
	// pressure stays comparable; see failures.Distribution.
	Dist failures.Distribution
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Runs == 0 {
		c.Runs = 500
	}
	if c.Patterns == 0 {
		c.Patterns = 500
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunResult aggregates a Monte-Carlo campaign.
type RunResult struct {
	// Overhead summarizes per-run expected execution overheads
	// H = (elapsed/patterns)/T · H(P); its Mean is the quantity the
	// paper plots as "simulated execution overhead".
	Overhead stats.Summary
	// MeanPatternTime summarizes per-run mean pattern times E(PATTERN).
	MeanPatternTime stats.Summary
	// FailStops, SilentDetections and Recoveries are totals across runs.
	FailStops        int64
	SilentDetections int64
	Recoveries       int64
	// Config echoes the effective configuration.
	Config RunConfig
}

// Simulate runs the Monte-Carlo campaign for PATTERN(T, P) under the
// model, fanning runs out over a worker pool with deterministic per-run
// streams, and returns aggregated statistics.
func Simulate(m core.Model, t, p float64, cfg RunConfig) (RunResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Runs < 1 || cfg.Patterns < 1 {
		return RunResult{}, fmt.Errorf("sim: invalid config %+v", cfg)
	}

	type runOut struct {
		stats PatternStats
		err   error
	}

	var runOne func(r *rng.Rand) (PatternStats, error)
	if cfg.Dist != nil && !cfg.Machine {
		return RunResult{}, errors.New(
			"sim: non-exponential distributions need the machine-level simulator (set Machine)")
	}
	if cfg.Machine {
		procs := int(p)
		if float64(procs) != p {
			return RunResult{}, errors.New("sim: machine-level simulation needs integral P")
		}
		var (
			mc  *Machine
			err error
		)
		if cfg.Dist != nil {
			mc, err = NewMachineDist(m, t, procs, cfg.Dist)
		} else {
			mc, err = NewMachine(m, t, procs)
		}
		if err != nil {
			return RunResult{}, err
		}
		runOne = func(r *rng.Rand) (PatternStats, error) {
			return mc.SimulateRun(cfg.Patterns, r)
		}
	} else {
		pr, err := NewProtocol(m, t, p)
		if err != nil {
			return RunResult{}, err
		}
		runOne = func(r *rng.Rand) (PatternStats, error) {
			return pr.SimulateRun(cfg.Patterns, r)
		}
	}

	// Run i always draws from the deterministic child stream Split(i), so
	// the dispatch strategy below (sequential fast path or chunked
	// work-stealing) never changes the results. Split only reads the
	// master state, so concurrent splitting is race-free.
	master := rng.New(cfg.Seed)
	hOfP := m.Profile.Overhead(p)

	outs := make([]runOut, cfg.Runs)
	workers := cfg.Workers
	if workers < 1 {
		// A negative Workers would otherwise spawn no goroutines and
		// return all-zero stats (NaN overheads) with a nil error.
		workers = 1
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	if workers == 1 {
		// The experiment drivers parallelize at the cell level and run
		// each campaign with a single worker: skip the goroutine and
		// dispatch machinery entirely.
		for i := 0; i < cfg.Runs; i++ {
			st, err := runOne(master.Split(uint64(i)))
			outs[i] = runOut{stats: st, err: err}
		}
	} else {
		// Chunked dispatch: workers claim contiguous run ranges from an
		// atomic cursor instead of receiving one channel message per run.
		chunk := cfg.Runs / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					end := int(next.Add(int64(chunk)))
					start := end - chunk
					if start >= cfg.Runs {
						return
					}
					if end > cfg.Runs {
						end = cfg.Runs
					}
					for i := start; i < end; i++ {
						st, err := runOne(master.Split(uint64(i)))
						outs[i] = runOut{stats: st, err: err}
					}
				}
			}()
		}
		wg.Wait()
	}

	var overhead, meanTime stats.Welford
	res := RunResult{Config: cfg}
	for i, out := range outs {
		if out.err != nil {
			return RunResult{}, fmt.Errorf("sim: run %d: %w", i, out.err)
		}
		overhead.Add(out.stats.Overhead(t, hOfP))
		meanTime.Add(out.stats.MeanPatternTime())
		res.FailStops += out.stats.FailStops
		res.SilentDetections += out.stats.SilentDetections
		res.Recoveries += out.stats.Recoveries
	}
	res.Overhead = overhead.Summarize()
	res.MeanPatternTime = meanTime.Summarize()
	return res, nil
}
