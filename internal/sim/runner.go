package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"amdahlyd/internal/core"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

// RunConfig parameterizes a Monte-Carlo campaign. The zero value plus a
// Seed reproduces the paper's methodology: 500 independent runs, each of
// at least 500 patterns (Section IV-A).
type RunConfig struct {
	// Runs is the number of independent simulation runs (default 500).
	Runs int
	// Patterns is the number of patterns per run (default 500).
	Patterns int
	// Seed fixes the campaign's master random stream; run i uses the
	// deterministic child stream Split(i), so results are independent of
	// scheduling and worker count.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Machine switches to the machine-level event simulator (P must then
	// be integral); default is the fast pattern-level simulator.
	Machine bool
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Runs == 0 {
		c.Runs = 500
	}
	if c.Patterns == 0 {
		c.Patterns = 500
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunResult aggregates a Monte-Carlo campaign.
type RunResult struct {
	// Overhead summarizes per-run expected execution overheads
	// H = (elapsed/patterns)/T · H(P); its Mean is the quantity the
	// paper plots as "simulated execution overhead".
	Overhead stats.Summary
	// MeanPatternTime summarizes per-run mean pattern times E(PATTERN).
	MeanPatternTime stats.Summary
	// FailStops, SilentDetections and Recoveries are totals across runs.
	FailStops        int64
	SilentDetections int64
	Recoveries       int64
	// Config echoes the effective configuration.
	Config RunConfig
}

// Simulate runs the Monte-Carlo campaign for PATTERN(T, P) under the
// model, fanning runs out over a worker pool with deterministic per-run
// streams, and returns aggregated statistics.
func Simulate(m core.Model, t, p float64, cfg RunConfig) (RunResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Runs < 1 || cfg.Patterns < 1 {
		return RunResult{}, fmt.Errorf("sim: invalid config %+v", cfg)
	}

	type runOut struct {
		stats PatternStats
		err   error
	}

	var runOne func(r *rng.Rand) (PatternStats, error)
	if cfg.Machine {
		procs := int(p)
		if float64(procs) != p {
			return RunResult{}, errors.New("sim: machine-level simulation needs integral P")
		}
		mc, err := NewMachine(m, t, procs)
		if err != nil {
			return RunResult{}, err
		}
		runOne = func(r *rng.Rand) (PatternStats, error) {
			return mc.SimulateRun(cfg.Patterns, r)
		}
	} else {
		pr, err := NewProtocol(m, t, p)
		if err != nil {
			return RunResult{}, err
		}
		runOne = func(r *rng.Rand) (PatternStats, error) {
			return pr.SimulateRun(cfg.Patterns, r)
		}
	}

	master := rng.New(cfg.Seed)
	hOfP := m.Profile.Overhead(p)

	jobs := make(chan int)
	outs := make([]runOut, cfg.Runs)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				st, err := runOne(master.Split(uint64(i)))
				outs[i] = runOut{stats: st, err: err}
			}
		}()
	}
	for i := 0; i < cfg.Runs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var overhead, meanTime stats.Welford
	res := RunResult{Config: cfg}
	for i, out := range outs {
		if out.err != nil {
			return RunResult{}, fmt.Errorf("sim: run %d: %w", i, out.err)
		}
		overhead.Add(out.stats.Overhead(t, hOfP))
		meanTime.Add(out.stats.MeanPatternTime())
		res.FailStops += out.stats.FailStops
		res.SilentDetections += out.stats.SilentDetections
		res.Recoveries += out.stats.Recoveries
	}
	res.Overhead = overhead.Summarize()
	res.MeanPatternTime = meanTime.Summarize()
	return res, nil
}
