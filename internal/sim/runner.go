package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"amdahlyd/internal/core"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/stats"
)

// RunConfig parameterizes a Monte-Carlo campaign. The zero value plus a
// Seed reproduces the paper's methodology: 500 independent runs, each of
// at least 500 patterns (Section IV-A).
type RunConfig struct {
	// Runs is the number of independent simulation runs (default 500).
	Runs int
	// Patterns is the number of patterns per run (default 500).
	Patterns int
	// Seed fixes the campaign's master random stream; run i uses the
	// deterministic child stream Split(i), so results are independent of
	// scheduling and worker count.
	Seed uint64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Machine switches to the machine-level event simulator (P must then
	// be integral); default is the fast pattern-level simulator.
	Machine bool
	// Dist, when non-nil, replaces the exponential per-processor
	// inter-arrival law with an arbitrary renewal process (requires
	// Machine: the pattern-level simulator's closed-form thinning is
	// exponential-only). Calibrate it to the model's MTBF so the platform
	// pressure stays comparable; see failures.Distribution.
	Dist failures.Distribution
}

// WithDefaults returns the effective configuration: the paper's 500-run,
// 500-pattern budget for zero Runs/Patterns and GOMAXPROCS workers.
// Exported so callers that key campaigns by configuration (the service
// result cache) normalize exactly the way Simulate will.
func (c RunConfig) WithDefaults() RunConfig {
	if c.Runs == 0 {
		c.Runs = 500
	}
	if c.Patterns == 0 {
		c.Patterns = 500
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunResult aggregates a Monte-Carlo campaign.
type RunResult struct {
	// Overhead summarizes per-run expected execution overheads
	// H = (elapsed/patterns)/T · H(P); its Mean is the quantity the
	// paper plots as "simulated execution overhead".
	Overhead stats.Summary
	// MeanPatternTime summarizes per-run mean pattern times E(PATTERN).
	MeanPatternTime stats.Summary
	// FailStops, SilentDetections and Recoveries are totals across runs.
	FailStops        int64
	SilentDetections int64
	Recoveries       int64
	// Config echoes the effective configuration.
	Config RunConfig
}

// maxSimProcs bounds the machine-level processor count: int(p) for p
// beyond 2⁶³ is undefined behaviour, and an event population anywhere
// near this bound could never be simulated anyway. The limit is far above
// every deployed machine of Table II and the robustness study's own
// 2¹⁶ cap.
const maxSimProcs = 1 << 30

// Simulate runs the Monte-Carlo campaign for PATTERN(T, P) under the
// model, fanning runs out over a worker pool with deterministic per-run
// streams, and returns aggregated statistics. It is SimulateContext with
// a background context.
func Simulate(m core.Model, t, p float64, cfg RunConfig) (RunResult, error) {
	return SimulateContext(context.Background(), m, t, p, cfg)
}

// SimulateContext is Simulate with cancellation: the campaign aborts
// between runs as soon as ctx is done (returning ctx.Err()), and a run
// failure cancels all outstanding work instead of paying for the
// remaining runs. Cancellation never changes the statistics of a
// campaign that completes: run i always draws from the deterministic
// child stream Split(i).
func SimulateContext(ctx context.Context, m core.Model, t, p float64, cfg RunConfig) (RunResult, error) {
	cfg = cfg.WithDefaults()
	if cfg.Runs < 1 || cfg.Patterns < 1 {
		return RunResult{}, fmt.Errorf("sim: invalid config %+v", cfg)
	}

	var runOne func(r *rng.Rand) (PatternStats, error)
	if cfg.Dist != nil && !cfg.Machine {
		return RunResult{}, errors.New(
			"sim: non-exponential distributions need the machine-level simulator (set Machine)")
	}
	if cfg.Machine {
		// int(p) is only defined while p fits the integer range; validate
		// before converting instead of relying on downstream behaviour.
		if math.IsNaN(p) || p < 1 {
			return RunResult{}, fmt.Errorf("sim: machine-level simulation needs P >= 1, got %g", p)
		}
		if p > maxSimProcs {
			return RunResult{}, fmt.Errorf("sim: machine-level P = %g exceeds the %d-processor limit", p, maxSimProcs)
		}
		procs := int(p)
		if float64(procs) != p {
			return RunResult{}, fmt.Errorf("sim: machine-level simulation needs integral P, got %g", p)
		}
		var (
			mc  *Machine
			err error
		)
		if cfg.Dist != nil {
			mc, err = NewMachineDist(m, t, procs, cfg.Dist)
		} else {
			mc, err = NewMachine(m, t, procs)
		}
		if err != nil {
			return RunResult{}, err
		}
		runOne = func(r *rng.Rand) (PatternStats, error) {
			return mc.SimulateRun(cfg.Patterns, r)
		}
	} else {
		pr, err := NewProtocol(m, t, p)
		if err != nil {
			return RunResult{}, err
		}
		runOne = func(r *rng.Rand) (PatternStats, error) {
			return pr.SimulateRun(cfg.Patterns, r)
		}
	}

	// Run i always draws from the deterministic child stream Split(i), so
	// the dispatch strategy (sequential fast path or chunked work
	// stealing) never changes the results. Split only reads the master
	// state, so concurrent splitting is race-free.
	master := rng.New(cfg.Seed)
	hOfP := m.Profile.Overhead(p)

	outs := make([]PatternStats, cfg.Runs)
	err := ForEachRun(ctx, cfg.Runs, cfg.Workers, func(i int) error {
		st, err := runOne(master.Split(uint64(i)))
		outs[i] = st
		return err
	})
	if err != nil {
		return RunResult{}, err
	}

	var overhead, meanTime stats.Welford
	res := RunResult{Config: cfg}
	for _, st := range outs {
		overhead.Add(st.Overhead(t, hOfP))
		meanTime.Add(st.MeanPatternTime())
		res.FailStops += st.FailStops
		res.SilentDetections += st.SilentDetections
		res.Recoveries += st.Recoveries
	}
	res.Overhead = overhead.Summarize()
	res.MeanPatternTime = meanTime.Summarize()
	return res, nil
}

// ForEachRun executes fn(i) for every i in [0, runs) over a bounded
// worker pool, failing fast: the first error — or ctx becoming done —
// stops every worker from claiming further work, so a run-0 failure does
// not pay for the remaining runs. On failure it returns the error of the
// lowest-index failed run (wrapped with the index), which keeps error
// reporting deterministic even though later runs may or may not have
// executed; a cancelled context wins only when no run error was recorded.
//
// It is exported as the shared chunked-dispatch substrate for every
// Monte-Carlo campaign in the repository (the single-level simulators
// here and the two-level campaigns in internal/multilevel): callers
// derive run i's stream with rng.Rand.Split(i) and write into
// preallocated per-run slots, which keeps results independent of the
// worker count and of the dispatch order.
func ForEachRun(ctx context.Context, runs, workers int, fn func(i int) error) error {
	if workers < 1 {
		// A negative Workers would otherwise spawn no goroutines and
		// return all-zero stats (NaN overheads) with a nil error.
		workers = 1
	}
	if workers > runs {
		workers = runs
	}

	if workers == 1 {
		// The experiment drivers parallelize at the cell level and run
		// each campaign with a single worker: skip the goroutine and
		// dispatch machinery entirely.
		for i := 0; i < runs; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return fmt.Errorf("sim: run %d: %w", i, err)
			}
		}
		return nil
	}

	// Chunked dispatch: workers claim contiguous run ranges from an
	// atomic cursor instead of receiving one channel message per run.
	chunk := runs / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next      atomic.Int64
		stopped   atomic.Bool
		completed atomic.Int64
		wg        sync.WaitGroup
	)
	errs := make([]error, runs)
	done := ctx.Done()
	canceled := func() bool {
		if stopped.Load() {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled() {
					return
				}
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= runs {
					return
				}
				if end > runs {
					end = runs
				}
				for i := start; i < end; i++ {
					if canceled() {
						return
					}
					if err := fn(i); err != nil {
						errs[i] = err
						stopped.Store(true)
						return
					}
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sim: run %d: %w", i, err)
		}
	}
	if completed.Load() == int64(runs) {
		// Every run finished before the cancellation (if any) could bite:
		// the campaign is fully computed, so return it rather than
		// discarding paid-for work over a last-instant ctx.Err().
		return nil
	}
	return ctx.Err()
}
