package sim

import (
	"math"
	"testing"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/rng"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/stats"
	"amdahlyd/internal/xmath"
)

func heraModel(t testing.TB, sc costmodel.Scenario, alpha float64) core.Model {
	t.Helper()
	res, err := sc.Calibrate(512, 300, 15.4, 3600)
	if err != nil {
		t.Fatal(err)
	}
	return core.Model{
		LambdaInd:    1.69e-8,
		FailStopFrac: 0.2188,
		SilentFrac:   0.7812,
		Res:          res,
		Profile:      speedup.Amdahl{Alpha: alpha},
	}
}

func TestNewProtocolValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if _, err := NewProtocol(m, 0, 512); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewProtocol(m, 100, 0); err == nil {
		t.Error("P=0 accepted")
	}
	bad := m
	bad.LambdaInd = -1
	if _, err := NewProtocol(bad, 100, 512); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestErrorFreeRunIsDeterministic(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.LambdaInd = 0
	pr, err := NewProtocol(m, 6000, 512)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.SimulateRun(100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	wantPattern := 6000 + 15.4 + 300
	if !xmath.EqualWithin(st.MeanPatternTime(), wantPattern, 1e-12, 0) {
		t.Errorf("error-free pattern time %g, want %g", st.MeanPatternTime(), wantPattern)
	}
	if st.FailStops != 0 || st.SilentDetections != 0 || st.Recoveries != 0 {
		t.Errorf("error-free run recorded errors: %+v", st)
	}
}

// The central validation of Proposition 1: the Monte-Carlo mean pattern
// time must match the exact analytical formula within the confidence
// interval, on every scenario.
func TestSimulationValidatesProposition1(t *testing.T) {
	for _, sc := range costmodel.AllScenarios {
		m := heraModel(t, sc, 0.1)
		// Crank the rate so errors are frequent enough to test the error
		// paths thoroughly within a small number of patterns.
		m.LambdaInd = 4e-7
		tt, p := 3000.0, 512.0
		exact := m.ExactPatternTime(tt, p)

		res, err := Simulate(m, tt, p, RunConfig{Runs: 300, Patterns: 60, Seed: 42})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		mean := res.MeanPatternTime.Mean
		ci := res.MeanPatternTime.CI95
		if math.Abs(mean-exact) > 3*ci {
			t.Errorf("%v: simulated E = %g ± %g, exact = %g (|Δ| > 3·CI95)",
				sc, mean, ci, exact)
		}
		if res.FailStops == 0 || res.SilentDetections == 0 {
			t.Errorf("%v: error paths not exercised: %+v", sc, res)
		}
	}
}

func TestSimulationValidatesProposition1FailStopOnly(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 1, 0
	m.LambdaInd = 5e-7
	tt, p := 4000.0, 512.0
	exact := m.ExactPatternTime(tt, p)
	res, err := Simulate(m, tt, p, RunConfig{Runs: 300, Patterns: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanPatternTime.Mean-exact) > 3*res.MeanPatternTime.CI95 {
		t.Errorf("fail-stop-only: simulated %g ± %g vs exact %g",
			res.MeanPatternTime.Mean, res.MeanPatternTime.CI95, exact)
	}
	if res.SilentDetections != 0 {
		t.Error("silent detections recorded with s = 0")
	}
}

func TestSimulationValidatesProposition1SilentOnly(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 0, 1
	m.LambdaInd = 5e-7
	tt, p := 4000.0, 512.0
	exact := m.ExactPatternTime(tt, p)
	res, err := Simulate(m, tt, p, RunConfig{Runs: 300, Patterns: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanPatternTime.Mean-exact) > 3*res.MeanPatternTime.CI95 {
		t.Errorf("silent-only: simulated %g ± %g vs exact %g",
			res.MeanPatternTime.Mean, res.MeanPatternTime.CI95, exact)
	}
	if res.FailStops != 0 {
		t.Error("fail-stops recorded with f = 0")
	}
}

func TestSimulatedOverheadMatchesModel(t *testing.T) {
	// At Hera's true parameters and the first-order optimal pattern, the
	// simulated overhead must reproduce the model overhead (≈0.11, the
	// headline number of Fig. 2).
	m := heraModel(t, costmodel.Scenario1, 0.1)
	fo, err := m.FirstOrder()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, fo.T, fo.P, RunConfig{Runs: 200, Patterns: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	model := m.Overhead(fo.T, fo.P)
	if math.Abs(res.Overhead.Mean-model) > 4*res.Overhead.CI95 {
		t.Errorf("simulated overhead %g ± %g vs model %g",
			res.Overhead.Mean, res.Overhead.CI95, model)
	}
	if res.Overhead.Mean < 0.1 || res.Overhead.Mean > 0.125 {
		t.Errorf("overhead %g outside the paper's ≈0.11 band", res.Overhead.Mean)
	}
}

func TestSimulateDeterministicAcrossWorkerCounts(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.LambdaInd = 1e-6
	r1, err := Simulate(m, 2000, 512, RunConfig{Runs: 40, Patterns: 20, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Simulate(m, 2000, 512, RunConfig{Runs: 40, Patterns: 20, Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overhead.Mean != r8.Overhead.Mean || r1.FailStops != r8.FailStops {
		t.Error("results depend on worker count: per-run streams are not deterministic")
	}
}

func TestSimulateSeedSensitivity(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	m.LambdaInd = 1e-6
	a, _ := Simulate(m, 2000, 512, RunConfig{Runs: 20, Patterns: 20, Seed: 1})
	b, _ := Simulate(m, 2000, 512, RunConfig{Runs: 20, Patterns: 20, Seed: 2})
	if a.Overhead.Mean == b.Overhead.Mean {
		t.Error("different seeds produced identical results")
	}
}

func TestSimulateConfigValidation(t *testing.T) {
	m := heraModel(t, costmodel.Scenario1, 0.1)
	if _, err := Simulate(m, 2000, 512, RunConfig{Runs: -1}); err == nil {
		t.Error("negative run count accepted")
	}
	if _, err := Simulate(m, 2000, 512.5, RunConfig{Machine: true, Runs: 1, Patterns: 1}); err == nil {
		t.Error("fractional P accepted for machine simulation")
	}
}

func TestPatternStatsEdgeCases(t *testing.T) {
	var st PatternStats
	if !math.IsNaN(st.MeanPatternTime()) {
		t.Error("mean of zero patterns should be NaN")
	}
	if !math.IsNaN(st.Overhead(100, 0.1)) {
		t.Error("overhead of zero patterns should be NaN")
	}
}

// Increasing the error rate must increase both the simulated pattern time
// and the error counts — a coarse end-to-end sanity property.
func TestRateMonotonicityEndToEnd(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	cfg := RunConfig{Runs: 50, Patterns: 50, Seed: 5}
	m.LambdaInd = 2e-7
	lo, err := Simulate(m, 3000, 512, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LambdaInd = 2e-6
	hi, err := Simulate(m, 3000, 512, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hi.MeanPatternTime.Mean <= lo.MeanPatternTime.Mean {
		t.Error("10× error rate did not increase pattern time")
	}
	if hi.FailStops+hi.SilentDetections <= lo.FailStops+lo.SilentDetections {
		t.Error("10× error rate did not increase error counts")
	}
}

// The simulated distribution of silent detections per pattern must match
// the model probability q = (1−qf)·qs at small rates... more simply: the
// fraction of patterns requiring at least one retry matches theory within
// tolerance. We check the mean number of verifications consumed per
// successful pattern against e^{λs·T} in a silent-only setting.
func TestSilentRetryCountMatchesGeometry(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 0, 1
	m.LambdaInd = 2e-6
	tt, p := 3000.0, 512.0
	_, ls := m.Rates(p)
	pr, err := NewProtocol(m, tt, p)
	if err != nil {
		t.Fatal(err)
	}
	var st PatternStats
	r := rng.New(11)
	const patterns = 20000
	for i := 0; i < patterns; i++ {
		pr.SimulatePattern(r, &st)
	}
	// Attempts per pattern are geometric with success prob e^{−λsT}:
	// mean retries = e^{λsT} − 1.
	wantRetries := math.Expm1(ls * tt)
	gotRetries := float64(st.SilentDetections) / float64(st.Patterns)
	if math.Abs(gotRetries-wantRetries)/wantRetries > 0.05 {
		t.Errorf("retries per pattern = %g, want %g", gotRetries, wantRetries)
	}
}

// Kolmogorov–Smirnov check on the simulator's fail-stop inter-arrival
// sampling through the public FirstInWindow-equivalent path.
func TestProtocolFailStopSamplingIsExponential(t *testing.T) {
	m := heraModel(t, costmodel.Scenario3, 0.1)
	m.FailStopFrac, m.SilentFrac = 1, 0
	m.LambdaInd = 1e-6
	pr, err := NewProtocol(m, 1e3, 512)
	if err != nil {
		t.Fatal(err)
	}
	lf, _ := m.Rates(512)
	r := rng.New(13)
	xs := make([]float64, 0, 3000)
	for len(xs) < 3000 {
		if lost, struck := pr.failStopIn(1e12, r); struck {
			xs = append(xs, lost)
		}
	}
	res, err := stats.KSTestExponential(xs, lf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("fail-stop arrivals rejected as exponential: p=%g", res.PValue)
	}
}
