package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/failures"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
	"amdahlyd/internal/sim"
)

// RobustnessCell is one (scenario, shape) cell of the robustness study:
// how much of the exponential-optimal pattern's quality survives when
// the real failure law is not memoryless.
type RobustnessCell struct {
	Scenario costmodel.Scenario
	// Shape is the distribution's shape parameter (Weibull/Gamma k, or
	// log-normal σ).
	Shape float64
	// Dist names the calibrated per-processor inter-arrival law.
	Dist string
	// T and P are the exponential-optimal pattern (the paper's numerical
	// optimum under the memoryless model).
	T, P float64
	// PredictedH is what the exponential model believes H(T, P) is.
	PredictedH float64
	// NaiveH is the simulated overhead of replaying (T, P) under the
	// true distribution, with CI95 half-width NaiveCI.
	NaiveH, NaiveCI float64
	// RetunedT is the best period found for the true distribution (P
	// held at the exponential optimum), and RetunedH its simulated
	// overhead with CI95 half-width RetunedCI.
	RetunedT            float64
	RetunedH, RetunedCI float64
	// GapPct is the robustness verdict: the relative overhead excess of
	// the exponential-optimal period over the re-tuned one, in percent.
	// Small gaps mean the Young/Daly-type tuning is robust to the
	// distribution change.
	GapPct float64
	// Unsimulable flags a cell whose pattern sits too deep in the
	// failure-dominated regime for the machine-level simulator.
	Unsimulable bool
}

// markUnsimulable flags the cell and NaNs every simulated quantity, for
// patterns too deep in the failure-dominated regime (or too large) for
// the machine-level simulator.
func (c *RobustnessCell) markUnsimulable() {
	c.Unsimulable = true
	c.NaiveH, c.NaiveCI = math.NaN(), math.NaN()
	c.RetunedT, c.RetunedH, c.RetunedCI = math.NaN(), math.NaN(), math.NaN()
	c.GapPct = math.NaN()
}

// RobustnessResult is the full study: Table III scenarios × shape values
// on one platform, everything priced by the machine-level simulator with
// per-processor renewal clocks.
type RobustnessResult struct {
	Platform string
	DistName string
	Cells    []RobustnessCell
	Cfg      Config
}

// retuneMultipliers is the log-symmetric period grid of the re-tuning
// search: T* × 2^{i/2} for i ∈ [−4, 4]. The exponential optimum itself
// (multiplier 1) is part of the grid and is priced with the same seed
// (common random numbers), so the selection can never prefer a period
// that is worse under the shared noise. A winning candidate is then
// re-priced with an independent seed — taking the minimum of nine noisy
// means is upward-biased (winner's curse), so the confirmation estimate
// is what the table reports; if it does not actually beat the naive
// period, the cell falls back to the naive anchor and a zero gap. The
// reported gap is therefore conservative (never negative, and if
// anything understated).
var retuneMultipliers = []float64{0.25, 0.3536, 0.5, 0.7071, 1, 1.4142, 2, 2.8284, 4}

// maxMachineProcs bounds the per-processor event population the
// machine-level simulator is asked to carry; optima beyond it (unbounded
// allocation regimes) are reported unsimulable rather than silently
// mispriced.
const maxMachineProcs = 1 << 16

// RobustnessStudy stresses the exponential-optimal patterns of the given
// scenarios (nil = all six Table III scenarios) against a non-memoryless
// failure law: for each scenario it computes the paper's numerical
// optimum (T*, P*), replays it under the true distribution — distName
// with each shape in shapes, calibrated to the platform MTBF — and
// re-tunes the period by simulated search over retuneMultipliers. The
// reported gap is the price of tuning with the wrong (memoryless) model,
// exactly the classic robustness question asked of Young/Daly formulas.
func RobustnessStudy(pl platform.Platform, distName string, shapes []float64,
	scenarios []costmodel.Scenario, cfg Config) (*RobustnessResult, error) {
	return RobustnessStudyContext(context.Background(), pl, distName, shapes, scenarios, cfg)
}

// RobustnessStudyContext is RobustnessStudy with cancellation.
func RobustnessStudyContext(ctx context.Context, pl platform.Platform, distName string, shapes []float64,
	scenarios []costmodel.Scenario, cfg Config) (*RobustnessResult, error) {
	cfg = cfg.withDefaults()
	if len(shapes) == 0 {
		return nil, errors.New("experiments: robustness study needs at least one shape")
	}
	if len(scenarios) == 0 {
		scenarios = costmodel.AllScenarios
	}
	// Validate the law and name once before fanning out.
	if _, err := failures.ParseDistribution(distName, shapes[0], pl.LambdaInd); err != nil {
		return nil, err
	}

	// The exponential-optimal pattern depends only on the scenario, not
	// on the stressed shape: solve once per scenario (one warm-start
	// chain) instead of once per (scenario, shape) cell.
	scModels := make([]core.Model, len(scenarios))
	for i, sc := range scenarios {
		m, err := BuildModel(pl, sc, cfg.Alpha, cfg.Downtime)
		if err != nil {
			return nil, err
		}
		scModels[i] = m
	}
	scNums, err := optimize.BatchOptimalPattern(scModels, optimize.SweepOptions{Cold: cfg.ColdSolve})
	if err != nil {
		return nil, fmt.Errorf("experiments: optimizing robustness/%s/%s: %w", pl.Name, distName, err)
	}

	cells := make([]RobustnessCell, len(scenarios)*len(shapes))
	err = parallelFor(ctx, len(cells), cfg.Workers, func(ctx context.Context, i int) error {
		sc := scenarios[i/len(shapes)]
		shape := shapes[i%len(shapes)]
		label := fmt.Sprintf("robustness/%s/%s/k%g/%v", pl.Name, distName, shape, sc)

		m := scModels[i/len(shapes)]
		dist, err := failures.ParseDistribution(distName, shape, pl.LambdaInd)
		if err != nil {
			return err
		}
		num := scNums[i/len(shapes)]
		procs := int(math.Round(num.P))
		if procs < 1 {
			procs = 1
		}
		cell := RobustnessCell{
			Scenario:   sc,
			Shape:      shape,
			Dist:       dist.Name(),
			T:          num.T,
			P:          float64(procs),
			PredictedH: m.Overhead(num.T, float64(procs)),
		}
		if procs > maxMachineProcs {
			cell.markUnsimulable()
			cells[i] = cell
			return nil
		}

		// Price every period in the grid with common random numbers (the
		// same per-cell seed), so grid points differ only by the period.
		seed := cellSeed(cfg.Seed, label)
		// Divide the worker budget between the cell level and the runs
		// within each campaign: the outer parallelFor already runs up to
		// cfg.Workers cells, so a single-cell study (the common CLI
		// invocation) gets its whole budget per campaign while a full
		// sweep stays at ~cfg.Workers total. Per-run streams are
		// seed-derived, so the worker count never changes results.
		cellWorkers := cfg.Workers / (len(scenarios) * len(shapes))
		if cellWorkers < 1 {
			cellWorkers = 1
		}
		price := func(t float64, s uint64) (mean, ci float64, pressure bool, err error) {
			res, err := sim.SimulateContext(ctx, m, t, float64(procs), sim.RunConfig{
				Runs:     cfg.Runs,
				Patterns: cfg.Patterns,
				Seed:     s,
				Workers:  cellWorkers,
				Machine:  true,
				Dist:     dist,
			})
			if errors.Is(err, sim.ErrErrorPressure) {
				return 0, 0, true, nil
			}
			if err != nil {
				return 0, 0, false, err
			}
			return res.Overhead.Mean, res.Overhead.CI95, false, nil
		}

		// The naive (exponential-optimal) period anchors the comparison;
		// if it is unsimulable the whole cell is reported so — a re-tuned
		// column without its baseline would be contradictory — and the
		// rest of the grid's Monte-Carlo budget is not spent.
		naiveH, naiveCI, pressure, err := price(num.T, seed)
		if err != nil {
			return fmt.Errorf("experiments: simulating %s ×1: %w", label, err)
		}
		if pressure {
			cell.markUnsimulable()
			cells[i] = cell
			return nil
		}
		cell.NaiveH, cell.NaiveCI = naiveH, naiveCI
		bestH, bestT := naiveH, num.T
		for _, mult := range retuneMultipliers {
			if mult == 1 {
				continue // the naive point, already priced
			}
			t := num.T * mult
			mean, _, pressure, err := price(t, seed)
			if err != nil {
				return fmt.Errorf("experiments: simulating %s ×%g: %w", label, mult, err)
			}
			if pressure {
				continue // this grid point is off the simulable map
			}
			if mean < bestH {
				bestH, bestT = mean, t
			}
		}
		cell.RetunedT, cell.RetunedH, cell.RetunedCI = num.T, naiveH, naiveCI
		if bestT != num.T {
			// Confirm the selected period on an independent stream; the
			// CRN minimum that chose it is upward-biased for the gap.
			confirmH, confirmCI, pressure, err := price(bestT, cellSeed(seed, "retune-confirm"))
			if err != nil {
				return fmt.Errorf("experiments: confirming %s T=%g: %w", label, bestT, err)
			}
			if !pressure && confirmH < naiveH {
				cell.RetunedT, cell.RetunedH, cell.RetunedCI = bestT, confirmH, confirmCI
			}
		}
		cell.GapPct = (cell.NaiveH - cell.RetunedH) / cell.RetunedH * 100
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &RobustnessResult{
		Platform: pl.Name,
		DistName: distName,
		Cells:    cells,
		Cfg:      cfg,
	}, nil
}

// Render writes the study as one table: the exponential-optimal pattern,
// what the memoryless model believes it costs, what it actually costs
// under the true law, and what a re-tuned period recovers.
func (r *RobustnessResult) Render(w io.Writer) error {
	tb := report.NewTable(
		fmt.Sprintf("Robustness study on %s — %s arrivals, α=%g, D=%gs (machine-level simulation)",
			r.Platform, r.DistName, r.Cfg.Alpha, r.Cfg.Downtime),
		"scenario", "shape", "P*", "T* (exp-opt)", "H pred (exp)",
		"H sim (exp-opt T)", "T (re-tuned)", "H sim (re-tuned)", "gap")
	for _, c := range r.Cells {
		gap := "-"
		if !math.IsNaN(c.GapPct) {
			gap = fmt.Sprintf("+%.2f%%", c.GapPct)
		}
		tb.AddRow(c.Scenario.String(),
			report.Fmt(c.Shape),
			report.Fmt(c.P),
			report.Fmt(c.T),
			report.Fmt(c.PredictedH),
			report.Fmt(c.NaiveH),
			report.Fmt(c.RetunedT),
			report.Fmt(c.RetunedH),
			gap)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteCSV emits the study in long form, one series per quantity, x =
// cell index in (scenario-major, shape-minor) order.
func (r *RobustnessResult) WriteCSV(w io.Writer) error {
	var series []report.Series
	add := func(name string, get func(RobustnessCell) float64) {
		s := report.Series{Name: name}
		for i, c := range r.Cells {
			s.Add(float64(i), get(c))
		}
		series = append(series, s)
	}
	add("scenario", func(c RobustnessCell) float64 { return float64(c.Scenario) })
	add("shape", func(c RobustnessCell) float64 { return c.Shape })
	add("pstar", func(c RobustnessCell) float64 { return c.P })
	add("tstar", func(c RobustnessCell) float64 { return c.T })
	add("overhead_pred_exponential", func(c RobustnessCell) float64 { return c.PredictedH })
	add("overhead_sim_naive", func(c RobustnessCell) float64 { return c.NaiveH })
	add("t_retuned", func(c RobustnessCell) float64 { return c.RetunedT })
	add("overhead_sim_retuned", func(c RobustnessCell) float64 { return c.RetunedH })
	add("gap_pct", func(c RobustnessCell) float64 { return c.GapPct })
	return report.WriteSeriesCSV(w, "cell_index", "value", series...)
}

// DefaultRobustnessShapes is the Weibull shape sweep of the study:
// k ∈ [0.5, 1], from strongly bursty to the memoryless baseline.
var DefaultRobustnessShapes = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1}
