package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
)

// TestMultilevelStudyBasics runs the study at the quick budget and
// checks the structural invariants: every cell solved, integral
// allocations, simulated overheads near their first-order predictions,
// and a positive saving somewhere on the cheap-C1 edge (the economic
// point of the protocol).
func TestMultilevelStudyBasics(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 3
	res, err := MultilevelStudy(platform.Hera(), nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(scenarios135)*len(DefaultMultilevelFractions) {
		t.Fatalf("%d cells", len(res.Cells))
	}
	anySaving := false
	for _, c := range res.Cells {
		if c.K < 1 || !(c.T > 0) {
			t.Errorf("%v/frac=%g: degenerate pattern %+v", c.Scenario, c.Frac, c)
		}
		if c.P != math.Floor(c.P) {
			t.Errorf("%v/frac=%g: non-integral allocation %g", c.Scenario, c.Frac, c.P)
		}
		if !c.AtBound {
			if math.IsNaN(c.SimulatedH) {
				t.Errorf("%v/frac=%g: unsimulated interior cell", c.Scenario, c.Frac)
			} else if d := math.Abs(c.SimulatedH-c.PredictedH) / c.PredictedH; d > 0.05 {
				t.Errorf("%v/frac=%g: simulated %g vs predicted %g (%.1f%%)",
					c.Scenario, c.Frac, c.SimulatedH, c.PredictedH, d*100)
			}
		}
		if c.SavingPct > 0 {
			anySaving = true
		}
	}
	if !anySaving {
		t.Error("no cell shows a two-level saving — the study's economic claim fails")
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Multilevel study") {
		t.Error("render missing title")
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kstar") {
		t.Error("CSV missing kstar series")
	}
}

// TestMultilevelStudyWarmColdRenderByteIdentical is the figure-level
// equivalence pin (the amdahl-exp multilevel -warm acceptance
// criterion): warm and cold chains land on bit-identical integral
// allocations, so the phase-2 campaigns replay bit-identically and the
// rendered tables must be byte-identical for a fixed seed.
func TestMultilevelStudyWarmColdRenderByteIdentical(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 7
	run := func(cold bool) (string, *MultilevelResult) {
		c := cfg
		c.ColdSolve = cold
		res, err := MultilevelStudy(platform.Hera(), nil, nil, c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res
	}
	warmOut, warmRes := run(false)
	coldOut, coldRes := run(true)
	if warmOut != coldOut {
		t.Errorf("warm and cold multilevel renders differ:\n--- warm ---\n%s\n--- cold ---\n%s",
			warmOut, coldOut)
	}
	warmCells := 0
	for i := range coldRes.Cells {
		w, c := warmRes.Cells[i], coldRes.Cells[i]
		if w.P != c.P || w.K != c.K || w.T != c.T {
			t.Errorf("cell %d: warm optimum (%g, %d, %g) vs cold (%g, %d, %g)",
				i, w.T, w.K, w.P, c.T, c.K, c.P)
		}
		if w.Warm {
			warmCells++
		}
	}
	if warmCells == 0 {
		t.Error("no warm cells: the chains never warm-started")
	}
}

// TestMultilevelStudyCancellation: a cancelled context must abort the
// study promptly with ctx.Err().
func TestMultilevelStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MultilevelStudyContext(ctx, platform.Hera(), nil, nil, Quick())
	if err == nil {
		t.Fatal("cancelled study returned nil error")
	}
}

// TestMultilevelStudySingleScenario exercises the -scenario restriction.
func TestMultilevelStudySingleScenario(t *testing.T) {
	cfg := Quick()
	res, err := MultilevelStudy(platform.Hera(), []float64{0.1}, []costmodel.Scenario{costmodel.Scenario2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Scenario != costmodel.Scenario2 {
		t.Fatalf("unexpected cells %+v", res.Cells)
	}
}
