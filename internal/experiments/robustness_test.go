package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
)

func TestRobustnessStudyWeibull(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 1
	res, err := RobustnessStudy(platform.Hera(), "weibull", []float64{0.7, 1},
		[]costmodel.Scenario{costmodel.Scenario1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Unsimulable {
			t.Fatalf("cell %+v unsimulable", c)
		}
		if !(c.T > 0) || !(c.P >= 1) {
			t.Errorf("bad pattern in cell: T=%g P=%g", c.T, c.P)
		}
		// The grid includes the naive period with the same seed, so the
		// re-tuned overhead can never exceed it.
		if c.RetunedH > c.NaiveH {
			t.Errorf("retuned H %g > naive H %g", c.RetunedH, c.NaiveH)
		}
		if c.GapPct < 0 {
			t.Errorf("negative gap %g%%", c.GapPct)
		}
		if math.IsNaN(c.NaiveH) || math.IsNaN(c.RetunedH) {
			t.Errorf("NaN overheads in simulable cell: %+v", c)
		}
	}
	// Shape 1 is exponential in distribution: the simulated overhead of
	// the exponential optimum must sit near the model prediction (wide
	// tolerance — Quick budget).
	unit := res.Cells[1]
	if unit.Shape != 1 {
		t.Fatalf("cell order: want shape 1 second, got %g", unit.Shape)
	}
	if rel := math.Abs(unit.NaiveH-unit.PredictedH) / unit.PredictedH; rel > 0.10 {
		t.Errorf("shape-1 naive H %g vs predicted %g (rel %g)", unit.NaiveH, unit.PredictedH, rel)
	}
}

func TestRobustnessStudyDeterministic(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 3
	sc := []costmodel.Scenario{costmodel.Scenario3}
	a, err := RobustnessStudy(platform.Hera(), "weibull", []float64{0.6}, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RobustnessStudy(platform.Hera(), "weibull", []float64{0.6}, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells[0] != b.Cells[0] {
		t.Errorf("robustness study not deterministic:\n%+v\n%+v", a.Cells[0], b.Cells[0])
	}
}

func TestRobustnessStudyValidation(t *testing.T) {
	cfg := Quick()
	if _, err := RobustnessStudy(platform.Hera(), "weibull", nil, nil, cfg); err == nil {
		t.Error("empty shape list accepted")
	}
	if _, err := RobustnessStudy(platform.Hera(), "cauchy", []float64{0.7}, nil, cfg); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := RobustnessStudy(platform.Hera(), "weibull", []float64{-1}, nil, cfg); err == nil {
		t.Error("negative shape accepted")
	}
}

func TestRobustnessRenderAndCSV(t *testing.T) {
	cfg := Quick()
	cfg.Seed = 5
	res, err := RobustnessStudy(platform.Hera(), "gamma", []float64{0.5},
		[]costmodel.Scenario{costmodel.Scenario1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Robustness study", "gamma", "scenario 1", "gap", "re-tuned"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("render missing %q:\n%s", frag, buf.String())
		}
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"overhead_sim_naive", "overhead_sim_retuned", "gap_pct"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("CSV missing %q", frag)
		}
	}
}
