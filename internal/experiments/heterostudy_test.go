package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/xmath"
)

func quickHeteroStudy(t *testing.T, cold bool) *HeteroResult {
	t.Helper()
	cfg := Quick()
	cfg.Seed = 42
	cfg.ColdSolve = cold
	res, err := HeterogeneousStudy(platform.Hera(),
		[]float64{0, 1e-5, 1e-4}, []float64{0.25},
		[]costmodel.Scenario{costmodel.Scenario1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHeterogeneousStudyShape(t *testing.T) {
	res := quickHeteroStudy(t, false)
	if len(res.Cells) != 3 {
		t.Fatalf("expected 3 cells, got %d", len(res.Cells))
	}
	for i, c := range res.Cells {
		if c.Active < 1 || c.Active > 2 {
			t.Errorf("cell %d: active = %d", i, c.Active)
		}
		if !(c.PredictedH > 0) {
			t.Errorf("cell %d: predicted H = %g", i, c.PredictedH)
		}
		if math.IsNaN(c.SimulatedH) {
			t.Errorf("cell %d: unsimulable", i)
		}
		// Model and Monte-Carlo must agree within the quick budget's noise.
		if d := xmath.RelDiff(c.SimulatedH, c.PredictedH); d > 0.15 {
			t.Errorf("cell %d: sim %g vs model %g (rel %g)", i, c.SimulatedH, c.PredictedH, d)
		}
		if !(c.SingleH > 0) {
			t.Errorf("cell %d: baseline H = %g", i, c.SingleH)
		}
	}
	// At zero comm the fast accelerator must participate and beat the
	// CPU-only baseline's prediction.
	if res.Cells[0].Active != 2 {
		t.Errorf("zero-comm cell should use both groups, got G=%d", res.Cells[0].Active)
	}
	if !(res.Cells[0].PredictedH < res.Cells[2].PredictedH) {
		t.Errorf("overhead should grow with κ: %g !< %g",
			res.Cells[0].PredictedH, res.Cells[2].PredictedH)
	}
}

// TestHeterogeneousStudyWarmColdIdentical pins the -warm escape hatch:
// with integral allocations, warm and cold studies produce bit-identical
// cells (same optima, same seeds, same campaigns).
func TestHeterogeneousStudyWarmColdIdentical(t *testing.T) {
	warm := quickHeteroStudy(t, false)
	cold := quickHeteroStudy(t, true)
	for i := range warm.Cells {
		wc, cc := warm.Cells[i], cold.Cells[i]
		wc.Warm, cc.Warm = false, false
		// Format-compare: an inactive group's allocation is NaN, and
		// NaN != NaN would fail a direct struct comparison on equal cells.
		w, c := fmt.Sprintf("%+v", wc), fmt.Sprintf("%+v", cc)
		if w != c {
			t.Errorf("cell %d differs warm vs cold:\n warm %s\n cold %s", i, w, c)
		}
	}
}

func TestHeterogeneousStudyRenderAndCSV(t *testing.T) {
	res := quickHeteroStudy(t, false)
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Heterogeneous study on Hera", "P accel", "x accel", "H sim (cpu)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	for _, want := range []string{"overhead_sim", "x_accel", "saving_pct"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing series %q", want)
		}
	}
}

func TestHeteroStudyTopologyShape(t *testing.T) {
	tp := HeteroStudyTopology(platform.Hera(), 1e-5, 0.25)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tp.Groups) != 2 || tp.Groups[1].Size != 128 || tp.Groups[1].Speed != 8 {
		t.Errorf("unexpected topology: %+v", tp)
	}
	// Tiny splits clamp to at least one processor.
	tiny := HeteroStudyTopology(platform.Hera(), 0, 1e-9)
	if tiny.Groups[1].Size != 1 {
		t.Errorf("split clamp failed: %g", tiny.Groups[1].Size)
	}
}
