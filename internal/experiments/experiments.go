// Package experiments reproduces the evaluation of Section IV: one driver
// per figure (Figs. 2–7), each producing the same data series the paper
// plots, as aligned text tables, CSV series and ASCII charts.
//
// Every driver follows the paper's methodology: patterns are configured
// either from the first-order formulas (Theorems 1–3) or from the
// numerical optimization of the exact overhead, then priced by Monte-Carlo
// simulation (500 runs × 500 patterns by default, Section IV-A) and by the
// analytical model. Randomness is fully deterministic given Config.Seed.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/sim"
	"amdahlyd/internal/speedup"
)

// Config holds the Monte-Carlo budget and global experiment parameters.
type Config struct {
	// Runs and Patterns set the Monte-Carlo budget per data point
	// (defaults 500 and 500, the paper's choice).
	Runs, Patterns int
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Workers bounds experiment-level parallelism (default GOMAXPROCS).
	Workers int
	// Downtime is D in seconds (default 3600, Section IV-A). The zero
	// value selects the default; an actual zero-downtime study must set
	// DowntimeSet (a plain Downtime: 0 cannot be told apart from "not
	// configured").
	Downtime float64
	// DowntimeSet marks Downtime as explicitly configured, so
	// Downtime: 0 means a zero-downtime study rather than the default.
	DowntimeSet bool
	// Alpha is the sequential fraction for the α-fixed figures
	// (default 0.1). The zero value selects the default; an α = 0
	// (perfectly parallel) study must set AlphaSet.
	Alpha float64
	// AlphaSet marks Alpha as explicitly configured, so Alpha: 0 selects
	// the perfectly parallel profile rather than the default 0.1.
	AlphaSet bool
	// ColdSolve disables the warm-start sweep solver: every sweep cell
	// pays the full OptimalPattern grid scan, bit-identical to the
	// historical per-cell path (the amdahl-exp -warm=false escape hatch).
	ColdSolve bool
}

// WithDowntime returns a copy with the downtime explicitly configured;
// unlike assigning Downtime directly, it makes a zero value stick.
func (c Config) WithDowntime(d float64) Config {
	c.Downtime, c.DowntimeSet = d, true
	return c
}

// WithAlpha returns a copy with the sequential fraction explicitly
// configured; unlike assigning Alpha directly, it makes α = 0 stick.
func (c Config) WithAlpha(alpha float64) Config {
	c.Alpha, c.AlphaSet = alpha, true
	return c
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 500
	}
	if c.Patterns == 0 {
		c.Patterns = 500
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Downtime == 0 && !c.DowntimeSet {
		c.Downtime = 3600
	}
	if c.Alpha == 0 && !c.AlphaSet {
		c.Alpha = 0.1
	}
	return c
}

// Quick returns a configuration with a reduced Monte-Carlo budget for
// tests and benchmarks: the same code paths, ~100× less work.
func Quick() Config {
	return Config{Runs: 40, Patterns: 60}
}

// BuildModel assembles the core model for a platform, scenario, sequential
// fraction and downtime. α = 0 selects the perfectly parallel profile so
// the case-4 analysis is dispatched as in the paper.
func BuildModel(pl platform.Platform, sc costmodel.Scenario, alpha, downtime float64) (core.Model, error) {
	if err := pl.Validate(); err != nil {
		return core.Model{}, err
	}
	res, err := pl.Resilience(sc, downtime)
	if err != nil {
		return core.Model{}, err
	}
	var profile speedup.Profile
	if alpha == 0 {
		profile = speedup.PerfectlyParallel{}
	} else {
		am, err := speedup.NewAmdahl(alpha)
		if err != nil {
			return core.Model{}, err
		}
		profile = am
	}
	m := core.Model{
		LambdaInd:    pl.LambdaInd,
		FailStopFrac: pl.FailStopFraction,
		SilentFrac:   pl.SilentFraction,
		Res:          res,
		Profile:      profile,
	}
	return m, m.Validate()
}

// Eval is one evaluated pattern configuration: the parameters, the model
// prediction and the Monte-Carlo measurement.
type Eval struct {
	// P and T are the pattern parameters.
	P, T float64
	// PredictedH is the exact-model overhead H(T, P).
	PredictedH float64
	// SimulatedH is the Monte-Carlo mean overhead, with CI95 half-width.
	SimulatedH float64
	SimCI      float64
	// AtBound flags a numerical optimum that stopped at the processor
	// search bound (unbounded-allocation regimes).
	AtBound bool
	// Method records the solver ("first-order" or "numerical").
	Method string
}

// cellSeed derives a stable per-cell seed from the master seed and a cell
// label, so adding or reordering cells never changes other cells' streams.
func cellSeed(master uint64, label string) uint64 {
	return uint64(newSeedHash().str(label)) ^ master
}

// seedHash is a streaming FNV-1a over the bytes a cell label would
// contain, so the sweep hot path can derive cellSeed-identical seeds
// without materializing the fmt.Sprintf label (which is now built only
// on error paths). The digest over str/float parts is bit-identical to
// hashing the concatenated formatted string.
type seedHash uint64

func newSeedHash() seedHash { return 1469598103934665603 }

func (h seedHash) str(s string) seedHash {
	for i := 0; i < len(s); i++ {
		h ^= seedHash(s[i])
		h *= 1099511628211
	}
	return h
}

// float hashes the exact bytes fmt's %g verb renders for x.
func (h seedHash) float(x float64) seedHash {
	var buf [32]byte
	b := strconv.AppendFloat(buf[:0], x, 'g', -1, 64)
	for _, c := range b {
		h ^= seedHash(c)
		h *= 1099511628211
	}
	return h
}

func (h seedHash) seed(master uint64) uint64 { return uint64(h) ^ master }

// simulateEval prices a solution with the Monte-Carlo simulator. A
// solution that sits too deep in the failure-dominated regime to simulate
// (sim.ErrErrorPressure — this happens when a first-order method is
// applied far outside its validity region, e.g. weak-scaling profiles at
// the processor search bound) is returned with NaN simulated fields and
// the model prediction intact.
func simulateEval(ctx context.Context, m core.Model, sol core.Solution, atBound bool, cfg Config, label string) (Eval, error) {
	return simulateEvalSeed(ctx, m, sol, atBound, cfg, cellSeed(cfg.Seed, label),
		func() string { return label })
}

// simulateEvalSeed is simulateEval with the campaign seed precomputed and
// the label deferred to a thunk: the sweep hot path derives both from the
// streaming seedHash, so the per-cell fmt.Sprintf happens only when an
// error actually needs the label.
func simulateEvalSeed(ctx context.Context, m core.Model, sol core.Solution, atBound bool, cfg Config, seed uint64, label func() string) (Eval, error) {
	res, err := sim.SimulateContext(ctx, m, sol.T, sol.P, sim.RunConfig{
		Runs:     cfg.Runs,
		Patterns: cfg.Patterns,
		Seed:     seed,
		Workers:  1, // parallelism lives at the cell level
	})
	if errors.Is(err, sim.ErrErrorPressure) {
		return Eval{
			P:          sol.P,
			T:          sol.T,
			PredictedH: m.Overhead(sol.T, sol.P),
			SimulatedH: math.NaN(),
			SimCI:      math.NaN(),
			AtBound:    atBound,
			Method:     sol.Method + " (unsimulable)",
		}, nil
	}
	if err != nil {
		return Eval{}, fmt.Errorf("experiments: simulating %s: %w", label(), err)
	}
	return Eval{
		P:          sol.P,
		T:          sol.T,
		PredictedH: m.Overhead(sol.T, sol.P),
		SimulatedH: res.Overhead.Mean,
		SimCI:      res.Overhead.CI95,
		AtBound:    atBound,
		Method:     sol.Method,
	}, nil
}

// solveFirstOrder returns the simulated first-order solution, or nil when
// the first-order analysis has no bounded optimum (scenario 6, or α = 0).
func solveFirstOrder(ctx context.Context, m core.Model, cfg Config, label string) (*Eval, error) {
	return solveFirstOrderSeed(ctx, m, cfg,
		cellSeed(cfg.Seed, label+"/first-order"),
		func() string { return label + "/first-order" })
}

// solveFirstOrderSeed is solveFirstOrder with the campaign seed
// precomputed and the label deferred (see simulateEvalSeed).
func solveFirstOrderSeed(ctx context.Context, m core.Model, cfg Config, seed uint64, label func() string) (*Eval, error) {
	sol, err := m.FirstOrder()
	if errors.Is(err, core.ErrNoFirstOrder) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if sol.P < 1 {
		sol.P = 1
	}
	ev, err := simulateEvalSeed(ctx, m, sol, false, cfg, seed, label)
	if err != nil {
		return nil, err
	}
	return &ev, nil
}

// parallelFor runs fn(ctx, i) for i in [0, n) on up to workers goroutines
// and returns the first error. Cancellation is two-way: a done ctx stops
// further cells from being dispatched (and the per-cell ctx aborts
// in-flight campaigns via sim.SimulateContext), and the first cell error
// cancels every other cell — an experiment with a broken cell fails fast
// instead of finishing the sweep.
func parallelFor(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cellCtx.Err() != nil {
					continue // drain: a cell failed or the caller cancelled
				}
				if err := fn(cellCtx, i); err != nil {
					if cellCtx.Err() != nil && errors.Is(err, context.Canceled) {
						// A secondary abort of an in-flight cell, not the
						// root cause; recording it would bury the real
						// error under cancellation noise.
						continue
					}
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller's cancellation wins over the secondary ctx errors the
		// in-flight cells reported while aborting.
		return err
	}
	return errors.Join(errs...)
}

// scenarios135 is the scenario subset used by Figs. 4–7: the paper drops
// scenarios 2, 4 and 6 there because they behave like 1, 3 and 5.
var scenarios135 = []costmodel.Scenario{
	costmodel.Scenario1, costmodel.Scenario3, costmodel.Scenario5,
}

// guard for NaN-safe table output.
func orNaN(e *Eval, f func(Eval) float64) float64 {
	if e == nil {
		return math.NaN()
	}
	return f(*e)
}

// solutionAt wraps a fixed (T, P) pair as a Solution for pricing.
func solutionAt(t, p float64) core.Solution {
	return core.Solution{T: t, P: p, Method: "fixed"}
}
