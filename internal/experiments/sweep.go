package experiments

import (
	"context"
	"fmt"
	"io"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/report"
)

// SweepPoint is one (scenario, x) cell of a parameter sweep: the
// first-order solution (when it exists) and the numerical optimum, both
// priced by simulation.
type SweepPoint struct {
	Scenario costmodel.Scenario
	X        float64
	// FirstOrder is nil when the first-order analysis does not apply
	// (scenario 6, or a perfectly parallel profile).
	FirstOrder *Eval
	Optimal    *Eval
}

// SweepResult is a generic sweep over one parameter for scenarios 1, 3
// and 5 — the backbone of Figs. 4, 5, 6 and 7.
type SweepResult struct {
	// Name identifies the experiment ("Fig. 4", …).
	Name string
	// XLabel names the swept parameter ("alpha", "lambda_ind", "D").
	XLabel string
	Points []SweepPoint
	Cfg    Config
}

// modelBuilder produces the model for a given sweep coordinate.
type modelBuilder func(x float64, sc costmodel.Scenario) (core.Model, error)

// runSweep evaluates all (scenario ∈ {1,3,5}) × xs cells in two phases.
// Phase 1 solves the numerical optima as one warm-start chain per
// scenario: the cells along a sweep axis are ordered and (T*, P*) varies
// smoothly, so each cell's optimum brackets the next solve
// (optimize.SweepSolver; cfg.ColdSolve restores the historical per-cell
// grid scans). Phase 2 prices every cell by Monte-Carlo in parallel,
// with seeds bit-identical to the historical per-cell path (the label
// strings are no longer materialized per cell — only their hash — and
// are formatted only when an error needs them).
func runSweep(ctx context.Context, name, xLabel string, xs []float64, build modelBuilder, cfg Config) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	nCells := len(scenarios135) * len(xs)
	models := make([]core.Model, nCells)
	nums := make([]optimize.PatternResult, nCells)

	err := parallelFor(ctx, len(scenarios135), cfg.Workers, func(ctx context.Context, si int) error {
		sc := scenarios135[si]
		solver := optimize.NewSweepSolver(optimize.SweepOptions{Cold: cfg.ColdSolve})
		for xi, x := range xs {
			if err := ctx.Err(); err != nil {
				return err
			}
			m, err := build(x, sc)
			if err != nil {
				return err
			}
			num, err := solver.Solve(m)
			if err != nil {
				return fmt.Errorf("experiments: optimizing %s/%v/%s=%g: %w",
					name, sc, xLabel, x, err)
			}
			i := si*len(xs) + xi
			models[i], nums[i] = m, num
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	points := make([]SweepPoint, nCells)
	err = parallelFor(ctx, nCells, cfg.Workers, func(ctx context.Context, i int) error {
		si, xi := i/len(xs), i%len(xs)
		sc, x := scenarios135[si], xs[xi]
		m, num := models[i], nums[i]
		base := newSeedHash().str(name).str("/").str(sc.String()).
			str("/").str(xLabel).str("=").float(x)
		label := func(suffix string) func() string {
			return func() string {
				return fmt.Sprintf("%s/%v/%s=%g%s", name, sc, xLabel, x, suffix)
			}
		}
		fo, err := solveFirstOrderSeed(ctx, m, cfg,
			base.str("/first-order").seed(cfg.Seed), label("/first-order"))
		if err != nil {
			return err
		}
		opt, err := simulateEvalSeed(ctx, m, num.Solution, num.AtPBound, cfg,
			base.str("/numerical").seed(cfg.Seed), label("/numerical"))
		if err != nil {
			return err
		}
		points[i] = SweepPoint{Scenario: sc, X: x, FirstOrder: fo, Optimal: &opt}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{Name: name, XLabel: xLabel, Points: points, Cfg: cfg}, nil
}

// quantity selects which panel of a sweep figure to extract.
type quantity struct {
	name string
	get  func(Eval) float64
}

var (
	quantityP = quantity{"P*", func(e Eval) float64 { return e.P }}
	quantityT = quantity{"T*", func(e Eval) float64 { return e.T }}
	quantityH = quantity{"H (simulated)", func(e Eval) float64 { return e.SimulatedH }}
)

// Series extracts one panel as series named "<scenario> (<method>)",
// mirroring the paper's legends.
func (r *SweepResult) Series(q quantity) []report.Series {
	type key struct {
		sc     costmodel.Scenario
		method string
	}
	order := []key{}
	byKey := map[key]*report.Series{}
	add := func(k key, x float64, e *Eval) {
		if e == nil {
			return
		}
		s, ok := byKey[k]
		if !ok {
			s = &report.Series{Name: fmt.Sprintf("%v (%s)", k.sc, k.method)}
			byKey[k] = s
			order = append(order, k)
		}
		s.Add(x, q.get(*e))
	}
	for _, pt := range r.Points {
		add(key{pt.Scenario, "first-order"}, pt.X, pt.FirstOrder)
		add(key{pt.Scenario, "optimal"}, pt.X, pt.Optimal)
	}
	out := make([]report.Series, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// PSeries, TSeries and HSeries are the three panels of each sweep figure.
func (r *SweepResult) PSeries() []report.Series { return r.Series(quantityP) }

// TSeries returns the optimal-period panel.
func (r *SweepResult) TSeries() []report.Series { return r.Series(quantityT) }

// HSeries returns the simulated-overhead panel.
func (r *SweepResult) HSeries() []report.Series { return r.Series(quantityH) }

// Render writes the three panels as tables: for each x, the first-order
// and numerical P*, T* and simulated overhead per scenario.
func (r *SweepResult) Render(w io.Writer) error {
	panels := []struct {
		title string
		q     quantity
	}{
		{fmt.Sprintf("%s(a) — optimal processors P* vs %s", r.Name, r.XLabel), quantityP},
		{fmt.Sprintf("%s(b) — optimal period T* vs %s", r.Name, r.XLabel), quantityT},
		{fmt.Sprintf("%s(c) — simulated overhead vs %s", r.Name, r.XLabel), quantityH},
	}
	for _, panel := range panels {
		cols := []string{r.XLabel}
		for _, sc := range scenarios135 {
			cols = append(cols,
				fmt.Sprintf("sc%d first-order", int(sc)),
				fmt.Sprintf("sc%d optimal", int(sc)))
		}
		tb := report.NewTable(panel.title, cols...)

		byX := map[float64]map[costmodel.Scenario]SweepPoint{}
		var order []float64
		for _, pt := range r.Points {
			if _, ok := byX[pt.X]; !ok {
				byX[pt.X] = map[costmodel.Scenario]SweepPoint{}
				order = append(order, pt.X)
			}
			byX[pt.X][pt.Scenario] = pt
		}
		for _, x := range order {
			row := make([]float64, 0, 6)
			for _, sc := range scenarios135 {
				pt := byX[x][sc]
				row = append(row,
					orNaN(pt.FirstOrder, panel.q.get),
					orNaN(pt.Optimal, panel.q.get))
			}
			tb.AddFloats(report.Fmt(x), row...)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits every panel in long form.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	var all []report.Series
	for _, panel := range []struct {
		prefix string
		series []report.Series
	}{
		{"pstar/", r.PSeries()},
		{"tstar/", r.TSeries()},
		{"overhead/", r.HSeries()},
	} {
		for _, s := range panel.series {
			s.Name = panel.prefix + s.Name
			all = append(all, s)
		}
	}
	return report.WriteSeriesCSV(w, r.XLabel, "value", all...)
}

// Slopes fits log-log slopes of the numerical-optimal P*, T* and H series
// per scenario — the asymptotic-order check of Figs. 5 and 6.
func (r *SweepResult) Slopes() map[costmodel.Scenario]struct{ P, T, H float64 } {
	out := map[costmodel.Scenario]struct{ P, T, H float64 }{}
	for _, sc := range scenarios135 {
		var pSer, tSer, hSer report.Series
		for _, pt := range r.Points {
			if pt.Scenario != sc || pt.Optimal == nil {
				continue
			}
			pSer.Add(pt.X, pt.Optimal.P)
			tSer.Add(pt.X, pt.Optimal.T)
			hSer.Add(pt.X, pt.Optimal.SimulatedH)
		}
		p, _ := report.LogSlope(pSer)
		t, _ := report.LogSlope(tSer)
		h, _ := report.LogSlope(hSer)
		out[sc] = struct{ P, T, H float64 }{p, t, h}
	}
	return out
}
