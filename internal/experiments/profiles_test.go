package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/speedup"
	"amdahlyd/internal/xmath"
)

func TestProfileStudy(t *testing.T) {
	profiles := []speedup.Profile{
		speedup.Amdahl{Alpha: 0.1},
		speedup.Gustafson{Alpha: 0.1},
		speedup.PowerLaw{Gamma: 0.8},
	}
	res, err := ProfileStudy(platform.Hera(), costmodel.Scenario1, profiles, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("expected 3 cells, got %d", len(res.Cells))
	}
	byName := map[string]ProfileCell{}
	for _, c := range res.Cells {
		byName[c.Profile] = c
		// Simulated and predicted overheads agree at each simulable
		// solution. (A semi-analytic point driven outside its validity
		// region — Gustafson at the P bound — is legitimately marked
		// unsimulable with NaN.)
		for _, e := range []Eval{c.SemiAnalytic, c.Optimal} {
			if math.IsNaN(e.SimulatedH) {
				if !strings.Contains(e.Method, "unsimulable") {
					t.Errorf("%s: NaN simulated overhead without the unsimulable tag", c.Profile)
				}
				continue
			}
			if xmath.RelDiff(e.SimulatedH, e.PredictedH) > 0.05 {
				t.Errorf("%s: simulated %g vs predicted %g", c.Profile, e.SimulatedH, e.PredictedH)
			}
		}
		// The numerical optimum never loses to the semi-analytic point.
		if c.Optimal.PredictedH > c.SemiAnalytic.PredictedH*(1+1e-6) {
			t.Errorf("%s: numerical %g worse than semi-analytic %g",
				c.Profile, c.Optimal.PredictedH, c.SemiAnalytic.PredictedH)
		}
	}

	am := byName["amdahl(α=0.1)"]
	gu := byName["gustafson(α=0.1)"]
	// Weak scaling sustains far more processors and a far lower overhead
	// than strong scaling with the same sequential fraction.
	if gu.Optimal.P <= am.Optimal.P*10 {
		t.Errorf("Gustafson P*=%g should dwarf Amdahl P*=%g", gu.Optimal.P, am.Optimal.P)
	}
	if gu.Optimal.SimulatedH >= am.Optimal.SimulatedH {
		t.Errorf("Gustafson overhead %g should undercut Amdahl %g",
			gu.Optimal.SimulatedH, am.Optimal.SimulatedH)
	}
}

func TestProfileStudyDefaults(t *testing.T) {
	res, err := ProfileStudy(platform.Hera(), costmodel.Scenario3, nil, Quick())
	if err != nil {
		t.Fatal(err)
	}
	defaults, err := DefaultProfiles(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(defaults) {
		t.Fatalf("default profile set not used: %d cells", len(res.Cells))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Profile study", "amdahl", "gustafson", "powerlaw"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "pstar_optimal") {
		t.Error("CSV missing series")
	}
}

type invalidProfile struct{}

func (invalidProfile) Speedup(p float64) float64  { return -1 }
func (invalidProfile) Overhead(p float64) float64 { return -1 }
func (invalidProfile) Name() string               { return "invalid" }

func TestProfileStudyRejectsBrokenProfile(t *testing.T) {
	_, err := ProfileStudy(platform.Hera(), costmodel.Scenario1,
		[]speedup.Profile{invalidProfile{}}, Quick())
	if err == nil {
		t.Error("broken profile accepted")
	}
}
