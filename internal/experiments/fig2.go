package experiments

import (
	"context"
	"fmt"
	"io"

	"amdahlyd/internal/core"
	"amdahlyd/internal/costmodel"
	"amdahlyd/internal/optimize"
	"amdahlyd/internal/platform"
	"amdahlyd/internal/report"
)

// Fig2Cell is one (platform, scenario) cell of Fig. 2: the first-order and
// numerical optimal patterns with predicted and simulated overheads.
type Fig2Cell struct {
	Platform   string
	Scenario   costmodel.Scenario
	FirstOrder *Eval // nil in scenario 6 (no first-order optimum)
	Optimal    *Eval
}

// Fig2Result holds the full Fig. 2 data: for each platform and each of the
// six scenarios, P*, T* and execution overhead (first-order vs numerical,
// predicted vs simulated) at α = 0.1.
type Fig2Result struct {
	Cells []Fig2Cell
	Cfg   Config
}

// Fig2 reproduces Fig. 2 on the given platforms (the paper uses all four
// of Table II).
func Fig2(platforms []platform.Platform, cfg Config) (*Fig2Result, error) {
	return Fig2Context(context.Background(), platforms, cfg)
}

// Fig2Context is Fig2 with cancellation: a done ctx aborts in-flight
// Monte-Carlo campaigns and skips undispatched cells.
//
// The numerical optima are solved as one warm-start chain per scenario
// across the platform list (optimize.SweepSolver): for a fixed scenario
// the optimum moves by only a few × between Table II platforms, so most
// platform cells warm-start from their neighbour; a platform whose
// optimum drifted outside the bracket falls back to the full scan.
// Simulation then prices all cells in parallel with the historical
// per-cell seeds.
func Fig2Context(ctx context.Context, platforms []platform.Platform, cfg Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	scenarios := costmodel.AllScenarios
	nS := len(scenarios)
	models := make([]core.Model, len(platforms)*nS)
	for pi, pl := range platforms {
		for si, sc := range scenarios {
			m, err := BuildModel(pl, sc, cfg.Alpha, cfg.Downtime)
			if err != nil {
				return nil, err
			}
			models[pi*nS+si] = m
		}
	}

	nums := make([]optimize.PatternResult, len(models))
	err := parallelFor(ctx, nS, cfg.Workers, func(ctx context.Context, si int) error {
		solver := optimize.NewSweepSolver(optimize.SweepOptions{Cold: cfg.ColdSolve})
		for pi := range platforms {
			i := pi*nS + si
			num, err := solver.Solve(models[i])
			if err != nil {
				return fmt.Errorf("experiments: optimizing fig2/%s/%v: %w",
					platforms[pi].Name, scenarios[si], err)
			}
			nums[i] = num
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	cells := make([]Fig2Cell, len(models))
	err = parallelFor(ctx, len(models), cfg.Workers, func(ctx context.Context, i int) error {
		pi, si := i/nS, i%nS
		pl, sc := platforms[pi], scenarios[si]
		label := fmt.Sprintf("fig2/%s/%v", pl.Name, sc)
		m := models[i]
		fo, err := solveFirstOrder(ctx, m, cfg, label)
		if err != nil {
			return err
		}
		opt, err := simulateEval(ctx, m, nums[i].Solution, nums[i].AtPBound, cfg, label+"/numerical")
		if err != nil {
			return err
		}
		cells[i] = Fig2Cell{Platform: pl.Name, Scenario: sc, FirstOrder: fo, Optimal: &opt}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Cells: cells, Cfg: cfg}, nil
}

// Tables renders one table per platform with the paper's three panels
// (P*, T*, overhead) as columns.
func (r *Fig2Result) Tables() []*report.Table {
	byPlatform := map[string]*report.Table{}
	var order []string
	for _, c := range r.Cells {
		tb, ok := byPlatform[c.Platform]
		if !ok {
			tb = report.NewTable(
				fmt.Sprintf("Fig. 2 — optimal patterns on %s (α=%g, D=%gs)",
					c.Platform, r.Cfg.Alpha, r.Cfg.Downtime),
				"scenario",
				"P* (first-order)", "P* (optimal)",
				"T* (first-order)", "T* (optimal)",
				"H sim (first-order)", "H sim (optimal)",
				"H pred (first-order)", "H pred (optimal)",
			)
			byPlatform[c.Platform] = tb
			order = append(order, c.Platform)
		}
		tb.AddFloats(c.Scenario.String(),
			orNaN(c.FirstOrder, func(e Eval) float64 { return e.P }),
			orNaN(c.Optimal, func(e Eval) float64 { return e.P }),
			orNaN(c.FirstOrder, func(e Eval) float64 { return e.T }),
			orNaN(c.Optimal, func(e Eval) float64 { return e.T }),
			orNaN(c.FirstOrder, func(e Eval) float64 { return e.SimulatedH }),
			orNaN(c.Optimal, func(e Eval) float64 { return e.SimulatedH }),
			orNaN(c.FirstOrder, func(e Eval) float64 { return e.PredictedH }),
			orNaN(c.Optimal, func(e Eval) float64 { return e.PredictedH }),
		)
	}
	out := make([]*report.Table, 0, len(order))
	for _, name := range order {
		out = append(out, byPlatform[name])
	}
	return out
}

// Render writes all tables.
func (r *Fig2Result) Render(w io.Writer) error {
	for _, tb := range r.Tables() {
		if err := tb.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the long-form series (one row per platform × scenario ×
// method × quantity).
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	var series []report.Series
	add := func(name string, value func(Fig2Cell) float64) {
		s := report.Series{Name: name}
		for i, c := range r.Cells {
			v := value(c)
			s.Add(float64(i), v)
		}
		series = append(series, s)
	}
	add("pstar_first_order", func(c Fig2Cell) float64 {
		return orNaN(c.FirstOrder, func(e Eval) float64 { return e.P })
	})
	add("pstar_optimal", func(c Fig2Cell) float64 {
		return orNaN(c.Optimal, func(e Eval) float64 { return e.P })
	})
	add("tstar_first_order", func(c Fig2Cell) float64 {
		return orNaN(c.FirstOrder, func(e Eval) float64 { return e.T })
	})
	add("tstar_optimal", func(c Fig2Cell) float64 {
		return orNaN(c.Optimal, func(e Eval) float64 { return e.T })
	})
	add("overhead_sim_first_order", func(c Fig2Cell) float64 {
		return orNaN(c.FirstOrder, func(e Eval) float64 { return e.SimulatedH })
	})
	add("overhead_sim_optimal", func(c Fig2Cell) float64 {
		return orNaN(c.Optimal, func(e Eval) float64 { return e.SimulatedH })
	})
	return report.WriteSeriesCSV(w, "cell_index", "value", series...)
}
